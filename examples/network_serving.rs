//! Network serving: the re-entrant engine session and the Pelikan-style
//! TCP front-end, in one process.
//!
//! ```sh
//! cargo run --release --example network_serving
//! ```
//!
//! The batch facade (`ServingSystem::serve`) consumes a whole request
//! stream and returns one report. This example shows the two layers the
//! network server is built from instead:
//!
//! 1. an [`EngineSession`] used directly — submit individual requests,
//!    pump the engine, poll completions, snapshot mid-run;
//! 2. the real thing over TCP loopback — `coserve-server`'s listener,
//!    worker pool and admin port, driven by the wire [`Client`].
//!
//! Both produce per-job results bit-identical to the batch facade.

use coserve::prelude::*;
use coserve_server::prelude::*;
use coserve_server::server::{Client, Server, ServerConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let device = devices::numa_rtx3080ti();
    let task = TaskSpec::a1().scaled(0.02); // 50 requests for a demo
    let model = task.build_model()?;
    let config = presets::coserve(&device);
    let system = ServingSystem::new(device, model, config)?;
    let stream = task.stream(system.model());
    let batch = system.serve(&stream);

    // ── 1. The re-entrant session, in-process ───────────────────────
    let mut session = system.session(stream.name());
    let mid = stream.len() / 2;
    for job in stream.jobs().iter().take(mid) {
        session.submit(job.arrival, &job.stages)?;
    }
    // Advance only to the next arrival — exactly the state the batch
    // run would be in at this point, so the final report still matches
    // it bit for bit.
    session.pump_until(stream.jobs()[mid].arrival);
    // The engine is live, not consumed: snapshot and keep going.
    let snapshot = session.snapshot();
    println!(
        "mid-run snapshot: {}/{} submitted, {} completed, p95 so far {}",
        snapshot.submitted,
        stream.len(),
        snapshot.completed,
        snapshot
            .latency
            .as_ref()
            .map_or_else(|| "-".into(), |l| format!("{:.1} ms", l.p95)),
    );
    for job in stream.jobs().iter().skip(mid) {
        session.submit(job.arrival, &job.stages)?;
    }
    session.pump();
    let completions = session.drain_completions();
    let report = session.into_report();
    println!(
        "session: {} completions, report bit-identical to batch serve: {}",
        completions.len(),
        report == batch,
    );

    // ── 2. The same jobs through a real TCP server ──────────────────
    let core = ServiceCore::new(system.session("CoServe"), system.model().num_experts());
    let server = Server::bind(&ServerConfig::default())?; // port 0 both
    let data_addr = server.data_addr()?;
    let admin_addr = server.admin_addr()?;
    println!("server up: data {data_addr}, admin {admin_addr}, 2 workers");

    std::thread::scope(|scope| -> Result<(), Box<dyn std::error::Error>> {
        let run = scope.spawn(|| server.run(&core));

        let mut client = Client::connect(data_addr)?;
        let Response::Hello { conn, .. } = client.call(&Request::Hello)? else {
            return Err("handshake failed".into());
        };
        for job in stream.jobs() {
            client.call(&Request::Submit {
                arrival: job.arrival,
                stages: job.stages.clone(),
            })?;
        }
        client.call(&Request::Pump { limit: None })?;
        let Response::Poll { completions } = client.call(&Request::Poll)? else {
            return Err("poll failed".into());
        };
        let mut wire: Vec<_> = completions.iter().map(|c| c.latency).collect();
        wire.sort_unstable();
        let mut expected = batch.job_latencies.clone();
        expected.sort_unstable();
        println!(
            "wire (conn {conn}): {} completions, latencies bit-identical to batch serve: {}",
            completions.len(),
            wire == expected,
        );
        client.call(&Request::Finish)?;

        server.shutdown();
        run.join().expect("server thread")?;
        Ok(())
    })?;
    println!("clean shutdown — admin /stats served the same snapshot live");
    Ok(())
}
