//! Open-loop online serving: sweep offered load and report tail
//! latency, drop rate and SLO attainment.
//!
//! ```sh
//! cargo run --release --example open_loop_serving
//! ```
//!
//! The closed paper evaluation replays a conveyor (one image every
//! 4 ms); this example instead offers Poisson and bursty MMPP traffic
//! at increasing rates to a CoServe system with bounded executor
//! queues, the regime where admission control and p99 matter.

use coserve::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let board = BoardSpec::synthetic("online-demo", 32, 3, 1.2, 40.0, 0.5);
    let model = board.build_model()?;
    let device = devices::numa_rtx3080ti();
    let system = ServingSystem::new(
        device,
        model,
        presets::coserve_online(&devices::numa_rtx3080ti()),
    )?;

    let slo = SimSpan::from_millis(2_000);
    println!("CoServe open-loop serving on {}", system.device().name());
    println!("SLO: end-to-end latency <= {slo}\n");
    println!(
        "{:<22} {:>8} {:>9} {:>9} {:>9} {:>7} {:>8}",
        "arrivals", "p50_ms", "p90_ms", "p99_ms", "goodput", "drop%", "SLO-ok%"
    );

    let mut processes = vec![ArrivalProcess::Uniform {
        interval: PAPER_ARRIVAL_INTERVAL,
    }];
    for rps in [50.0, 150.0, 400.0, 1_200.0] {
        processes.push(ArrivalProcess::poisson(rps));
    }
    // A bursty stream with the same 150 rps average as the mid sweep.
    processes.push(ArrivalProcess::bursty(50.0, 550.0, 200.0, 50.0));

    for process in processes {
        let options = OpenLoopOptions::new(process).requests(400);
        let report = serve_open_loop(&system, &board, &options);
        let lat = report.latency_summary().expect("some jobs complete");
        println!(
            "{:<22} {:>8.1} {:>9.1} {:>9.1} {:>9.1} {:>6.1}% {:>7.1}%",
            process.to_string(),
            lat.p50,
            lat.p90,
            lat.p99,
            report.throughput_ips(),
            100.0 * report.drop_rate(),
            100.0 * report.slo_attainment(slo).unwrap_or(0.0),
        );
    }

    Ok(())
}
