//! Cluster-scale serving: scale a CoE model out across a fleet and
//! sweep placement strategies and routing policies.
//!
//! ```sh
//! cargo run --release --example cluster_serving
//! ```
//!
//! One NUMA box saturates well below production traffic. This example
//! offers the same overload stream to fleets of 1, 2 and 4 nodes and
//! shows (a) throughput scaling with fleet size, (b) how placement
//! decides cross-node hop counts (replicated = none, sharded = many,
//! usage-aware = few), and (c) how residency-first routing keeps expert
//! chains local where round-robin ships activations over the fabric.

use coserve::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let task = TaskSpec::a1();
    let model = task.build_model()?;
    let device = devices::numa_rtx3080ti();
    let config = presets::coserve(&device);

    // Overload: ~4000 rps against nodes that saturate far lower, with
    // shallow admission queues so undersized fleets shed load.
    let options = OpenLoopOptions::new(ArrivalProcess::poisson(4_000.0))
        .requests(600)
        .admission(AdmissionControl::with_queue_capacity(16));

    println!(
        "Cluster serving of {} on fleets of {}\n",
        task.name(),
        device.name()
    );
    println!(
        "{:>5}  {:<12} {:<16} {:>8} {:>8} {:>7} {:>7} {:>9}",
        "nodes", "placement", "route", "img/s", "speedup", "drop%", "hops", "util"
    );

    let mut base_throughput = None;
    for nodes in [1usize, 2, 4] {
        for placement in [
            PlacementStrategy::UsageAware,
            PlacementStrategy::Replicated,
            PlacementStrategy::Sharded,
        ] {
            for route in [RoutePolicy::ResidencyFirst, RoutePolicy::RoundRobin] {
                // The single-node fleet is one row: placement/routing
                // are moot when everything is local.
                if nodes == 1
                    && (placement != PlacementStrategy::UsageAware
                        || route != RoutePolicy::ResidencyFirst)
                {
                    continue;
                }
                let cluster = ClusterSystem::homogeneous(
                    nodes,
                    &device,
                    &config,
                    &model,
                    LinkProfile::ethernet_10g(),
                    ClusterOptions::default().placement(placement).route(route),
                )?;
                let report = serve_cluster(&cluster, task.board(), &options);
                let base = *base_throughput.get_or_insert(report.throughput_ips());
                let utilization = report.node_utilization();
                let mean_util = utilization.iter().sum::<f64>() / utilization.len().max(1) as f64;
                println!(
                    "{:>5}  {:<12} {:<16} {:>8.1} {:>7.2}x {:>6.1}% {:>7} {:>8.1}%",
                    nodes,
                    placement.to_string(),
                    route.to_string(),
                    report.throughput_ips(),
                    report.throughput_ips() / base,
                    100.0 * report.drop_rate(),
                    report.cross_node_hops,
                    100.0 * mean_util,
                );
            }
        }
    }

    println!("\nEverything above is deterministic: rerun for identical numbers.");
    Ok(())
}
