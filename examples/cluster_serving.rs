//! Cluster-scale serving: scale a CoE model out across a fleet and
//! sweep placement strategies and routing policies.
//!
//! ```sh
//! cargo run --release --example cluster_serving
//! ```
//!
//! One NUMA box saturates well below production traffic. This example
//! offers the same overload stream to fleets of 1, 2 and 4 nodes and
//! shows (a) throughput scaling with fleet size, (b) how placement
//! decides cross-node hop counts (replicated = none, sharded = many,
//! usage-aware = few), and (c) how residency-first routing keeps expert
//! chains local where round-robin ships activations over the fabric.
//!
//! It then switches to the *dynamic* cluster runtime: a 4-node fleet
//! loses a node at the midpoint of the run, the planner re-replicates
//! the dead node's orphaned shard over the fabric, in-flight requests
//! re-route, and the per-tick timeline shows the SLO dip around the
//! failure and the recovery.

use coserve::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let task = TaskSpec::a1();
    let model = task.build_model()?;
    let device = devices::numa_rtx3080ti();
    let config = presets::coserve(&device);

    // Overload: ~4000 rps against nodes that saturate far lower, with
    // shallow admission queues so undersized fleets shed load.
    let options = OpenLoopOptions::new(ArrivalProcess::poisson(4_000.0))
        .requests(600)
        .admission(AdmissionControl::with_queue_capacity(16));

    println!(
        "Cluster serving of {} on fleets of {}\n",
        task.name(),
        device.name()
    );
    println!(
        "{:>5}  {:<12} {:<16} {:>8} {:>8} {:>7} {:>7} {:>9}",
        "nodes", "placement", "route", "img/s", "speedup", "drop%", "hops", "util"
    );

    let mut base_throughput = None;
    for nodes in [1usize, 2, 4] {
        for placement in [
            PlacementStrategy::UsageAware,
            PlacementStrategy::Replicated,
            PlacementStrategy::Sharded,
        ] {
            for route in [RoutePolicy::ResidencyFirst, RoutePolicy::RoundRobin] {
                // The single-node fleet is one row: placement/routing
                // are moot when everything is local.
                if nodes == 1
                    && (placement != PlacementStrategy::UsageAware
                        || route != RoutePolicy::ResidencyFirst)
                {
                    continue;
                }
                let cluster = ClusterSystem::homogeneous(
                    nodes,
                    &device,
                    &config,
                    &model,
                    LinkProfile::ethernet_10g(),
                    ClusterOptions::default().placement(placement).route(route),
                )?;
                let report = serve_cluster(&cluster, task.board(), &options);
                let base = *base_throughput.get_or_insert(report.throughput_ips());
                let utilization = report.node_utilization();
                let mean_util = utilization.iter().sum::<f64>() / utilization.len().max(1) as f64;
                println!(
                    "{:>5}  {:<12} {:<16} {:>8.1} {:>7.2}x {:>6.1}% {:>7} {:>8.1}%",
                    nodes,
                    placement.to_string(),
                    route.to_string(),
                    report.throughput_ips(),
                    report.throughput_ips() / base,
                    100.0 * report.drop_rate(),
                    report.cross_node_hops,
                    100.0 * mean_util,
                );
            }
        }
    }

    // ── Dynamic runtime: node failure at the midpoint ───────────────
    let cluster = ClusterSystem::homogeneous(
        4,
        &device,
        &config,
        &model,
        LinkProfile::ethernet_10g(),
        ClusterOptions::default(),
    )?;
    let stream = open_loop_stream(
        &ServingSystem::new(device.clone(), model.clone(), config.clone())?,
        task.board(),
        &options,
    );
    let horizon = stream.last_arrival().saturating_since(SimTime::ZERO);
    let midpoint = SimTime::ZERO + SimSpan::from_millis_f64(horizon.as_millis_f64() / 2.0);
    let slo = SimSpan::from_millis(250);
    // Nine ticks, so the midpoint kill lands mid-tick and the dying
    // node has un-served in-flight work to re-route.
    let runtime = RuntimeOptions::default()
        .tick(SimSpan::from_millis_f64(
            (horizon.as_millis_f64() / 9.0).max(1.0),
        ))
        .failures(FailureSchedule::new().kill(1, midpoint))
        .replacement(ReplacementPolicy::OnFailure)
        .feedback(FeedbackMode::Corrected)
        .slo(slo)
        .online(options.admission, 16);
    let report = cluster.serve_runtime(&stream, &runtime);

    println!(
        "\nFailure injection: node-1 dies at {midpoint} (midpoint of a {}-request run)",
        report.submitted
    );
    match report.recovery_time() {
        Some(recovery) => println!(
            "  recovered in {recovery}: {} expert copies ({:.0} MiB) re-replicated over the fabric, {} requests re-routed",
            report.dynamics.migrations,
            report.dynamics.migration_bytes.as_mib_f64(),
            report.dynamics.rerouted,
        ),
        None => println!("  never recovered (static placement)"),
    }
    // SLO attainment before vs after the failure, from the per-tick
    // timeline the runtime records.
    let (mut met_before, mut routed_before) = (0usize, 0usize);
    let (mut met_after, mut routed_after) = (0usize, 0usize);
    for tick in &report.dynamics.ticks {
        if tick.end <= midpoint {
            met_before += tick.slo_met;
            routed_before += tick.routed;
        } else {
            met_after += tick.slo_met;
            routed_after += tick.routed;
        }
    }
    let pct = |met: usize, routed: usize| {
        if routed == 0 {
            0.0
        } else {
            100.0 * met as f64 / routed as f64
        }
    };
    println!(
        "  SLO ({slo}) attainment: {:.1}% before the failure, {:.1}% after (recovery + lost capacity)",
        pct(met_before, routed_before),
        pct(met_after, routed_after),
    );
    println!("  per-tick p95 around the failure:");
    for tick in &report.dynamics.ticks {
        let marker = if tick.start <= midpoint && midpoint < tick.end {
            "  <- node-1 dies"
        } else {
            ""
        };
        println!(
            "    tick {:>2} [{} .. {}]: routed {:>3}, dropped {:>3}, p95 {:>8}{}",
            tick.index,
            tick.start,
            tick.end,
            tick.routed,
            tick.dropped,
            tick.p95_ms
                .map_or_else(|| "-".into(), |p| format!("{p:.0} ms")),
            marker,
        );
    }

    // The same counters the `coserve-server` admin endpoint exposes:
    // a non-consuming snapshot of the report, as one JSON document.
    println!(
        "\nMachine-readable snapshot (ClusterReport::snapshot):\n{}",
        report.snapshot().to_json()
    );

    println!("\nEverything above is deterministic: rerun for identical numbers.");
    Ok(())
}
