//! Quickstart: build a small CoE model, configure CoServe, serve a
//! request stream, and read the report.
//!
//! ```sh
//! cargo run --release -p coserve --example quickstart
//! ```

use coserve::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A CoE model. Every component type gets a dedicated ResNet101
    //    classification expert; some components share YOLOv5 detection
    //    experts that verify alignment after classification passes.
    let board = BoardSpec::synthetic("demo-board", 48, 4, 1.2, 60.0, 0.5);
    let model = board.build_model()?;
    println!(
        "model: {} experts, {} total weights",
        model.num_experts(),
        model.total_weight_bytes()
    );

    // 2. A device. The paper's NUMA box: RTX 3080 Ti (12 GB) + Xeon.
    //    The model above needs ~8 GB of weights plus inference
    //    workspace, so experts must be switched in and out.
    let device = devices::numa_rtx3080ti();
    println!("device: {device}");

    // 3. CoServe. `ServingSystem::new` runs the offline profiler
    //    (microbenchmarks -> K/B latency fits, max batch sizes, load
    //    latencies) and validates the configuration.
    let config = presets::coserve(&device);
    let system = ServingSystem::new(device, model, config)?;
    let k = system.perf().expect_entry(RESNET101, ProcessorKind::Gpu);
    println!(
        "profiled ResNet101 on GPU: K={:.2}ms B={:.2}ms max_batch={} load_from_ssd={}",
        k.k_ms, k.b_ms, k.max_batch, k.load_from_ssd
    );

    // 4. Serve 400 requests arriving every 4 ms.
    let task = TaskSpec::new(
        "quickstart",
        board,
        400,
        PAPER_ARRIVAL_INTERVAL,
        StreamOrder::BoardOrder,
        7,
    );
    let stream = task.stream(system.model());
    let report = system.serve(&stream);

    // 5. Read the results.
    println!("{}", report.summary_line());
    for e in &report.executors {
        println!(
            "  executor {} ({}): {} batches / {} requests, {} switches, pool peak {}",
            e.index, e.processor, e.batches, e.items, e.switches, e.pool_peak
        );
    }
    let lat = report.latency_summary().expect("jobs completed");
    println!(
        "  job latency: mean {:.0} ms, p50 {:.0} ms, p99 {:.0} ms",
        lat.mean, lat.p50, lat.p99
    );
    Ok(())
}
