//! A tour of CoServe's offline phase (paper §4.4–§4.5): the
//! microbenchmark profiler, the expert-usage CDF, the executor-count
//! search and the decay-window memory-allocation search that together
//! produce the "CoServe Best" configuration.
//!
//! ```sh
//! cargo run --release -p coserve --example autotune_profiler
//! ```

use coserve::core::autotune;
use coserve::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let device = devices::numa_rtx3080ti();
    let task = TaskSpec::a1();
    let model = task.build_model()?;

    // --- Offline profiling (§4.5) -----------------------------------
    let profiler = Profiler::with_defaults();
    let perf = profiler.profile(&device, &model, UsageSource::Declared);
    println!("performance matrix for {}:", device.name());
    for (arch, proc, entry) in perf.entries() {
        let name = model.arch(arch).map_or("?", |a| a.name());
        println!(
            "  {name:<10} on {proc}: K={:6.2}ms B={:7.2}ms max_batch={:>2} \
             load(SSD)={:<10} load(cache)={}",
            entry.k_ms,
            entry.b_ms,
            entry.max_batch,
            entry.load_from_ssd.to_string(),
            entry.load_from_cpu
        );
    }

    // --- Expert usage CDF (Figure 11) --------------------------------
    let cdf = autotune::UsageCdf::from_perf(&perf);
    println!(
        "\nexpert-usage CDF: top-35 of {} experts cover {:.1}%",
        cdf.len(),
        cdf.coverage(35) * 100.0
    );

    // --- The two offline searches ------------------------------------
    let sample = task.sample(600).stream(&model);
    let tuned = autotune::tune(
        &device,
        &model,
        &perf,
        &sample,
        autotune::WindowSearchOptions::default(),
    );

    println!("\nexecutor-count search (Figure 17):");
    for t in &tuned.executor_trials {
        println!("  {}G+{}C -> {:.1} img/s", t.gpus, t.cpus, t.throughput);
    }

    println!("\ndecay-window search (Figure 18):");
    for (i, t) in tuned.window.trials.iter().enumerate() {
        println!(
            "  window {} upper bound {:>3} residents -> {:.1} img/s",
            i + 1,
            t.residents,
            t.throughput
        );
    }
    println!(
        "  selected window {:?}, chosen {} residents (trend deviation {:.1}%)",
        tuned.window.selected,
        tuned.window.chosen,
        tuned.window.deviation * 100.0
    );

    println!(
        "\nCoServe Best: {} GPU + {} CPU executors, {:?} GPU-resident experts",
        tuned.config.gpu_executor_count(),
        tuned.config.cpu_executor_count(),
        tuned.config.memory.gpu_resident_experts
    );

    // --- Run the tuned configuration on the full task ----------------
    let report = Engine::new(&device, &model, &perf, &tuned.config)?.run(&task.stream(&model));
    println!("\nfull task: {}", report.summary_line());
    Ok(())
}
