//! The paper's headline scenario: circuit-board quality inspection with
//! hundreds of experts on memory-constrained edge devices.
//!
//! Runs Task A1 (2,500 component images of Circuit Board A, one every
//! 4 ms) on both evaluation devices, comparing CoServe against the
//! Samba-CoE baselines — a compact version of Figures 13 and 14.
//!
//! ```sh
//! cargo run --release -p coserve --example circuit_board_inspection
//! ```

use coserve::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let task = TaskSpec::a1();
    println!(
        "{}: {} requests from {} ({} component types, {} detector groups)\n",
        task.name(),
        task.num_requests(),
        task.board().name(),
        task.board().num_components(),
        task.board().num_detectors(),
    );

    for device in devices::paper_devices() {
        let model = task.build_model()?;
        println!("== {device}");
        println!(
            "   model needs {} of weights; GPU offers {} usable",
            model.total_weight_bytes(),
            device.gpu_usable()
        );

        // One profiling pass shared by every system under comparison.
        let profiler = Profiler::with_defaults();
        let perf = profiler.profile(&device, &model, UsageSource::Declared);
        let stream = task.stream(&model);

        let mut systems = all_baselines(&device);
        systems.push(presets::coserve_casual(&device));
        systems.push(presets::coserve(&device));

        let mut samba_throughput = None;
        for config in &systems {
            let engine = Engine::new(&device, &model, &perf, config)?;
            let report = engine.run(&stream);
            let baseline = *samba_throughput.get_or_insert(report.throughput_ips());
            println!(
                "   {:<22} {:>6.1} img/s ({:>4.1}x) {:>5} switches",
                report.system,
                report.throughput_ips(),
                report.throughput_ips() / baseline,
                report.expert_switches(),
            );
        }
        println!();
    }
    Ok(())
}
