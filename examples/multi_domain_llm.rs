//! A Qihoo-360-style multi-domain LLM deployment (paper §2.1): expert
//! models for code, math, law, … behind a request-analyzing router,
//! each optionally followed by a shared reranker. A very different
//! operating point from circuit boards — few *large* experts instead of
//! many small ones — served by the same CoServe machinery.
//!
//! ```sh
//! cargo run --release -p coserve --example multi_domain_llm
//! ```

use coserve::prelude::*;
use coserve::workload::llm;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Eight 2.6 GB domain experts + one shared 0.8 GB reranker: ~21.6 GB
    // of weights against a 12 GB GPU.
    let model = llm::build_llm_coe(8, 0.5)?;
    println!(
        "model: {} experts, {} total weights",
        model.num_experts(),
        model.total_weight_bytes()
    );
    for expert in model.experts() {
        println!(
            "  {:<18} {:>9} usage {:4.1}%",
            expert.name(),
            model.weight_bytes(expert.id()).to_string(),
            expert.usage_prob() * 100.0
        );
    }

    let mut device = devices::numa_rtx3080ti();
    llm::install_llm_kernels(&mut device);

    // 600 prompts, one every 150 ms, domains Zipf-distributed.
    let stream = llm::llm_stream(&model, 8, 600, SimSpan::from_millis(150), 42);

    // Compare Samba-CoE-style FCFS+LRU against CoServe. With experts
    // this large, two GPU executors fit barely two experts each.
    let profiler = Profiler::with_defaults();
    let perf = profiler.profile(&device, &model, UsageSource::Empirical(&stream));
    let samba = samba_coe(&device);
    let coserve_cfg = presets::coserve_with(&device, "CoServe", 2, 1, None);

    println!("\nserving 600 prompts on {}:", device.name());
    let mut baseline = None;
    for config in [&samba, &coserve_cfg] {
        let report = Engine::new(&device, &model, &perf, config)?.run(&stream);
        let base = *baseline.get_or_insert(report.throughput_ips());
        let lat = report.latency_summary().expect("prompts completed");
        println!(
            "  {:<12} {:>5.2} req/s ({:>4.2}x), {:>4} switches, p50 latency {:>7.0} ms",
            report.system,
            report.throughput_ips(),
            report.throughput_ips() / base,
            report.expert_switches(),
            lat.p50,
        );
    }

    Ok(())
}
