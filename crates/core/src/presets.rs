//! Named CoServe configurations from the paper's evaluation (§5).
//!
//! * **CoServe** — all optimizations on, casual executor counts.
//! * **CoServe Casual** — "a casually selected memory allocation and
//!   number of executors": 75 % of GPU memory for experts, three GPU
//!   executors on NUMA (two on UMA), one CPU executor.
//! * **CoServe Best** — produced by [`crate::autotune`], not here.
//! * Ablations (§5.3): **CoServe None** (FIFO everything, even
//!   distribution), **CoServe EM** (+ dependency-aware expert
//!   management), **CoServe EM+RA** (+ request arranging); the full
//!   system adds request assigning.

use coserve_sim::device::{DeviceProfile, MemoryArch};
use coserve_sim::time::SimSpan;

use crate::config::{ArrangePolicy, AssignPolicy, SystemConfig};
use crate::evict::EvictionPolicy;

/// The measured per-request scheduling latency the paper reports in
/// Figure 19 (8.3 ms on the NUMA box, 2.3 ms on the UMA box).
#[must_use]
pub fn scheduling_cost(device: &DeviceProfile) -> SimSpan {
    match device.memory_arch() {
        MemoryArch::Numa => SimSpan::from_micros(8_300),
        MemoryArch::Uma => SimSpan::from_micros(2_300),
    }
}

/// The casual executor counts: 3 GPU + 1 CPU on NUMA, 2 GPU + 1 CPU on
/// UMA (§5.2).
#[must_use]
pub fn casual_executors(device: &DeviceProfile) -> (usize, usize) {
    match device.memory_arch() {
        MemoryArch::Numa => (3, 1),
        MemoryArch::Uma => (2, 1),
    }
}

fn base(device: &DeviceProfile, name: &str, gpus: usize, cpus: usize) -> SystemConfig {
    SystemConfig::builder(name)
        .gpu_executors(gpus)
        .cpu_executors(cpus)
        .scheduling_cost(scheduling_cost(device))
        .build()
}

/// The fully optimized CoServe with casual executor counts.
#[must_use]
pub fn coserve(device: &DeviceProfile) -> SystemConfig {
    let (g, c) = casual_executors(device);
    base(device, "CoServe", g, c)
}

/// CoServe with explicit executor counts and an optional window-search
/// resident-expert target — the shape `autotune` fills in for
/// "CoServe Best".
#[must_use]
pub fn coserve_with(
    device: &DeviceProfile,
    name: &str,
    gpus: usize,
    cpus: usize,
    gpu_resident_experts: Option<usize>,
) -> SystemConfig {
    let mut config = base(device, name, gpus, cpus);
    config.memory.gpu_resident_experts = gpu_resident_experts;
    config
}

/// "CoServe Casual": intuitive settings without offline search — 75 %
/// of GPU memory for expert loading, casual executor counts (§5.2).
#[must_use]
pub fn coserve_casual(device: &DeviceProfile) -> SystemConfig {
    let (g, c) = casual_executors(device);
    let mut config = base(device, "CoServe Casual", g, c);
    config.memory.gpu_pool_fraction = 0.75;
    config.memory.gpu_resident_experts = None;
    config
}

/// Ablation baseline "CoServe None": FIFO expert replacement, FIFO
/// request execution, requests distributed evenly across executors
/// (§5.3).
#[must_use]
pub fn coserve_none(device: &DeviceProfile) -> SystemConfig {
    let (g, c) = casual_executors(device);
    let mut config = base(device, "CoServe None", g, c);
    config.assign = AssignPolicy::RoundRobin;
    config.arrange = ArrangePolicy::Fcfs;
    config.eviction = EvictionPolicy::Fifo;
    config
}

/// Ablation "CoServe EM": adds dependency-aware expert management.
#[must_use]
pub fn coserve_em(device: &DeviceProfile) -> SystemConfig {
    let mut config = coserve_none(device).renamed("CoServe EM");
    config.eviction = EvictionPolicy::DependencyAware;
    config
}

/// Ablation "CoServe EM+RA": adds request arranging on top of EM.
#[must_use]
pub fn coserve_em_ra(device: &DeviceProfile) -> SystemConfig {
    let mut config = coserve_em(device).renamed("CoServe EM+RA");
    config.arrange = ArrangePolicy::Grouped;
    config
}

/// The default grouped-arranging starvation bound used by the online
/// preset: grouping may overtake a queued request at most this many
/// times before falling back to FCFS behind it.
pub const ONLINE_MAX_OVERTAKE: u32 = 16;

/// The fully optimized CoServe configured for open-loop online serving:
/// bounded executor queues with drop accounting (admission control) and
/// a grouping starvation bound, so tail latency stays finite at
/// overload.
#[must_use]
pub fn coserve_online(device: &DeviceProfile) -> SystemConfig {
    let mut config = coserve(device).renamed("CoServe Online");
    config.admission = Some(crate::config::AdmissionControl::default());
    config.max_overtake = Some(ONLINE_MAX_OVERTAKE);
    config
}

/// The four ablation steps in presentation order:
/// None → EM → EM+RA → full CoServe (§5.3, Figures 15–16).
#[must_use]
pub fn ablation_ladder(device: &DeviceProfile) -> Vec<SystemConfig> {
    vec![
        coserve_none(device),
        coserve_em(device),
        coserve_em_ra(device),
        coserve(device),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use coserve_model::devices;

    #[test]
    fn casual_counts_differ_by_device() {
        assert_eq!(casual_executors(&devices::numa_rtx3080ti()), (3, 1));
        assert_eq!(casual_executors(&devices::uma_apple_m2()), (2, 1));
    }

    #[test]
    fn scheduling_costs_match_figure19() {
        assert_eq!(
            scheduling_cost(&devices::numa_rtx3080ti()),
            SimSpan::from_micros(8_300)
        );
        assert_eq!(
            scheduling_cost(&devices::uma_apple_m2()),
            SimSpan::from_micros(2_300)
        );
    }

    #[test]
    fn full_coserve_uses_dependency_aware_policies() {
        let c = coserve(&devices::numa_rtx3080ti());
        assert_eq!(c.assign, AssignPolicy::DependencyAware);
        assert_eq!(c.arrange, ArrangePolicy::Grouped);
        assert_eq!(c.eviction, EvictionPolicy::DependencyAware);
        assert_eq!(c.gpu_executor_count(), 3);
        assert_eq!(c.cpu_executor_count(), 1);
    }

    #[test]
    fn online_preset_bounds_queues_and_overtakes() {
        let c = coserve_online(&devices::numa_rtx3080ti());
        assert_eq!(c.name, "CoServe Online");
        assert!(c.admission.is_some());
        assert_eq!(c.max_overtake, Some(ONLINE_MAX_OVERTAKE));
        // The underlying policies stay fully CoServe.
        assert_eq!(c.assign, AssignPolicy::DependencyAware);
        assert_eq!(c.arrange, ArrangePolicy::Grouped);
    }

    #[test]
    fn ablation_ladder_escalates_policies() {
        let device = devices::numa_rtx3080ti();
        let ladder = ablation_ladder(&device);
        assert_eq!(ladder.len(), 4);
        assert_eq!(ladder[0].eviction, EvictionPolicy::Fifo);
        assert_eq!(ladder[0].arrange, ArrangePolicy::Fcfs);
        assert_eq!(ladder[0].assign, AssignPolicy::RoundRobin);
        assert_eq!(ladder[1].eviction, EvictionPolicy::DependencyAware);
        assert_eq!(ladder[1].arrange, ArrangePolicy::Fcfs);
        assert_eq!(ladder[2].arrange, ArrangePolicy::Grouped);
        assert_eq!(ladder[2].assign, AssignPolicy::RoundRobin);
        assert_eq!(ladder[3].assign, AssignPolicy::DependencyAware);
        // Same executor counts throughout: the ladder isolates policies.
        for c in &ladder {
            assert_eq!(c.executors.len(), 4);
        }
    }

    #[test]
    fn coserve_with_sets_window_target() {
        let c = coserve_with(&devices::numa_rtx3080ti(), "CoServe Best", 3, 1, Some(35));
        assert_eq!(c.memory.gpu_resident_experts, Some(35));
        assert_eq!(c.name, "CoServe Best");
    }

    #[test]
    fn casual_uses_75_percent_fraction() {
        let c = coserve_casual(&devices::numa_rtx3080ti());
        assert!((c.memory.gpu_pool_fraction - 0.75).abs() < 1e-12);
        assert_eq!(c.memory.gpu_resident_experts, None);
    }
}
