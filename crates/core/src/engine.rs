//! The serving engine.
//!
//! A discrete-event simulation of CoServe's online phase (§4.1): an
//! inference-request scheduler assigns and arranges incoming requests
//! onto executor queues; executors peel same-expert batches, switch
//! experts in and out of their model pools, and execute on shared
//! hardware channels (GPU compute, host↔device DMA, SSD reads, CPU
//! compute). Every baseline in the paper's evaluation runs on this same
//! engine with different [`SystemConfig`] policies, so comparisons
//! isolate exactly the policy under study.
//!
//! Hardware contention is modeled through FIFO channel reservations:
//! two GPU executors' batches serialize on the GPU compute channel,
//! while one executor's expert load (SSD/DMA channels) overlaps another
//! executor's compute — the pipelining that makes multiple executors
//! worthwhile.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use coserve_faults::{FaultPlan, LoadOutcome, RetryPolicy};
use coserve_metrics::faults::FaultLedger;
use coserve_metrics::report::{ChannelReport, ExecutorReport, RunReport, RunSnapshot, SwitchEvent};
use coserve_model::coe::CoeModel;
use coserve_model::expert::ExpertId;
use coserve_sim::device::{ArchId, DeviceProfile, ProcessorKind};
use coserve_sim::events::Calendar;
use coserve_sim::memory::{Bytes, MemoryTier};
use coserve_sim::resource::{FifoResource, PooledResource};
use coserve_sim::time::{SimSpan, SimTime};
use coserve_sim::transfer::TransferRoute;
use coserve_trace::{NoopTracer, TraceEvent, TraceKind, Tracer};
use coserve_workload::stream::RequestStream;

use crate::config::{ArrangePolicy, AssignPolicy, SystemConfig};
use crate::evict::{select_victims_into, EvictionContext, EvictionScratch};
use crate::perf::PerfMatrix;
use crate::pool::ModelPool;
use crate::queue::{ExecutorQueue, PendingRequest, RunDelta};

/// Error detected when constructing an engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The device or performance matrix lacks a cost model for an
    /// architecture/processor pair the configuration would use.
    MissingKernel(ArchId, ProcessorKind),
    /// The per-expert tables do not cover the model.
    PerfModelMismatch {
        /// Experts in the model.
        model_experts: usize,
        /// Experts covered by the matrix.
        perf_experts: usize,
    },
    /// The configured preload order names an expert outside the model.
    UnknownExpert(ExpertId),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::MissingKernel(a, p) => {
                write!(f, "no kernel/perf entry for {a} on {p}")
            }
            EngineError::PerfModelMismatch {
                model_experts,
                perf_experts,
            } => write!(
                f,
                "perf matrix covers {perf_experts} experts but model has {model_experts}"
            ),
            EngineError::UnknownExpert(e) => {
                write!(f, "preload order names {e}, which the model lacks")
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// Per-executor memory assignment produced by the layout planner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecutorMemory {
    /// Capacity of the executor's model pool.
    pub pool_capacity: Bytes,
    /// Bytes reserved for inference intermediate results.
    pub workspace: Bytes,
}

/// The device-memory layout for a configuration: per-executor pools and
/// workspaces plus the NUMA staging-cache size (§4.4).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemoryLayout {
    /// One entry per executor, in configuration order.
    pub executors: Vec<ExecutorMemory>,
    /// Staging-cache capacity (zero on UMA devices).
    pub cache: Bytes,
}

/// Plans the memory layout for `config` on `device`.
///
/// GPU executors split usable GPU memory evenly; on NUMA devices CPU
/// executors split what the staging cache leaves of usable CPU memory;
/// on UMA devices all executors split the unified pool. Within a share,
/// the expert pool takes either the window-search target (§4.4) or the
/// configured fraction, always leaving workspace for at least a
/// batch-of-one inference of the largest architecture.
#[must_use]
pub fn plan_memory(
    device: &DeviceProfile,
    model: &CoeModel,
    perf: &PerfMatrix,
    config: &SystemConfig,
) -> MemoryLayout {
    let gpus = config.gpu_executor_count() as u64;
    let cpus = config.cpu_executor_count() as u64;

    let min_workspace = |proc: ProcessorKind| -> Bytes {
        perf.entries()
            .filter(|&(_, p, _)| p == proc)
            .map(|(_, _, e)| e.workspace + e.per_item)
            .max()
            .unwrap_or(Bytes::ZERO)
    };

    // Every executor process pays a fixed framework overhead out of its
    // share — the cost that makes "too many executors" lose (Figure 17).
    let overhead = device.executor_overhead();
    let (gpu_share, cpu_share, cache) = if device.has_staging_cache() {
        let gpu_share = device
            .gpu_usable()
            .get()
            .checked_div(gpus)
            .map_or(Bytes::ZERO, |b| Bytes::new(b).saturating_sub(overhead));
        let cpu_usable = device.cpu_usable();
        let cache = if cpus == 0 {
            cpu_usable
        } else {
            Bytes::new((cpu_usable.get() as f64 * config.memory.cpu_cache_fraction) as u64)
        };
        let cpu_share = cpu_usable
            .saturating_sub(cache)
            .get()
            .checked_div(cpus)
            .map_or(Bytes::ZERO, |b| Bytes::new(b).saturating_sub(overhead));
        (gpu_share, cpu_share, cache)
    } else {
        // UMA: one unified pool for everyone, no staging tier.
        let total = config.executors.len() as u64;
        let share = Bytes::new(device.gpu_usable().get() / total.max(1)).saturating_sub(overhead);
        (share, share, Bytes::ZERO)
    };

    // Window-search target: per-GPU-executor pool capacity sized to hold
    // its round-robin share of the top-n experts (2 % slack for size
    // variation between architectures).
    let gpu_pool_target = config.memory.gpu_resident_experts.map(|n| {
        let total: Bytes = perf
            .experts_by_usage()
            .iter()
            .take(n)
            .map(|&e| model.weight_bytes(e))
            .sum();
        let per_exec = total.get() / gpus.max(1);
        Bytes::new((per_exec as f64 * 1.02) as u64)
    });

    // §4.4's rule for limited-computation processors: reserve exactly
    // what the maximum batch size needs for intermediate results, and
    // give everything else to expert loading.
    let cpu_batch_reserve = || -> Bytes {
        perf.entries()
            .filter(|&(_, p, _)| p == ProcessorKind::Cpu)
            .map(|(_, _, e)| e.workspace + e.per_item * u64::from(e.max_batch))
            .max()
            .unwrap_or(Bytes::ZERO)
    };

    let executors = config
        .executors
        .iter()
        .map(|spec| {
            let (share, target) = match spec.processor {
                ProcessorKind::Gpu => (gpu_share, gpu_pool_target),
                ProcessorKind::Cpu => (cpu_share, None),
            };
            let floor = min_workspace(spec.processor);
            let raw_pool = target.unwrap_or_else(|| match spec.processor {
                ProcessorKind::Gpu => {
                    Bytes::new((share.get() as f64 * config.memory.gpu_pool_fraction) as u64)
                }
                ProcessorKind::Cpu if config.memory.cpu_max_batch_rule => {
                    share.saturating_sub(cpu_batch_reserve())
                }
                ProcessorKind::Cpu => {
                    Bytes::new((share.get() as f64 * config.memory.cpu_pool_fraction) as u64)
                }
            });
            let pool_capacity = raw_pool.min(share.saturating_sub(floor));
            ExecutorMemory {
                pool_capacity,
                workspace: share.saturating_sub(pool_capacity),
            }
        })
        .collect();

    MemoryLayout { executors, cache }
}

/// The serving engine for one (device, model, measurements, config)
/// combination.
#[derive(Debug, Clone)]
pub struct Engine<'a> {
    device: &'a DeviceProfile,
    model: &'a CoeModel,
    perf: &'a PerfMatrix,
    config: &'a SystemConfig,
}

impl<'a> Engine<'a> {
    /// Validates that every architecture in the model has cost models on
    /// every processor the configuration uses, and builds the engine.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError`] on missing kernels/entries or a
    /// model/matrix size mismatch.
    pub fn new(
        device: &'a DeviceProfile,
        model: &'a CoeModel,
        perf: &'a PerfMatrix,
        config: &'a SystemConfig,
    ) -> Result<Self, EngineError> {
        if perf.num_experts() != model.num_experts() {
            return Err(EngineError::PerfModelMismatch {
                model_experts: model.num_experts(),
                perf_experts: perf.num_experts(),
            });
        }
        let procs: BTreeSet<ProcessorKind> = config.executors.iter().map(|e| e.processor).collect();
        for arch in model.archs() {
            for &proc in &procs {
                if device.kernel(arch.id(), proc).is_none() || perf.entry(arch.id(), proc).is_none()
                {
                    return Err(EngineError::MissingKernel(arch.id(), proc));
                }
            }
        }
        if let Some(order) = &config.preload_order {
            if let Some(&bad) = order.iter().find(|e| e.index() >= model.num_experts()) {
                return Err(EngineError::UnknownExpert(bad));
            }
        }
        Ok(Engine {
            device,
            model,
            perf,
            config,
        })
    }

    /// The planned memory layout for this engine.
    #[must_use]
    pub fn memory_layout(&self) -> MemoryLayout {
        plan_memory(self.device, self.model, self.perf, self.config)
    }

    /// Runs the stream to completion and reports.
    ///
    /// Expressed on the re-entrant [`EngineSession`]: every arrival is
    /// submitted up front (matching the event sequence numbering of the
    /// historical one-shot run loop bit for bit), then the session is
    /// pumped dry and consumed into a report.
    #[must_use]
    pub fn run(&self, stream: &RequestStream) -> RunReport {
        let mut session = self.session(stream.name());
        for job in stream.jobs() {
            session
                .submit(job.arrival, &job.stages)
                .expect("stream jobs reference experts of the engine's model");
        }
        session.pump();
        session.into_report()
    }

    /// Opens a re-entrant serving session against this engine's
    /// configuration. `label` names the session in reports/snapshots
    /// (the batch facade passes the stream name).
    #[must_use]
    pub fn session(&self, label: impl Into<String>) -> EngineSession<'a> {
        EngineSession::new(self, label)
    }
}

/// Round-robin expert preloading across executor pools (§4.1): experts
/// arrive in descending-usage order; each goes to the pool at the
/// cursor (probing forward past pools it does not fit), and the cursor
/// advances past the pool that accepted it — so a full or too-small
/// pool never skews placement onto a single neighbour.
fn preload_round_robin(
    pools: &mut [&mut ModelPool],
    order: &[ExpertId],
    weight_bytes: impl Fn(ExpertId) -> Bytes,
) {
    let n = pools.len();
    if n == 0 {
        return;
    }
    let mut cursor = 0usize;
    for &expert in order {
        let bytes = weight_bytes(expert);
        for probe in 0..n {
            let idx = (cursor + probe) % n;
            if pools[idx].fits(bytes) {
                pools[idx]
                    .insert(expert, bytes, SimTime::ZERO)
                    .expect("fits was checked");
                cursor = (idx + 1) % n;
                break;
            }
        }
    }
}

/// Events driving the serving loop.
#[derive(Debug, Clone, Copy)]
enum Ev {
    /// A job stage became ready (arrival or previous stage finished).
    Arrive { job: u32, stage: u8 },
    /// The scheduler finished deciding where the stage goes.
    Sched { job: u32, stage: u8 },
    /// An executor's in-flight batch is ready to start its next leg
    /// (channel reservation) or, when no legs remain, to complete.
    Leg { exec: usize },
}

/// Calendar lanes, one per monotone event source (see
/// [`coserve_sim::events::Calendar`]): events pushed "at now" trail the
/// non-decreasing clock; submissions usually arrive in time order; the
/// scheduler's fixed-cost reservations end in order; each FIFO channel's
/// reservations end in order. Sources without the guarantee (the pooled
/// host-work channel, out-of-order submits) fall back to the calendar's
/// heap automatically — lanes are a fast path, never a correctness
/// assumption.
mod lane {
    /// Events scheduled at the current simulation time.
    pub const NOW: usize = 0;
    /// Job submissions (arrivals).
    pub const ARRIVE: usize = 1;
    /// Scheduler-decision completions.
    pub const SCHED: usize = 2;
    /// SSD-read channel reservation ends.
    pub const SSD: usize = 3;
    /// DMA channel reservation ends.
    pub const DMA: usize = 4;
    /// Host-work pool reservation ends (often non-monotone).
    pub const HOST: usize = 5;
    /// GPU compute channel reservation ends.
    pub const GPU: usize = 6;
    /// CPU compute channel reservation ends.
    pub const CPU: usize = 7;
    /// Total lane count.
    pub const COUNT: usize = 8;
}

/// Dense per-(executor, architecture) prediction constants, precomputed
/// at session construction so the assignment hot path never walks the
/// perf matrix's maps or re-rounds floats:
///
/// - `span_k`/`span_kb` are `SimSpan::from_millis_f64(k)` and
///   `from_millis_f64(k + b)` — exactly the two values
///   [`EngineSession::predict_delta`] historically computed per probe
///   (same float expression, same rounding, bit-identical).
/// - `batch_cap` folds the workspace-capped executable batch size,
///   which is constant per session (workspace and batching flag are
///   fixed at construction).
#[derive(Debug, Clone, Copy)]
struct PerfCacheEntry {
    k_ms: f64,
    b_ms: f64,
    span_k: SimSpan,
    span_kb: SimSpan,
    batch_cap: u32,
    load_from_ssd: SimSpan,
    load_from_cpu: SimSpan,
    /// The expert's checkpoint size (per arch, shared by its experts).
    weights: Bytes,
    /// Ground-truth kernel latency model for this (arch, processor)
    /// pair — saves the device's kernel-map lookup per started batch.
    kernel: coserve_sim::compute::LatencyModel,
}

/// Which serially-reusable resource a leg occupies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LegChannel {
    /// The shared SSD read path.
    Ssd,
    /// The shared host↔device DMA engine.
    Dma,
    /// Host-CPU framework work (deserialize/reorganize): runs per
    /// executor but at most `host_work_slots` concurrently device-wide.
    Local,
    /// The processor's compute channel.
    Compute,
}

#[derive(Debug, Clone, Copy)]
struct Leg {
    channel: LegChannel,
    span: SimSpan,
}

#[derive(Debug, Clone, Copy)]
struct PendingSwitch {
    expert: ExpertId,
    source: MemoryTier,
    started: SimTime,
}

#[derive(Debug)]
struct InFlight {
    batch: Vec<PendingRequest>,
    legs: std::collections::VecDeque<Leg>,
    switch: Option<PendingSwitch>,
    /// Latency-attribution milestones: when the batch was popped off
    /// the queue, when its expert switch finished (== `started` when
    /// the expert was resident), and when compute actually began.
    started: SimTime,
    switch_done: SimTime,
    exec_start: SimTime,
}

#[derive(Debug)]
struct ExecState {
    processor: ProcessorKind,
    pool: ModelPool,
    workspace: Bytes,
    queue: ExecutorQueue,
    busy_until: SimTime,
    in_flight: Option<InFlight>,
    batches: u64,
    items: u64,
    exec_time: SimSpan,
    switch_time: SimSpan,
    switches: u64,
    finished_at: SimTime,
    /// Cached Σ over queued runs of the predicted execution span —
    /// maintained incrementally from [`RunDelta`]s so the assigner
    /// never rescans the queue. Exact: spans are integer nanoseconds,
    /// so incremental add/subtract reproduces a fresh sum bit for bit.
    work_exec: SimSpan,
    /// Cached predicted switch span per distinct queued expert, sorted
    /// by expert id (a reusable sorted vec, not a map, so steady state
    /// allocates nothing).
    switch_spans: Vec<(ExpertId, SimSpan)>,
    /// Σ of `switch_spans` values.
    switch_total: SimSpan,
    /// Set whenever residency changes (this pool, or the shared staging
    /// cache) could invalidate `switch_spans`; the next prediction
    /// rebuilds the cache from the queue's distinct-expert index.
    switch_dirty: bool,
}

/// Per-job terminal flags packed into one byte — the jobs table is a
/// dense flat column (struct-of-arrays), not a vec of bool triples.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct JobState(u8);

impl JobState {
    const FAILED: u8 = 1;
    const DONE: u8 = 1 << 1;
    const DROPPED: u8 = 1 << 2;

    fn failed(self) -> bool {
        self.0 & Self::FAILED != 0
    }

    fn done(self) -> bool {
        self.0 & Self::DONE != 0
    }

    /// No terminal flag set: the job is still in flight.
    fn is_open(self) -> bool {
        self.0 == 0
    }

    fn set_failed(&mut self) {
        self.0 |= Self::FAILED;
    }

    fn set_done(&mut self) {
        self.0 |= Self::DONE;
    }

    fn set_dropped(&mut self) {
        self.0 |= Self::DROPPED;
    }
}

/// Error rejecting a [`EngineSession::submit`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// A job must have at least one stage.
    EmptyStages,
    /// Jobs are limited to 255 stages (stage indices are `u8`).
    TooManyStages(usize),
    /// A stage names an expert outside the session's model.
    UnknownExpert(ExpertId),
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::EmptyStages => write!(f, "job has no stages"),
            SubmitError::TooManyStages(n) => {
                write!(f, "job has {n} stages; at most 255 are supported")
            }
            SubmitError::UnknownExpert(e) => {
                write!(f, "stage names {e}, which the model lacks")
            }
        }
    }
}

impl std::error::Error for SubmitError {}

/// How a submitted job left the system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompletionStatus {
    /// Every stage executed.
    Completed,
    /// A stage's expert could not be served on any pool it was sent to.
    Failed,
    /// Admission control shed the job from a full queue.
    Dropped,
}

/// The terminal record of one submitted job, delivered through
/// [`EngineSession::drain_completions`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// The id returned by [`EngineSession::submit`].
    pub job: u32,
    /// How the job terminated.
    pub status: CompletionStatus,
    /// Simulation time of the terminal event.
    pub finished_at: SimTime,
    /// Sojourn from (effective) arrival to the terminal event.
    pub latency: SimSpan,
}

/// Submitted-job metadata, stored flat: stage experts for all jobs live
/// in one arena (`stage_arena`) and each job records its slice.
#[derive(Debug, Clone, Copy)]
struct SubmittedJob {
    arrival: SimTime,
    first_stage: u32,
    num_stages: u8,
}

/// A re-entrant serving session: the engine's interior state behind
/// explicit submit/step/drain methods instead of a consumed one-shot
/// run.
///
/// A session accepts individual jobs ([`EngineSession::submit`]),
/// advances the discrete-event loop under caller control
/// ([`EngineSession::step`], [`EngineSession::pump_until`],
/// [`EngineSession::pump`]), surfaces terminal job records as they
/// happen ([`EngineSession::drain_completions`]) and live counters at
/// any point ([`EngineSession::snapshot`]), and finally consumes itself
/// into the classic [`RunReport`] ([`EngineSession::into_report`]).
///
/// Determinism: results depend only on the sequence of `submit` calls
/// (order included) and are independent of how the event loop is
/// chopped into `step`/`pump_until`/`pump` calls, because pending
/// events always pop in `(time, submission seq)` order. Submitting all
/// jobs of a stream in order and then pumping reproduces the historical
/// batch run bit for bit — [`Engine::run`] is implemented exactly that
/// way. Arrivals earlier than the session's current simulation time are
/// floored to "now".
pub struct EngineSession<'a> {
    engine: Engine<'a>,
    label: String,
    submitted_jobs: Vec<SubmittedJob>,
    stage_arena: Vec<ExpertId>,
    completions: Vec<Completion>,
    events: Calendar<Ev>,
    /// Dense arch slot per expert (`ExpertId::index` → position in the
    /// model's sorted arch-id list).
    arch_slot: Vec<u32>,
    /// Per-(executor, arch-slot) prediction constants, row-major by
    /// executor: `perf_cache[exec * num_arch_slots + slot]`.
    perf_cache: Vec<PerfCacheEntry>,
    num_arch_slots: usize,
    scheduler: PooledResource,
    gpu_compute: FifoResource,
    cpu_compute: FifoResource,
    dma: FifoResource,
    ssd: FifoResource,
    host_work: PooledResource,
    execs: Vec<ExecState>,
    cache: Option<ModelPool>,
    jobs: Vec<JobState>,
    rr_cursor: usize,
    completed: usize,
    failed: usize,
    admitted: usize,
    dropped: usize,
    stages_executed: usize,
    last_done: SimTime,
    switch_events: Vec<SwitchEvent>,
    job_latencies: Vec<SimSpan>,
    /// Per-stage latency ledgers, indexed by stage number (dense; a
    /// stage's vec is empty until its first completion). Converted to
    /// the report's sparse map in [`EngineSession::into_report`].
    stage_latencies: Vec<Vec<SimSpan>>,
    sched_latencies: Vec<SimSpan>,
    /// Assignment scratch: per-executor predicted totals, reused across
    /// requests.
    totals_scratch: Vec<SimSpan>,
    /// Recycled batch buffers: popped groups move into `InFlight` and
    /// come back here when the batch finishes, so steady state pops
    /// allocate nothing.
    batch_pool: Vec<Vec<PendingRequest>>,
    /// Recycled leg deques (free-list twin of `batch_pool`): a batch's
    /// drained leg buffer returns here when it completes.
    legs_pool: Vec<std::collections::VecDeque<Leg>>,
    /// Reusable victim-selection buffers.
    evict_scratch: EvictionScratch,
    /// Reusable protected-expert set for eviction calls.
    protected_scratch: BTreeSet<ExpertId>,
    /// Structured-event sink; [`NoopTracer`] unless a collector was
    /// installed with [`EngineSession::set_tracer`]. Every emission
    /// site is guarded by the cached `tracing` flag, so the disabled
    /// path never constructs an event and stays bit-identical.
    tracer: Box<dyn Tracer>,
    /// Cached [`Tracer::enabled`] of the installed tracer (the trait
    /// requires it to be stable per instance), so hot-path emission
    /// guards are a field read, not a virtual call.
    tracing: bool,
    /// Node id stamped on emitted events (`0` outside cluster runs).
    trace_node: u32,
    /// Deterministic fault schedule for the expert-load path; `None`
    /// unless installed with [`EngineSession::set_faults`] — the
    /// default path never queries a plan and stays bit-identical.
    faults: Option<FaultPlan>,
    /// Recovery policy for injected load faults.
    retry: RetryPolicy,
    /// Injection/recovery accounting for this session.
    fault_ledger: FaultLedger,
}

impl fmt::Debug for EngineSession<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EngineSession")
            .field("label", &self.label)
            .field("submitted", &self.submitted_jobs.len())
            .field("completed", &self.completed)
            .field("pending_events", &self.events.len())
            .finish_non_exhaustive()
    }
}

impl<'a> EngineSession<'a> {
    fn new(engine: &Engine<'a>, label: impl Into<String>) -> Self {
        let layout = engine.memory_layout();
        let execs: Vec<ExecState> = engine
            .config
            .executors
            .iter()
            .zip(&layout.executors)
            .map(|(spec, mem)| ExecState {
                processor: spec.processor,
                pool: ModelPool::new(mem.pool_capacity),
                workspace: mem.workspace,
                queue: ExecutorQueue::new(),
                busy_until: SimTime::ZERO,
                in_flight: None,
                batches: 0,
                items: 0,
                exec_time: SimSpan::ZERO,
                switch_time: SimSpan::ZERO,
                switches: 0,
                finished_at: SimTime::ZERO,
                work_exec: SimSpan::ZERO,
                switch_spans: Vec::new(),
                switch_total: SimSpan::ZERO,
                switch_dirty: false,
            })
            .collect();
        let cache = if engine.device.has_staging_cache() {
            Some(ModelPool::new(layout.cache))
        } else {
            None
        };
        // Dense prediction tables: arch ids are sparse, so map each to
        // its position in the model's sorted arch list and precompute
        // every per-(executor, arch) constant the hot path consults.
        let arch_ids: Vec<ArchId> = engine.model.archs().map(|a| a.id()).collect();
        let arch_slot: Vec<u32> = (0..engine.model.num_experts())
            .map(|i| {
                let arch = engine.model.expert(ExpertId(i as u32)).arch();
                arch_ids
                    .binary_search(&arch)
                    .expect("validated models declare every expert's arch") as u32
            })
            .collect();
        let perf_cache: Vec<PerfCacheEntry> = execs
            .iter()
            .flat_map(|exec| {
                let perf = engine.perf;
                let batching = engine.config.batching;
                let processor = exec.processor;
                let workspace = exec.workspace;
                let device = engine.device;
                let model = engine.model;
                arch_ids.iter().map(move |&arch| {
                    let entry = perf.expect_entry(arch, processor);
                    PerfCacheEntry {
                        k_ms: entry.k_ms,
                        b_ms: entry.b_ms,
                        span_k: SimSpan::from_millis_f64(entry.k_ms),
                        span_kb: SimSpan::from_millis_f64(entry.k_ms + entry.b_ms),
                        batch_cap: if batching {
                            entry.executable_batch(workspace)
                        } else {
                            1
                        },
                        load_from_ssd: entry.load_from_ssd,
                        load_from_cpu: entry.load_from_cpu,
                        weights: model
                            .archs()
                            .find(|a| a.id() == arch)
                            .expect("arch ids come from the model")
                            .weights(),
                        kernel: device
                            .kernel(arch, processor)
                            .expect("validated at engine construction")
                            .latency,
                    }
                })
            })
            .collect();
        let mut run = EngineSession {
            engine: engine.clone(),
            label: label.into(),
            submitted_jobs: Vec::new(),
            stage_arena: Vec::new(),
            completions: Vec::new(),
            events: Calendar::new(lane::COUNT),
            arch_slot,
            perf_cache,
            num_arch_slots: arch_ids.len(),
            scheduler: PooledResource::new("scheduler", engine.config.scheduler_slots),
            gpu_compute: FifoResource::new("gpu-compute"),
            cpu_compute: FifoResource::new("cpu-compute"),
            dma: FifoResource::new("dma"),
            ssd: FifoResource::new("ssd"),
            host_work: PooledResource::new("host-work", engine.device.host_work_slots()),
            execs,
            cache,
            jobs: Vec::new(),
            rr_cursor: 0,
            completed: 0,
            failed: 0,
            admitted: 0,
            dropped: 0,
            stages_executed: 0,
            last_done: SimTime::ZERO,
            switch_events: Vec::new(),
            job_latencies: Vec::new(),
            stage_latencies: Vec::new(),
            sched_latencies: Vec::new(),
            totals_scratch: Vec::new(),
            batch_pool: Vec::new(),
            legs_pool: Vec::new(),
            evict_scratch: EvictionScratch::new(),
            protected_scratch: BTreeSet::new(),
            tracer: Box::new(NoopTracer),
            tracing: false,
            trace_node: 0,
            faults: None,
            retry: RetryPolicy::none(),
            fault_ledger: FaultLedger::default(),
        };
        if engine.config.preload {
            run.preload();
        }
        run
    }

    /// §4.1: "Experts are distributed into each executor in a
    /// round-robin manner, prioritized by descending usage
    /// probabilities, until the memory is fully utilized." A cluster
    /// placement plan may override the priority order so the node
    /// preloads its placed experts first.
    fn preload(&mut self) {
        // Copy the `'a` references out of the engine so the executor
        // pools can be borrowed mutably alongside them. The order is
        // either the configured override or the perf matrix's memoized
        // descending-usage slice — no clone on the construction path.
        let config = self.engine.config;
        let perf = self.engine.perf;
        let model = self.engine.model;
        let order: &[ExpertId] = match &config.preload_order {
            Some(order) => order,
            None => perf.experts_by_usage(),
        };
        let mut pools: Vec<&mut ModelPool> = self.execs.iter_mut().map(|e| &mut e.pool).collect();
        preload_round_robin(&mut pools, order, |e| model.weight_bytes(e));
    }

    /// The session label (report/snapshot task name).
    #[must_use]
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The session's current simulation time (timestamp of the last
    /// processed event; zero before any event processed).
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.events.now()
    }

    /// Number of events waiting in the session's calendar.
    #[must_use]
    pub fn pending_events(&self) -> usize {
        self.events.len()
    }

    /// Number of jobs submitted so far.
    #[must_use]
    pub fn submitted(&self) -> usize {
        self.submitted_jobs.len()
    }

    /// Whether every submitted job has reached a terminal state.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.events.is_empty()
    }

    /// Submits one job: `stages` is the expert chain, `arrival` its
    /// (simulation-time) arrival. Returns the job id completions will
    /// carry. Arrivals before the session's current time are floored to
    /// "now"; nothing executes until the event loop is pumped.
    ///
    /// # Errors
    ///
    /// Rejects empty or over-long stage chains and experts outside the
    /// model; the session state is untouched on error.
    pub fn submit(&mut self, arrival: SimTime, stages: &[ExpertId]) -> Result<u32, SubmitError> {
        if stages.is_empty() {
            return Err(SubmitError::EmptyStages);
        }
        if stages.len() > usize::from(u8::MAX) {
            return Err(SubmitError::TooManyStages(stages.len()));
        }
        let num_experts = self.engine.model.num_experts();
        if let Some(&bad) = stages.iter().find(|e| e.index() >= num_experts) {
            return Err(SubmitError::UnknownExpert(bad));
        }
        let job = u32::try_from(self.submitted_jobs.len()).expect("more than u32::MAX jobs");
        let arrival = arrival.max(self.events.now());
        let first_stage = u32::try_from(self.stage_arena.len()).expect("stage arena overflow");
        self.stage_arena.extend_from_slice(stages);
        self.submitted_jobs.push(SubmittedJob {
            arrival,
            first_stage,
            num_stages: stages.len() as u8,
        });
        self.jobs.push(JobState::default());
        self.events
            .push_lane(lane::ARRIVE, arrival, Ev::Arrive { job, stage: 0 });
        if self.tracing {
            self.emit(
                arrival,
                TraceKind::Arrived {
                    job,
                    stages: stages.len() as u8,
                },
            );
        }
        Ok(job)
    }

    fn dispatch(&mut self, at: SimTime, ev: Ev) {
        match ev {
            Ev::Arrive { job, stage } => self.on_arrive(job, stage, at),
            Ev::Sched { job, stage } => self.on_sched(job, stage, at),
            Ev::Leg { exec } => self.on_leg(exec, at),
        }
    }

    /// Processes the next pending event. Returns `false` when the
    /// calendar is empty (the session is idle).
    pub fn step(&mut self) -> bool {
        let Some(ev) = self.events.pop() else {
            return false;
        };
        self.dispatch(ev.at, ev.payload);
        true
    }

    /// Processes events scheduled strictly before `limit` and returns
    /// how many were handled. Use this to advance a live session while
    /// later submissions (with arrivals `>= limit`) may still come:
    /// stopping short of the watermark keeps the event interleaving —
    /// and therefore the results — identical to submitting everything
    /// up front.
    pub fn pump_until(&mut self, limit: SimTime) -> usize {
        let mut n = 0;
        while let Some(ev) = self.events.pop_before(limit) {
            self.dispatch(ev.at, ev.payload);
            n += 1;
        }
        n
    }

    /// Runs the event loop dry (no more submissions expected for now)
    /// and returns how many events were handled.
    pub fn pump(&mut self) -> usize {
        let mut n = 0;
        while self.step() {
            n += 1;
        }
        n
    }

    /// Swaps the session's calendar for a reference (single-heap) one —
    /// behaviourally a plain [`coserve_sim::events::EventQueue`]. The
    /// equivalence tests run whole sessions both ways and require
    /// bit-identical reports and traces. Must be called before the
    /// first submission.
    #[doc(hidden)]
    pub fn use_reference_calendar(&mut self) {
        assert!(
            self.events.is_empty() && self.submitted_jobs.is_empty(),
            "switch calendars only on a fresh session"
        );
        self.events = Calendar::reference(lane::COUNT);
    }

    /// Takes every terminal job record produced since the last drain,
    /// in completion order.
    pub fn drain_completions(&mut self) -> Vec<Completion> {
        std::mem::take(&mut self.completions)
    }

    /// Installs a structured-event collector. When the new tracer is
    /// enabled, the current pool residency is snapshotted as
    /// [`TraceKind::Preloaded`] events so the exported timeline starts
    /// from a known state. Returns the previous tracer.
    pub fn set_tracer(&mut self, tracer: Box<dyn Tracer>) -> Box<dyn Tracer> {
        let old = std::mem::replace(&mut self.tracer, tracer);
        self.tracing = self.tracer.enabled();
        if self.tracing {
            let now = self.events.now();
            let resident: Vec<(u32, ExpertId)> = self
                .execs
                .iter()
                .enumerate()
                .flat_map(|(i, e)| e.pool.residents().map(move |(ex, _)| (i as u32, ex)))
                .collect();
            for (exec, expert) in resident {
                self.emit(now, TraceKind::Preloaded { exec, expert });
            }
        }
        old
    }

    /// Stamps subsequently emitted events with `node` (cluster wiring;
    /// single-node sessions keep the default `0`).
    pub fn set_trace_node(&mut self, node: u32) {
        self.trace_node = node;
    }

    /// Arms deterministic expert-load fault injection with the given
    /// recovery policy. A [`FaultPlan::is_disabled`] plan is treated as
    /// no plan at all, so the hot path stays byte-identical to a
    /// session that never called this.
    pub fn set_faults(&mut self, plan: FaultPlan, retry: RetryPolicy) {
        self.faults = if plan.is_disabled() { None } else { Some(plan) };
        self.retry = retry;
    }

    /// Injection/recovery accounting accumulated so far. All-zero when
    /// no fault plan is armed.
    #[must_use]
    pub fn fault_ledger(&self) -> &FaultLedger {
        &self.fault_ledger
    }

    /// The session's event collector (e.g. to drain or inspect it).
    pub fn tracer_mut(&mut self) -> &mut dyn Tracer {
        &mut *self.tracer
    }

    /// Records one event; call sites guard with the cached `tracing` flag so
    /// the disabled path never constructs a [`TraceEvent`].
    fn emit(&mut self, at: SimTime, kind: TraceKind) {
        self.tracer.record(TraceEvent {
            at,
            node: self.trace_node,
            kind,
        });
    }

    /// Live counters without consuming the session or cloning latency
    /// ledgers.
    #[must_use]
    pub fn snapshot(&self) -> RunSnapshot {
        RunSnapshot {
            system: self.engine.config.name.clone(),
            device: self.engine.device.name().to_string(),
            task: self.label.clone(),
            submitted: self.submitted_jobs.len(),
            completed: self.completed,
            failed: self.failed,
            admitted: self.admitted,
            dropped: self.dropped,
            stages_executed: self.stages_executed,
            makespan: self.last_done.saturating_since(SimTime::ZERO),
            pending_events: self.events.len(),
            completions_pending: self.completions.len(),
            expert_switches: self.switch_events.len() as u64,
            switch_time_total: self.execs.iter().map(|e| e.switch_time).sum(),
            exec_time_total: self.execs.iter().map(|e| e.exec_time).sum(),
            latency: coserve_metrics::stats::Summary::of_spans(&self.job_latencies),
        }
    }

    fn on_arrive(&mut self, job: u32, stage: u8, now: SimTime) {
        let res = self
            .scheduler
            .reserve(now, self.engine.config.scheduling_cost);
        // Figure 19 reports the per-request scheduling *processing*
        // latency; backlog behind the serial scheduler thread still
        // delays the enqueue (res.end) but is not part of this metric.
        self.sched_latencies
            .push(res.end.saturating_since(res.start));
        self.events
            .push_lane(lane::SCHED, res.end, Ev::Sched { job, stage });
        if self.tracing {
            self.emit(
                res.start,
                TraceKind::Scheduled {
                    job,
                    stage,
                    span: res.end.saturating_since(res.start),
                },
            );
        }
    }

    fn on_sched(&mut self, job: u32, stage: u8, now: SimTime) {
        let meta = self.submitted_jobs[job as usize];
        let expert = self.stage_arena[(meta.first_stage + u32::from(stage)) as usize];
        let exec_idx = self.assign(expert, now);
        // Open-loop admission control: a request assigned to a full
        // queue is dropped, terminating its job (stages are sequential,
        // so nothing else of the job is in flight).
        if let Some(admission) = self.engine.config.admission {
            if self.execs[exec_idx].queue.len() >= admission.queue_capacity {
                let state = &mut self.jobs[job as usize];
                if state.is_open() {
                    state.set_dropped();
                    self.dropped += 1;
                    self.completions.push(Completion {
                        job,
                        status: CompletionStatus::Dropped,
                        finished_at: now,
                        latency: now.saturating_since(meta.arrival),
                    });
                    if self.tracing {
                        self.emit(
                            now,
                            TraceKind::Dropped {
                                job,
                                stage,
                                latency: now.saturating_since(meta.arrival),
                            },
                        );
                    }
                }
                return;
            }
        }
        if stage == 0 {
            self.admitted += 1;
        }
        let req = PendingRequest {
            job: coserve_workload::stream::JobId(job),
            stage,
            expert,
            ready_at: now,
        };
        let delta = match (self.engine.config.arrange, self.engine.config.max_overtake) {
            (ArrangePolicy::Grouped, Some(bound)) => self.execs[exec_idx]
                .queue
                .insert_grouped_bounded(req, bound),
            (ArrangePolicy::Grouped, None) => self.execs[exec_idx].queue.insert_grouped(req),
            (ArrangePolicy::Fcfs, _) => self.execs[exec_idx].queue.push_back(req),
        };
        self.apply_insert_delta(exec_idx, delta);
        if self.tracing {
            self.emit(
                now,
                TraceKind::Assigned {
                    job,
                    stage,
                    expert,
                    exec: exec_idx as u32,
                },
            );
        }
        self.try_start(exec_idx, now);
    }

    /// Advances an executor's in-flight batch: reserves the next leg's
    /// channel *at the current time* (work-conserving FIFO — channels
    /// are never booked for future instants) or completes the batch.
    fn on_leg(&mut self, exec_idx: usize, now: SimTime) {
        let processor = self.execs[exec_idx].processor;
        let inf = self.execs[exec_idx]
            .in_flight
            .as_mut()
            .expect("Leg event without in-flight batch");
        let Some(leg) = inf.legs.pop_front() else {
            self.finish_batch(exec_idx, now);
            return;
        };
        let mut finished_switch = None;
        let mut compute_batch = None;
        if leg.channel == LegChannel::Compute {
            // The switch (if any) finished when compute becomes ready.
            inf.switch_done = now;
            compute_batch = Some((inf.batch.first().map(|r| r.expert), inf.batch.len() as u32));
            finished_switch = inf.switch.take();
        }
        if let Some(sw) = finished_switch {
            self.switch_events.push(SwitchEvent {
                at: sw.started,
                executor: exec_idx,
                expert: sw.expert,
                source: sw.source,
                duration: now.saturating_since(sw.started),
            });
            if self.tracing {
                self.emit(
                    sw.started,
                    TraceKind::Switch {
                        exec: exec_idx as u32,
                        expert: sw.expert,
                        source: sw.source,
                        span: now.saturating_since(sw.started),
                    },
                );
            }
        }
        let remaining: SimSpan = self.execs[exec_idx]
            .in_flight
            .as_ref()
            .expect("still in flight")
            .legs
            .iter()
            .map(|l| l.span)
            .sum();
        // Each shared channel hands out reservations whose ends are
        // (mostly) non-decreasing, so every channel gets its own
        // calendar lane; the pooled host-work channel trips the lane's
        // monotonicity check and heaps when it must.
        let (res, ch_lane) = match leg.channel {
            LegChannel::Ssd => (self.ssd.reserve(now, leg.span), lane::SSD),
            LegChannel::Dma => (self.dma.reserve(now, leg.span), lane::DMA),
            // Framework work runs on the host-CPU pool: per-executor,
            // but only `host_work_slots` run concurrently device-wide.
            LegChannel::Local => (self.host_work.reserve(now, leg.span), lane::HOST),
            LegChannel::Compute => match processor {
                ProcessorKind::Gpu => (self.gpu_compute.reserve(now, leg.span), lane::GPU),
                ProcessorKind::Cpu => (self.cpu_compute.reserve(now, leg.span), lane::CPU),
            },
        };
        if let Some((expert, items)) = compute_batch {
            if let Some(inf) = self.execs[exec_idx].in_flight.as_mut() {
                // Compute may stall behind the shared FIFO channel;
                // attribution charges that separately from execution.
                inf.exec_start = res.start;
            }
            if self.tracing {
                if let Some(expert) = expert {
                    self.emit(
                        res.start,
                        TraceKind::Exec {
                            exec: exec_idx as u32,
                            expert,
                            items,
                            span: leg.span,
                        },
                    );
                }
            }
        }
        self.execs[exec_idx].busy_until = res.end + remaining;
        self.events
            .push_lane(ch_lane, res.end, Ev::Leg { exec: exec_idx });
    }

    fn finish_batch(&mut self, exec_idx: usize, now: SimTime) {
        let inf = self.execs[exec_idx]
            .in_flight
            .take()
            .expect("finish without in-flight batch");
        let mut batch = inf.batch;
        let mut legs = inf.legs;
        self.execs[exec_idx].finished_at = now;
        self.execs[exec_idx].busy_until = now;
        self.stages_executed += batch.len();
        self.last_done = self.last_done.max(now);
        let tracing = self.tracing;
        for req in batch.drain(..) {
            let stage_slot = usize::from(req.stage);
            if self.stage_latencies.len() <= stage_slot {
                self.stage_latencies.resize_with(stage_slot + 1, Vec::new);
            }
            self.stage_latencies[stage_slot].push(now.saturating_since(req.ready_at));
            if tracing {
                // The four components partition the stage sojourn:
                // queue wait until the batch was popped, then the
                // batch-wide switch / compute-stall / execution spans.
                self.emit(
                    now,
                    TraceKind::StageDone {
                        job: req.job.0,
                        stage: req.stage,
                        exec: exec_idx as u32,
                        expert: req.expert,
                        queue: inf.started.saturating_since(req.ready_at),
                        switch: inf.switch_done.saturating_since(inf.started),
                        stall: inf.exec_start.saturating_since(inf.switch_done),
                        exec_span: now.saturating_since(inf.exec_start),
                    },
                );
            }
            let meta = self.submitted_jobs[req.job.index()];
            let next_stage = req.stage + 1;
            if next_stage < meta.num_stages {
                self.events.push_lane(
                    lane::NOW,
                    now,
                    Ev::Arrive {
                        job: req.job.0,
                        stage: next_stage,
                    },
                );
            } else {
                let state = &mut self.jobs[req.job.index()];
                if !state.done() {
                    state.set_done();
                    self.completed += 1;
                    let latency = now.saturating_since(meta.arrival);
                    self.job_latencies.push(latency);
                    self.completions.push(Completion {
                        job: req.job.0,
                        status: CompletionStatus::Completed,
                        finished_at: now,
                        latency,
                    });
                    if tracing {
                        self.emit(
                            now,
                            TraceKind::Completed {
                                job: req.job.0,
                                latency,
                            },
                        );
                    }
                }
            }
        }
        self.recycle_batch(batch);
        legs.clear();
        self.legs_pool.push(legs);
        self.try_start(exec_idx, now);
    }

    /// Returns a drained batch buffer to the pool for reuse.
    fn recycle_batch(&mut self, mut batch: Vec<PendingRequest>) {
        batch.clear();
        self.batch_pool.push(batch);
    }

    /// The current maximum executable batch size for `expert` on
    /// executor `exec_idx` (§4.2's request splitting): the smaller of
    /// the profiled maximum batch and what the executor's workspace
    /// memory accommodates.
    fn executable_batch(&self, exec_idx: usize, expert: ExpertId) -> u32 {
        self.perf_of(exec_idx, expert).batch_cap
    }

    /// Dense per-(executor, arch) performance constants for `expert` —
    /// replaces the per-probe `expect_entry` map lookups on the hot
    /// prediction path.
    #[inline]
    fn perf_of(&self, exec_idx: usize, expert: ExpertId) -> &PerfCacheEntry {
        let slot = self.arch_slot[expert.index()] as usize;
        &self.perf_cache[exec_idx * self.num_arch_slots + slot]
    }

    /// Predicted load latency for `expert` on executor `exec_idx` if it
    /// had to be switched in right now (0 when resident).
    fn predicted_switch(&self, exec_idx: usize, expert: ExpertId) -> SimSpan {
        let exec = &self.execs[exec_idx];
        if exec.pool.contains(expert) {
            return SimSpan::ZERO;
        }
        let entry = self.perf_of(exec_idx, expert);
        let cached = self.cache.as_ref().is_some_and(|c| c.contains(expert));
        match (exec.processor, cached) {
            (ProcessorKind::Gpu, true) => entry.load_from_cpu,
            (ProcessorKind::Gpu, false) => entry.load_from_ssd,
            // A staging-cache hit for a CPU executor is a same-RAM move.
            (ProcessorKind::Cpu, true) => SimSpan::ZERO,
            (ProcessorKind::Cpu, false) => entry.load_from_ssd,
        }
    }

    /// The predicted execution span of one same-expert run of `count`
    /// requests (§4.2's linear estimate, batched by the executable
    /// batch size). The unit the incremental `work_exec` aggregate is
    /// built from.
    fn run_exec_span(&self, exec_idx: usize, expert: ExpertId, count: u32) -> SimSpan {
        if count == 0 {
            return SimSpan::ZERO;
        }
        let entry = self.perf_of(exec_idx, expert);
        let batches = count.div_ceil(entry.batch_cap.max(1));
        SimSpan::from_millis_f64(entry.k_ms * f64::from(count) + entry.b_ms * f64::from(batches))
    }

    /// Folds a queue-insert [`RunDelta`] into the executor's cached
    /// work-left aggregates.
    fn apply_insert_delta(&mut self, exec_idx: usize, delta: RunDelta) {
        let before = self.run_exec_span(exec_idx, delta.expert, delta.len_before);
        let after = self.run_exec_span(exec_idx, delta.expert, delta.len_after);
        let newly_queued = delta.membership_changed && !self.execs[exec_idx].switch_dirty;
        let switch = if newly_queued {
            self.predicted_switch(exec_idx, delta.expert)
        } else {
            SimSpan::ZERO
        };
        let exec = &mut self.execs[exec_idx];
        exec.work_exec = exec.work_exec + after - before;
        if newly_queued {
            match exec
                .switch_spans
                .binary_search_by_key(&delta.expert, |&(e, _)| e)
            {
                Err(pos) => {
                    exec.switch_spans.insert(pos, (delta.expert, switch));
                    exec.switch_total += switch;
                }
                Ok(_) => debug_assert!(false, "membership_changed for an indexed expert"),
            }
        }
    }

    /// Folds a batch-pop [`RunDelta`] into the executor's cached
    /// work-left aggregates.
    fn apply_pop_delta(&mut self, exec_idx: usize, delta: RunDelta) {
        let before = self.run_exec_span(exec_idx, delta.expert, delta.len_before);
        let after = self.run_exec_span(exec_idx, delta.expert, delta.len_after);
        let exec = &mut self.execs[exec_idx];
        exec.work_exec = exec.work_exec + after - before;
        if delta.membership_changed && !exec.switch_dirty {
            if let Ok(pos) = exec
                .switch_spans
                .binary_search_by_key(&delta.expert, |&(e, _)| e)
            {
                let (_, span) = exec.switch_spans.remove(pos);
                exec.switch_total -= span;
            }
        }
    }

    /// Rebuilds an executor's cached switch spans from the queue's
    /// distinct-expert index — called lazily after residency changed.
    fn refresh_switch_cache(&mut self, exec_idx: usize) {
        let mut spans = std::mem::take(&mut self.execs[exec_idx].switch_spans);
        spans.clear();
        let mut total = SimSpan::ZERO;
        for expert in self.execs[exec_idx].queue.queued_experts() {
            let span = self.predicted_switch(exec_idx, expert);
            // `queued_experts` yields in ascending id order, so pushing
            // keeps the vec sorted for binary search.
            spans.push((expert, span));
            total += span;
        }
        let exec = &mut self.execs[exec_idx];
        exec.switch_spans = spans;
        exec.switch_total = total;
        exec.switch_dirty = false;
    }

    /// Marks every executor's switch cache stale — the shared staging
    /// cache changed, which can retier any queued expert's load.
    fn mark_all_switch_dirty(&mut self) {
        for exec in &mut self.execs {
            exec.switch_dirty = true;
        }
    }

    /// Predicted total remaining inference time of an executor queue
    /// (§4.2): in-flight remainder plus, per same-expert run, the linear
    /// execution estimate and at most one expert switch. Served from
    /// the incrementally maintained aggregates in O(1) (amortized);
    /// debug builds verify them against a from-scratch recomputation.
    fn predict_total(&mut self, exec_idx: usize, now: SimTime) -> SimSpan {
        if self.execs[exec_idx].switch_dirty {
            self.refresh_switch_cache(exec_idx);
        }
        #[cfg(debug_assertions)]
        self.debug_verify_aggregates(exec_idx);
        let exec = &self.execs[exec_idx];
        exec.busy_until.saturating_since(now) + exec.work_exec + exec.switch_total
    }

    /// Debug-only: the cached aggregates must equal what the
    /// pre-refactor per-probe rescan computed, bit for bit.
    #[cfg(debug_assertions)]
    fn debug_verify_aggregates(&self, exec_idx: usize) {
        let exec = &self.execs[exec_idx];
        let mut seen: BTreeSet<ExpertId> = BTreeSet::new();
        let mut fresh_exec = SimSpan::ZERO;
        let mut fresh_switch = SimSpan::ZERO;
        for (expert, count) in exec.queue.runs_iter() {
            fresh_exec += self.run_exec_span(exec_idx, expert, count);
            if seen.insert(expert) {
                fresh_switch += self.predicted_switch(exec_idx, expert);
            }
        }
        debug_assert_eq!(exec.work_exec, fresh_exec, "work_exec aggregate drifted");
        debug_assert_eq!(
            exec.switch_total, fresh_switch,
            "switch aggregate drifted (dirty={})",
            exec.switch_dirty
        );
    }

    /// Predicted additional latency of appending a request for `expert`
    /// to queue `exec_idx` (§4.2): `K` when it joins an existing batch
    /// with room, `K + B` when it opens a new batch, plus the switch
    /// latency when the expert is neither resident nor already queued.
    fn predict_delta(&self, exec_idx: usize, expert: ExpertId, _now: SimTime) -> SimSpan {
        let entry = self.perf_of(exec_idx, expert);
        // `span_k`/`span_kb` were precomputed with the same
        // `from_millis_f64(k)` / `from_millis_f64(k + b)` float
        // expressions the per-probe path used, so the pick is
        // bit-identical to recomputing here. Membership and last-run
        // length come from one queue-index probe.
        match self.execs[exec_idx].queue.queued_last_run_len(expert) {
            Some(last_run_len) => {
                if last_run_len % entry.batch_cap.max(1) != 0 {
                    entry.span_k
                } else {
                    entry.span_kb
                }
            }
            None => entry.span_kb + self.predicted_switch(exec_idx, expert),
        }
    }

    /// Chooses the executor for a request (§4.2's request assigning).
    fn assign(&mut self, expert: ExpertId, now: SimTime) -> usize {
        match self.engine.config.assign {
            AssignPolicy::RoundRobin => {
                let idx = self.rr_cursor % self.execs.len();
                self.rr_cursor += 1;
                idx
            }
            AssignPolicy::DependencyAware => {
                let n = self.execs.len();
                let mut totals = std::mem::take(&mut self.totals_scratch);
                totals.clear();
                for i in 0..n {
                    let t = self.predict_total(i, now);
                    totals.push(t);
                }
                // The max of "all queues except q" is the global max
                // unless q *is* the (unique) argmax, in which case it is
                // the runner-up — O(executors) total instead of
                // O(executors²) refolds.
                let mut max1 = totals[0];
                let mut max1_idx = 0usize;
                let mut max2 = SimSpan::ZERO;
                for (i, &t) in totals.iter().enumerate().skip(1) {
                    if t > max1 {
                        max2 = max1;
                        max1 = t;
                        max1_idx = i;
                    } else if t > max2 {
                        max2 = t;
                    }
                }
                let mut best: Option<(SimSpan, SimSpan, usize)> = None;
                for (q, &total) in totals.iter().enumerate() {
                    let delta = self.predict_delta(q, expert, now);
                    // Makespan if the request goes to q: q's new total
                    // vs the max of the other queues.
                    let others = if q == max1_idx { max2 } else { max1 };
                    let makespan = others.max(total + delta);
                    let key = (makespan, delta, q);
                    if best.is_none_or(|b| key < b) {
                        best = Some(key);
                    }
                }
                self.totals_scratch = totals;
                best.expect("at least one executor").2
            }
        }
    }

    /// Starts batches on an idle executor until it becomes busy or its
    /// queue drains. Batches whose expert cannot be made resident fail
    /// their requests and the loop continues.
    fn try_start(&mut self, exec_idx: usize, now: SimTime) {
        loop {
            if self.execs[exec_idx].in_flight.is_some() {
                return;
            }
            let Some(expert) = self.execs[exec_idx].queue.front_expert() else {
                return;
            };
            let max_batch = self.executable_batch(exec_idx, expert);
            let mut batch = self.batch_pool.pop().unwrap_or_default();
            let delta = self.execs[exec_idx]
                .queue
                .pop_front_group_into(max_batch, &mut batch);
            if let Some(delta) = delta {
                self.apply_pop_delta(exec_idx, delta);
            }
            debug_assert!(!batch.is_empty());
            if self.start_batch(exec_idx, expert, batch, now) {
                return; // executor is now busy
            }
            // Batch failed (expert unservable); keep draining the queue.
        }
    }

    /// Attempts to switch in `expert` (if needed) and execute `batch`.
    /// Returns false when the expert cannot be served on this executor,
    /// in which case the batch's jobs are marked failed.
    fn start_batch(
        &mut self,
        exec_idx: usize,
        expert: ExpertId,
        batch: Vec<PendingRequest>,
        now: SimTime,
    ) -> bool {
        let model = self.engine.model;
        let entry = *self.perf_of(exec_idx, expert);
        let weights = entry.weights;
        let processor = self.execs[exec_idx].processor;

        let mut legs: std::collections::VecDeque<Leg> = self.legs_pool.pop().unwrap_or_default();
        let mut switch_busy = SimSpan::ZERO;
        let push_leg = |legs: &mut std::collections::VecDeque<Leg>,
                        busy: &mut SimSpan,
                        channel: LegChannel,
                        span: SimSpan| {
            if !span.is_zero() {
                legs.push_back(Leg { channel, span });
                *busy += span;
            }
        };
        let mut pending_switch = None;

        // Failed SSD/tier read attempts charged before the successful
        // load, and a slowdown factor applied to its transfer stages.
        // Both stay zero/1.0 — and the plan is never consulted — when
        // no faults are armed, keeping that path bit-identical.
        let mut fault_retries = 0u32;
        let mut fault_slow = 1.0f64;

        if !self.execs[exec_idx].pool.contains(expert) {
            if weights > self.execs[exec_idx].pool.capacity() {
                self.fail_batch(&batch, now);
                self.recycle_batch(batch);
                return false;
            }
            if let Some(plan) = &self.faults {
                match plan.expert_load(self.trace_node, exec_idx as u32, expert.0, now) {
                    LoadOutcome::Healthy => {}
                    LoadOutcome::Slow(factor) => fault_slow = factor,
                    LoadOutcome::Fail { failures } => {
                        self.fault_ledger.load_faults += 1;
                        self.fault_ledger.note_fault(now);
                        // Estimate one read attempt from the tier the
                        // load would come from right now (pre-eviction
                        // cache state; good enough for the deadline).
                        let cached_now = self.cache.as_ref().is_some_and(|c| c.contains(expert));
                        let est_route = match (processor, cached_now) {
                            (ProcessorKind::Gpu, true) => Some(TransferRoute::CpuToGpu),
                            (ProcessorKind::Gpu, false) => Some(TransferRoute::SsdToGpu),
                            (ProcessorKind::Cpu, true) => None,
                            (ProcessorKind::Cpu, false) => Some(TransferRoute::SsdToCpu),
                        };
                        let read_est = est_route
                            .map(|r| self.engine.device.transfer_stages(weights, r).ssd)
                            .unwrap_or(SimSpan::ZERO);
                        let retry = self.retry;
                        let recovery_cost = SimSpan::from_nanos(
                            read_est.nanos().saturating_mul(u64::from(failures)),
                        ) + retry.total_backoff(failures);
                        if failures > retry.max_retries || !retry.within_deadline(recovery_cost) {
                            // Recovery exhausted: every attempt the
                            // policy allowed was spent for nothing.
                            let spent = failures.min(retry.max_retries);
                            self.fault_ledger.retries += u64::from(spent);
                            self.fault_ledger.load_exhausted += 1;
                            self.fault_ledger.wasted_time += SimSpan::from_nanos(
                                read_est.nanos().saturating_mul(u64::from(spent) + 1),
                            );
                            self.fault_ledger.backoff_time += retry.total_backoff(spent);
                            if self.tracing {
                                self.emit(
                                    now,
                                    TraceKind::LoadFault {
                                        exec: exec_idx as u32,
                                        expert,
                                        failures,
                                        recovered: false,
                                    },
                                );
                            }
                            self.fail_batch(&batch, now);
                            self.recycle_batch(batch);
                            return false;
                        }
                        fault_retries = failures;
                    }
                }
            }
            // Free space via the configured eviction policy. The
            // protected set, candidate ordering and victim list all
            // live in buffers reused across evictions.
            let need = weights.saturating_sub(self.execs[exec_idx].pool.available());
            self.protected_scratch.clear();
            self.protected_scratch.insert(expert);
            let ctx = EvictionContext {
                model,
                perf: self.engine.perf,
                protected: &self.protected_scratch,
            };
            if select_victims_into(
                self.engine.config.eviction,
                &self.execs[exec_idx].pool,
                need,
                &ctx,
                self.engine.perf.experts_by_usage_asc(),
                &mut self.evict_scratch,
            )
            .is_err()
            {
                self.fail_batch(&batch, now);
                self.recycle_batch(batch);
                return false;
            }
            for vi in 0..self.evict_scratch.victims().len() {
                let victim = self.evict_scratch.victims()[vi];
                let meta = self.execs[exec_idx]
                    .pool
                    .remove(victim)
                    .expect("victims are resident");
                if self.tracing {
                    self.emit(
                        now,
                        TraceKind::Evicted {
                            exec: exec_idx as u32,
                            expert: victim,
                            demoted: self.cache.is_some(),
                        },
                    );
                }
                if self.cache.is_some() {
                    if processor == ProcessorKind::Gpu {
                        // Demote over the DMA channel into the staging
                        // cache (device→host copy).
                        let span = self
                            .engine
                            .device
                            .transfer_duration(meta.bytes, TransferRoute::GpuToCpu);
                        push_leg(&mut legs, &mut switch_busy, LegChannel::Dma, span);
                    }
                    // CPU-executor evictions are already in host RAM;
                    // the cache insert is free either way.
                    self.cache_insert(victim, meta.bytes, now);
                }
            }

            // Load the expert from its best source tier.
            let cached = self.cache.as_ref().is_some_and(|c| c.contains(expert));
            let source = if cached {
                MemoryTier::Cpu
            } else {
                MemoryTier::Ssd
            };
            let route = match (processor, cached) {
                (ProcessorKind::Gpu, true) => Some(TransferRoute::CpuToGpu),
                (ProcessorKind::Gpu, false) => Some(TransferRoute::SsdToGpu),
                // Staging-cache hits are already in host RAM.
                (ProcessorKind::Cpu, true) => None,
                (ProcessorKind::Cpu, false) => Some(TransferRoute::SsdToCpu),
            };
            let stages = route.map(|r| self.engine.device.transfer_stages(weights, r));
            // Charge each failed attempt as a full read on the storage
            // channel (the read fails at the tier, after occupying it)
            // followed by exponential backoff on the executor's own
            // timeline. Staging-cache hits on a CPU executor have no
            // transfer, so their retries cost backoff only.
            let retry_read = stages.map_or(SimSpan::ZERO, |s| s.ssd);
            for attempt in 0..fault_retries {
                push_leg(&mut legs, &mut switch_busy, LegChannel::Ssd, retry_read);
                let pause = self.retry.backoff(attempt);
                push_leg(&mut legs, &mut switch_busy, LegChannel::Local, pause);
                self.fault_ledger.wasted_time += retry_read;
                self.fault_ledger.backoff_time += pause;
            }
            if fault_retries > 0 {
                self.fault_ledger.retries += u64::from(fault_retries);
                self.fault_ledger.load_recovered += 1;
                if self.tracing {
                    self.emit(
                        now,
                        TraceKind::LoadFault {
                            exec: exec_idx as u32,
                            expert,
                            failures: fault_retries,
                            recovered: true,
                        },
                    );
                }
            }
            if let Some(mut stages) = stages {
                if fault_slow > 1.0 {
                    // A degraded (but live) tier: every stage of the
                    // successful read is dilated.
                    let dilate = |s: SimSpan| {
                        SimSpan::from_nanos((s.nanos() as f64 * fault_slow).round() as u64)
                    };
                    let raw = stages.ssd + stages.local + stages.dma;
                    stages.ssd = dilate(stages.ssd);
                    stages.local = dilate(stages.local);
                    stages.dma = dilate(stages.dma);
                    let extra = (stages.ssd + stages.local + stages.dma).saturating_sub(raw);
                    self.fault_ledger.slow_loads += 1;
                    self.fault_ledger.note_fault(now);
                    self.fault_ledger.degraded_time += extra;
                    if self.tracing {
                        self.emit(
                            now,
                            TraceKind::SlowLoad {
                                exec: exec_idx as u32,
                                expert,
                                extra,
                            },
                        );
                    }
                }
                push_leg(&mut legs, &mut switch_busy, LegChannel::Ssd, stages.ssd);
                // Deserialization/reorganization is per-executor CPU
                // work: it occupies this executor's timeline but no
                // shared channel, so concurrent executors overlap it.
                push_leg(&mut legs, &mut switch_busy, LegChannel::Local, stages.local);
                push_leg(&mut legs, &mut switch_busy, LegChannel::Dma, stages.dma);
            }
            if fault_retries > 0 || (fault_slow > 1.0 && route.is_some()) {
                // The recovery completes when the switch legs drain.
                self.fault_ledger.note_recovery(now + switch_busy);
            }
            if let Some(c) = &mut self.cache {
                if cached {
                    c.touch(expert, now);
                }
            }
            if source == MemoryTier::Ssd && processor == ProcessorKind::Gpu {
                // A cold load passes through host memory; keep the copy
                // (inclusive staging cache), as the Samba-CoE baseline
                // describes for NUMA devices.
                self.cache_insert(expert, weights, now);
            }
            self.execs[exec_idx]
                .pool
                .insert(expert, weights, now)
                .expect("eviction freed enough space");
            // This pool's residency changed (evictions + the load):
            // cached switch predictions for its queue are stale.
            self.execs[exec_idx].switch_dirty = true;
            self.execs[exec_idx].switches += 1;
            self.execs[exec_idx].switch_time += switch_busy;
            pending_switch = Some(PendingSwitch {
                expert,
                source,
                started: now,
            });
            if self.tracing {
                self.emit(
                    now,
                    TraceKind::Loaded {
                        exec: exec_idx as u32,
                        expert,
                        source,
                    },
                );
            }
        }

        // Execute on the processor's compute channel (ground truth
        // latency, not the profiler's estimate).
        let exec_span = entry.kernel.latency(batch.len() as u32);
        let mut exec_busy = SimSpan::ZERO;
        push_leg(&mut legs, &mut exec_busy, LegChannel::Compute, exec_span);
        let total = switch_busy + exec_busy;

        let exec = &mut self.execs[exec_idx];
        exec.pool.touch(expert, now);
        exec.batches += 1;
        exec.items += batch.len() as u64;
        exec.exec_time += exec_span;
        exec.busy_until = now + total;
        exec.in_flight = Some(InFlight {
            batch,
            legs,
            switch: pending_switch,
            started: now,
            switch_done: now,
            exec_start: now,
        });
        self.events
            .push_lane(lane::NOW, now, Ev::Leg { exec: exec_idx });
        true
    }

    fn fail_batch(&mut self, batch: &[PendingRequest], now: SimTime) {
        for req in batch {
            let state = &mut self.jobs[req.job.index()];
            if !state.failed() && !state.done() {
                state.set_failed();
                self.failed += 1;
                let arrival = self.submitted_jobs[req.job.index()].arrival;
                self.completions.push(Completion {
                    job: req.job.0,
                    status: CompletionStatus::Failed,
                    finished_at: now,
                    latency: now.saturating_since(arrival),
                });
                if self.tracing {
                    self.emit(
                        now,
                        TraceKind::Failed {
                            job: req.job.0,
                            latency: now.saturating_since(arrival),
                        },
                    );
                }
            }
        }
    }

    /// Inserts into the staging cache, evicting least-recently-used
    /// entries as needed. Oversized experts are simply not cached.
    fn cache_insert(&mut self, expert: ExpertId, bytes: Bytes, now: SimTime) {
        let Some(cache) = &mut self.cache else {
            return;
        };
        if cache.contains(expert) {
            cache.touch(expert, now);
            return;
        }
        if bytes > cache.capacity() {
            return;
        }
        let mut cache_evicted: Vec<ExpertId> = Vec::new();
        while !cache.fits(bytes) {
            let lru = cache
                .residents()
                .min_by_key(|&(e, r)| (r.last_used, r.seq, e))
                .map(|(e, _)| e)
                .expect("cache is non-empty while it does not fit");
            cache.remove(lru);
            if self.tracing {
                cache_evicted.push(lru);
            }
        }
        cache
            .insert(expert, bytes, now)
            .expect("fits after eviction");
        if self.tracing {
            for victim in cache_evicted {
                self.emit(now, TraceKind::CacheEvicted { expert: victim });
            }
            self.emit(now, TraceKind::CacheInserted { expert });
        }
        // Staging-cache membership changed: any executor's queued
        // experts may now load from a different tier.
        self.mark_all_switch_dirty();
    }

    /// Consumes the session into the classic batch [`RunReport`]. The
    /// report's `task` is the session label; `submitted` counts every
    /// `submit` call. Completions not yet drained are discarded — the
    /// ledgers in the report carry the same information.
    #[must_use]
    pub fn into_report(self) -> RunReport {
        let executors = self
            .execs
            .iter()
            .enumerate()
            .map(|(index, e)| ExecutorReport {
                index,
                processor: e.processor,
                batches: e.batches,
                items: e.items,
                exec_time: e.exec_time,
                switch_time: e.switch_time,
                switches: e.switches,
                pool_capacity: e.pool.capacity(),
                pool_peak: e.pool.peak(),
                finished_at: e.finished_at,
            })
            .collect();
        let mut channels: Vec<ChannelReport> =
            [&self.gpu_compute, &self.cpu_compute, &self.dma, &self.ssd]
                .into_iter()
                .map(|c| ChannelReport {
                    name: c.name(),
                    busy: c.busy_total(),
                    reservations: c.reservation_count(),
                })
                .collect();
        for pooled in [&self.scheduler, &self.host_work] {
            channels.push(ChannelReport {
                name: pooled.name(),
                busy: pooled.busy_total(),
                reservations: pooled.reservation_count(),
            });
        }
        let switch_time_total = self.execs.iter().map(|e| e.switch_time).sum();
        let exec_time_total = self.execs.iter().map(|e| e.exec_time).sum();
        // The report keeps the sparse stage→latencies map shape; the
        // session's dense per-stage table converts back losslessly
        // (stages are only ever reached in order, so observed stages
        // are exactly the non-empty slots).
        let stage_latencies: BTreeMap<u8, Vec<SimSpan>> = self
            .stage_latencies
            .into_iter()
            .enumerate()
            .filter(|(_, v)| !v.is_empty())
            .map(|(stage, v)| (stage as u8, v))
            .collect();
        RunReport {
            system: self.engine.config.name.clone(),
            device: self.engine.device.name().to_string(),
            task: self.label,
            submitted: self.submitted_jobs.len(),
            completed: self.completed,
            failed: self.failed,
            admitted: self.admitted,
            dropped: self.dropped,
            stages_executed: self.stages_executed,
            makespan: self.last_done.saturating_since(SimTime::ZERO),
            switch_events: self.switch_events,
            switch_time_total,
            exec_time_total,
            job_latencies: self.job_latencies,
            stage_latencies,
            sched_latencies: self.sched_latencies,
            executors,
            channels,
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::config::{ArrangePolicy, AssignPolicy, SystemConfig};
    use crate::evict::EvictionPolicy;
    use crate::profiler::{Profiler, UsageSource};
    use coserve_workload::board::BoardSpec;
    use coserve_workload::stream::StreamOrder;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]
        /// Conservation: under arbitrary policy combinations every
        /// submitted job either completes or fails; switch counts per
        /// executor sum to the ledger; determinism holds.
        #[test]
        fn engine_conserves_jobs(
            gpus in 1usize..4,
            cpus in 0usize..2,
            assign_da in any::<bool>(),
            arrange_grouped in any::<bool>(),
            evict_sel in 0u8..4,
            batching in any::<bool>(),
            preload in any::<bool>(),
            admit in any::<bool>(),
            overtake_sel in 0u8..3,
            seed in 0u64..1_000,
        ) {
            let board = BoardSpec::synthetic("prop", 12, 2, 1.2, 20.0, 0.5);
            let model = board.build_model().expect("valid board");
            let device = coserve_model::devices::numa_rtx3080ti();
            let perf = Profiler::with_defaults().profile(&device, &model, UsageSource::Declared);
            let stream = RequestStream::generate(
                "prop", &board, &model, 40,
                SimSpan::from_millis(4), StreamOrder::Iid, seed,
            );
            let mut builder = SystemConfig::builder("prop").gpu_executors(gpus);
            if cpus > 0 {
                builder = builder.cpu_executors(cpus);
            }
            let mut builder = builder
                .assign(if assign_da { AssignPolicy::DependencyAware } else { AssignPolicy::RoundRobin })
                .arrange(if arrange_grouped { ArrangePolicy::Grouped } else { ArrangePolicy::Fcfs })
                .eviction(match evict_sel {
                    0 => EvictionPolicy::DependencyAware,
                    1 => EvictionPolicy::Lru,
                    2 => EvictionPolicy::Fifo,
                    _ => EvictionPolicy::Lfu,
                })
                .batching(batching)
                .preload(preload);
            if admit {
                builder = builder.admission(crate::config::AdmissionControl::with_queue_capacity(4));
            }
            match overtake_sel {
                0 => {}
                1 => builder = builder.max_overtake(0),
                _ => builder = builder.max_overtake(4),
            }
            let config = builder.build();
            let engine = Engine::new(&device, &model, &perf, &config).expect("valid");
            let report = engine.run(&stream);
            prop_assert_eq!(
                report.completed + report.failed + report.dropped,
                report.submitted
            );
            if !admit {
                prop_assert_eq!(report.dropped, 0);
                prop_assert_eq!(report.admitted, report.submitted);
            }
            let exec_switches: u64 = report.executors.iter().map(|e| e.switches).sum();
            prop_assert_eq!(exec_switches, report.expert_switches());
            let again = engine.run(&stream);
            prop_assert_eq!(report, again);
        }

        /// Calendar equivalence: the multi-lane calendar and the
        /// single-heap reference calendar drive whole sessions to
        /// bit-identical reports, completions and traces — across
        /// random workloads, executor mixes, fault plans and arbitrary
        /// `pump_until` chunkings.
        #[test]
        fn lane_calendar_matches_reference_calendar(
            seed in 0u64..1_000,
            gpus in 1usize..3,
            grouped in any::<bool>(),
            faulty in any::<bool>(),
            chunks in proptest::collection::vec(1u64..300, 0..10),
        ) {
            let board = BoardSpec::synthetic("prop", 12, 2, 1.2, 20.0, 0.5);
            let model = board.build_model().expect("valid board");
            let device = coserve_model::devices::numa_rtx3080ti();
            let perf = Profiler::with_defaults().profile(&device, &model, UsageSource::Declared);
            let stream = RequestStream::generate(
                "prop", &board, &model, 40,
                SimSpan::from_millis(4), StreamOrder::Iid, seed,
            );
            let config = SystemConfig::builder("prop")
                .gpu_executors(gpus)
                .arrange(if grouped { ArrangePolicy::Grouped } else { ArrangePolicy::Fcfs })
                .build();
            let engine = Engine::new(&device, &model, &perf, &config).expect("valid");

            let drive = |reference: bool| {
                let mut session = engine.session(stream.name());
                if reference {
                    session.use_reference_calendar();
                }
                session.set_tracer(Box::new(coserve_trace::RingTracer::new()));
                if faulty {
                    let plan = coserve_faults::FaultPlan::seeded(seed ^ 0xfa17)
                        .with_expert_load(
                            0.1, 0.1, 2.0, coserve_faults::FaultWindow::ALWAYS,
                        );
                    session.set_faults(
                        plan,
                        coserve_faults::RetryPolicy::retries(2, SimSpan::from_millis(1)),
                    );
                }
                for job in stream.jobs() {
                    session.submit(job.arrival, &job.stages).expect("stream fits model");
                }
                let mut watermark = SimTime::ZERO;
                for &delta_ms in &chunks {
                    watermark += SimSpan::from_millis(delta_ms);
                    session.pump_until(watermark);
                }
                session.pump();
                let completions = session.drain_completions();
                let events = session.tracer_mut().drain();
                (session.into_report(), completions, events)
            };
            let (lane_report, lane_completions, lane_events) = drive(false);
            let (ref_report, ref_completions, ref_events) = drive(true);
            prop_assert_eq!(lane_report, ref_report);
            prop_assert_eq!(lane_completions, ref_completions);
            prop_assert_eq!(&lane_events, &ref_events);
            prop_assert_eq!(
                coserve_trace::chrome_trace_json(&lane_events),
                coserve_trace::chrome_trace_json(&ref_events)
            );
        }

        /// Observability: live snapshots taken between arbitrary
        /// `pump_until` chunks are monotone (ledgers only grow), and
        /// the final snapshot is exactly the consumed report's.
        #[test]
        fn snapshot_is_monotone_across_pump_chunks(
            seed in 0u64..1_000,
            chunks in proptest::collection::vec(1u64..400, 1..12),
        ) {
            let board = BoardSpec::synthetic("prop", 12, 2, 1.2, 20.0, 0.5);
            let model = board.build_model().expect("valid board");
            let device = coserve_model::devices::numa_rtx3080ti();
            let perf = Profiler::with_defaults().profile(&device, &model, UsageSource::Declared);
            let stream = RequestStream::generate(
                "prop", &board, &model, 40,
                SimSpan::from_millis(4), StreamOrder::Iid, seed,
            );
            let config = SystemConfig::builder("prop").gpu_executors(2).build();
            let engine = Engine::new(&device, &model, &perf, &config).expect("valid");

            let mut session = engine.session(stream.name());
            for job in stream.jobs() {
                session.submit(job.arrival, &job.stages).expect("stream fits model");
            }
            let mut prev = session.snapshot();
            let mut watermark = SimTime::ZERO;
            for delta_ms in chunks {
                watermark += SimSpan::from_millis(delta_ms);
                session.pump_until(watermark);
                let cur = session.snapshot();
                prop_assert_eq!(cur.submitted, prev.submitted);
                prop_assert!(cur.completed >= prev.completed);
                prop_assert!(cur.failed >= prev.failed);
                prop_assert!(cur.admitted >= prev.admitted);
                prop_assert!(cur.dropped >= prev.dropped);
                prop_assert!(cur.stages_executed >= prev.stages_executed);
                prop_assert!(cur.makespan >= prev.makespan);
                prop_assert!(cur.expert_switches >= prev.expert_switches);
                prop_assert!(cur.switch_time_total >= prev.switch_time_total);
                prop_assert!(cur.exec_time_total >= prev.exec_time_total);
                // Nothing drains in this loop, so the backlog is the
                // full terminal ledger and only grows.
                prop_assert_eq!(
                    cur.completions_pending,
                    cur.completed + cur.failed + cur.dropped
                );
                prop_assert!(cur.completions_pending >= prev.completions_pending);
                let lat_count = |s: &RunSnapshot| s.latency.map_or(0, |l| l.count);
                prop_assert!(lat_count(&cur) >= lat_count(&prev));
                prev = cur;
            }
            session.pump();
            let _ = session.drain_completions();
            let last = session.snapshot();
            prop_assert_eq!(last.pending_events, 0);
            prop_assert_eq!(last.completions_pending, 0);
            let report = session.into_report();
            prop_assert_eq!(last, report.snapshot());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;
    use crate::profiler::{Profiler, UsageSource};
    use coserve_model::devices;
    use coserve_workload::board::BoardSpec;
    use coserve_workload::stream::StreamOrder;

    fn setup(
        num_components: usize,
        requests: usize,
    ) -> (DeviceProfile, CoeModel, PerfMatrix, RequestStream) {
        let board = BoardSpec::synthetic("eng", num_components, 3, 1.2, 40.0, 0.5);
        let model = board.build_model().unwrap();
        let device = devices::numa_rtx3080ti();
        let perf = Profiler::with_defaults().profile(&device, &model, UsageSource::Declared);
        let stream = RequestStream::generate(
            "eng-task",
            &board,
            &model,
            requests,
            SimSpan::from_millis(4),
            StreamOrder::Iid,
            11,
        );
        (device, model, perf, stream)
    }

    fn coserve_config() -> SystemConfig {
        SystemConfig::builder("CoServe")
            .gpu_executors(2)
            .cpu_executors(1)
            .build()
    }

    #[test]
    fn engine_completes_every_job() {
        let (device, model, perf, stream) = setup(30, 200);
        let config = coserve_config();
        let engine = Engine::new(&device, &model, &perf, &config).unwrap();
        let report = engine.run(&stream);
        assert_eq!(report.submitted, 200);
        assert_eq!(report.completed, 200);
        assert_eq!(report.failed, 0);
        assert!(report.stages_executed >= 200);
        assert!(report.throughput_ips() > 0.0);
        assert!(report.makespan > SimSpan::ZERO);
        assert_eq!(report.job_latencies.len(), 200);
    }

    #[test]
    fn session_replay_matches_batch_run_bit_for_bit() {
        let (device, model, perf, stream) = setup(30, 200);
        let config = coserve_config();
        let engine = Engine::new(&device, &model, &perf, &config).unwrap();
        let batch = engine.run(&stream);
        // Incremental replay: submit jobs one by one in arrival order,
        // advancing the event loop up to the next arrival's watermark
        // between submissions — the live-server usage pattern.
        let mut session = engine.session(stream.name());
        let jobs = stream.jobs();
        for (i, job) in jobs.iter().enumerate() {
            session.submit(job.arrival, &job.stages).unwrap();
            if let Some(next) = jobs.get(i + 1) {
                session.pump_until(next.arrival);
            }
        }
        session.pump();
        let completions = session.drain_completions();
        assert_eq!(completions.len(), stream.len());
        assert!(completions
            .iter()
            .all(|c| c.status == CompletionStatus::Completed));
        let report = session.into_report();
        assert_eq!(batch, report);
    }

    #[test]
    fn traced_session_matches_untraced_and_attribution_partitions_latency() {
        let (device, model, perf, stream) = setup(30, 120);
        let config = coserve_config();
        let engine = Engine::new(&device, &model, &perf, &config).unwrap();
        let untraced = engine.run(&stream);

        let run_traced = || {
            let mut session = engine.session(stream.name());
            session.set_tracer(Box::new(coserve_trace::RingTracer::new()));
            for job in stream.jobs() {
                session.submit(job.arrival, &job.stages).unwrap();
            }
            session.pump();
            let events = session.tracer_mut().drain();
            (session.into_report(), events)
        };
        let (report, events) = run_traced();
        assert_eq!(untraced, report, "tracing must not perturb results");

        // Counts line up with the report's aggregates.
        let count = |name: &str| events.iter().filter(|e| e.kind.name() == name).count();
        assert_eq!(count("arrived"), report.submitted);
        assert_eq!(count("completed"), report.completed);
        assert_eq!(count("stage-done"), report.stages_executed);
        assert_eq!(count("switch") as u64, report.expert_switches());
        assert!(count("preloaded") > 0, "residency snapshot on install");

        // Attribution: per stage index, the queue/switch/stall/exec
        // components sum to exactly the stage-latency ledger entries,
        // in ledger order.
        let mut sums: BTreeMap<u8, Vec<SimSpan>> = BTreeMap::new();
        for e in &events {
            if let TraceKind::StageDone {
                stage,
                queue,
                switch,
                stall,
                exec_span,
                ..
            } = e.kind
            {
                sums.entry(stage)
                    .or_default()
                    .push(queue + switch + stall + exec_span);
            }
        }
        assert_eq!(sums, report.stage_latencies);

        // Determinism: a second traced run reproduces the events and
        // the exported bytes exactly.
        let (report2, events2) = run_traced();
        assert_eq!(report, report2);
        assert_eq!(events, events2);
        assert_eq!(
            coserve_trace::chrome_trace_json(&events),
            coserve_trace::chrome_trace_json(&events2)
        );
    }

    #[test]
    fn trace_covers_drops_under_admission_control() {
        let (device, model, perf, stream) = setup(30, 300);
        let config = SystemConfig::builder("CoServe")
            .gpu_executors(1)
            .admission(crate::config::AdmissionControl::with_queue_capacity(2))
            .build();
        let engine = Engine::new(&device, &model, &perf, &config).unwrap();
        let mut session = engine.session(stream.name());
        session.set_tracer(Box::new(coserve_trace::RingTracer::new()));
        for job in stream.jobs() {
            session.submit(job.arrival, &job.stages).unwrap();
        }
        session.pump();
        let events = session.tracer_mut().drain();
        let report = session.into_report();
        assert!(report.dropped > 0, "setup should overload the queue");
        let dropped = events
            .iter()
            .filter(|e| matches!(e.kind, TraceKind::Dropped { .. }))
            .count();
        assert_eq!(dropped, report.dropped);
    }

    #[test]
    fn threaded_session_submission_matches_serial_run() {
        use std::sync::Mutex;
        let (device, model, perf, stream) = setup(30, 150);
        let config = coserve_config();
        let engine = Engine::new(&device, &model, &perf, &config).unwrap();
        let serial = engine.run(&stream);
        let jobs = stream.jobs();
        for threads in [1usize, 2, 4] {
            // One lock guards both the claim cursor and the session, so
            // jobs are submitted in arrival order no matter which worker
            // wins the race — the determinism contract worker threads
            // rely on.
            let shared = Mutex::new((engine.session(stream.name()), 0usize));
            std::thread::scope(|s| {
                for _ in 0..threads {
                    s.spawn(|| loop {
                        let mut guard = shared.lock().unwrap();
                        let i = guard.1;
                        if i >= jobs.len() {
                            break;
                        }
                        guard.1 += 1;
                        guard.0.submit(jobs[i].arrival, &jobs[i].stages).unwrap();
                    });
                }
            });
            let (mut session, submitted) = shared.into_inner().unwrap();
            assert_eq!(submitted, jobs.len());
            session.pump();
            let report = session.into_report();
            assert_eq!(serial, report, "divergence at {threads} threads");
        }
    }

    #[test]
    fn session_snapshot_tracks_live_progress() {
        let (device, model, perf, stream) = setup(30, 120);
        let config = coserve_config();
        let engine = Engine::new(&device, &model, &perf, &config).unwrap();
        let mut session = engine.session("live");
        for job in stream.jobs() {
            session.submit(job.arrival, &job.stages).unwrap();
        }
        // Advance halfway through the arrival horizon.
        let mid = stream.jobs()[stream.len() / 2].arrival;
        session.pump_until(mid);
        let snap = session.snapshot();
        assert_eq!(snap.submitted, 120);
        assert!(snap.completed > 0, "no progress by mid-run");
        assert!(snap.completed < 120, "run finished too early");
        assert!(snap.pending_events > 0);
        // Every terminal record so far is still awaiting collection.
        assert_eq!(snap.completions_pending, snap.completed);
        let drained = session.drain_completions();
        assert_eq!(drained.len(), snap.completed);
        assert_eq!(session.snapshot().completions_pending, 0);
        session.pump();
        let end = session.snapshot();
        assert_eq!(end.completed, 120);
        assert_eq!(end.pending_events, 0);
        // The backlog is exactly the completions the mid-run drain
        // did not take.
        assert_eq!(end.completions_pending, 120 - drained.len());
        assert!(end.to_json().contains("\"completed\":120"));
        assert!(end.to_json().contains("\"completions_pending\":"));
        // Later drains only carry the new completions.
        assert_eq!(session.drain_completions().len(), 120 - drained.len());
        // The final snapshot (once fully drained) agrees with the
        // consumed report's own.
        let end = session.snapshot();
        assert_eq!(end.completions_pending, 0);
        let report = session.into_report();
        assert_eq!(report.snapshot(), end);
    }

    #[test]
    fn session_submit_validates_jobs() {
        let (device, model, perf, _) = setup(10, 1);
        let config = coserve_config();
        let engine = Engine::new(&device, &model, &perf, &config).unwrap();
        let mut session = engine.session("validate");
        assert_eq!(
            session.submit(SimTime::ZERO, &[]),
            Err(SubmitError::EmptyStages)
        );
        let bogus = ExpertId(model.num_experts() as u32);
        assert_eq!(
            session.submit(SimTime::ZERO, &[bogus]),
            Err(SubmitError::UnknownExpert(bogus))
        );
        let long = vec![ExpertId(0); 300];
        assert_eq!(
            session.submit(SimTime::ZERO, &long),
            Err(SubmitError::TooManyStages(300))
        );
        assert_eq!(session.submitted(), 0);
        assert!(session.is_idle());
        // A valid submission still works afterwards.
        let id = session.submit(SimTime::ZERO, &[ExpertId(0)]).unwrap();
        assert_eq!(id, 0);
        session.pump();
        let done = session.drain_completions();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].status, CompletionStatus::Completed);
    }

    #[test]
    fn engine_is_deterministic() {
        let (device, model, perf, stream) = setup(30, 150);
        let config = coserve_config();
        let engine = Engine::new(&device, &model, &perf, &config).unwrap();
        let a = engine.run(&stream);
        let b = engine.run(&stream);
        assert_eq!(a, b);
    }

    #[test]
    fn preload_fills_pools_by_usage() {
        let (device, model, perf, stream) = setup(30, 1);
        let config = coserve_config();
        let engine = Engine::new(&device, &model, &perf, &config).unwrap();
        let layout = engine.memory_layout();
        // Pools have real capacity.
        assert!(layout
            .executors
            .iter()
            .all(|m| m.pool_capacity > Bytes::ZERO));
        assert!(
            layout.cache > Bytes::ZERO,
            "NUMA device has a staging cache"
        );
        let report = engine.run(&stream);
        // Peak usage shows the preload happened.
        for e in &report.executors {
            assert!(
                e.pool_peak > Bytes::ZERO,
                "executor {} never held experts",
                e.index
            );
        }
    }

    #[test]
    fn grouping_reduces_switches_vs_fcfs() {
        let (device, model, perf, stream) = setup(40, 400);
        let grouped = SystemConfig::builder("grouped").gpu_executors(2).build();
        let fcfs = SystemConfig::builder("fcfs")
            .gpu_executors(2)
            .assign(AssignPolicy::RoundRobin)
            .arrange(ArrangePolicy::Fcfs)
            .eviction(crate::evict::EvictionPolicy::Lru)
            .build();
        let g = Engine::new(&device, &model, &perf, &grouped)
            .unwrap()
            .run(&stream);
        let f = Engine::new(&device, &model, &perf, &fcfs)
            .unwrap()
            .run(&stream);
        assert!(
            g.expert_switches() < f.expert_switches(),
            "grouped {} vs fcfs {}",
            g.expert_switches(),
            f.expert_switches()
        );
        assert!(g.throughput_ips() > f.throughput_ips());
    }

    #[test]
    fn oversized_expert_fails_gracefully() {
        let (device, model, perf, stream) = setup(10, 20);
        // One GPU executor with a pool fraction so small no ResNet fits.
        let config = SystemConfig::builder("tiny")
            .gpu_executors(1)
            .memory(crate::config::MemoryPlan {
                gpu_resident_experts: Some(0),
                ..Default::default()
            })
            .preload(false)
            .build();
        let engine = Engine::new(&device, &model, &perf, &config).unwrap();
        let report = engine.run(&stream);
        // Nothing fits in a zero-expert pool: every job fails, none hang.
        assert_eq!(report.completed + report.failed, 20);
        assert_eq!(report.completed, 0);
    }

    #[test]
    fn missing_kernel_is_a_construction_error() {
        let (_, model, perf, _) = setup(10, 10);
        let bare = DeviceProfile::numa_rtx3080ti(); // no kernels installed
        let config = coserve_config();
        let err = Engine::new(&bare, &model, &perf, &config).unwrap_err();
        assert!(matches!(err, EngineError::MissingKernel(_, _)));
        assert!(err.to_string().contains("no kernel"));
    }

    #[test]
    fn perf_mismatch_is_a_construction_error() {
        let (device, model, _, _) = setup(10, 10);
        let wrong = PerfMatrix::new(
            "dev",
            std::collections::BTreeMap::new(),
            vec![0.1],
            vec![1.0],
        );
        let config = coserve_config();
        let err = Engine::new(&device, &model, &wrong, &config).unwrap_err();
        assert!(matches!(err, EngineError::PerfModelMismatch { .. }));
    }

    #[test]
    fn switch_events_record_sources() {
        let (device, model, perf, stream) = setup(60, 500);
        let config = coserve_config();
        let report = Engine::new(&device, &model, &perf, &config)
            .unwrap()
            .run(&stream);
        // With 60 ResNet experts and small pools there must be switching.
        assert!(report.expert_switches() > 0);
        for ev in &report.switch_events {
            assert!(ev.source == MemoryTier::Ssd || ev.source == MemoryTier::Cpu);
            assert!(ev.executor < config.executors.len());
        }
        // Makespan covers the last switch.
        let last = report.switch_events.last().unwrap();
        assert!(last.at <= SimTime::ZERO + report.makespan);
    }

    #[test]
    fn memory_layout_respects_uma_unified_pool() {
        let board = BoardSpec::synthetic("uma", 20, 3, 1.2, 40.0, 0.5);
        let model = board.build_model().unwrap();
        let device = devices::uma_apple_m2();
        let perf = Profiler::with_defaults().profile(&device, &model, UsageSource::Declared);
        let config = SystemConfig::builder("uma")
            .gpu_executors(2)
            .cpu_executors(1)
            .build();
        let layout = plan_memory(&device, &model, &perf, &config);
        assert_eq!(layout.cache, Bytes::ZERO, "UMA has no staging cache");
        let total: Bytes = layout
            .executors
            .iter()
            .map(|m| m.pool_capacity + m.workspace)
            .sum();
        assert!(total <= device.gpu_usable());
    }

    #[test]
    fn cpu_pool_follows_limited_compute_rule() {
        let (device, model, perf, _) = setup(20, 1);
        let on = SystemConfig::builder("rule-on")
            .gpu_executors(1)
            .cpu_executors(1)
            .build();
        let layout_on = plan_memory(&device, &model, &perf, &on);
        let plan_off = crate::config::MemoryPlan {
            cpu_max_batch_rule: false,
            ..Default::default()
        };
        let off = SystemConfig::builder("rule-off")
            .gpu_executors(1)
            .cpu_executors(1)
            .memory(plan_off)
            .build();
        let layout_off = plan_memory(&device, &model, &perf, &off);
        // §4.4: with the rule on, the CPU workspace equals exactly the
        // maximum-batch inference footprint; the pool takes the rest.
        let reserve = perf
            .entries()
            .filter(|&(_, p, _)| p == ProcessorKind::Cpu)
            .map(|(_, _, e)| e.workspace + e.per_item * u64::from(e.max_batch))
            .max()
            .unwrap();
        let cpu_on = layout_on.executors[1];
        assert_eq!(cpu_on.workspace, reserve);
        // The fraction split reserves more workspace than the rule.
        let cpu_off = layout_off.executors[1];
        assert!(cpu_off.workspace > cpu_on.workspace);
        assert!(cpu_off.pool_capacity < cpu_on.pool_capacity);
    }

    #[test]
    fn batching_disabled_runs_singleton_batches() {
        let (device, model, perf, stream) = setup(15, 80);
        let config = SystemConfig::builder("no-batch")
            .gpu_executors(1)
            .batching(false)
            .build();
        let report = Engine::new(&device, &model, &perf, &config)
            .unwrap()
            .run(&stream);
        assert_eq!(report.completed, 80);
        let e0 = &report.executors[0];
        assert_eq!(e0.batches, e0.items, "every batch must be singleton");
    }

    #[test]
    fn no_preload_starts_cold() {
        let (device, model, perf, stream) = setup(15, 60);
        let cold = SystemConfig::builder("cold")
            .gpu_executors(1)
            .preload(false)
            .build();
        let warm = SystemConfig::builder("warm").gpu_executors(1).build();
        let cold_r = Engine::new(&device, &model, &perf, &cold)
            .unwrap()
            .run(&stream);
        let warm_r = Engine::new(&device, &model, &perf, &warm)
            .unwrap()
            .run(&stream);
        assert!(
            cold_r.expert_switches() > warm_r.expert_switches(),
            "cold {} vs warm {}",
            cold_r.expert_switches(),
            warm_r.expert_switches()
        );
        assert_eq!(cold_r.completed, 60);
    }

    #[test]
    fn cpu_only_system_serves_everything() {
        let (device, model, perf, stream) = setup(12, 40);
        let config = SystemConfig::builder("cpu-only").cpu_executors(2).build();
        let report = Engine::new(&device, &model, &perf, &config)
            .unwrap()
            .run(&stream);
        assert_eq!(report.completed, 40);
        assert!(report
            .executors
            .iter()
            .all(|e| e.processor == ProcessorKind::Cpu));
        // GPU channels untouched.
        let gpu = report
            .channels
            .iter()
            .find(|c| c.name == "gpu-compute")
            .unwrap();
        assert_eq!(gpu.reservations, 0);
    }

    #[test]
    fn lfu_policy_is_wired_through_the_engine() {
        let (device, model, perf, stream) = setup(40, 300);
        let lfu = SystemConfig::builder("lfu")
            .gpu_executors(2)
            .assign(AssignPolicy::RoundRobin)
            .arrange(ArrangePolicy::Fcfs)
            .eviction(crate::evict::EvictionPolicy::Lfu)
            .build();
        let lru = SystemConfig::builder("lru")
            .gpu_executors(2)
            .assign(AssignPolicy::RoundRobin)
            .arrange(ArrangePolicy::Fcfs)
            .eviction(crate::evict::EvictionPolicy::Lru)
            .build();
        let lfu_r = Engine::new(&device, &model, &perf, &lfu)
            .unwrap()
            .run(&stream);
        let lru_r = Engine::new(&device, &model, &perf, &lru)
            .unwrap()
            .run(&stream);
        assert_eq!(lfu_r.completed, 300);
        assert_ne!(lfu_r.switch_events, lru_r.switch_events);
    }

    /// Satellite regression: when one pool is full (or too small), the
    /// round-robin preload cursor must keep distributing the remaining
    /// experts evenly across the other pools instead of piling them
    /// onto one neighbour.
    #[test]
    fn preload_round_robin_stays_even_when_one_pool_is_full() {
        let expert_size = Bytes::mib(10);
        let mut tiny = ModelPool::new(Bytes::mib(10)); // fits exactly one
        let mut a = ModelPool::new(Bytes::gib(1));
        let mut b = ModelPool::new(Bytes::gib(1));
        let order: Vec<ExpertId> = (0..11).map(ExpertId).collect();
        {
            let mut pools = [&mut tiny, &mut a, &mut b];
            preload_round_robin(&mut pools, &order, |_| expert_size);
        }
        assert_eq!(tiny.len(), 1, "tiny pool takes exactly one expert");
        assert_eq!(a.len() + b.len(), 10, "everything else is placed");
        assert!(
            a.len().abs_diff(b.len()) <= 1,
            "skewed distribution: {} vs {}",
            a.len(),
            b.len()
        );
    }

    #[test]
    fn preload_round_robin_skips_oversized_experts_per_pool() {
        let mut small = ModelPool::new(Bytes::mib(5));
        let mut big = ModelPool::new(Bytes::mib(100));
        let order: Vec<ExpertId> = (0..4).map(ExpertId).collect();
        {
            let mut pools = [&mut small, &mut big];
            // Every expert is 10 MiB: none ever fits the small pool.
            preload_round_robin(&mut pools, &order, |_| Bytes::mib(10));
        }
        assert_eq!(small.len(), 0);
        assert_eq!(big.len(), 4);
        // Empty pool list is a no-op, not a panic.
        preload_round_robin(&mut [], &order, |_| Bytes::mib(10));
    }

    #[test]
    fn preload_order_override_changes_residency() {
        // Enough experts that the pools cannot hold everyone: now the
        // preload priority decides who starts resident.
        let (device, model, perf, stream) = setup(80, 300);
        let usage = perf.experts_by_usage().to_vec();
        // Preload the usage order *reversed*: cold experts first.
        let reversed: Vec<ExpertId> = usage.iter().rev().copied().collect();
        let default_cfg = SystemConfig::builder("same").gpu_executors(2).build();
        let reversed_cfg = SystemConfig::builder("same")
            .gpu_executors(2)
            .preload_order(reversed)
            .build();
        let d = Engine::new(&device, &model, &perf, &default_cfg)
            .unwrap()
            .run(&stream);
        let r = Engine::new(&device, &model, &perf, &reversed_cfg)
            .unwrap()
            .run(&stream);
        assert!(
            r.expert_switches() > d.expert_switches(),
            "cold-first preload must switch more: {} vs {}",
            r.expert_switches(),
            d.expert_switches()
        );
        // An explicit usage order reproduces the default bit for bit.
        let explicit_cfg = SystemConfig::builder("same")
            .gpu_executors(2)
            .preload_order(usage)
            .build();
        let e = Engine::new(&device, &model, &perf, &explicit_cfg)
            .unwrap()
            .run(&stream);
        assert_eq!(d, e);
    }

    #[test]
    fn preload_order_outside_model_is_a_construction_error() {
        let (device, model, perf, _) = setup(10, 10);
        let config = SystemConfig::builder("bad")
            .gpu_executors(1)
            .preload_order(vec![ExpertId(10_000)])
            .build();
        let err = Engine::new(&device, &model, &perf, &config).unwrap_err();
        assert!(matches!(err, EngineError::UnknownExpert(_)));
        assert!(err.to_string().contains("preload order"));
    }

    #[test]
    fn admission_drops_at_overload_and_conserves_jobs() {
        let (device, model, perf, stream) = setup(30, 300);
        let config = SystemConfig::builder("online")
            .gpu_executors(1)
            .admission(crate::config::AdmissionControl::with_queue_capacity(2))
            .max_overtake(8)
            .build();
        let engine = Engine::new(&device, &model, &perf, &config).unwrap();
        let report = engine.run(&stream);
        assert!(report.dropped > 0, "capacity-2 queue must shed load");
        assert_eq!(
            report.completed + report.failed + report.dropped,
            report.submitted
        );
        assert!(report.admitted >= report.completed);
        assert!(report.admitted < report.submitted);
        assert!(report.drop_rate() > 0.0);
        // Determinism holds with admission control on.
        assert_eq!(report, engine.run(&stream));
    }

    #[test]
    fn admission_with_headroom_matches_closed_loop() {
        let (device, model, perf, stream) = setup(20, 100);
        let closed = SystemConfig::builder("same").gpu_executors(2).build();
        let open = SystemConfig::builder("same")
            .gpu_executors(2)
            .admission(crate::config::AdmissionControl::with_queue_capacity(4096))
            .build();
        let closed_r = Engine::new(&device, &model, &perf, &closed)
            .unwrap()
            .run(&stream);
        let open_r = Engine::new(&device, &model, &perf, &open)
            .unwrap()
            .run(&stream);
        assert_eq!(closed_r.dropped, 0);
        assert_eq!(open_r.dropped, 0);
        assert_eq!(open_r.admitted, open_r.submitted);
        assert_eq!(closed_r, open_r, "unused admission bound must not perturb");
    }

    #[test]
    fn stage_latency_ledgers_cover_executed_stages() {
        let (device, model, perf, stream) = setup(30, 200);
        let config = coserve_config();
        let report = Engine::new(&device, &model, &perf, &config)
            .unwrap()
            .run(&stream);
        // Every job runs stage 0; stage 1 runs for two-stage jobs only.
        assert_eq!(report.stage_latencies[&0].len(), 200);
        let total: usize = report.stage_latencies.values().map(Vec::len).sum();
        assert_eq!(total, report.stages_executed);
        for stage in report.stages() {
            let s = report.stage_summary(stage).unwrap();
            assert!(s.is_finite(), "stage {stage} summary not finite");
            assert!(s.p50 <= s.p95 && s.p95 <= s.p99);
        }
    }

    #[test]
    fn zero_overtake_bound_degrades_grouping_to_fcfs() {
        let (device, model, perf, stream) = setup(25, 150);
        let grouped0 = SystemConfig::builder("same")
            .gpu_executors(2)
            .max_overtake(0)
            .build();
        let fcfs = SystemConfig::builder("same")
            .gpu_executors(2)
            .arrange(ArrangePolicy::Fcfs)
            .build();
        let a = Engine::new(&device, &model, &perf, &grouped0)
            .unwrap()
            .run(&stream);
        let b = Engine::new(&device, &model, &perf, &fcfs)
            .unwrap()
            .run(&stream);
        assert_eq!(a, b, "bound 0 must order queues exactly like FCFS");
        // A generous bound still reduces switches vs FCFS.
        let bounded = SystemConfig::builder("same")
            .gpu_executors(2)
            .max_overtake(32)
            .build();
        let c = Engine::new(&device, &model, &perf, &bounded)
            .unwrap()
            .run(&stream);
        assert!(c.expert_switches() <= b.expert_switches());
    }

    #[test]
    fn scheduling_cost_delays_but_does_not_block() {
        let (device, model, perf, stream) = setup(60, 300);
        let slow = SystemConfig::builder("slow-sched")
            .gpu_executors(2)
            .scheduling_cost(SimSpan::from_millis(8))
            .build();
        let fast = slow.pre_scheduled();
        let slow_r = Engine::new(&device, &model, &perf, &slow)
            .unwrap()
            .run(&stream);
        let fast_r = Engine::new(&device, &model, &perf, &fast)
            .unwrap()
            .run(&stream);
        assert_eq!(slow_r.completed, 300);
        // Scheduling latency is recorded.
        assert!(slow_r.sched_summary().unwrap().mean >= 8.0);
        assert!(fast_r.sched_summary().unwrap().mean < 1e-9);
        // The gap stays small: scheduling pipelines with inference.
        let gap =
            (fast_r.throughput_ips() - slow_r.throughput_ips()).abs() / fast_r.throughput_ips();
        assert!(gap < 0.2, "scheduling overhead gap {gap:.3}");
    }

    fn run_with_faults(plan: FaultPlan, retry: RetryPolicy) -> (RunReport, FaultLedger) {
        let (device, model, perf, stream) = setup(30, 150);
        let config = coserve_config();
        let engine = Engine::new(&device, &model, &perf, &config).unwrap();
        let mut session = engine.session(stream.name());
        session.set_faults(plan, retry);
        for job in stream.jobs() {
            session.submit(job.arrival, &job.stages).unwrap();
        }
        session.pump();
        let ledger = *session.fault_ledger();
        (session.into_report(), ledger)
    }

    #[test]
    fn disabled_fault_plan_is_bit_identical_to_no_plan() {
        let (baseline, no_faults) = {
            let (r, l) = run_with_faults(
                FaultPlan::disabled(),
                RetryPolicy::retries(4, SimSpan::from_millis(1)),
            );
            (r, l)
        };
        assert!(no_faults.is_empty(), "disabled plan must touch nothing");
        let (device, model, perf, stream) = setup(30, 150);
        let config = coserve_config();
        let plain = Engine::new(&device, &model, &perf, &config)
            .unwrap()
            .run(&stream);
        assert_eq!(plain, baseline, "disabled faults must not perturb results");
    }

    #[test]
    fn load_faults_recover_under_retry_and_partition_the_ledger() {
        let plan = coserve_faults::FaultPlan::seeded(7).with_expert_load(
            0.25,
            0.0,
            1.0,
            coserve_faults::FaultWindow::ALWAYS,
        );
        let (report, ledger) =
            run_with_faults(plan, RetryPolicy::retries(16, SimSpan::from_micros(50)));
        assert!(ledger.load_faults > 0, "fail rate 0.25 must inject");
        assert_eq!(
            ledger.load_faults,
            ledger.load_recovered + ledger.load_exhausted,
            "every fault is either recovered or exhausted"
        );
        assert_eq!(ledger.load_exhausted, 0, "16 retries absorb geometric runs");
        assert!(ledger.retries > 0);
        assert!(ledger.wasted_time > SimSpan::ZERO);
        assert!(ledger.backoff_time > SimSpan::ZERO);
        assert!(ledger.recovery_span().is_some());
        assert_eq!(
            report.completed, report.submitted,
            "recovery saves all jobs"
        );
    }

    #[test]
    fn load_faults_without_recovery_fail_jobs() {
        let plan = coserve_faults::FaultPlan::seeded(7).with_expert_load(
            0.25,
            0.0,
            1.0,
            coserve_faults::FaultWindow::ALWAYS,
        );
        let (report, ledger) = run_with_faults(plan, RetryPolicy::none());
        assert!(
            ledger.load_exhausted > 0,
            "no retries: first fault is fatal"
        );
        assert_eq!(ledger.load_recovered, 0);
        assert!(report.failed > 0);
        assert!(
            report.completed < report.submitted,
            "goodput must drop without recovery"
        );
    }

    #[test]
    fn slow_loads_dilate_the_run_and_are_accounted() {
        let plan = coserve_faults::FaultPlan::seeded(3).with_expert_load(
            0.0,
            0.9,
            6.0,
            coserve_faults::FaultWindow::ALWAYS,
        );
        let (slowed, ledger) = run_with_faults(plan, RetryPolicy::none());
        let (baseline, _) = run_with_faults(FaultPlan::disabled(), RetryPolicy::none());
        assert!(ledger.slow_loads > 0);
        assert!(ledger.degraded_time > SimSpan::ZERO);
        assert_eq!(slowed.completed, slowed.submitted, "slow loads still land");
        assert!(
            slowed.makespan > baseline.makespan,
            "6x tier dilation must stretch the run"
        );
    }
}
