//! The offline performance profiler (§4.5).
//!
//! "Offline profiling is performed once for each device using a set of
//! microbenchmarks." The profiler sweeps batch sizes on every
//! (architecture × processor) pair, measures execution latency and
//! memory footprint (with realistic measurement noise), fits the
//! paper's `K·n + B` latency model, detects the maximum useful batch
//! size as the point where average latency plateaus, and measures
//! expert load latencies per source tier. Experts of the same
//! architecture are profiled only once.
//!
//! Usage probabilities come from one of two sources (§4.5): computed
//! exactly from predefined routing rules, or estimated empirically by
//! running the routing over a sample dataset.

use std::collections::BTreeMap;

use coserve_metrics::stats::linear_fit;
use coserve_model::coe::CoeModel;
use coserve_model::expert::ExpertId;
use coserve_sim::device::{ArchId, DeviceProfile, ProcessorKind};
use coserve_sim::rng::SimRng;
use coserve_sim::time::SimSpan;
use coserve_sim::transfer::TransferRoute;
use coserve_workload::stream::RequestStream;

use crate::perf::{PerfEntry, PerfMatrix};

/// Where the profiler gets expert usage probabilities from.
#[derive(Debug, Clone, Copy)]
pub enum UsageSource<'a> {
    /// Keep the probabilities already attached to the model (computed
    /// directly from predefined routing rules — the circuit-board case).
    Declared,
    /// Estimate empirically by counting expert occurrences in a sample
    /// request stream (the trained-router case).
    Empirical(&'a RequestStream),
}

/// Profiler tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProfilerOptions {
    /// Largest batch size probed by the microbenchmark.
    pub max_probe_batch: u32,
    /// Multiplicative measurement noise amplitude (e.g. `0.01` = ±1 %).
    pub noise: f64,
    /// Relative slack for the average-latency plateau rule: the maximum
    /// batch is the smallest `n` whose average latency is within this
    /// fraction of the best observed average.
    pub plateau_threshold: f64,
    /// Repetitions averaged per probe point.
    pub repetitions: u32,
    /// RNG seed for measurement noise.
    pub seed: u64,
}

impl Default for ProfilerOptions {
    fn default() -> Self {
        ProfilerOptions {
            max_probe_batch: 32,
            noise: 0.01,
            plateau_threshold: 0.02,
            repetitions: 3,
            seed: 0xC0_5E_4E,
        }
    }
}

/// One probe point of the microbenchmark sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProbePoint {
    /// Batch size probed.
    pub batch: u32,
    /// Measured batch latency, milliseconds (noise included).
    pub latency_ms: f64,
    /// Measured memory footprint of the run.
    pub footprint: coserve_sim::memory::Bytes,
}

/// The offline profiler.
#[derive(Debug, Clone)]
pub struct Profiler {
    options: ProfilerOptions,
}

impl Profiler {
    /// Creates a profiler with the given options.
    #[must_use]
    pub fn new(options: ProfilerOptions) -> Self {
        Profiler { options }
    }

    /// Creates a profiler with default options.
    #[must_use]
    pub fn with_defaults() -> Self {
        Profiler::new(ProfilerOptions::default())
    }

    /// Runs the microbenchmark sweep for one (architecture × processor)
    /// pair, returning the probed points — the raw data behind the
    /// paper's Figures 5, 6 and 12.
    ///
    /// # Panics
    ///
    /// Panics when the device has no kernel for the pair (the
    /// microbenchmark would have nothing to run).
    #[must_use]
    pub fn sweep(
        &self,
        device: &DeviceProfile,
        arch: ArchId,
        proc: ProcessorKind,
    ) -> Vec<ProbePoint> {
        let kernel = device
            .kernel(arch, proc)
            .unwrap_or_else(|| panic!("device has no kernel for {arch}/{proc}"));
        let mut rng = SimRng::seed_from(
            self.options
                .seed
                .wrapping_add(u64::from(arch.0) << 8)
                .wrapping_add(proc as u64),
        );
        (1..=self.options.max_probe_batch.max(1))
            .map(|n| {
                let reps = self.options.repetitions.max(1);
                let avg: f64 = (0..reps)
                    .map(|_| kernel.latency.latency_ms(n) * rng.jitter(self.options.noise))
                    .sum::<f64>()
                    / f64::from(reps);
                ProbePoint {
                    batch: n,
                    latency_ms: avg,
                    footprint: kernel.memory.footprint(n),
                }
            })
            .collect()
    }

    /// Derives the maximum useful batch size from a sweep: the smallest
    /// batch whose average per-request latency is within
    /// `plateau_threshold` of the best average observed (§4.5 — "achieved
    /// when the average latency plateaus").
    #[must_use]
    pub fn max_batch(&self, points: &[ProbePoint]) -> u32 {
        let best = points
            .iter()
            .map(|p| p.latency_ms / f64::from(p.batch))
            .fold(f64::INFINITY, f64::min);
        points
            .iter()
            .find(|p| {
                p.latency_ms / f64::from(p.batch) <= best * (1.0 + self.options.plateau_threshold)
            })
            .map_or(1, |p| p.batch)
    }

    /// Fits `K` and `B` on the pre-plateau (linear) region of a sweep.
    /// Falls back to a two-point estimate when the region is degenerate.
    #[must_use]
    pub fn fit_kb(&self, points: &[ProbePoint], max_batch: u32) -> (f64, f64, f64) {
        let linear: Vec<(f64, f64)> = points
            .iter()
            .filter(|p| p.batch <= max_batch)
            .map(|p| (f64::from(p.batch), p.latency_ms))
            .collect();
        if let Some(fit) = linear_fit(&linear) {
            (fit.slope.max(0.0), fit.intercept.max(0.0), fit.r_squared)
        } else if let Some(p) = points.first() {
            (0.0, p.latency_ms, 0.0)
        } else {
            (0.0, 0.0, 0.0)
        }
    }

    /// Profiles a full device/model combination and assembles the
    /// performance matrix.
    ///
    /// # Panics
    ///
    /// Panics when a model architecture lacks a kernel on either
    /// processor of the device — the deployment would be unservable.
    #[must_use]
    pub fn profile(
        &self,
        device: &DeviceProfile,
        model: &CoeModel,
        usage: UsageSource<'_>,
    ) -> PerfMatrix {
        let mut entries = BTreeMap::new();
        for arch in model.archs() {
            for proc in ProcessorKind::ALL {
                let points = self.sweep(device, arch.id(), proc);
                let max_batch = self.max_batch(&points);
                let (k_ms, b_ms, r_squared) = self.fit_kb(&points, max_batch);
                let kernel = device
                    .kernel(arch.id(), proc)
                    .expect("sweep already verified the kernel");
                let weights = arch.weights();
                let (load_from_ssd, load_from_cpu) = match proc {
                    ProcessorKind::Gpu => (
                        device.transfer_duration(weights, TransferRoute::SsdToGpu),
                        device.transfer_duration(weights, TransferRoute::CpuToGpu),
                    ),
                    ProcessorKind::Cpu => (
                        device.transfer_duration(weights, TransferRoute::SsdToCpu),
                        SimSpan::ZERO,
                    ),
                };
                entries.insert(
                    (arch.id(), proc),
                    PerfEntry {
                        k_ms,
                        b_ms,
                        r_squared,
                        max_batch,
                        load_from_ssd,
                        load_from_cpu,
                        workspace: kernel.memory.workspace,
                        per_item: kernel.memory.per_item,
                        weights,
                    },
                );
            }
        }

        let usage_probs = match usage {
            UsageSource::Declared => model.experts().iter().map(|e| e.usage_prob()).collect(),
            UsageSource::Empirical(stream) => estimate_usage(model, stream),
        };
        let memory_scores = (0..model.num_experts() as u32)
            .map(|i| model.memory_score(ExpertId(i)))
            .collect();
        PerfMatrix::new(device.name(), entries, usage_probs, memory_scores)
    }
}

/// Empirical usage estimation: the fraction of sample requests whose
/// chain includes each expert (§4.5's "run the CoE routing on a small,
/// real-world sample dataset").
#[must_use]
pub fn estimate_usage(model: &CoeModel, stream: &RequestStream) -> Vec<f64> {
    let mut counts = vec![0u64; model.num_experts()];
    for job in stream.jobs() {
        for stage in &job.stages {
            if stage.index() < counts.len() {
                counts[stage.index()] += 1;
            }
        }
    }
    let n = stream.len().max(1) as f64;
    counts.into_iter().map(|c| c as f64 / n).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use coserve_model::devices;
    use coserve_model::prelude::*;
    use coserve_workload::board::BoardSpec;
    use coserve_workload::stream::StreamOrder;
    use coserve_workload::task::TaskSpec;

    fn board_model() -> (BoardSpec, CoeModel) {
        let board = BoardSpec::synthetic("pf", 24, 3, 1.2, 40.0, 0.5);
        let model = board.build_model().unwrap();
        (board, model)
    }

    #[test]
    fn sweep_produces_monotone_latencies() {
        let device = devices::numa_rtx3080ti();
        let p = Profiler::with_defaults();
        let points = p.sweep(&device, RESNET101, ProcessorKind::Gpu);
        assert_eq!(points.len(), 32);
        // Latency grows with batch (allowing 2x noise amplitude slack).
        for w in points.windows(2) {
            assert!(w[1].latency_ms > w[0].latency_ms * 0.97);
            assert!(w[1].footprint > w[0].footprint);
        }
    }

    #[test]
    fn sweep_is_deterministic() {
        let device = devices::numa_rtx3080ti();
        let p = Profiler::with_defaults();
        let a = p.sweep(&device, RESNET101, ProcessorKind::Gpu);
        let b = p.sweep(&device, RESNET101, ProcessorKind::Gpu);
        assert_eq!(a, b);
    }

    #[test]
    fn max_batch_lands_near_ground_truth_saturation() {
        let device = devices::numa_rtx3080ti();
        let p = Profiler::with_defaults();
        let points = p.sweep(&device, RESNET101, ProcessorKind::Gpu);
        let mb = p.max_batch(&points);
        // Ground truth saturation is 16.
        assert!((12..=20).contains(&mb), "max batch {mb}");
        let uma = devices::uma_apple_m2();
        let pts = p.sweep(&uma, RESNET101, ProcessorKind::Gpu);
        let mb_uma = p.max_batch(&pts);
        assert!((4..=8).contains(&mb_uma), "UMA max batch {mb_uma}");
    }

    #[test]
    fn fit_recovers_ground_truth_k_and_b() {
        let device = devices::numa_rtx3080ti();
        let p = Profiler::with_defaults();
        let points = p.sweep(&device, RESNET101, ProcessorKind::Gpu);
        let mb = p.max_batch(&points);
        let (k, b, r2) = p.fit_kb(&points, mb);
        // Ground truth: K = 1.1, B = 8.0.
        assert!((k - 1.1).abs() < 0.15, "K {k}");
        assert!((b - 8.0).abs() < 1.0, "B {b}");
        assert!(r2 > 0.97, "r² {r2}");
    }

    #[test]
    fn profile_covers_all_archs_and_processors() {
        let device = devices::numa_rtx3080ti();
        let (_, model) = board_model();
        let matrix = Profiler::with_defaults().profile(&device, &model, UsageSource::Declared);
        assert_eq!(matrix.entries().count(), 6); // 3 archs × 2 procs
        assert_eq!(matrix.num_experts(), model.num_experts());
        let e = matrix.expect_entry(RESNET101, ProcessorKind::Gpu);
        assert!(e.load_from_ssd > e.load_from_cpu);
        let cpu = matrix.expect_entry(RESNET101, ProcessorKind::Cpu);
        assert_eq!(cpu.load_from_cpu, SimSpan::ZERO);
        assert!(cpu.k_ms > e.k_ms, "CPU slower than GPU");
    }

    #[test]
    fn declared_usage_matches_model() {
        let device = devices::numa_rtx3080ti();
        let (_, model) = board_model();
        let matrix = Profiler::with_defaults().profile(&device, &model, UsageSource::Declared);
        for i in 0..model.num_experts() as u32 {
            assert_eq!(
                matrix.usage_prob(ExpertId(i)),
                model.expert(ExpertId(i)).usage_prob()
            );
        }
    }

    #[test]
    fn empirical_usage_approximates_declared() {
        let device = devices::numa_rtx3080ti();
        let (board, model) = board_model();
        let stream = RequestStream::generate(
            "sample",
            &board,
            &model,
            4000,
            coserve_sim::time::SimSpan::from_millis(4),
            StreamOrder::Iid,
            42,
        );
        let matrix =
            Profiler::with_defaults().profile(&device, &model, UsageSource::Empirical(&stream));
        // The most popular classifier's empirical frequency tracks its
        // exact probability.
        let declared = model.expert(ExpertId(0)).usage_prob();
        let est = matrix.usage_prob(ExpertId(0));
        assert!(
            (est - declared).abs() < 0.05,
            "estimate {est:.3} vs declared {declared:.3}"
        );
    }

    #[test]
    fn profile_of_paper_task_is_fast_and_complete() {
        let device = devices::uma_apple_m2();
        let task = TaskSpec::a1();
        let model = task.build_model().unwrap();
        let matrix = Profiler::with_defaults().profile(&device, &model, UsageSource::Declared);
        assert_eq!(matrix.num_experts(), 370);
        assert_eq!(matrix.experts_by_usage().len(), 370);
    }

    #[test]
    #[should_panic(expected = "no kernel")]
    fn sweep_without_kernel_panics() {
        let device = DeviceProfile::numa_rtx3080ti(); // bare hardware, no kernels
        let _ = Profiler::with_defaults().sweep(&device, RESNET101, ProcessorKind::Gpu);
    }

    #[test]
    fn estimate_usage_counts_all_stages() {
        let (board, model) = board_model();
        let stream = RequestStream::generate(
            "s",
            &board,
            &model,
            500,
            coserve_sim::time::SimSpan::from_millis(4),
            StreamOrder::Iid,
            7,
        );
        let usage = estimate_usage(&model, &stream);
        let total: f64 = usage.iter().sum();
        // Every job contributes ≥1 stage, detected jobs contribute 2.
        assert!(total >= 1.0);
        assert!(total <= 2.0);
    }
}
