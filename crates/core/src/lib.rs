//! # coserve-core
//!
//! The CoServe serving system (ASPLOS '25): an efficient
//! Collaboration-of-Experts model serving system for heterogeneous
//! CPU/GPU devices with limited memory.
//!
//! The crate implements the paper's three phases (Figure 7):
//!
//! * **Offline** — [`profiler`] runs microbenchmarks to produce the
//!   [`perf::PerfMatrix`] (latency `K`/`B` fits, maximum batch sizes,
//!   load latencies, usage probabilities), and [`autotune`] searches
//!   the memory allocation (decay window, §4.4) and executor counts.
//! * **Initialization** — [`engine::plan_memory`] splits device memory
//!   into per-executor pools, workspace and the NUMA staging cache; the
//!   engine preloads experts by descending usage probability.
//! * **Online** — [`engine::Engine`] runs dependency-aware request
//!   scheduling (§4.2: predict, assign, arrange, split) and
//!   dependency-aware expert management (§4.3: two-stage eviction) over
//!   the simulated hardware channels.
//!
//! Every baseline in the evaluation (Samba-CoE and friends, in the
//! `coserve-baselines` crate) runs on the same engine with different
//! [`config::SystemConfig`] policies.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod autotune;
pub mod config;
pub mod engine;
pub mod evict;
pub mod perf;
pub mod pool;
pub mod presets;
pub mod profiler;
pub mod queue;
pub mod system;

/// Convenient re-exports of the most commonly used items.
pub mod prelude {
    pub use crate::autotune::{
        executor_search, tune, window_search, TunedSystem, UsageCdf, WindowSearchOptions,
        WindowSearchResult,
    };
    pub use crate::config::{
        AdmissionControl, ArrangePolicy, AssignPolicy, ExecutorSpec, MemoryPlan, SystemConfig,
        SystemConfigBuilder,
    };
    pub use crate::engine::{
        plan_memory, Completion, CompletionStatus, Engine, EngineError, EngineSession,
        MemoryLayout, SubmitError,
    };
    pub use crate::evict::{
        select_victims, select_victims_into, EvictError, EvictionContext, EvictionPolicy,
        EvictionScratch,
    };
    pub use crate::perf::{PerfEntry, PerfMatrix};
    pub use crate::pool::{ModelPool, PoolError, Resident};
    pub use crate::presets;
    pub use crate::profiler::{Profiler, ProfilerOptions, UsageSource};
    pub use crate::queue::{ExecutorQueue, PendingRequest, RunDelta};
    pub use crate::system::ServingSystem;
}

pub use prelude::*;
