//! The performance matrix — the offline phase's output (§4.5).
//!
//! For every (architecture × processor) pair the profiler records the
//! linear execution-latency coefficients `K` and `B`, the maximum
//! useful batch size, the expert loading latency from each source tier,
//! and the memory footprint parameters. The online scheduler consults
//! *these measured values* — never the simulator's ground truth — so
//! the prediction/reality split of a real deployment is preserved.

use std::collections::BTreeMap;

use coserve_model::coe::CoeModel;
use coserve_model::expert::ExpertId;
use coserve_sim::device::{ArchId, ProcessorKind};
use coserve_sim::memory::{Bytes, MemoryTier};
use coserve_sim::time::SimSpan;

/// Measured performance of one (architecture × processor) pair.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfEntry {
    /// Marginal per-request latency `K`, in milliseconds.
    pub k_ms: f64,
    /// Fixed per-batch latency `B`, in milliseconds.
    pub b_ms: f64,
    /// Quality of the linear fit.
    pub r_squared: f64,
    /// The measured maximum useful batch size (where average latency
    /// plateaus, §4.5).
    pub max_batch: u32,
    /// Measured load latency from SSD into this processor's memory.
    pub load_from_ssd: SimSpan,
    /// Measured load latency from CPU memory (the staging cache) into
    /// this processor's memory; equals [`SimSpan::ZERO`] when no such
    /// path exists (CPU executors, UMA devices).
    pub load_from_cpu: SimSpan,
    /// Measured fixed inference workspace.
    pub workspace: Bytes,
    /// Measured per-batch-item activation memory.
    pub per_item: Bytes,
    /// Expert checkpoint size for this architecture.
    pub weights: Bytes,
}

impl PerfEntry {
    /// The predicted execution latency for a batch of `n`: `K·n + B`
    /// (§4.2's estimation).
    #[must_use]
    pub fn predicted_latency(&self, n: u32) -> SimSpan {
        if n == 0 {
            return SimSpan::ZERO;
        }
        SimSpan::from_millis_f64(self.k_ms * f64::from(n) + self.b_ms)
    }

    /// Predicted load latency from `tier`.
    ///
    /// # Panics
    ///
    /// Panics when `tier` is [`MemoryTier::Gpu`]: a resident expert
    /// needs no load.
    #[must_use]
    pub fn load_from(&self, tier: MemoryTier) -> SimSpan {
        match tier {
            MemoryTier::Ssd => self.load_from_ssd,
            MemoryTier::Cpu => self.load_from_cpu,
            MemoryTier::Gpu => panic!("resident experts need no load"),
        }
    }

    /// The largest batch whose inference memory fits `budget`, capped by
    /// the measured `max_batch` and floored at 1 (a request must run
    /// even in a tight workspace).
    #[must_use]
    pub fn executable_batch(&self, budget: Bytes) -> u32 {
        let by_memory = if self.per_item.is_zero() {
            self.max_batch
        } else {
            let room = budget.saturating_sub(self.workspace);
            u32::try_from(room.get() / self.per_item.get()).unwrap_or(u32::MAX)
        };
        by_memory.min(self.max_batch).max(1)
    }
}

/// The complete offline measurement set for one device and model.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfMatrix {
    device_name: String,
    entries: BTreeMap<(ArchId, ProcessorKind), PerfEntry>,
    usage_probs: Vec<f64>,
    memory_scores: Vec<f64>,
    /// Expert ids by descending usage probability — memoized at
    /// construction so hot paths (preload, eviction, placement) get a
    /// slice instead of re-sorting per call.
    by_usage_desc: Vec<ExpertId>,
    /// The ascending counterpart: the §4.3 stage-2 eviction order.
    by_usage_asc: Vec<ExpertId>,
}

impl PerfMatrix {
    /// Assembles a matrix from measured parts.
    ///
    /// # Panics
    ///
    /// Panics if `usage_probs` and `memory_scores` lengths differ.
    #[must_use]
    pub fn new(
        device_name: impl Into<String>,
        entries: BTreeMap<(ArchId, ProcessorKind), PerfEntry>,
        usage_probs: Vec<f64>,
        memory_scores: Vec<f64>,
    ) -> Self {
        assert_eq!(
            usage_probs.len(),
            memory_scores.len(),
            "per-expert tables must have equal length"
        );
        let mut by_usage_desc: Vec<ExpertId> =
            (0..usage_probs.len() as u32).map(ExpertId).collect();
        by_usage_desc.sort_by(|&a, &b| {
            usage_probs[b.index()]
                .partial_cmp(&usage_probs[a.index()])
                .expect("probabilities are finite")
                .then(a.cmp(&b))
        });
        let mut by_usage_asc: Vec<ExpertId> = (0..usage_probs.len() as u32).map(ExpertId).collect();
        by_usage_asc.sort_by(|&a, &b| {
            usage_probs[a.index()]
                .partial_cmp(&usage_probs[b.index()])
                .expect("probabilities are finite")
                .then(a.cmp(&b))
        });
        PerfMatrix {
            device_name: device_name.into(),
            entries,
            usage_probs,
            memory_scores,
            by_usage_desc,
            by_usage_asc,
        }
    }

    /// The device the matrix was profiled on.
    #[must_use]
    pub fn device_name(&self) -> &str {
        &self.device_name
    }

    /// The entry for `(arch, proc)`, if profiled.
    #[must_use]
    pub fn entry(&self, arch: ArchId, proc: ProcessorKind) -> Option<&PerfEntry> {
        self.entries.get(&(arch, proc))
    }

    /// The entry for `(arch, proc)`.
    ///
    /// # Panics
    ///
    /// Panics when the pair was not profiled — configuration error: the
    /// engine must not schedule work onto unprofiled processors.
    #[must_use]
    pub fn expect_entry(&self, arch: ArchId, proc: ProcessorKind) -> &PerfEntry {
        self.entry(arch, proc)
            .unwrap_or_else(|| panic!("no perf entry for {arch}/{proc}"))
    }

    /// All entries in stable order.
    pub fn entries(&self) -> impl Iterator<Item = (ArchId, ProcessorKind, &PerfEntry)> {
        self.entries.iter().map(|(&(a, p), e)| (a, p, e))
    }

    /// Pre-assessed usage probability of expert `e` (possibly estimated
    /// empirically during profiling).
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    #[must_use]
    pub fn usage_prob(&self, e: ExpertId) -> f64 {
        self.usage_probs[e.index()]
    }

    /// Normalized memory score of expert `e` (§4.3, Figure 10).
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    #[must_use]
    pub fn memory_score(&self, e: ExpertId) -> f64 {
        self.memory_scores[e.index()]
    }

    /// Number of experts covered by the per-expert tables.
    #[must_use]
    pub fn num_experts(&self) -> usize {
        self.usage_probs.len()
    }

    /// Expert ids ordered by descending usage probability (ties broken
    /// by ascending id), the initializer's loading order (§4.1).
    /// Memoized at construction: callers get a slice, never a fresh
    /// sort.
    #[must_use]
    pub fn experts_by_usage(&self) -> &[ExpertId] {
        &self.by_usage_desc
    }

    /// Expert ids ordered by *ascending* usage probability (ties broken
    /// by ascending id) — the order CoServe's stage-2 eviction walks
    /// (§4.3). Memoized at construction.
    #[must_use]
    pub fn experts_by_usage_asc(&self) -> &[ExpertId] {
        &self.by_usage_asc
    }

    /// Builds a matrix directly from a model's declared probabilities
    /// and a closure supplying entries — used by tests and by callers
    /// that skip profiling.
    #[must_use]
    pub fn from_model_with(
        device_name: impl Into<String>,
        model: &CoeModel,
        mut make_entry: impl FnMut(ArchId, ProcessorKind) -> Option<PerfEntry>,
    ) -> Self {
        let mut entries = BTreeMap::new();
        for arch in model.archs() {
            for proc in ProcessorKind::ALL {
                if let Some(e) = make_entry(arch.id(), proc) {
                    entries.insert((arch.id(), proc), e);
                }
            }
        }
        let usage = model.experts().iter().map(|e| e.usage_prob()).collect();
        let scores = (0..model.num_experts() as u32)
            .map(|i| model.memory_score(ExpertId(i)))
            .collect();
        PerfMatrix::new(device_name, entries, usage, scores)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry() -> PerfEntry {
        PerfEntry {
            k_ms: 1.1,
            b_ms: 8.0,
            r_squared: 0.999,
            max_batch: 16,
            load_from_ssd: SimSpan::from_millis(900),
            load_from_cpu: SimSpan::from_millis(60),
            workspace: Bytes::mib(200),
            per_item: Bytes::mib(260),
            weights: Bytes::new(178_000_000),
        }
    }

    #[test]
    fn predicted_latency_is_linear() {
        let e = entry();
        assert_eq!(e.predicted_latency(0), SimSpan::ZERO);
        let l1 = e.predicted_latency(1).as_millis_f64();
        let l5 = e.predicted_latency(5).as_millis_f64();
        assert!((l1 - 9.1).abs() < 1e-6);
        assert!((l5 - 13.5).abs() < 1e-6);
    }

    #[test]
    fn load_from_tiers() {
        let e = entry();
        assert_eq!(e.load_from(MemoryTier::Ssd), SimSpan::from_millis(900));
        assert_eq!(e.load_from(MemoryTier::Cpu), SimSpan::from_millis(60));
    }

    #[test]
    #[should_panic(expected = "no load")]
    fn load_from_gpu_panics() {
        let _ = entry().load_from(MemoryTier::Gpu);
    }

    #[test]
    fn executable_batch_combines_memory_and_measurement() {
        let e = entry();
        // Plenty of memory: capped by measured max batch.
        assert_eq!(e.executable_batch(Bytes::gib(100)), 16);
        // Tight memory: workspace 200 MiB + n × 260 MiB ≤ budget.
        assert_eq!(e.executable_batch(Bytes::mib(200 + 260 * 3 + 10)), 3);
        // Hopeless memory still allows batch 1.
        assert_eq!(e.executable_batch(Bytes::ZERO), 1);
    }

    #[test]
    fn matrix_lookup_and_ordering() {
        let mut entries = BTreeMap::new();
        entries.insert((ArchId(0), ProcessorKind::Gpu), entry());
        let m = PerfMatrix::new("dev", entries, vec![0.2, 0.5, 0.3], vec![1.0, 1.0, 2.0]);
        assert_eq!(m.device_name(), "dev");
        assert!(m.entry(ArchId(0), ProcessorKind::Gpu).is_some());
        assert!(m.entry(ArchId(0), ProcessorKind::Cpu).is_none());
        assert_eq!(m.num_experts(), 3);
        assert_eq!(m.usage_prob(ExpertId(1)), 0.5);
        assert_eq!(m.memory_score(ExpertId(2)), 2.0);
        assert_eq!(
            m.experts_by_usage(),
            vec![ExpertId(1), ExpertId(2), ExpertId(0)]
        );
        assert_eq!(m.entries().count(), 1);
    }

    #[test]
    #[should_panic(expected = "no perf entry")]
    fn expect_entry_panics_on_missing() {
        let m = PerfMatrix::new("dev", BTreeMap::new(), vec![], vec![]);
        let _ = m.expect_entry(ArchId(3), ProcessorKind::Cpu);
    }

    #[test]
    fn usage_ties_break_by_id() {
        let m = PerfMatrix::new("dev", BTreeMap::new(), vec![0.5, 0.5], vec![1.0, 1.0]);
        assert_eq!(m.experts_by_usage(), vec![ExpertId(0), ExpertId(1)]);
    }
}
