//! Per-executor model pools.
//!
//! Each inference executor owns a model pool: the set of experts
//! resident in its share of processor memory (paper Figure 7). The pool
//! does byte-accurate accounting and keeps the residency metadata the
//! eviction policies need — insertion sequence (FIFO), last-use time
//! (LRU), and the resident set itself (dependency-aware eviction).
//!
//! Residency is stored as a dense expert-indexed table (`Vec<Option>`),
//! not a map: the engine probes [`ModelPool::contains`] on every
//! assignment prediction, so membership must be an O(1) slot read.
//! Expert ids are dense model indices, which keeps the table small and
//! iteration in id order trivially deterministic.

use std::fmt;

use coserve_model::expert::ExpertId;
use coserve_sim::memory::{Bytes, MemoryPool};
use coserve_sim::time::SimTime;

/// Residency metadata for one loaded expert.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Resident {
    /// The expert's checkpoint size.
    pub bytes: Bytes,
    /// When the expert finished loading.
    pub loaded_at: SimTime,
    /// Monotone insertion sequence (FIFO order).
    pub seq: u64,
    /// Last time a batch used the expert.
    pub last_used: SimTime,
    /// How many batches have used the expert since it was loaded.
    pub uses: u64,
}

/// Error returned when an expert cannot be inserted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolError {
    /// The expert is already resident.
    AlreadyResident(ExpertId),
    /// Not enough free capacity; holds the shortfall.
    Insufficient {
        /// The expert that failed to fit.
        expert: ExpertId,
        /// Bytes missing after using all free capacity.
        shortfall: Bytes,
    },
}

impl fmt::Display for PoolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PoolError::AlreadyResident(e) => write!(f, "{e} is already resident"),
            PoolError::Insufficient { expert, shortfall } => {
                write!(f, "{expert} does not fit: {shortfall} short")
            }
        }
    }
}

impl std::error::Error for PoolError {}

/// A model pool: experts resident in one executor's memory share.
#[derive(Debug, Clone)]
pub struct ModelPool {
    memory: MemoryPool,
    /// Dense expert-indexed residency slots; grown on demand, `None`
    /// for non-resident experts.
    residents: Vec<Option<Resident>>,
    /// Number of `Some` slots.
    count: usize,
    next_seq: u64,
}

/// Pools are equal when capacity, accounting and the resident set
/// (with metadata) match; the dense table's trailing `None` slots are
/// storage, not identity.
impl PartialEq for ModelPool {
    fn eq(&self, other: &Self) -> bool {
        self.memory == other.memory
            && self.next_seq == other.next_seq
            && self.count == other.count
            && self.residents().eq(other.residents())
    }
}

impl ModelPool {
    /// Creates an empty pool with the given byte capacity.
    #[must_use]
    pub fn new(capacity: Bytes) -> Self {
        ModelPool {
            memory: MemoryPool::new(capacity),
            residents: Vec::new(),
            count: 0,
            next_seq: 0,
        }
    }

    fn slot(&self, expert: ExpertId) -> Option<&Resident> {
        self.residents.get(expert.index()).and_then(Option::as_ref)
    }

    /// Pool capacity in bytes.
    #[must_use]
    pub fn capacity(&self) -> Bytes {
        self.memory.capacity()
    }

    /// Bytes currently occupied by residents.
    #[must_use]
    pub fn used(&self) -> Bytes {
        self.memory.used()
    }

    /// Free capacity.
    #[must_use]
    pub fn available(&self) -> Bytes {
        self.memory.available()
    }

    /// Peak occupancy over the pool's lifetime.
    #[must_use]
    pub fn peak(&self) -> Bytes {
        self.memory.peak()
    }

    /// Number of resident experts.
    #[must_use]
    pub fn len(&self) -> usize {
        self.count
    }

    /// Whether no experts are resident.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Whether `expert` is resident — an O(1) slot read.
    #[must_use]
    pub fn contains(&self, expert: ExpertId) -> bool {
        self.slot(expert).is_some()
    }

    /// Whether an expert of the given size would fit right now.
    #[must_use]
    pub fn fits(&self, bytes: Bytes) -> bool {
        bytes <= self.available()
    }

    /// Residency metadata for `expert`, if resident.
    #[must_use]
    pub fn resident(&self, expert: ExpertId) -> Option<&Resident> {
        self.slot(expert)
    }

    /// Iterates residents in expert-id order (deterministic).
    pub fn residents(&self) -> impl Iterator<Item = (ExpertId, &Resident)> {
        self.residents
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.as_ref().map(|r| (ExpertId(i as u32), r)))
    }

    /// Inserts `expert` with the given size.
    ///
    /// # Errors
    ///
    /// [`PoolError::AlreadyResident`] when the expert is loaded,
    /// [`PoolError::Insufficient`] when it does not fit (the caller must
    /// evict first).
    pub fn insert(
        &mut self,
        expert: ExpertId,
        bytes: Bytes,
        now: SimTime,
    ) -> Result<(), PoolError> {
        if self.contains(expert) {
            return Err(PoolError::AlreadyResident(expert));
        }
        self.memory
            .allocate(bytes)
            .map_err(|e| PoolError::Insufficient {
                expert,
                shortfall: bytes.saturating_sub(e.available),
            })?;
        let seq = self.next_seq;
        self.next_seq += 1;
        if self.residents.len() <= expert.index() {
            self.residents.resize(expert.index() + 1, None);
        }
        self.residents[expert.index()] = Some(Resident {
            bytes,
            loaded_at: now,
            seq,
            last_used: now,
            uses: 0,
        });
        self.count += 1;
        Ok(())
    }

    /// Removes `expert`, returning its metadata (or `None` if absent).
    pub fn remove(&mut self, expert: ExpertId) -> Option<Resident> {
        let meta = self.residents.get_mut(expert.index())?.take()?;
        self.count -= 1;
        self.memory.free(meta.bytes);
        Some(meta)
    }

    /// Marks `expert` as used at `now` (LRU bookkeeping).
    ///
    /// Touching an absent expert is an engine bug; flagged in debug
    /// builds and ignored in release builds.
    pub fn touch(&mut self, expert: ExpertId, now: SimTime) {
        if let Some(meta) = self
            .residents
            .get_mut(expert.index())
            .and_then(Option::as_mut)
        {
            meta.last_used = now;
            meta.uses += 1;
        } else {
            debug_assert!(false, "touched non-resident expert {expert}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + coserve_sim::time::SimSpan::from_millis(ms)
    }
    fn e(i: u32) -> ExpertId {
        ExpertId(i)
    }

    #[test]
    fn insert_remove_roundtrip() {
        let mut p = ModelPool::new(Bytes::mib(500));
        assert!(p.is_empty());
        p.insert(e(1), Bytes::mib(170), t(0)).unwrap();
        p.insert(e(2), Bytes::mib(170), t(1)).unwrap();
        assert_eq!(p.len(), 2);
        assert!(p.contains(e(1)));
        assert_eq!(p.used(), Bytes::mib(340));
        assert_eq!(p.available(), Bytes::mib(160));
        let meta = p.remove(e(1)).unwrap();
        assert_eq!(meta.bytes, Bytes::mib(170));
        assert!(!p.contains(e(1)));
        assert_eq!(p.used(), Bytes::mib(170));
        assert_eq!(p.peak(), Bytes::mib(340));
        assert!(p.remove(e(9)).is_none());
    }

    #[test]
    fn double_insert_is_rejected() {
        let mut p = ModelPool::new(Bytes::mib(500));
        p.insert(e(1), Bytes::mib(100), t(0)).unwrap();
        assert_eq!(
            p.insert(e(1), Bytes::mib(100), t(1)),
            Err(PoolError::AlreadyResident(e(1)))
        );
        assert_eq!(p.used(), Bytes::mib(100));
    }

    #[test]
    fn insufficient_reports_shortfall() {
        let mut p = ModelPool::new(Bytes::mib(200));
        p.insert(e(1), Bytes::mib(150), t(0)).unwrap();
        match p.insert(e(2), Bytes::mib(170), t(1)) {
            Err(PoolError::Insufficient { expert, shortfall }) => {
                assert_eq!(expert, e(2));
                assert_eq!(shortfall, Bytes::mib(120));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(PoolError::Insufficient {
            expert: e(2),
            shortfall: Bytes::mib(120)
        }
        .to_string()
        .contains("short"));
    }

    #[test]
    fn sequence_numbers_are_monotone_across_reinsert() {
        let mut p = ModelPool::new(Bytes::mib(500));
        p.insert(e(1), Bytes::mib(10), t(0)).unwrap();
        let s1 = p.resident(e(1)).unwrap().seq;
        p.remove(e(1));
        p.insert(e(1), Bytes::mib(10), t(5)).unwrap();
        let s2 = p.resident(e(1)).unwrap().seq;
        assert!(s2 > s1, "re-insertion must advance FIFO order");
    }

    #[test]
    fn touch_updates_last_used_only() {
        let mut p = ModelPool::new(Bytes::mib(500));
        p.insert(e(1), Bytes::mib(10), t(0)).unwrap();
        p.touch(e(1), t(9));
        let meta = p.resident(e(1)).unwrap();
        assert_eq!(meta.last_used, t(9));
        assert_eq!(meta.loaded_at, t(0));
        assert_eq!(meta.uses, 1);
        p.touch(e(1), t(10));
        assert_eq!(p.resident(e(1)).unwrap().uses, 2);
    }

    #[test]
    fn residents_iterate_in_id_order() {
        let mut p = ModelPool::new(Bytes::gib(1));
        for i in [5u32, 1, 3] {
            p.insert(e(i), Bytes::mib(1), t(0)).unwrap();
        }
        let ids: Vec<ExpertId> = p.residents().map(|(id, _)| id).collect();
        assert_eq!(ids, vec![e(1), e(3), e(5)]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Pool accounting matches the sum of resident sizes under any
        /// insert/remove interleaving.
        #[test]
        fn accounting_is_exact(
            ops in proptest::collection::vec((any::<bool>(), 0u32..12, 1u64..64), 0..60),
        ) {
            let mut pool = ModelPool::new(Bytes::mib(256));
            for (insert, id, size_mib) in ops {
                let expert = ExpertId(id);
                if insert {
                    let _ = pool.insert(expert, Bytes::mib(size_mib), SimTime::ZERO);
                } else {
                    pool.remove(expert);
                }
                let expected: Bytes = pool.residents().map(|(_, r)| r.bytes).sum();
                prop_assert_eq!(pool.used(), expected);
                prop_assert!(pool.used() <= pool.capacity());
                prop_assert_eq!(pool.len(), pool.residents().count());
            }
        }
    }
}
