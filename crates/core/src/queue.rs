//! Executor request queues.
//!
//! Each executor owns an ordered queue of pending requests. CoServe's
//! *request arranging* (§4.2) inserts a new request immediately after
//! the last queued request that uses the same expert, so same-expert
//! requests form contiguous runs; the batch splitter then peels
//! maximal same-expert prefixes bounded by the current maximum
//! executable batch size.

use std::collections::VecDeque;

use coserve_model::expert::ExpertId;
use coserve_sim::time::SimTime;
use coserve_workload::stream::JobId;

/// One queued inference request (a single stage of a job).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PendingRequest {
    /// The owning job.
    pub job: JobId,
    /// Which stage of the job this is (0-based).
    pub stage: u8,
    /// The expert this stage needs.
    pub expert: ExpertId,
    /// When the stage became ready (job arrival or previous-stage
    /// completion).
    pub ready_at: SimTime,
}

/// An ordered queue of pending requests with grouped insertion.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecutorQueue {
    items: VecDeque<PendingRequest>,
}

impl ExecutorQueue {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        ExecutorQueue::default()
    }

    /// Number of queued requests.
    #[must_use]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the queue is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Appends at the tail (FCFS order — the baselines' behaviour).
    pub fn push_back(&mut self, req: PendingRequest) {
        self.items.push_back(req);
    }

    /// Inserts `req` directly after the last queued request using the
    /// same expert, or at the tail if none exists — CoServe's request
    /// arranging (§4.2).
    pub fn insert_grouped(&mut self, req: PendingRequest) {
        match self.items.iter().rposition(|r| r.expert == req.expert) {
            Some(idx) => self.items.insert(idx + 1, req),
            None => self.items.push_back(req),
        }
    }

    /// The expert needed by the queue head, if any.
    #[must_use]
    pub fn front_expert(&self) -> Option<ExpertId> {
        self.items.front().map(|r| r.expert)
    }

    /// Removes and returns the maximal same-expert prefix, capped at
    /// `max_batch` requests — the batch splitter's unit of work.
    ///
    /// Returns an empty vector when the queue is empty or `max_batch`
    /// is zero.
    pub fn pop_front_group(&mut self, max_batch: u32) -> Vec<PendingRequest> {
        let Some(expert) = self.front_expert() else {
            return Vec::new();
        };
        let mut batch = Vec::new();
        while batch.len() < max_batch as usize {
            match self.items.front() {
                Some(r) if r.expert == expert => {
                    batch.push(self.items.pop_front().expect("front exists"));
                }
                _ => break,
            }
        }
        batch
    }

    /// Iterates queued requests front to back.
    pub fn iter(&self) -> impl Iterator<Item = &PendingRequest> {
        self.items.iter()
    }

    /// Iterates the queue as contiguous same-expert runs:
    /// `(expert, run length)` — the unit of latency prediction.
    #[must_use]
    pub fn runs(&self) -> Vec<(ExpertId, u32)> {
        let mut out: Vec<(ExpertId, u32)> = Vec::new();
        for r in &self.items {
            match out.last_mut() {
                Some((e, n)) if *e == r.expert => *n += 1,
                _ => out.push((r.expert, 1)),
            }
        }
        out
    }

    /// Whether any queued request uses `expert`.
    #[must_use]
    pub fn contains_expert(&self, expert: ExpertId) -> bool {
        self.items.iter().any(|r| r.expert == expert)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(job: u32, expert: u32) -> PendingRequest {
        PendingRequest {
            job: JobId(job),
            stage: 0,
            expert: ExpertId(expert),
            ready_at: SimTime::ZERO,
        }
    }

    #[test]
    fn push_back_preserves_fcfs() {
        let mut q = ExecutorQueue::new();
        q.push_back(req(0, 5));
        q.push_back(req(1, 7));
        q.push_back(req(2, 5));
        let order: Vec<u32> = q.iter().map(|r| r.job.0).collect();
        assert_eq!(order, vec![0, 1, 2]);
        assert_eq!(q.front_expert(), Some(ExpertId(5)));
    }

    #[test]
    fn grouped_insert_joins_existing_run() {
        let mut q = ExecutorQueue::new();
        q.push_back(req(0, 5));
        q.push_back(req(1, 7));
        q.insert_grouped(req(2, 5)); // joins job 0's run
        let experts: Vec<u32> = q.iter().map(|r| r.expert.0).collect();
        assert_eq!(experts, vec![5, 5, 7]);
        let jobs: Vec<u32> = q.iter().map(|r| r.job.0).collect();
        assert_eq!(jobs, vec![0, 2, 1]);
    }

    #[test]
    fn grouped_insert_after_last_same_expert_occurrence() {
        let mut q = ExecutorQueue::new();
        q.push_back(req(0, 5));
        q.push_back(req(1, 7));
        q.push_back(req(2, 5)); // second run of expert 5 (FCFS made it so)
        q.insert_grouped(req(3, 5));
        let jobs: Vec<u32> = q.iter().map(|r| r.job.0).collect();
        // Joins the LAST run of expert 5.
        assert_eq!(jobs, vec![0, 1, 2, 3]);
    }

    #[test]
    fn grouped_insert_without_match_appends() {
        let mut q = ExecutorQueue::new();
        q.push_back(req(0, 5));
        q.insert_grouped(req(1, 9));
        let experts: Vec<u32> = q.iter().map(|r| r.expert.0).collect();
        assert_eq!(experts, vec![5, 9]);
    }

    #[test]
    fn pop_front_group_respects_expert_boundary() {
        let mut q = ExecutorQueue::new();
        for (j, e) in [(0, 5), (1, 5), (2, 5), (3, 7)] {
            q.push_back(req(j, e));
        }
        let batch = q.pop_front_group(10);
        assert_eq!(batch.len(), 3);
        assert!(batch.iter().all(|r| r.expert == ExpertId(5)));
        assert_eq!(q.len(), 1);
        assert_eq!(q.front_expert(), Some(ExpertId(7)));
    }

    #[test]
    fn pop_front_group_respects_max_batch() {
        let mut q = ExecutorQueue::new();
        for j in 0..6 {
            q.push_back(req(j, 5));
        }
        let batch = q.pop_front_group(4);
        assert_eq!(batch.len(), 4);
        assert_eq!(q.len(), 2);
        // Zero max batch yields nothing and removes nothing.
        assert!(q.pop_front_group(0).is_empty());
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn pop_from_empty_queue() {
        let mut q = ExecutorQueue::new();
        assert!(q.pop_front_group(8).is_empty());
        assert_eq!(q.front_expert(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn runs_report_contiguous_groups() {
        let mut q = ExecutorQueue::new();
        for (j, e) in [(0, 5), (1, 5), (2, 7), (3, 5)] {
            q.push_back(req(j, e));
        }
        assert_eq!(
            q.runs(),
            vec![(ExpertId(5), 2), (ExpertId(7), 1), (ExpertId(5), 1)]
        );
        assert!(q.contains_expert(ExpertId(7)));
        assert!(!q.contains_expert(ExpertId(9)));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// After arbitrary grouped insertions into an empty queue,
        /// same-expert requests are contiguous (single run per expert).
        #[test]
        fn grouped_insert_keeps_experts_contiguous(
            experts in proptest::collection::vec(0u32..8, 1..60),
        ) {
            let mut q = ExecutorQueue::new();
            for (j, &e) in experts.iter().enumerate() {
                q.insert_grouped(PendingRequest {
                    job: JobId(j as u32),
                    stage: 0,
                    expert: ExpertId(e),
                    ready_at: SimTime::ZERO,
                });
            }
            let runs = q.runs();
            let mut seen = std::collections::BTreeSet::new();
            for (e, _) in runs {
                prop_assert!(seen.insert(e), "expert {e} appears in two runs");
            }
            prop_assert_eq!(q.len(), experts.len());
        }

        /// Popping groups drains the queue completely and yields only
        /// same-expert batches.
        #[test]
        fn pop_groups_drain_queue(
            experts in proptest::collection::vec(0u32..6, 1..40),
            max_batch in 1u32..8,
        ) {
            let mut q = ExecutorQueue::new();
            for (j, &e) in experts.iter().enumerate() {
                q.push_back(PendingRequest {
                    job: JobId(j as u32),
                    stage: 0,
                    expert: ExpertId(e),
                    ready_at: SimTime::ZERO,
                });
            }
            let mut popped = 0;
            while !q.is_empty() {
                let batch = q.pop_front_group(max_batch);
                prop_assert!(!batch.is_empty());
                prop_assert!(batch.len() <= max_batch as usize);
                let first = batch[0].expert;
                prop_assert!(batch.iter().all(|r| r.expert == first));
                popped += batch.len();
            }
            prop_assert_eq!(popped, experts.len());
        }
    }
}
