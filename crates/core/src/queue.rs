//! Executor request queues.
//!
//! Each executor owns an ordered queue of pending requests. CoServe's
//! *request arranging* (§4.2) inserts a new request immediately after
//! the last queued request that uses the same expert, so same-expert
//! requests form contiguous runs; the batch splitter then peels
//! maximal same-expert prefixes bounded by the current maximum
//! executable batch size.
//!
//! Unbounded grouping can starve: a steady arrival of same-expert
//! requests keeps inserting ahead of an older request for a different
//! expert, delaying it indefinitely. [`ExecutorQueue::insert_grouped_bounded`]
//! caps how many times any queued request may be overtaken; once a
//! request hits the bound, later arrivals append at the tail instead of
//! jumping past it — grouping becomes best-effort, latency stays
//! bounded.

use std::collections::VecDeque;

use coserve_model::expert::ExpertId;
use coserve_sim::time::SimTime;
use coserve_workload::stream::JobId;

/// One queued inference request (a single stage of a job).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PendingRequest {
    /// The owning job.
    pub job: JobId,
    /// Which stage of the job this is (0-based).
    pub stage: u8,
    /// The expert this stage needs.
    pub expert: ExpertId,
    /// When the stage became ready (job arrival or previous-stage
    /// completion).
    pub ready_at: SimTime,
}

/// A queued request plus the number of times later arrivals have been
/// inserted ahead of it — the bookkeeping behind the starvation bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Slot {
    req: PendingRequest,
    overtaken: u32,
}

/// An ordered queue of pending requests with grouped insertion.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecutorQueue {
    items: VecDeque<Slot>,
}

impl ExecutorQueue {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        ExecutorQueue::default()
    }

    /// Number of queued requests.
    #[must_use]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the queue is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Appends at the tail (FCFS order — the baselines' behaviour).
    pub fn push_back(&mut self, req: PendingRequest) {
        self.items.push_back(Slot { req, overtaken: 0 });
    }

    /// Inserts `req` directly after the last queued request using the
    /// same expert, or at the tail if none exists — CoServe's request
    /// arranging (§4.2), with no starvation bound (the paper's
    /// behaviour).
    pub fn insert_grouped(&mut self, req: PendingRequest) {
        self.insert_grouped_bounded(req, u32::MAX);
    }

    /// Grouped insertion with a starvation bound: `req` joins the last
    /// same-expert run only if doing so would not overtake any request
    /// that has already been overtaken `max_overtake` times; otherwise
    /// it appends at the tail. With `max_overtake = 0` this degrades to
    /// FCFS; with `u32::MAX` it is exactly [`ExecutorQueue::insert_grouped`].
    ///
    /// Bounding overtakes bounds delay: a queued request can be passed
    /// at most `max_overtake` times, so its start time is at most the
    /// service time of the requests ahead of it at enqueue plus
    /// `max_overtake` extra requests.
    pub fn insert_grouped_bounded(&mut self, req: PendingRequest, max_overtake: u32) {
        let Some(idx) = self.items.iter().rposition(|s| s.req.expert == req.expert) else {
            self.items.push_back(Slot { req, overtaken: 0 });
            return;
        };
        let pos = idx + 1;
        if self.items.range(pos..).any(|s| s.overtaken >= max_overtake) {
            self.items.push_back(Slot { req, overtaken: 0 });
            return;
        }
        for s in self.items.range_mut(pos..) {
            s.overtaken += 1;
        }
        self.items.insert(pos, Slot { req, overtaken: 0 });
    }

    /// The expert needed by the queue head, if any.
    #[must_use]
    pub fn front_expert(&self) -> Option<ExpertId> {
        self.items.front().map(|s| s.req.expert)
    }

    /// Removes and returns the maximal same-expert prefix, capped at
    /// `max_batch` requests — the batch splitter's unit of work.
    ///
    /// Returns an empty vector when the queue is empty or `max_batch`
    /// is zero.
    pub fn pop_front_group(&mut self, max_batch: u32) -> Vec<PendingRequest> {
        let Some(expert) = self.front_expert() else {
            return Vec::new();
        };
        let mut batch = Vec::new();
        while batch.len() < max_batch as usize {
            match self.items.front() {
                Some(s) if s.req.expert == expert => {
                    batch.push(self.items.pop_front().expect("front exists").req);
                }
                _ => break,
            }
        }
        batch
    }

    /// Iterates queued requests front to back.
    pub fn iter(&self) -> impl Iterator<Item = &PendingRequest> {
        self.items.iter().map(|s| &s.req)
    }

    /// Iterates the queue as contiguous same-expert runs:
    /// `(expert, run length)` — the unit of latency prediction.
    #[must_use]
    pub fn runs(&self) -> Vec<(ExpertId, u32)> {
        let mut out: Vec<(ExpertId, u32)> = Vec::new();
        for s in &self.items {
            match out.last_mut() {
                Some((e, n)) if *e == s.req.expert => *n += 1,
                _ => out.push((s.req.expert, 1)),
            }
        }
        out
    }

    /// Whether any queued request uses `expert`.
    #[must_use]
    pub fn contains_expert(&self, expert: ExpertId) -> bool {
        self.items.iter().any(|s| s.req.expert == expert)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(job: u32, expert: u32) -> PendingRequest {
        PendingRequest {
            job: JobId(job),
            stage: 0,
            expert: ExpertId(expert),
            ready_at: SimTime::ZERO,
        }
    }

    #[test]
    fn push_back_preserves_fcfs() {
        let mut q = ExecutorQueue::new();
        q.push_back(req(0, 5));
        q.push_back(req(1, 7));
        q.push_back(req(2, 5));
        let order: Vec<u32> = q.iter().map(|r| r.job.0).collect();
        assert_eq!(order, vec![0, 1, 2]);
        assert_eq!(q.front_expert(), Some(ExpertId(5)));
    }

    #[test]
    fn grouped_insert_joins_existing_run() {
        let mut q = ExecutorQueue::new();
        q.push_back(req(0, 5));
        q.push_back(req(1, 7));
        q.insert_grouped(req(2, 5)); // joins job 0's run
        let experts: Vec<u32> = q.iter().map(|r| r.expert.0).collect();
        assert_eq!(experts, vec![5, 5, 7]);
        let jobs: Vec<u32> = q.iter().map(|r| r.job.0).collect();
        assert_eq!(jobs, vec![0, 2, 1]);
    }

    #[test]
    fn grouped_insert_after_last_same_expert_occurrence() {
        let mut q = ExecutorQueue::new();
        q.push_back(req(0, 5));
        q.push_back(req(1, 7));
        q.push_back(req(2, 5)); // second run of expert 5 (FCFS made it so)
        q.insert_grouped(req(3, 5));
        let jobs: Vec<u32> = q.iter().map(|r| r.job.0).collect();
        // Joins the LAST run of expert 5.
        assert_eq!(jobs, vec![0, 1, 2, 3]);
    }

    #[test]
    fn grouped_insert_without_match_appends() {
        let mut q = ExecutorQueue::new();
        q.push_back(req(0, 5));
        q.insert_grouped(req(1, 9));
        let experts: Vec<u32> = q.iter().map(|r| r.expert.0).collect();
        assert_eq!(experts, vec![5, 9]);
    }

    /// Regression for the grouping-starvation bug: a steady arrival of
    /// same-expert requests must not delay an older request for a
    /// different expert past the overtake bound.
    #[test]
    fn bounded_grouping_prevents_starvation() {
        let bound = 3;
        let mut q = ExecutorQueue::new();
        q.push_back(req(0, 5)); // expert-5 run the stream will join
        q.push_back(req(1, 7)); // the victim: different expert, older
        for j in 2..50 {
            q.insert_grouped_bounded(req(j, 5), bound);
        }
        let victim_pos = q.iter().position(|r| r.job == JobId(1)).unwrap();
        // Job 1 started at position 1 and may be overtaken at most
        // `bound` times, so it can sit no deeper than 1 + bound.
        assert!(
            victim_pos <= 1 + bound as usize,
            "victim starved at position {victim_pos} of {}",
            q.len()
        );
        // Unbounded grouping DOES starve in the same scenario — the bug
        // this pins.
        let mut unbounded = ExecutorQueue::new();
        unbounded.push_back(req(0, 5));
        unbounded.push_back(req(1, 7));
        for j in 2..50 {
            unbounded.insert_grouped(req(j, 5));
        }
        let starved_pos = unbounded.iter().position(|r| r.job == JobId(1)).unwrap();
        assert_eq!(starved_pos, unbounded.len() - 1, "expected tail starvation");
    }

    #[test]
    fn bounded_grouping_zero_is_fcfs() {
        let mut q = ExecutorQueue::new();
        q.push_back(req(0, 5));
        q.push_back(req(1, 7));
        q.insert_grouped_bounded(req(2, 5), 0);
        let jobs: Vec<u32> = q.iter().map(|r| r.job.0).collect();
        assert_eq!(jobs, vec![0, 1, 2], "bound 0 must never overtake");
    }

    #[test]
    fn bounded_grouping_still_groups_under_the_bound() {
        let mut q = ExecutorQueue::new();
        q.push_back(req(0, 5));
        q.push_back(req(1, 7));
        q.insert_grouped_bounded(req(2, 5), 8);
        let experts: Vec<u32> = q.iter().map(|r| r.expert.0).collect();
        assert_eq!(experts, vec![5, 5, 7], "grouping works below the bound");
    }

    #[test]
    fn pop_front_group_respects_expert_boundary() {
        let mut q = ExecutorQueue::new();
        for (j, e) in [(0, 5), (1, 5), (2, 5), (3, 7)] {
            q.push_back(req(j, e));
        }
        let batch = q.pop_front_group(10);
        assert_eq!(batch.len(), 3);
        assert!(batch.iter().all(|r| r.expert == ExpertId(5)));
        assert_eq!(q.len(), 1);
        assert_eq!(q.front_expert(), Some(ExpertId(7)));
    }

    #[test]
    fn pop_front_group_respects_max_batch() {
        let mut q = ExecutorQueue::new();
        for j in 0..6 {
            q.push_back(req(j, 5));
        }
        let batch = q.pop_front_group(4);
        assert_eq!(batch.len(), 4);
        assert_eq!(q.len(), 2);
        // Zero max batch yields nothing and removes nothing.
        assert!(q.pop_front_group(0).is_empty());
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn pop_from_empty_queue() {
        let mut q = ExecutorQueue::new();
        assert!(q.pop_front_group(8).is_empty());
        assert_eq!(q.front_expert(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn runs_report_contiguous_groups() {
        let mut q = ExecutorQueue::new();
        for (j, e) in [(0, 5), (1, 5), (2, 7), (3, 5)] {
            q.push_back(req(j, e));
        }
        assert_eq!(
            q.runs(),
            vec![(ExpertId(5), 2), (ExpertId(7), 1), (ExpertId(5), 1)]
        );
        assert!(q.contains_expert(ExpertId(7)));
        assert!(!q.contains_expert(ExpertId(9)));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// After arbitrary grouped insertions into an empty queue,
        /// same-expert requests are contiguous (single run per expert).
        #[test]
        fn grouped_insert_keeps_experts_contiguous(
            experts in proptest::collection::vec(0u32..8, 1..60),
        ) {
            let mut q = ExecutorQueue::new();
            for (j, &e) in experts.iter().enumerate() {
                q.insert_grouped(PendingRequest {
                    job: JobId(j as u32),
                    stage: 0,
                    expert: ExpertId(e),
                    ready_at: SimTime::ZERO,
                });
            }
            let runs = q.runs();
            let mut seen = std::collections::BTreeSet::new();
            for (e, _) in runs {
                prop_assert!(seen.insert(e), "expert {e} appears in two runs");
            }
            prop_assert_eq!(q.len(), experts.len());
        }

        /// Under bounded grouped insertion, no request is ever overtaken
        /// by more than `bound` later arrivals: at most `bound` requests
        /// with a larger (younger) job id sit ahead of it.
        #[test]
        fn bounded_insert_bounds_overtakes(
            experts in proptest::collection::vec(0u32..6, 1..80),
            bound in 0u32..6,
        ) {
            let mut q = ExecutorQueue::new();
            for (j, &e) in experts.iter().enumerate() {
                q.insert_grouped_bounded(PendingRequest {
                    job: JobId(j as u32),
                    stage: 0,
                    expert: ExpertId(e),
                    ready_at: SimTime::ZERO,
                }, bound);
            }
            let order: Vec<u32> = q.iter().map(|r| r.job.0).collect();
            for (pos, &job) in order.iter().enumerate() {
                let younger_ahead = order[..pos].iter().filter(|&&o| o > job).count();
                prop_assert!(
                    younger_ahead <= bound as usize,
                    "job {job} overtaken {younger_ahead} times (bound {bound})"
                );
            }
            prop_assert_eq!(q.len(), experts.len());
        }

        /// Popping groups drains the queue completely and yields only
        /// same-expert batches.
        #[test]
        fn pop_groups_drain_queue(
            experts in proptest::collection::vec(0u32..6, 1..40),
            max_batch in 1u32..8,
        ) {
            let mut q = ExecutorQueue::new();
            for (j, &e) in experts.iter().enumerate() {
                q.push_back(PendingRequest {
                    job: JobId(j as u32),
                    stage: 0,
                    expert: ExpertId(e),
                    ready_at: SimTime::ZERO,
                });
            }
            let mut popped = 0;
            while !q.is_empty() {
                let batch = q.pop_front_group(max_batch);
                prop_assert!(!batch.is_empty());
                prop_assert!(batch.len() <= max_batch as usize);
                let first = batch[0].expert;
                prop_assert!(batch.iter().all(|r| r.expert == first));
                popped += batch.len();
            }
            prop_assert_eq!(popped, experts.len());
        }
    }
}
