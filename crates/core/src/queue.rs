//! Executor request queues.
//!
//! Each executor owns an ordered queue of pending requests. CoServe's
//! *request arranging* (§4.2) inserts a new request immediately after
//! the last queued request that uses the same expert, so same-expert
//! requests form contiguous runs; the batch splitter then peels
//! maximal same-expert prefixes bounded by the current maximum
//! executable batch size.
//!
//! Unbounded grouping can starve: a steady arrival of same-expert
//! requests keeps inserting ahead of an older request for a different
//! expert, delaying it indefinitely. [`ExecutorQueue::insert_grouped_bounded`]
//! caps how many times any queued request may be overtaken; once a
//! request hits the bound, later arrivals append at the tail instead of
//! jumping past it — grouping becomes best-effort, latency stays
//! bounded.
//!
//! ## Run-bucketed storage
//!
//! The queue stores requests *as* its contiguous same-expert runs: a
//! deque of runs, each owning its requests, plus a per-expert index
//! (total count, run count, the expert's last run as a *virtual* run
//! index stable across front retirements). Grouped insertion is then a
//! push onto the joined run's own buffer — never a mid-deque shift of
//! everything behind it — and batch peeling pops from the front run.
//! Membership tests and last-run lookups are O(1) index reads;
//! [`ExecutorQueue::runs_iter`] walks the runs with zero allocation.
//!
//! Overtake counts for the starvation bound are tracked per *run*, not
//! per request: a mid-queue insertion overtakes exactly the complete
//! runs behind the insertion point (insertion always lands on a run
//! boundary), so each run carries one `boost` counter and each request
//! the boost it joined at (`debt`); a request's effective overtake
//! count is `boost - debt`. Within a run the front request is the
//! oldest and therefore carries the run's maximum effective count,
//! which makes the bound check O(runs), not O(requests).

use std::collections::{BTreeMap, VecDeque};

use coserve_model::expert::ExpertId;
use coserve_sim::time::SimTime;
use coserve_workload::stream::JobId;

/// One queued inference request (a single stage of a job).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PendingRequest {
    /// The owning job.
    pub job: JobId,
    /// Which stage of the job this is (0-based).
    pub stage: u8,
    /// The expert this stage needs.
    pub expert: ExpertId,
    /// When the stage became ready (job arrival or previous-stage
    /// completion).
    pub ready_at: SimTime,
}

/// A queued request plus the owning run's `boost` value at insertion
/// time — the bookkeeping behind the starvation bound. The request's
/// effective overtake count is `run.boost - debt`.
///
/// Overtake counts are only maintained by bounded insertions (finite
/// `max_overtake`); unbounded grouping skips the bookkeeping because no
/// bound can ever trip.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Slot {
    req: PendingRequest,
    debt: u32,
}

/// One contiguous same-expert run, owning its requests.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Run {
    expert: ExpertId,
    items: VecDeque<Slot>,
    /// Overtake increments applied uniformly to every request in the
    /// run (mid-queue insertions overtake whole trailing runs).
    boost: u32,
}

/// Per-expert bookkeeping: where the expert's requests sit without
/// scanning the queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ExpertIndex {
    /// Total queued requests for the expert (across all its runs).
    count: u32,
    /// How many runs currently hold the expert.
    runs: u32,
    /// Virtual index of the expert's last run (physical run index plus
    /// the number of runs ever retired at the front).
    last_run: u64,
    /// Cached length of the expert's last run, so the scheduler's
    /// per-candidate delta prediction is a single index read.
    last_run_len: u32,
}

/// What a mutation did to the queue's run structure — the delta the
/// engine needs to keep its per-executor work-left aggregates current
/// without rescanning the queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunDelta {
    /// The expert whose run changed.
    pub expert: ExpertId,
    /// The run's length before the mutation (0: a run was created).
    pub len_before: u32,
    /// The run's length after the mutation (0: the run was retired).
    pub len_after: u32,
    /// Whether the expert entered (insert) or left (pop) the queue
    /// entirely.
    pub membership_changed: bool,
}

/// An ordered queue of pending requests with grouped insertion.
#[derive(Debug, Clone, Default)]
pub struct ExecutorQueue {
    /// The queue content, bucketed into contiguous same-expert runs.
    runs: VecDeque<Run>,
    /// Dense expert-indexed bookkeeping slots: membership tests and
    /// last-run lookups are O(1) slot reads on the assignment hot path.
    /// Grown on demand; `None` for experts not currently queued.
    index: Vec<Option<ExpertIndex>>,
    /// The distinct queued experts, kept sorted by id — the
    /// deterministic iteration order [`ExecutorQueue::queued_experts`]
    /// promises, without walking the dense table.
    present: Vec<ExpertId>,
    /// Total queued requests across all runs.
    total: usize,
    /// Runs ever retired at the front (virtual-run-index base).
    runs_retired: u64,
    /// Recycled run item buffers, so steady-state run churn allocates
    /// nothing.
    spare: Vec<VecDeque<Slot>>,
}

/// Queues are equal when they hold the same requests in the same order;
/// the derived run index, virtual-index bases and overtake counters
/// are maintained state, not identity.
impl PartialEq for ExecutorQueue {
    fn eq(&self, other: &Self) -> bool {
        self.total == other.total && self.iter().eq(other.iter())
    }
}

impl Eq for ExecutorQueue {}

impl ExecutorQueue {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        ExecutorQueue::default()
    }

    /// Number of queued requests.
    #[must_use]
    pub fn len(&self) -> usize {
        self.total
    }

    /// Whether the queue is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Appends a request at the very end, extending the tail run or
    /// opening a new one, and updates the index.
    fn append_tail(&mut self, req: PendingRequest) -> RunDelta {
        let expert = req.expert;
        self.total += 1;
        let extends = self.runs.back().is_some_and(|r| r.expert == expert);
        let (len_before, len_after) = if extends {
            let run = self.runs.back_mut().expect("tail run exists");
            run.items.push_back(Slot {
                req,
                debt: run.boost,
            });
            (run.items.len() as u32 - 1, run.items.len() as u32)
        } else {
            let mut items = self.spare.pop().unwrap_or_default();
            debug_assert!(items.is_empty(), "spare buffers are recycled empty");
            items.push_back(Slot { req, debt: 0 });
            self.runs.push_back(Run {
                expert,
                items,
                boost: 0,
            });
            (0, 1)
        };
        let last_run = self.runs_retired + self.runs.len() as u64 - 1;
        if self.index.len() <= expert.index() {
            self.index.resize(expert.index() + 1, None);
        }
        let entry = self.index[expert.index()].get_or_insert(ExpertIndex {
            count: 0,
            runs: 0,
            last_run,
            last_run_len: 0,
        });
        let membership_changed = entry.count == 0;
        entry.count += 1;
        entry.last_run = last_run;
        entry.last_run_len = len_after;
        if !extends {
            entry.runs += 1;
        }
        if membership_changed {
            let pos = self
                .present
                .binary_search(&expert)
                .expect_err("membership change implies the expert was absent");
            self.present.insert(pos, expert);
        }
        RunDelta {
            expert,
            len_before,
            len_after,
            membership_changed,
        }
    }

    /// Appends at the tail (FCFS order — the baselines' behaviour).
    pub fn push_back(&mut self, req: PendingRequest) -> RunDelta {
        self.append_tail(req)
    }

    /// Inserts `req` directly after the last queued request using the
    /// same expert, or at the tail if none exists — CoServe's request
    /// arranging (§4.2), with no starvation bound (the paper's
    /// behaviour).
    pub fn insert_grouped(&mut self, req: PendingRequest) -> RunDelta {
        self.insert_grouped_bounded(req, u32::MAX)
    }

    /// Grouped insertion with a starvation bound: `req` joins the last
    /// same-expert run only if doing so would not overtake any request
    /// that has already been overtaken `max_overtake` times; otherwise
    /// it appends at the tail. With `max_overtake = 0` this degrades to
    /// FCFS; with `u32::MAX` it is exactly [`ExecutorQueue::insert_grouped`].
    ///
    /// Bounding overtakes bounds delay: a queued request can be passed
    /// at most `max_overtake` times, so its start time is at most the
    /// service time of the requests ahead of it at enqueue plus
    /// `max_overtake` extra requests.
    pub fn insert_grouped_bounded(&mut self, req: PendingRequest, max_overtake: u32) -> RunDelta {
        let expert = req.expert;
        let Some(entry) = self.index.get(expert.index()).and_then(Option::as_ref) else {
            return self.append_tail(req);
        };
        let run_idx = (entry.last_run - self.runs_retired) as usize;
        if run_idx + 1 == self.runs.len() {
            // The expert's last run is the queue tail: a plain append
            // that extends its run, overtaking nobody.
            return self.append_tail(req);
        }
        if max_overtake != u32::MAX {
            // The insertion point is a run boundary, so it overtakes
            // exactly the complete runs behind it. Each run's maximum
            // effective overtake count belongs to its oldest (front)
            // request.
            let blocked = self.runs.range(run_idx + 1..).any(|r| {
                let front_debt = r.items.front().expect("runs are never empty").debt;
                r.boost - front_debt >= max_overtake
            });
            if blocked {
                // Bound hit: best-effort grouping falls back to the
                // tail. The tail run cannot be this expert's (its last
                // run is mid-queue), so this opens a new run.
                return self.append_tail(req);
            }
            for r in self.runs.range_mut(run_idx + 1..) {
                r.boost += 1;
            }
        }
        self.total += 1;
        let run = &mut self.runs[run_idx];
        debug_assert_eq!(run.expert, expert, "index points at a foreign run");
        run.items.push_back(Slot {
            req,
            debt: run.boost,
        });
        let len_after = run.items.len() as u32;
        let entry = self.index[expert.index()].as_mut().expect("present");
        entry.count += 1;
        entry.last_run_len = len_after;
        RunDelta {
            expert,
            len_before: len_after - 1,
            len_after,
            membership_changed: false,
        }
    }

    /// The expert needed by the queue head, if any.
    #[must_use]
    pub fn front_expert(&self) -> Option<ExpertId> {
        self.runs.front().map(|r| r.expert)
    }

    /// Removes and returns the maximal same-expert prefix, capped at
    /// `max_batch` requests — the batch splitter's unit of work.
    ///
    /// Returns an empty vector when the queue is empty or `max_batch`
    /// is zero. Hot paths should prefer
    /// [`ExecutorQueue::pop_front_group_into`], which reuses a caller
    /// buffer instead of allocating.
    pub fn pop_front_group(&mut self, max_batch: u32) -> Vec<PendingRequest> {
        let mut batch = Vec::new();
        self.pop_front_group_into(max_batch, &mut batch);
        batch
    }

    /// Like [`ExecutorQueue::pop_front_group`], but appends the batch to
    /// `out` (which is cleared first) so the caller can recycle the
    /// buffer across pops. Returns what happened to the front run, or
    /// `None` when nothing was popped.
    pub fn pop_front_group_into(
        &mut self,
        max_batch: u32,
        out: &mut Vec<PendingRequest>,
    ) -> Option<RunDelta> {
        out.clear();
        if max_batch == 0 {
            return None;
        }
        let front_virtual = self.runs_retired;
        let front = self.runs.front_mut()?;
        let expert = front.expert;
        let len_before = front.items.len() as u32;
        let take = len_before.min(max_batch);
        out.reserve(take as usize);
        for _ in 0..take {
            out.push(front.items.pop_front().expect("run accounts items").req);
        }
        self.total -= take as usize;
        let len_after = len_before - take;
        if len_after == 0 {
            let run = self.runs.pop_front().expect("front run exists");
            self.runs_retired += 1;
            self.spare.push(run.items);
        }
        let entry = self.index[expert.index()].as_mut().expect("queued expert");
        entry.count -= take;
        let membership_changed = entry.count == 0;
        if membership_changed {
            self.index[expert.index()] = None;
            let pos = self
                .present
                .binary_search(&expert)
                .expect("drained expert was present");
            self.present.remove(pos);
        } else if len_after == 0 {
            entry.runs -= 1;
        } else if entry.last_run == front_virtual {
            // The front run is also the expert's last run: its cached
            // length shrank in place.
            entry.last_run_len = len_after;
        }
        Some(RunDelta {
            expert,
            len_before,
            len_after,
            membership_changed,
        })
    }

    /// Iterates queued requests front to back.
    pub fn iter(&self) -> impl Iterator<Item = &PendingRequest> {
        self.runs
            .iter()
            .flat_map(|r| r.items.iter())
            .map(|s| &s.req)
    }

    /// Iterates the queue as contiguous same-expert runs:
    /// `(expert, run length)` — the unit of latency prediction. Served
    /// from the incrementally maintained run index: zero allocation,
    /// zero queue scan.
    pub fn runs_iter(&self) -> impl Iterator<Item = (ExpertId, u32)> + '_ {
        self.runs.iter().map(|r| (r.expert, r.items.len() as u32))
    }

    /// The maintained runs as a fresh vector (convenience for tests and
    /// diagnostics; hot paths use [`ExecutorQueue::runs_iter`]).
    #[must_use]
    pub fn runs(&self) -> Vec<(ExpertId, u32)> {
        self.runs_iter().collect()
    }

    /// Iterates the distinct experts currently queued, in id order.
    pub fn queued_experts(&self) -> impl Iterator<Item = ExpertId> + '_ {
        self.present.iter().copied()
    }

    /// Number of distinct experts currently queued.
    #[must_use]
    pub fn distinct_experts(&self) -> usize {
        self.present.len()
    }

    /// Whether any queued request uses `expert` — an O(1) slot read,
    /// never a queue scan.
    #[must_use]
    pub fn contains_expert(&self, expert: ExpertId) -> bool {
        self.index.get(expert.index()).is_some_and(Option::is_some)
    }

    /// Length of the *last* run of `expert` (0 when absent) — what the
    /// scheduler's delta prediction needs to decide whether a new
    /// request joins an open batch.
    #[must_use]
    pub fn last_run_len(&self, expert: ExpertId) -> u32 {
        self.queued_last_run_len(expert).unwrap_or(0)
    }

    /// Length of the *last* run of `expert`, or `None` when the expert
    /// is not queued at all — membership test and run-length lookup in
    /// a single O(1) index read, which is what the scheduler's
    /// per-candidate delta prediction probes for every executor.
    #[must_use]
    pub fn queued_last_run_len(&self, expert: ExpertId) -> Option<u32> {
        self.index
            .get(expert.index())
            .and_then(Option::as_ref)
            .map(|e| e.last_run_len)
    }

    /// Recomputes the run structure from scratch by scanning the queue —
    /// the reference the incremental index is pinned against in tests.
    #[must_use]
    pub fn recompute_runs(&self) -> Vec<(ExpertId, u32)> {
        let mut out: Vec<(ExpertId, u32)> = Vec::new();
        for req in self.iter() {
            match out.last_mut() {
                Some((e, n)) if *e == req.expert => *n += 1,
                _ => out.push((req.expert, 1)),
            }
        }
        out
    }

    /// Panics unless the incremental index exactly matches a from-
    /// scratch recomputation. Test/debug aid.
    #[doc(hidden)]
    pub fn assert_index_consistent(&self) {
        let fresh = self.recompute_runs();
        assert_eq!(self.runs(), fresh, "run deque diverged from queue");
        assert_eq!(
            self.total,
            fresh.iter().map(|&(_, n)| n as usize).sum::<usize>(),
            "total diverged from run contents"
        );
        assert!(
            self.runs.iter().all(|r| !r.items.is_empty()),
            "empty runs must be retired"
        );
        assert!(
            self.spare.iter().all(VecDeque::is_empty),
            "spare buffers must be recycled empty"
        );
        let mut counts: BTreeMap<ExpertId, (u32, u32, u64)> = BTreeMap::new();
        for (pos, &(e, n)) in fresh.iter().enumerate() {
            let entry = counts.entry(e).or_insert((0, 0, 0));
            entry.0 += n;
            entry.1 += 1;
            entry.2 = self.runs_retired + pos as u64;
        }
        assert_eq!(
            self.present.len(),
            counts.len(),
            "present set covers the wrong expert count"
        );
        assert!(
            self.present.windows(2).all(|w| w[0] < w[1]),
            "present set is not strictly sorted"
        );
        let indexed = self
            .index
            .iter()
            .enumerate()
            .filter(|(_, s)| s.is_some())
            .count();
        assert_eq!(indexed, counts.len(), "index covers the wrong expert set");
        for (e, (count, runs, last_run)) in counts {
            assert!(self.present.binary_search(&e).is_ok(), "{e} in present set");
            let idx = self.index[e.index()].as_ref().expect("expert indexed");
            assert_eq!(idx.count, count, "{e} count");
            assert_eq!(idx.runs, runs, "{e} runs");
            assert_eq!(idx.last_run, last_run, "{e} last_run");
            let run_idx = (idx.last_run - self.runs_retired) as usize;
            assert_eq!(self.runs[run_idx].expert, e, "{e} last_run points home");
            assert_eq!(
                idx.last_run_len,
                self.runs[run_idx].items.len() as u32,
                "{e} cached last-run length"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(job: u32, expert: u32) -> PendingRequest {
        PendingRequest {
            job: JobId(job),
            stage: 0,
            expert: ExpertId(expert),
            ready_at: SimTime::ZERO,
        }
    }

    #[test]
    fn push_back_preserves_fcfs() {
        let mut q = ExecutorQueue::new();
        q.push_back(req(0, 5));
        q.push_back(req(1, 7));
        q.push_back(req(2, 5));
        let order: Vec<u32> = q.iter().map(|r| r.job.0).collect();
        assert_eq!(order, vec![0, 1, 2]);
        assert_eq!(q.front_expert(), Some(ExpertId(5)));
        q.assert_index_consistent();
    }

    #[test]
    fn grouped_insert_joins_existing_run() {
        let mut q = ExecutorQueue::new();
        q.push_back(req(0, 5));
        q.push_back(req(1, 7));
        let delta = q.insert_grouped(req(2, 5)); // joins job 0's run
        assert_eq!(delta.len_before, 1);
        assert_eq!(delta.len_after, 2);
        assert!(!delta.membership_changed);
        let experts: Vec<u32> = q.iter().map(|r| r.expert.0).collect();
        assert_eq!(experts, vec![5, 5, 7]);
        let jobs: Vec<u32> = q.iter().map(|r| r.job.0).collect();
        assert_eq!(jobs, vec![0, 2, 1]);
        q.assert_index_consistent();
    }

    #[test]
    fn grouped_insert_after_last_same_expert_occurrence() {
        let mut q = ExecutorQueue::new();
        q.push_back(req(0, 5));
        q.push_back(req(1, 7));
        q.push_back(req(2, 5)); // second run of expert 5 (FCFS made it so)
        q.insert_grouped(req(3, 5));
        let jobs: Vec<u32> = q.iter().map(|r| r.job.0).collect();
        // Joins the LAST run of expert 5.
        assert_eq!(jobs, vec![0, 1, 2, 3]);
        assert_eq!(q.last_run_len(ExpertId(5)), 2);
        q.assert_index_consistent();
    }

    #[test]
    fn grouped_insert_without_match_appends() {
        let mut q = ExecutorQueue::new();
        q.push_back(req(0, 5));
        let delta = q.insert_grouped(req(1, 9));
        assert!(delta.membership_changed);
        let experts: Vec<u32> = q.iter().map(|r| r.expert.0).collect();
        assert_eq!(experts, vec![5, 9]);
        q.assert_index_consistent();
    }

    /// Regression for the grouping-starvation bug: a steady arrival of
    /// same-expert requests must not delay an older request for a
    /// different expert past the overtake bound.
    #[test]
    fn bounded_grouping_prevents_starvation() {
        let bound = 3;
        let mut q = ExecutorQueue::new();
        q.push_back(req(0, 5)); // expert-5 run the stream will join
        q.push_back(req(1, 7)); // the victim: different expert, older
        for j in 2..50 {
            q.insert_grouped_bounded(req(j, 5), bound);
        }
        let victim_pos = q.iter().position(|r| r.job == JobId(1)).unwrap();
        // Job 1 started at position 1 and may be overtaken at most
        // `bound` times, so it can sit no deeper than 1 + bound.
        assert!(
            victim_pos <= 1 + bound as usize,
            "victim starved at position {victim_pos} of {}",
            q.len()
        );
        q.assert_index_consistent();
        // Unbounded grouping DOES starve in the same scenario — the bug
        // this pins.
        let mut unbounded = ExecutorQueue::new();
        unbounded.push_back(req(0, 5));
        unbounded.push_back(req(1, 7));
        for j in 2..50 {
            unbounded.insert_grouped(req(j, 5));
        }
        let starved_pos = unbounded.iter().position(|r| r.job == JobId(1)).unwrap();
        assert_eq!(starved_pos, unbounded.len() - 1, "expected tail starvation");
        unbounded.assert_index_consistent();
    }

    #[test]
    fn bounded_grouping_zero_is_fcfs() {
        let mut q = ExecutorQueue::new();
        q.push_back(req(0, 5));
        q.push_back(req(1, 7));
        q.insert_grouped_bounded(req(2, 5), 0);
        let jobs: Vec<u32> = q.iter().map(|r| r.job.0).collect();
        assert_eq!(jobs, vec![0, 1, 2], "bound 0 must never overtake");
        q.assert_index_consistent();
    }

    #[test]
    fn bounded_grouping_still_groups_under_the_bound() {
        let mut q = ExecutorQueue::new();
        q.push_back(req(0, 5));
        q.push_back(req(1, 7));
        q.insert_grouped_bounded(req(2, 5), 8);
        let experts: Vec<u32> = q.iter().map(|r| r.expert.0).collect();
        assert_eq!(experts, vec![5, 5, 7], "grouping works below the bound");
        q.assert_index_consistent();
    }

    #[test]
    fn pop_front_group_respects_expert_boundary() {
        let mut q = ExecutorQueue::new();
        for (j, e) in [(0, 5), (1, 5), (2, 5), (3, 7)] {
            q.push_back(req(j, e));
        }
        let batch = q.pop_front_group(10);
        assert_eq!(batch.len(), 3);
        assert!(batch.iter().all(|r| r.expert == ExpertId(5)));
        assert_eq!(q.len(), 1);
        assert_eq!(q.front_expert(), Some(ExpertId(7)));
        q.assert_index_consistent();
    }

    #[test]
    fn pop_front_group_respects_max_batch() {
        let mut q = ExecutorQueue::new();
        for j in 0..6 {
            q.push_back(req(j, 5));
        }
        let batch = q.pop_front_group(4);
        assert_eq!(batch.len(), 4);
        assert_eq!(q.len(), 2);
        q.assert_index_consistent();
        // Zero max batch yields nothing and removes nothing.
        assert!(q.pop_front_group(0).is_empty());
        assert_eq!(q.len(), 2);
        q.assert_index_consistent();
    }

    #[test]
    fn pop_from_empty_queue() {
        let mut q = ExecutorQueue::new();
        assert!(q.pop_front_group(8).is_empty());
        assert_eq!(q.front_expert(), None);
        assert!(q.is_empty());
        let mut out = vec![req(9, 9)];
        assert_eq!(q.pop_front_group_into(8, &mut out), None);
        assert!(out.is_empty(), "buffer is cleared even when nothing pops");
    }

    #[test]
    fn pop_into_reports_run_delta() {
        let mut q = ExecutorQueue::new();
        for (j, e) in [(0, 5), (1, 5), (2, 5), (3, 7)] {
            q.push_back(req(j, e));
        }
        let mut out = Vec::new();
        let delta = q.pop_front_group_into(2, &mut out).unwrap();
        assert_eq!(delta.expert, ExpertId(5));
        assert_eq!(delta.len_before, 3);
        assert_eq!(delta.len_after, 1);
        assert!(!delta.membership_changed);
        q.assert_index_consistent();
        let delta = q.pop_front_group_into(2, &mut out).unwrap();
        assert_eq!(delta.len_after, 0);
        assert!(delta.membership_changed, "expert 5 fully drained");
        q.assert_index_consistent();
    }

    #[test]
    fn runs_report_contiguous_groups() {
        let mut q = ExecutorQueue::new();
        for (j, e) in [(0, 5), (1, 5), (2, 7), (3, 5)] {
            q.push_back(req(j, e));
        }
        assert_eq!(
            q.runs(),
            vec![(ExpertId(5), 2), (ExpertId(7), 1), (ExpertId(5), 1)]
        );
        assert_eq!(q.runs(), q.recompute_runs());
        assert!(q.contains_expert(ExpertId(7)));
        assert!(!q.contains_expert(ExpertId(9)));
        assert_eq!(q.distinct_experts(), 2);
        let queued: Vec<ExpertId> = q.queued_experts().collect();
        assert_eq!(queued, vec![ExpertId(5), ExpertId(7)]);
        assert_eq!(q.last_run_len(ExpertId(5)), 1);
        assert_eq!(q.last_run_len(ExpertId(7)), 1);
        assert_eq!(q.last_run_len(ExpertId(9)), 0);
    }

    #[test]
    fn equality_ignores_bookkeeping_history() {
        // Same final order, different mutation history: still equal.
        let mut a = ExecutorQueue::new();
        a.push_back(req(9, 1));
        a.pop_front_group(4);
        a.push_back(req(0, 5));
        a.push_back(req(1, 7));
        let mut b = ExecutorQueue::new();
        b.push_back(req(0, 5));
        b.push_back(req(1, 7));
        assert_eq!(a, b);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// The pre-refactor queue algorithm — a plain request list with
    /// scan-based grouped insertion — under the current overtake
    /// semantics: counters are maintained only by finite-bound inserts
    /// (see [`Slot`]). This is the one intentional divergence from the
    /// historical code, which also counted unbounded inserts as
    /// overtakes; it is observable only when unbounded and bounded
    /// insertions are mixed on one queue, which the engine never does
    /// (the arrange policy is fixed per run). The incremental queue is
    /// pinned against this reference model.
    #[derive(Default)]
    struct ReferenceQueue {
        items: Vec<(PendingRequest, u32)>,
    }

    impl ReferenceQueue {
        fn push_back(&mut self, req: PendingRequest) {
            self.items.push((req, 0));
        }

        fn insert_grouped_bounded(&mut self, req: PendingRequest, max_overtake: u32) {
            let Some(idx) = self.items.iter().rposition(|(s, _)| s.expert == req.expert) else {
                self.items.push((req, 0));
                return;
            };
            let pos = idx + 1;
            if max_overtake != u32::MAX {
                if self.items[pos..].iter().any(|&(_, o)| o >= max_overtake) {
                    self.items.push((req, 0));
                    return;
                }
                for s in &mut self.items[pos..] {
                    s.1 += 1;
                }
            }
            self.items.insert(pos, (req, 0));
        }

        fn pop_front_group(&mut self, max_batch: u32) -> Vec<PendingRequest> {
            let Some(&(first, _)) = self.items.first() else {
                return Vec::new();
            };
            let mut take = 0usize;
            while take < max_batch as usize
                && take < self.items.len()
                && self.items[take].0.expert == first.expert
            {
                take += 1;
            }
            self.items.drain(..take).map(|(r, _)| r).collect()
        }

        fn order(&self) -> Vec<PendingRequest> {
            self.items.iter().map(|&(r, _)| r).collect()
        }
    }

    proptest! {
        /// Under arbitrary interleavings of every mutation, the
        /// incremental queue matches the pre-refactor reference model
        /// request for request, and its maintained run index matches a
        /// from-scratch recomputation.
        ///
        /// Op encoding (the vendored proptest has no `prop_oneof`):
        /// selector 0 = FCFS push, 1 = unbounded grouped insert,
        /// 2 = bounded grouped insert, 3 = pop a group.
        #[test]
        fn incremental_index_matches_reference_model(
            ops in proptest::collection::vec(((0u8..4), (0u32..8), (0u32..5)), 1..120),
        ) {
            let mut q = ExecutorQueue::new();
            let mut reference = ReferenceQueue::default();
            for (j, &(sel, e, b)) in ops.iter().enumerate() {
                let r = |e: u32| PendingRequest {
                    job: JobId(j as u32),
                    stage: 0,
                    expert: ExpertId(e),
                    ready_at: SimTime::ZERO,
                };
                match sel {
                    0 => {
                        q.push_back(r(e));
                        reference.push_back(r(e));
                    }
                    1 => {
                        q.insert_grouped(r(e));
                        reference.insert_grouped_bounded(r(e), u32::MAX);
                    }
                    2 => {
                        q.insert_grouped_bounded(r(e), b);
                        reference.insert_grouped_bounded(r(e), b);
                    }
                    _ => {
                        let max_batch = b + 1;
                        let got = q.pop_front_group(max_batch);
                        let want = reference.pop_front_group(max_batch);
                        prop_assert_eq!(got, want);
                    }
                }
                let order: Vec<PendingRequest> = q.iter().copied().collect();
                prop_assert_eq!(order, reference.order());
                prop_assert_eq!(q.runs(), q.recompute_runs());
                q.assert_index_consistent();
            }
        }

        /// After arbitrary grouped insertions into an empty queue,
        /// same-expert requests are contiguous (single run per expert).
        #[test]
        fn grouped_insert_keeps_experts_contiguous(
            experts in proptest::collection::vec(0u32..8, 1..60),
        ) {
            let mut q = ExecutorQueue::new();
            for (j, &e) in experts.iter().enumerate() {
                q.insert_grouped(PendingRequest {
                    job: JobId(j as u32),
                    stage: 0,
                    expert: ExpertId(e),
                    ready_at: SimTime::ZERO,
                });
            }
            let runs = q.runs();
            let mut seen = std::collections::BTreeSet::new();
            for (e, _) in runs {
                prop_assert!(seen.insert(e), "expert {e} appears in two runs");
            }
            prop_assert_eq!(q.len(), experts.len());
        }

        /// Under bounded grouped insertion, no request is ever overtaken
        /// by more than `bound` later arrivals: at most `bound` requests
        /// with a larger (younger) job id sit ahead of it.
        #[test]
        fn bounded_insert_bounds_overtakes(
            experts in proptest::collection::vec(0u32..6, 1..80),
            bound in 0u32..6,
        ) {
            let mut q = ExecutorQueue::new();
            for (j, &e) in experts.iter().enumerate() {
                q.insert_grouped_bounded(PendingRequest {
                    job: JobId(j as u32),
                    stage: 0,
                    expert: ExpertId(e),
                    ready_at: SimTime::ZERO,
                }, bound);
            }
            let order: Vec<u32> = q.iter().map(|r| r.job.0).collect();
            for (pos, &job) in order.iter().enumerate() {
                let younger_ahead = order[..pos].iter().filter(|&&o| o > job).count();
                prop_assert!(
                    younger_ahead <= bound as usize,
                    "job {job} overtaken {younger_ahead} times (bound {bound})"
                );
            }
            prop_assert_eq!(q.len(), experts.len());
        }

        /// Popping groups drains the queue completely and yields only
        /// same-expert batches.
        #[test]
        fn pop_groups_drain_queue(
            experts in proptest::collection::vec(0u32..6, 1..40),
            max_batch in 1u32..8,
        ) {
            let mut q = ExecutorQueue::new();
            for (j, &e) in experts.iter().enumerate() {
                q.push_back(PendingRequest {
                    job: JobId(j as u32),
                    stage: 0,
                    expert: ExpertId(e),
                    ready_at: SimTime::ZERO,
                });
            }
            let mut popped = 0;
            while !q.is_empty() {
                let batch = q.pop_front_group(max_batch);
                prop_assert!(!batch.is_empty());
                prop_assert!(batch.len() <= max_batch as usize);
                let first = batch[0].expert;
                prop_assert!(batch.iter().all(|r| r.expert == first));
                popped += batch.len();
            }
            prop_assert_eq!(popped, experts.len());
        }
    }
}
