//! Offline autotuning: memory allocation and executor counts.
//!
//! Two searches run in the offline phase on a smaller representative
//! workload:
//!
//! * the **decay-window search** (§4.4) slides a shrinking window over
//!   the expert-usage CDF, measures throughput with the window's upper
//!   bound of experts kept GPU-resident, fits a linear upward trend to
//!   the first few measurements (Eq. 2) and stops when reality deviates
//!   from the trend by more than the error margin (Eq. 3) — throughput
//!   has started to drop because intermediate-result memory is being
//!   squeezed. The chosen resident count is drawn from the final window.
//! * the **executor-count search** (Figure 17) simply measures a small
//!   grid of GPU/CPU executor counts and keeps the best.

use coserve_metrics::stats::{linear_fit, LinFit};
use coserve_model::coe::CoeModel;
use coserve_sim::device::DeviceProfile;
use coserve_sim::rng::SimRng;
use coserve_workload::stream::RequestStream;

use crate::config::SystemConfig;
use crate::engine::Engine;
use crate::perf::PerfMatrix;
use crate::presets;

/// The expert-usage cumulative distribution (Figure 11).
#[derive(Debug, Clone, PartialEq)]
pub struct UsageCdf {
    cumulative: Vec<f64>,
}

impl UsageCdf {
    /// Builds the CDF from a performance matrix: experts sorted by
    /// descending usage probability, cumulative mass normalized to 1.
    #[must_use]
    pub fn from_perf(perf: &PerfMatrix) -> Self {
        let mut probs: Vec<f64> = (0..perf.num_experts() as u32)
            .map(|i| perf.usage_prob(coserve_model::expert::ExpertId(i)))
            .collect();
        probs.sort_by(|a, b| b.partial_cmp(a).expect("finite probabilities"));
        let total: f64 = probs.iter().sum();
        let mut acc = 0.0;
        let cumulative = probs
            .iter()
            .map(|p| {
                acc += p;
                if total > 0.0 {
                    acc / total
                } else {
                    0.0
                }
            })
            .collect();
        UsageCdf { cumulative }
    }

    /// The fraction of usage covered by the `k` most used experts.
    #[must_use]
    pub fn coverage(&self, k: usize) -> f64 {
        if k == 0 {
            0.0
        } else {
            self.cumulative[(k - 1).min(self.cumulative.len() - 1)]
        }
    }

    /// Number of experts.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// Whether the CDF is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// `(k, coverage)` points for plotting Figure 11.
    #[must_use]
    pub fn points(&self) -> Vec<(f64, f64)> {
        self.cumulative
            .iter()
            .enumerate()
            .map(|(i, &c)| ((i + 1) as f64, c))
            .collect()
    }
}

/// Options for the decay-window search (§4.4; the evaluation used an
/// initial window of 15 and a 5 % error margin).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowSearchOptions {
    /// Initial window size (also sets the decay factor, Eq. 1).
    pub initial_window: f64,
    /// Relative deviation that stops the slide (Eq. 3).
    pub error_margin: f64,
    /// Number of leading trials used for the linear fit (Eq. 2).
    pub fit_points: usize,
    /// Hard cap on trials (safety net).
    pub max_trials: usize,
    /// Seed for the final in-window selection.
    pub seed: u64,
}

impl Default for WindowSearchOptions {
    fn default() -> Self {
        WindowSearchOptions {
            initial_window: 15.0,
            error_margin: 0.05,
            fit_points: 3,
            max_trials: 12,
            seed: 0x57AB,
        }
    }
}

/// One measured point of the window search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowTrial {
    /// Residents evaluated (the window's upper bound).
    pub residents: usize,
    /// Measured throughput on the sample workload, img/s.
    pub throughput: f64,
}

/// Outcome of the decay-window search.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowSearchResult {
    /// Every measured point, in slide order (Figure 18's series).
    pub trials: Vec<WindowTrial>,
    /// The selected window `[lo, hi]` in resident-expert counts.
    pub selected: (usize, usize),
    /// The resident count chosen from the window.
    pub chosen: usize,
    /// The linear trend fitted to the leading trials, if enough points.
    pub fit: Option<LinFit>,
    /// The relative deviation that terminated the slide (0 when the
    /// search exhausted its trial budget instead).
    pub deviation: f64,
}

/// Runs the decay-window search on a sample stream, returning the
/// selected GPU-resident expert count.
///
/// `base` supplies everything but the resident-expert target (executor
/// counts, policies); each trial runs the engine with the target set to
/// the window's upper bound.
///
/// # Panics
///
/// Panics if `base` has no GPU executors (there would be no GPU pool to
/// size) or the options are degenerate (zero window, no fit points).
#[must_use]
pub fn window_search(
    device: &DeviceProfile,
    model: &CoeModel,
    perf: &PerfMatrix,
    base: &SystemConfig,
    sample: &RequestStream,
    options: WindowSearchOptions,
) -> WindowSearchResult {
    assert!(
        base.gpu_executor_count() > 0,
        "window search needs GPU executors"
    );
    assert!(options.initial_window >= 1.0, "window must be at least 1");
    assert!(options.fit_points >= 2, "need at least two fit points");
    let decay = 1.0 - options.initial_window / 100.0; // Eq. 1

    let throughput_at = |residents: usize| -> f64 {
        let mut config = base.clone();
        config.memory.gpu_resident_experts = Some(residents);
        let engine = Engine::new(device, model, perf, &config).expect("base config is valid");
        engine.run(sample).throughput_ips()
    };

    let max_residents = model.num_experts();
    let mut trials: Vec<WindowTrial> = Vec::new();
    let mut lo = 0.0f64;
    let mut size = options.initial_window;
    let mut prev_window = (0usize, options.initial_window.round() as usize);
    let mut fit: Option<LinFit> = None;
    let mut deviation = 0.0;
    let mut selected;

    loop {
        let hi = lo + size;
        let residents = (hi.round() as usize).clamp(1, max_residents);
        let throughput = throughput_at(residents);
        trials.push(WindowTrial {
            residents,
            throughput,
        });
        let window = (lo.round() as usize, residents);

        if trials.len() > options.fit_points {
            // Eq. 2: linear trend over the first N trials.
            let lead: Vec<(f64, f64)> = trials[..options.fit_points]
                .iter()
                .enumerate()
                .map(|(i, t)| ((i + 1) as f64, t.throughput))
                .collect();
            fit = linear_fit(&lead);
            if let Some(f) = fit {
                let expected = f.predict(trials.len() as f64);
                let actual = trials.last().expect("non-empty").throughput;
                if expected > 0.0 {
                    deviation = (expected - actual) / expected;
                    // Eq. 3: reality fell below the trend.
                    if deviation > options.error_margin {
                        selected = prev_window;
                        break;
                    }
                }
            }
        }
        selected = window;
        prev_window = window;
        lo = hi;
        size *= decay;
        if trials.len() >= options.max_trials || residents >= max_residents {
            break;
        }
    }

    // "CoServe randomly selects a value within the window" — seeded.
    let (w_lo, w_hi) = selected;
    let lo_bound = w_lo.max(1) as u64;
    let hi_bound = (w_hi.max(w_lo.max(1))) as u64;
    let mut rng = SimRng::seed_from(options.seed);
    let chosen = rng.range_inclusive(lo_bound, hi_bound) as usize;

    WindowSearchResult {
        trials,
        selected: (w_lo.max(1), w_hi),
        chosen,
        fit,
        deviation,
    }
}

/// One measured executor configuration (Figure 17).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecutorTrial {
    /// GPU executors.
    pub gpus: usize,
    /// CPU executors.
    pub cpus: usize,
    /// Measured throughput on the sample workload, img/s.
    pub throughput: f64,
}

/// Measures throughput for each `(gpus, cpus)` candidate on the sample
/// stream (Figure 17's sweep) and returns the trials in input order.
#[must_use]
pub fn executor_search(
    device: &DeviceProfile,
    model: &CoeModel,
    perf: &PerfMatrix,
    candidates: &[(usize, usize)],
    sample: &RequestStream,
) -> Vec<ExecutorTrial> {
    candidates
        .iter()
        .map(|&(gpus, cpus)| {
            let config = presets::coserve_with(device, "search", gpus, cpus, None);
            let engine = Engine::new(device, model, perf, &config).expect("searchable config");
            ExecutorTrial {
                gpus,
                cpus,
                throughput: engine.run(sample).throughput_ips(),
            }
        })
        .collect()
}

/// The standard candidate grid the paper sweeps in Figure 17:
/// 1G..=5G with one CPU executor, plus the best-G with two.
#[must_use]
pub fn standard_executor_candidates() -> Vec<(usize, usize)> {
    vec![(1, 1), (2, 1), (3, 1), (4, 1), (5, 1)]
}

/// A fully tuned "CoServe Best" configuration plus the search traces.
#[derive(Debug, Clone, PartialEq)]
pub struct TunedSystem {
    /// The resulting configuration.
    pub config: SystemConfig,
    /// The executor-count sweep.
    pub executor_trials: Vec<ExecutorTrial>,
    /// The window-search trace.
    pub window: WindowSearchResult,
}

/// Runs both offline searches and assembles "CoServe Best" (§5.2):
/// executor counts first, then the memory window with the winning
/// executor counts.
#[must_use]
pub fn tune(
    device: &DeviceProfile,
    model: &CoeModel,
    perf: &PerfMatrix,
    sample: &RequestStream,
    options: WindowSearchOptions,
) -> TunedSystem {
    // Ties between measured configurations go to the one with fewer
    // executors: identical sample throughput means the extra processes
    // only add overhead risk on the full task.
    fn first_strict_max(trials: &[ExecutorTrial]) -> ExecutorTrial {
        trials
            .iter()
            .copied()
            .reduce(|best, t| {
                if t.throughput > best.throughput {
                    t
                } else {
                    best
                }
            })
            .expect("candidate list is non-empty")
    }
    let mut candidates = standard_executor_candidates();
    let trials = executor_search(device, model, perf, &candidates, sample);
    let best = first_strict_max(&trials);
    // Also probe a second CPU executor at the winning GPU count.
    candidates.push((best.gpus, 2));
    let extra = executor_search(
        device,
        model,
        perf,
        &candidates[candidates.len() - 1..],
        sample,
    );
    let mut all_trials = trials;
    all_trials.extend(extra);
    let best = first_strict_max(&all_trials);

    let base = presets::coserve_with(device, "CoServe Best", best.gpus, best.cpus, None);
    let window = window_search(device, model, perf, &base, sample, options);
    let tuned = presets::coserve_with(
        device,
        "CoServe Best",
        best.gpus,
        best.cpus,
        Some(window.chosen),
    );
    // Validation guard: the offline phase verifies the searched
    // configuration against the fraction-based fallback on the sample
    // and keeps whichever measured better, so "Best" never regresses
    // below an untuned split because of sample noise.
    let fallback = presets::coserve_casual(device).renamed("CoServe Best");
    let measure = |config: &SystemConfig| -> f64 {
        Engine::new(device, model, perf, config)
            .expect("tuned configs are valid")
            .run(sample)
            .throughput_ips()
    };
    let config = if measure(&fallback) > measure(&tuned) {
        fallback
    } else {
        tuned
    };
    TunedSystem {
        config,
        executor_trials: all_trials,
        window,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiler::{Profiler, UsageSource};
    use coserve_model::devices;
    use coserve_workload::board::BoardSpec;
    use coserve_workload::stream::StreamOrder;

    fn setup() -> (DeviceProfile, CoeModel, PerfMatrix, RequestStream) {
        let board = BoardSpec::synthetic("tune", 60, 4, 1.2, 60.0, 0.5);
        let model = board.build_model().unwrap();
        let device = devices::numa_rtx3080ti();
        let perf = Profiler::with_defaults().profile(&device, &model, UsageSource::Declared);
        let sample = RequestStream::generate(
            "sample",
            &board,
            &model,
            220,
            coserve_sim::time::SimSpan::from_millis(4),
            StreamOrder::Iid,
            9,
        );
        (device, model, perf, sample)
    }

    #[test]
    fn cdf_is_monotone_and_normalized() {
        let (_, _, perf, _) = setup();
        let cdf = UsageCdf::from_perf(&perf);
        assert_eq!(cdf.len(), perf.num_experts());
        assert!(!cdf.is_empty());
        let pts = cdf.points();
        for w in pts.windows(2) {
            assert!(w[1].1 >= w[0].1 - 1e-12);
        }
        assert!((cdf.coverage(cdf.len()) - 1.0).abs() < 1e-9);
        assert_eq!(cdf.coverage(0), 0.0);
        assert!(cdf.coverage(10) > 10.0 / cdf.len() as f64, "skew exists");
    }

    #[test]
    fn window_search_produces_sane_selection() {
        let (device, model, perf, sample) = setup();
        let base = presets::coserve_with(&device, "base", 2, 1, None);
        let result = window_search(
            &device,
            &model,
            &perf,
            &base,
            &sample,
            WindowSearchOptions {
                max_trials: 6,
                ..WindowSearchOptions::default()
            },
        );
        assert!(!result.trials.is_empty());
        assert!(result.trials.len() <= 6);
        // Chosen value lies inside the selected window.
        assert!(result.chosen >= result.selected.0);
        assert!(result.chosen <= result.selected.1.max(result.selected.0));
        // Window sizes decay: spacing between consecutive trial uppers
        // shrinks.
        if result.trials.len() >= 3 {
            let d1 = result.trials[1].residents as i64 - result.trials[0].residents as i64;
            let d2 = result.trials[2].residents as i64 - result.trials[1].residents as i64;
            assert!(d2 <= d1, "window did not decay: {d1} then {d2}");
        }
    }

    #[test]
    fn window_search_is_deterministic() {
        let (device, model, perf, sample) = setup();
        let base = presets::coserve_with(&device, "base", 2, 1, None);
        let opts = WindowSearchOptions {
            max_trials: 5,
            ..WindowSearchOptions::default()
        };
        let a = window_search(&device, &model, &perf, &base, &sample, opts);
        let b = window_search(&device, &model, &perf, &base, &sample, opts);
        assert_eq!(a, b);
    }

    #[test]
    fn executor_search_measures_all_candidates() {
        let (device, model, perf, sample) = setup();
        let trials = executor_search(&device, &model, &perf, &[(1, 1), (2, 1)], &sample);
        assert_eq!(trials.len(), 2);
        assert!(trials.iter().all(|t| t.throughput > 0.0));
        assert_eq!(trials[0].gpus, 1);
        assert_eq!(trials[1].gpus, 2);
    }

    #[test]
    fn tune_assembles_best_config() {
        let (device, model, perf, sample) = setup();
        let tuned = tune(
            &device,
            &model,
            &perf,
            &sample,
            WindowSearchOptions {
                max_trials: 4,
                ..WindowSearchOptions::default()
            },
        );
        assert_eq!(tuned.config.name, "CoServe Best");
        assert!(tuned.config.gpu_executor_count() >= 1);
        assert_eq!(tuned.executor_trials.len(), 6); // 5 grid + 1 extra

        // Either the window target was adopted, or the validation guard
        // fell back to the fraction-based split.
        match tuned.config.memory.gpu_resident_experts {
            Some(chosen) => assert_eq!(chosen, tuned.window.chosen),
            None => assert!((tuned.config.memory.gpu_pool_fraction - 0.75).abs() < 1e-12),
        }
    }

    #[test]
    #[should_panic(expected = "GPU executors")]
    fn window_search_requires_gpus() {
        let (device, model, perf, sample) = setup();
        let base = SystemConfig::builder("cpu-only").cpu_executors(1).build();
        let _ = window_search(
            &device,
            &model,
            &perf,
            &base,
            &sample,
            WindowSearchOptions::default(),
        );
    }
}
