//! Expert eviction policies.
//!
//! When a required expert is absent and the pool is full, victims must
//! be chosen. CoServe's dependency-aware policy (§4.3) works in two
//! stages:
//!
//! 1. evict *subsequent* experts none of whose preliminary experts are
//!    resident — they cannot run anyway — picking a minimal sufficient
//!    set: biggest-first while no single orphan covers the remaining
//!    need (fewest evictions), then the smallest orphan that does
//!    (no gratuitous over-eviction);
//! 2. if still short, evict remaining experts in ascending pre-assessed
//!    usage probability.
//!
//! The baselines' LRU (Samba-CoE) and FIFO (Samba-CoE FIFO) policies
//! live here too, so every system shares one engine and differs only in
//! policy.

use std::collections::BTreeSet;
use std::fmt;

use coserve_model::coe::CoeModel;
use coserve_model::expert::ExpertId;
use coserve_sim::memory::Bytes;

use crate::perf::PerfMatrix;
use crate::pool::ModelPool;

/// Which eviction policy an executor uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvictionPolicy {
    /// CoServe's two-stage dependency-aware eviction (§4.3).
    DependencyAware,
    /// Least-recently-used (Samba-CoE's policy).
    Lru,
    /// First-in-first-out (the Samba-CoE FIFO baseline).
    Fifo,
    /// Least-frequently-used — an extension point on the LRU/LFU
    /// spectrum the paper cites (LRFU); not part of the paper's
    /// evaluation but useful for policy ablations.
    Lfu,
}

impl fmt::Display for EvictionPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvictionPolicy::DependencyAware => write!(f, "dependency-aware"),
            EvictionPolicy::Lru => write!(f, "LRU"),
            EvictionPolicy::Fifo => write!(f, "FIFO"),
            EvictionPolicy::Lfu => write!(f, "LFU"),
        }
    }
}

/// Error returned when the pool cannot free enough bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvictError {
    /// Bytes that remained unsatisfiable after evicting everything
    /// evictable.
    pub missing: Bytes,
}

impl fmt::Display for EvictError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot free enough memory: {} missing", self.missing)
    }
}

impl std::error::Error for EvictError {}

/// Context the policies consult when ranking victims.
#[derive(Debug, Clone, Copy)]
pub struct EvictionContext<'a> {
    /// The CoE model (dependency graph).
    pub model: &'a CoeModel,
    /// The offline measurements (usage probabilities).
    pub perf: &'a PerfMatrix,
    /// Experts that must not be evicted (e.g. the expert about to run).
    pub protected: &'a BTreeSet<ExpertId>,
}

/// Reusable scratch buffers for victim selection, so the eviction hot
/// path allocates nothing in steady state: the candidate ordering and
/// the victim list both live in buffers the caller keeps across
/// evictions.
#[derive(Debug, Clone, Default)]
pub struct EvictionScratch {
    /// Candidate ordering buffer (stage-1 orphans, or the LRU/FIFO/LFU
    /// sort).
    order: Vec<ExpertId>,
    /// The victims selected by the last call, in eviction order.
    victims: Vec<ExpertId>,
}

impl EvictionScratch {
    /// Creates empty scratch buffers.
    #[must_use]
    pub fn new() -> Self {
        EvictionScratch::default()
    }

    /// The victims selected by the last successful
    /// [`select_victims_into`] call, in eviction order.
    #[must_use]
    pub fn victims(&self) -> &[ExpertId] {
        &self.victims
    }
}

/// Selects victims from `pool` so that at least `need` additional bytes
/// become free, according to `policy`.
///
/// The returned experts are in eviction order. The pool itself is not
/// modified.
///
/// This convenience wrapper allocates; hot paths should use
/// [`select_victims_into`] with a long-lived [`EvictionScratch`].
///
/// # Errors
///
/// Returns [`EvictError`] when even evicting every unprotected resident
/// would not free `need` bytes; the partial victim list is discarded in
/// that case.
pub fn select_victims(
    policy: EvictionPolicy,
    pool: &ModelPool,
    need: Bytes,
    ctx: &EvictionContext<'_>,
) -> Result<Vec<ExpertId>, EvictError> {
    let mut scratch = EvictionScratch::new();
    select_victims_into(
        policy,
        pool,
        need,
        ctx,
        ctx.perf.experts_by_usage_asc(),
        &mut scratch,
    )?;
    Ok(std::mem::take(&mut scratch.victims))
}

/// Allocation-free victim selection: fills `scratch.victims` with the
/// same eviction order [`select_victims`] would return.
///
/// `usage_asc` is the order-maintained residency priority: every expert
/// id sorted by ascending pre-assessed usage probability (ties by id),
/// exactly [`crate::perf::PerfMatrix::experts_by_usage_asc`], which the
/// matrix memoizes at construction. Stage 2 of the dependency-aware
/// policy walks this precomputed order and filters for residency
/// instead of re-sorting the resident set on every eviction. Residents
/// outside `usage_asc` are never selected, so the order must cover the
/// model.
///
/// # Errors
///
/// Returns [`EvictError`] when even evicting every unprotected resident
/// would not free `need` bytes; `scratch.victims` is cleared in that
/// case.
pub fn select_victims_into(
    policy: EvictionPolicy,
    pool: &ModelPool,
    need: Bytes,
    ctx: &EvictionContext<'_>,
    usage_asc: &[ExpertId],
    scratch: &mut EvictionScratch,
) -> Result<(), EvictError> {
    scratch.victims.clear();
    if need.is_zero() {
        return Ok(());
    }
    let victims = &mut scratch.victims;
    let mut freed = Bytes::ZERO;

    match policy {
        EvictionPolicy::DependencyAware => {
            // Stage 1: orphaned subsequent experts, as a minimal
            // sufficient set. Plain biggest-first over-evicts: with
            // orphans of 178 and 85 MiB and a 50 MiB need it would
            // evict the 178 MiB expert when the 85 MiB one alone
            // suffices. So: while no single orphan covers what is
            // still needed, take the biggest (fewest evictions);
            // once one does, take the *smallest* single orphan that
            // covers the remainder and stop.
            scratch.order.clear();
            scratch
                .order
                .extend(pool.residents().map(|(e, _)| e).filter(|&e| {
                    !ctx.protected.contains(&e)
                        && ctx
                            .model
                            .graph()
                            .is_orphaned_subsequent(e, |p| pool.contains(p))
                }));
            scratch.order.sort_unstable_by(|&a, &b| {
                let ba = pool.resident(a).expect("resident").bytes;
                let bb = pool.resident(b).expect("resident").bytes;
                bb.cmp(&ba).then(a.cmp(&b))
            });
            // `lo` is the deque head: popping the biggest remaining
            // orphan advances it without shifting the buffer.
            let mut lo = 0usize;
            while freed < need && lo < scratch.order.len() {
                let still_needed = need - freed;
                // The list is sorted descending, so the last element
                // that covers `still_needed` is the smallest sufficient
                // one.
                let sufficient = scratch.order[lo..]
                    .iter()
                    .rposition(|&e| pool.resident(e).expect("resident").bytes >= still_needed);
                let chosen = match sufficient {
                    Some(off) => scratch.order.remove(lo + off),
                    None => {
                        let c = scratch.order[lo];
                        lo += 1;
                        c
                    }
                };
                freed += pool.resident(chosen).expect("resident").bytes;
                victims.push(chosen);
            }

            // Stage 2: everything else, least-probable first — walked
            // from the precomputed ascending-usage order. When stage 2
            // runs, stage 1 exhausted every orphan, so the victim list
            // so far is exactly the orphan set to exclude.
            if freed < need {
                for &e in usage_asc {
                    if freed >= need {
                        break;
                    }
                    let Some(meta) = pool.resident(e) else {
                        continue;
                    };
                    if ctx.protected.contains(&e) || victims.contains(&e) {
                        continue;
                    }
                    victims.push(e);
                    freed += meta.bytes;
                }
            }
        }
        EvictionPolicy::Lru | EvictionPolicy::Fifo | EvictionPolicy::Lfu => {
            scratch.order.clear();
            scratch.order.extend(
                pool.residents()
                    .map(|(e, _)| e)
                    .filter(|e| !ctx.protected.contains(e)),
            );
            scratch.order.sort_unstable_by(|&a, &b| {
                let ra = pool.resident(a).expect("resident");
                let rb = pool.resident(b).expect("resident");
                match policy {
                    EvictionPolicy::Lru => {
                        ra.last_used.cmp(&rb.last_used).then(ra.seq.cmp(&rb.seq))
                    }
                    EvictionPolicy::Fifo => ra.seq.cmp(&rb.seq),
                    EvictionPolicy::Lfu => ra
                        .uses
                        .cmp(&rb.uses)
                        .then(ra.last_used.cmp(&rb.last_used))
                        .then(ra.seq.cmp(&rb.seq)),
                    EvictionPolicy::DependencyAware => unreachable!(),
                }
            });
            for &e in &scratch.order {
                if freed >= need {
                    break;
                }
                victims.push(e);
                freed += pool.resident(e).expect("resident").bytes;
            }
        }
    }

    if freed < need {
        victims.clear();
        return Err(EvictError {
            missing: need - freed,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use coserve_model::arch::{ArchSpec, RESNET101, YOLOV5M};
    use coserve_model::routing::{ClassId, RouteRule};
    use coserve_sim::time::{SimSpan, SimTime};

    /// Model: cls experts 0,1 -> det expert 2 (YOLOv5m); cls 3 alone.
    fn test_model() -> CoeModel {
        let mut b = CoeModel::builder("evict-test");
        b.arch(ArchSpec::resnet101());
        b.arch(ArchSpec::yolov5m());
        let c0 = b.expert("c0", RESNET101, 0.40);
        let c1 = b.expert("c1", RESNET101, 0.30);
        let det = b.expert("det", YOLOV5M, 0.60);
        let c3 = b.expert("c3", RESNET101, 0.05);
        b.rule(ClassId(0), RouteRule::with_follow_up(c0, det, 0.9));
        b.rule(ClassId(1), RouteRule::with_follow_up(c1, det, 0.9));
        b.rule(ClassId(2), RouteRule::single(c3));
        b.build().unwrap()
    }

    fn matrix_for(model: &CoeModel) -> PerfMatrix {
        PerfMatrix::from_model_with("dev", model, |_, _| None)
    }

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimSpan::from_millis(ms)
    }

    fn e(i: u32) -> ExpertId {
        ExpertId(i)
    }

    #[test]
    fn zero_need_selects_nothing() {
        let model = test_model();
        let perf = matrix_for(&model);
        let pool = ModelPool::new(Bytes::mib(100));
        let protected = BTreeSet::new();
        let ctx = EvictionContext {
            model: &model,
            perf: &perf,
            protected: &protected,
        };
        let v = select_victims(EvictionPolicy::DependencyAware, &pool, Bytes::ZERO, &ctx).unwrap();
        assert!(v.is_empty());
    }

    #[test]
    fn stage1_prefers_orphaned_subsequent() {
        let model = test_model();
        let perf = matrix_for(&model);
        // Pool holds det (orphaned: neither c0 nor c1 resident) and c3.
        let mut pool = ModelPool::new(Bytes::mib(600));
        pool.insert(e(2), Bytes::mib(85), t(0)).unwrap();
        pool.insert(e(3), Bytes::mib(178), t(1)).unwrap();
        let protected = BTreeSet::new();
        let ctx = EvictionContext {
            model: &model,
            perf: &perf,
            protected: &protected,
        };
        let v =
            select_victims(EvictionPolicy::DependencyAware, &pool, Bytes::mib(50), &ctx).unwrap();
        // Even though det has the HIGHEST usage probability (0.6), it is
        // evicted first because it is an orphaned subsequent expert.
        assert_eq!(v, vec![e(2)]);
    }

    #[test]
    fn stage1_skipped_when_preliminary_is_resident() {
        let model = test_model();
        let perf = matrix_for(&model);
        // det + its preliminary c0 resident: det is NOT orphaned.
        let mut pool = ModelPool::new(Bytes::mib(600));
        pool.insert(e(0), Bytes::mib(178), t(0)).unwrap();
        pool.insert(e(2), Bytes::mib(85), t(1)).unwrap();
        pool.insert(e(3), Bytes::mib(178), t(2)).unwrap();
        let protected = BTreeSet::new();
        let ctx = EvictionContext {
            model: &model,
            perf: &perf,
            protected: &protected,
        };
        let v =
            select_victims(EvictionPolicy::DependencyAware, &pool, Bytes::mib(50), &ctx).unwrap();
        // Stage 2 ordering by usage probability: c3 (0.05) goes first.
        assert_eq!(v, vec![e(3)]);
    }

    #[test]
    fn stage1_orders_by_descending_footprint() {
        // Two orphaned subsequents of different sizes: the bigger one
        // is evicted first (minimizes evictions).
        let mut b = CoeModel::builder("two-dets");
        b.arch(ArchSpec::resnet101());
        b.arch(ArchSpec::yolov5m());
        let c0 = b.expert("c0", RESNET101, 0.5);
        let small = b.expert("det-s", YOLOV5M, 0.4);
        let big = b.expert("det-b", RESNET101, 0.3);
        b.rule(ClassId(0), RouteRule::with_follow_up(c0, small, 0.5));
        b.rule(ClassId(1), RouteRule::with_follow_up(c0, big, 0.5));
        let model = b.build().unwrap();
        let perf = matrix_for(&model);

        let mut pool = ModelPool::new(Bytes::gib(1));
        pool.insert(small, Bytes::mib(85), t(0)).unwrap();
        pool.insert(big, Bytes::mib(178), t(1)).unwrap();
        let protected = BTreeSet::new();
        let ctx = EvictionContext {
            model: &model,
            perf: &perf,
            protected: &protected,
        };
        let v = select_victims(
            EvictionPolicy::DependencyAware,
            &pool,
            Bytes::mib(200),
            &ctx,
        )
        .unwrap();
        assert_eq!(v, vec![big, small]);
    }

    /// Regression: with orphaned subsequents of 178 and 85 MiB and a
    /// 50 MiB need, plain biggest-first evicted the 178 MiB expert even
    /// though the 85 MiB one alone satisfies the need — gratuitously
    /// throwing away a bigger (more expensive to reload) expert.
    #[test]
    fn stage1_does_not_over_evict_when_a_smaller_orphan_suffices() {
        let mut b = CoeModel::builder("two-dets");
        b.arch(ArchSpec::resnet101());
        b.arch(ArchSpec::yolov5m());
        let c0 = b.expert("c0", RESNET101, 0.5);
        let small = b.expert("det-s", YOLOV5M, 0.4);
        let big = b.expert("det-b", RESNET101, 0.3);
        b.rule(ClassId(0), RouteRule::with_follow_up(c0, small, 0.5));
        b.rule(ClassId(1), RouteRule::with_follow_up(c0, big, 0.5));
        let model = b.build().unwrap();
        let perf = matrix_for(&model);

        let mut pool = ModelPool::new(Bytes::gib(1));
        pool.insert(small, Bytes::mib(85), t(0)).unwrap();
        pool.insert(big, Bytes::mib(178), t(1)).unwrap();
        let protected = BTreeSet::new();
        let ctx = EvictionContext {
            model: &model,
            perf: &perf,
            protected: &protected,
        };
        // 50 MiB need: the smaller orphan alone suffices.
        let v =
            select_victims(EvictionPolicy::DependencyAware, &pool, Bytes::mib(50), &ctx).unwrap();
        assert_eq!(v, vec![small], "over-evicted: {v:?}");
        // 100 MiB need: only the bigger orphan suffices alone.
        let v = select_victims(
            EvictionPolicy::DependencyAware,
            &pool,
            Bytes::mib(100),
            &ctx,
        )
        .unwrap();
        assert_eq!(v, vec![big]);
    }

    /// Three orphans where the minimal sufficient set still needs the
    /// biggest-first phase before the final smallest-sufficient pick.
    #[test]
    fn stage1_minimal_set_combines_biggest_then_smallest_sufficient() {
        let mut b = CoeModel::builder("three-dets");
        b.arch(ArchSpec::resnet101());
        b.arch(ArchSpec::yolov5m());
        let c0 = b.expert("c0", RESNET101, 0.5);
        let d0 = b.expert("d0", YOLOV5M, 0.4);
        let d1 = b.expert("d1", YOLOV5M, 0.3);
        let d2 = b.expert("d2", RESNET101, 0.2);
        b.rule(ClassId(0), RouteRule::with_follow_up(c0, d0, 0.5));
        b.rule(ClassId(1), RouteRule::with_follow_up(c0, d1, 0.5));
        b.rule(ClassId(2), RouteRule::with_follow_up(c0, d2, 0.5));
        let model = b.build().unwrap();
        let perf = matrix_for(&model);

        let mut pool = ModelPool::new(Bytes::gib(1));
        pool.insert(d0, Bytes::mib(60), t(0)).unwrap();
        pool.insert(d1, Bytes::mib(90), t(1)).unwrap();
        pool.insert(d2, Bytes::mib(200), t(2)).unwrap();
        let protected = BTreeSet::new();
        let ctx = EvictionContext {
            model: &model,
            perf: &perf,
            protected: &protected,
        };
        // Need 250: no single orphan covers it, so take the biggest
        // (200), then the smallest that covers the remaining 50 (60) —
        // NOT the 90 MiB one biggest-first would grab next.
        let v = select_victims(
            EvictionPolicy::DependencyAware,
            &pool,
            Bytes::mib(250),
            &ctx,
        )
        .unwrap();
        assert_eq!(v, vec![d2, d0]);
    }

    #[test]
    fn stage2_ascending_usage_probability() {
        let model = test_model();
        let perf = matrix_for(&model);
        // Only preliminary experts resident: c0 (0.40), c1 (0.30), c3 (0.05).
        let mut pool = ModelPool::new(Bytes::gib(1));
        pool.insert(e(0), Bytes::mib(178), t(0)).unwrap();
        pool.insert(e(1), Bytes::mib(178), t(1)).unwrap();
        pool.insert(e(3), Bytes::mib(178), t(2)).unwrap();
        let protected = BTreeSet::new();
        let ctx = EvictionContext {
            model: &model,
            perf: &perf,
            protected: &protected,
        };
        let v = select_victims(
            EvictionPolicy::DependencyAware,
            &pool,
            Bytes::mib(300),
            &ctx,
        )
        .unwrap();
        assert_eq!(v, vec![e(3), e(1)]);
    }

    #[test]
    fn lru_uses_last_used_fifo_uses_insertion() {
        let model = test_model();
        let perf = matrix_for(&model);
        let mut pool = ModelPool::new(Bytes::gib(1));
        pool.insert(e(0), Bytes::mib(178), t(0)).unwrap();
        pool.insert(e(1), Bytes::mib(178), t(1)).unwrap();
        // e0 used recently: LRU evicts e1 first; FIFO still evicts e0.
        pool.touch(e(0), t(50));
        let protected = BTreeSet::new();
        let ctx = EvictionContext {
            model: &model,
            perf: &perf,
            protected: &protected,
        };
        let lru = select_victims(EvictionPolicy::Lru, &pool, Bytes::mib(100), &ctx).unwrap();
        assert_eq!(lru, vec![e(1)]);
        let fifo = select_victims(EvictionPolicy::Fifo, &pool, Bytes::mib(100), &ctx).unwrap();
        assert_eq!(fifo, vec![e(0)]);
    }

    #[test]
    fn protected_experts_are_never_selected() {
        let model = test_model();
        let perf = matrix_for(&model);
        let mut pool = ModelPool::new(Bytes::gib(1));
        pool.insert(e(0), Bytes::mib(178), t(0)).unwrap();
        pool.insert(e(1), Bytes::mib(178), t(1)).unwrap();
        let protected: BTreeSet<ExpertId> = [e(0)].into_iter().collect();
        let ctx = EvictionContext {
            model: &model,
            perf: &perf,
            protected: &protected,
        };
        for policy in [
            EvictionPolicy::DependencyAware,
            EvictionPolicy::Lru,
            EvictionPolicy::Fifo,
        ] {
            let v = select_victims(policy, &pool, Bytes::mib(100), &ctx).unwrap();
            assert_eq!(v, vec![e(1)], "{policy}");
        }
    }

    #[test]
    fn impossible_need_errors_with_shortfall() {
        let model = test_model();
        let perf = matrix_for(&model);
        let mut pool = ModelPool::new(Bytes::gib(1));
        pool.insert(e(0), Bytes::mib(100), t(0)).unwrap();
        let protected = BTreeSet::new();
        let ctx = EvictionContext {
            model: &model,
            perf: &perf,
            protected: &protected,
        };
        let err = select_victims(EvictionPolicy::Lru, &pool, Bytes::mib(500), &ctx).unwrap_err();
        assert_eq!(err.missing, Bytes::mib(400));
        assert!(err.to_string().contains("missing"));
    }

    #[test]
    fn eviction_stops_as_soon_as_need_is_met() {
        let model = test_model();
        let perf = matrix_for(&model);
        let mut pool = ModelPool::new(Bytes::gib(1));
        for i in 0..4 {
            pool.insert(e(i), Bytes::mib(100), t(u64::from(i))).unwrap();
        }
        let protected = BTreeSet::new();
        let ctx = EvictionContext {
            model: &model,
            perf: &perf,
            protected: &protected,
        };
        let v = select_victims(EvictionPolicy::Fifo, &pool, Bytes::mib(150), &ctx).unwrap();
        assert_eq!(v.len(), 2, "two 100 MiB victims cover 150 MiB");
    }

    #[test]
    fn policy_display() {
        assert_eq!(
            EvictionPolicy::DependencyAware.to_string(),
            "dependency-aware"
        );
        assert_eq!(EvictionPolicy::Lru.to_string(), "LRU");
        assert_eq!(EvictionPolicy::Fifo.to_string(), "FIFO");
        assert_eq!(EvictionPolicy::Lfu.to_string(), "LFU");
    }

    #[test]
    fn lfu_evicts_least_frequently_used() {
        let model = test_model();
        let perf = matrix_for(&model);
        let mut pool = ModelPool::new(Bytes::gib(1));
        pool.insert(e(0), Bytes::mib(100), t(0)).unwrap();
        pool.insert(e(1), Bytes::mib(100), t(1)).unwrap();
        pool.insert(e(3), Bytes::mib(100), t(2)).unwrap();
        // e0 used three times, e1 once, e3 never.
        for tick in [3, 4, 5] {
            pool.touch(e(0), t(tick));
        }
        pool.touch(e(1), t(6));
        let protected = BTreeSet::new();
        let ctx = EvictionContext {
            model: &model,
            perf: &perf,
            protected: &protected,
        };
        let v = select_victims(EvictionPolicy::Lfu, &pool, Bytes::mib(150), &ctx).unwrap();
        assert_eq!(v, vec![e(3), e(1)]);
        // LRU would instead evict by recency: e3 (never touched after
        // load) then e0's tie-break differs — verify divergence.
        let lru = select_victims(EvictionPolicy::Lru, &pool, Bytes::mib(250), &ctx).unwrap();
        let lfu = select_victims(EvictionPolicy::Lfu, &pool, Bytes::mib(250), &ctx).unwrap();
        assert_ne!(lru, lfu);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use coserve_model::arch::{ArchSpec, RESNET101, YOLOV5M};
    use coserve_model::routing::{ClassId, RouteRule};
    use coserve_sim::time::SimTime;
    use proptest::prelude::*;

    /// Builds a chain model with `n` classifiers sharing one detector.
    fn chain_model(n: u32) -> CoeModel {
        let mut b = CoeModel::builder("prop");
        b.arch(ArchSpec::resnet101());
        b.arch(ArchSpec::yolov5m());
        let cls: Vec<_> = (0..n)
            .map(|i| b.expert(format!("c{i}"), RESNET101, 0.1 + f64::from(i) * 0.01))
            .collect();
        let det = b.expert("det", YOLOV5M, 0.5);
        for (i, &c) in cls.iter().enumerate() {
            b.rule(ClassId(i as u32), RouteRule::with_follow_up(c, det, 0.5));
        }
        b.build().unwrap()
    }

    /// The pre-refactor victim selection, verbatim: per-call sorts of
    /// the resident set. The allocation-free path is pinned against it.
    fn reference_select(
        policy: EvictionPolicy,
        pool: &ModelPool,
        need: Bytes,
        ctx: &EvictionContext<'_>,
    ) -> Result<Vec<ExpertId>, EvictError> {
        if need.is_zero() {
            return Ok(Vec::new());
        }
        let mut victims = Vec::new();
        let mut freed = Bytes::ZERO;
        match policy {
            EvictionPolicy::DependencyAware => {
                let mut stage1: Vec<ExpertId> = pool
                    .residents()
                    .map(|(e, _)| e)
                    .filter(|&e| {
                        !ctx.protected.contains(&e)
                            && ctx
                                .model
                                .graph()
                                .is_orphaned_subsequent(e, |p| pool.contains(p))
                    })
                    .collect();
                stage1.sort_by(|&a, &b| {
                    let ba = pool.resident(a).expect("resident").bytes;
                    let bb = pool.resident(b).expect("resident").bytes;
                    bb.cmp(&ba).then(a.cmp(&b))
                });
                let stage1_set: BTreeSet<ExpertId> = stage1.iter().copied().collect();
                let mut remaining: std::collections::VecDeque<ExpertId> = stage1.into();
                while freed < need && !remaining.is_empty() {
                    let still_needed = need - freed;
                    let sufficient = remaining
                        .iter()
                        .rposition(|&e| pool.resident(e).expect("resident").bytes >= still_needed);
                    let chosen = match sufficient {
                        Some(idx) => remaining.remove(idx).expect("index in range"),
                        None => remaining.pop_front().expect("non-empty"),
                    };
                    freed += pool.resident(chosen).expect("resident").bytes;
                    victims.push(chosen);
                }
                if freed < need {
                    let mut stage2: Vec<ExpertId> = pool
                        .residents()
                        .map(|(e, _)| e)
                        .filter(|e| !ctx.protected.contains(e) && !stage1_set.contains(e))
                        .collect();
                    stage2.sort_by(|&a, &b| {
                        ctx.perf
                            .usage_prob(a)
                            .partial_cmp(&ctx.perf.usage_prob(b))
                            .expect("probabilities are finite")
                            .then(a.cmp(&b))
                    });
                    for e in stage2 {
                        if freed >= need {
                            break;
                        }
                        victims.push(e);
                        freed += pool.resident(e).expect("resident").bytes;
                    }
                }
            }
            EvictionPolicy::Lru | EvictionPolicy::Fifo | EvictionPolicy::Lfu => {
                let mut order: Vec<ExpertId> = pool
                    .residents()
                    .map(|(e, _)| e)
                    .filter(|e| !ctx.protected.contains(e))
                    .collect();
                order.sort_by(|&a, &b| {
                    let ra = pool.resident(a).expect("resident");
                    let rb = pool.resident(b).expect("resident");
                    match policy {
                        EvictionPolicy::Lru => {
                            ra.last_used.cmp(&rb.last_used).then(ra.seq.cmp(&rb.seq))
                        }
                        EvictionPolicy::Fifo => ra.seq.cmp(&rb.seq),
                        EvictionPolicy::Lfu => ra
                            .uses
                            .cmp(&rb.uses)
                            .then(ra.last_used.cmp(&rb.last_used))
                            .then(ra.seq.cmp(&rb.seq)),
                        EvictionPolicy::DependencyAware => unreachable!(),
                    }
                });
                for e in order {
                    if freed >= need {
                        break;
                    }
                    victims.push(e);
                    freed += pool.resident(e).expect("resident").bytes;
                }
            }
        }
        if freed < need {
            return Err(EvictError {
                missing: need - freed,
            });
        }
        Ok(victims)
    }

    proptest! {
        /// The allocation-free selection (precomputed ascending-usage
        /// order + reusable scratch) returns exactly what the
        /// pre-refactor per-call-sort implementation returned, for every
        /// policy, over arbitrary pools, needs, touch histories and
        /// protected sets — including reusing one scratch across calls.
        #[test]
        fn scratch_path_matches_reference(
            resident_mask in 0u32..64,
            touches in proptest::collection::vec((0u32..6, 1u64..50), 0..12),
            need_mib in 1u64..600,
            protect_sel in 0u32..7,
            policy_sel in 0u8..4,
        ) {
            let model = chain_model(5);
            let perf = PerfMatrix::from_model_with("dev", &model, |_, _| None);
            let mut pool = ModelPool::new(Bytes::gib(4));
            for i in 0..6u32 {
                if resident_mask & (1 << i) != 0 {
                    let bytes = Bytes::mib(60 + 40 * u64::from(i));
                    pool.insert(ExpertId(i), bytes, SimTime::ZERO).unwrap();
                }
            }
            for &(e, ms) in &touches {
                if pool.contains(ExpertId(e)) {
                    pool.touch(ExpertId(e), SimTime::ZERO + coserve_sim::time::SimSpan::from_millis(ms));
                }
            }
            let mut protected = BTreeSet::new();
            if protect_sel < 6 && pool.contains(ExpertId(protect_sel)) {
                protected.insert(ExpertId(protect_sel));
            }
            let ctx = EvictionContext { model: &model, perf: &perf, protected: &protected };
            let policy = match policy_sel {
                0 => EvictionPolicy::DependencyAware,
                1 => EvictionPolicy::Lru,
                2 => EvictionPolicy::Fifo,
                _ => EvictionPolicy::Lfu,
            };
            let mut scratch = EvictionScratch::new();
            for need_scale in [1u64, 2, 3] {
                let need = Bytes::mib(need_mib * need_scale / 2);
                let want = reference_select(policy, &pool, need, &ctx);
                let got = select_victims_into(
                    policy, &pool, need, &ctx,
                    perf.experts_by_usage_asc(), &mut scratch,
                );
                match (want, got) {
                    (Ok(w), Ok(())) => prop_assert_eq!(w.as_slice(), scratch.victims()),
                    (Err(we), Err(ge)) => {
                        prop_assert_eq!(we, ge);
                        prop_assert!(scratch.victims().is_empty());
                    }
                    (w, g) => prop_assert!(false, "outcome mismatch: {:?} vs {:?}", w, g),
                }
            }
        }

        /// The dependency-aware policy never evicts a preliminary expert
        /// while an orphaned subsequent expert remains in the pool, and
        /// selected victims always free at least `need`.
        #[test]
        fn two_stage_invariants(
            resident_mask in 0u32..64,
            need_mib in 1u64..400,
        ) {
            let model = chain_model(5);
            let perf = PerfMatrix::from_model_with("dev", &model, |_, _| None);
            let det = ExpertId(5);
            let mut pool = ModelPool::new(Bytes::gib(4));
            for i in 0..6u32 {
                if resident_mask & (1 << i) != 0 {
                    let bytes = if i == 5 { Bytes::mib(85) } else { Bytes::mib(178) };
                    pool.insert(ExpertId(i), bytes, SimTime::ZERO).unwrap();
                }
            }
            let protected = BTreeSet::new();
            let ctx = EvictionContext { model: &model, perf: &perf, protected: &protected };
            let need = Bytes::mib(need_mib);
            match select_victims(EvictionPolicy::DependencyAware, &pool, need, &ctx) {
                Ok(victims) => {
                    let freed: Bytes = victims
                        .iter()
                        .map(|&v| pool.resident(v).unwrap().bytes)
                        .sum();
                    prop_assert!(freed >= need);
                    // If the detector is resident and orphaned, it must be
                    // the first victim.
                    let det_resident = pool.contains(det);
                    let any_prelim_resident = (0..5u32).any(|i| pool.contains(ExpertId(i)));
                    if det_resident && !any_prelim_resident {
                        prop_assert_eq!(victims[0], det);
                    }
                }
                Err(err) => {
                    let total: Bytes = pool.residents().map(|(_, r)| r.bytes).sum();
                    prop_assert!(total < need);
                    prop_assert_eq!(err.missing, need - total);
                }
            }
        }
    }
}
