//! The serving-system facade.
//!
//! [`ServingSystem`] ties the pieces together the way Figure 7 does:
//! offline profiling produces the performance matrix, initialization
//! creates executors and preloads experts, and `serve` runs the online
//! phase. Baseline systems are the same facade with different
//! [`SystemConfig`]s.
//!
//! ```no_run
//! use coserve_core::prelude::*;
//! use coserve_model::devices;
//! use coserve_workload::task::TaskSpec;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let device = devices::numa_rtx3080ti();
//! let task = TaskSpec::a1();
//! let model = task.build_model()?;
//! let config = presets::coserve(&device);
//! let system = ServingSystem::new(device, model, config)?;
//! let report = system.serve(&task.stream(system.model()));
//! println!("{}", report.summary_line());
//! # Ok(())
//! # }
//! ```

use coserve_metrics::report::RunReport;
use coserve_model::coe::CoeModel;
use coserve_sim::device::DeviceProfile;
use coserve_workload::stream::RequestStream;

use crate::config::SystemConfig;
use crate::engine::{Engine, EngineError, MemoryLayout};
use crate::perf::PerfMatrix;
use crate::profiler::{Profiler, UsageSource};

/// A ready-to-serve system: device, model, offline measurements and
/// configuration.
#[derive(Debug, Clone)]
pub struct ServingSystem {
    device: DeviceProfile,
    model: CoeModel,
    perf: PerfMatrix,
    config: SystemConfig,
}

impl ServingSystem {
    /// Builds a system, running the offline profiler with declared
    /// usage probabilities (§4.5's predefined-rules case).
    ///
    /// # Errors
    ///
    /// Returns [`EngineError`] when the device lacks kernels for the
    /// model's architectures on a configured processor.
    pub fn new(
        device: DeviceProfile,
        model: CoeModel,
        config: SystemConfig,
    ) -> Result<Self, EngineError> {
        let perf = Profiler::with_defaults().profile(&device, &model, UsageSource::Declared);
        Self::with_matrix(device, model, perf, config)
    }

    /// Builds a system from an existing performance matrix (e.g. to
    /// share one profiling pass across many configurations).
    ///
    /// # Errors
    ///
    /// Returns [`EngineError`] when the matrix or device does not cover
    /// the configuration.
    pub fn with_matrix(
        device: DeviceProfile,
        model: CoeModel,
        perf: PerfMatrix,
        config: SystemConfig,
    ) -> Result<Self, EngineError> {
        // Validate eagerly; Engine::new borrows, so scope the check.
        Engine::new(&device, &model, &perf, &config)?;
        Ok(ServingSystem {
            device,
            model,
            perf,
            config,
        })
    }

    /// The device profile.
    #[must_use]
    pub fn device(&self) -> &DeviceProfile {
        &self.device
    }

    /// The CoE model.
    #[must_use]
    pub fn model(&self) -> &CoeModel {
        &self.model
    }

    /// The offline measurements.
    #[must_use]
    pub fn perf(&self) -> &PerfMatrix {
        &self.perf
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// Replaces the configuration (revalidating it).
    ///
    /// # Errors
    ///
    /// Returns [`EngineError`] when the new configuration is not
    /// servable on this device/model.
    pub fn reconfigure(&mut self, config: SystemConfig) -> Result<(), EngineError> {
        Engine::new(&self.device, &self.model, &self.perf, &config)?;
        self.config = config;
        Ok(())
    }

    /// The memory layout initialization would use.
    #[must_use]
    pub fn memory_layout(&self) -> MemoryLayout {
        self.engine().memory_layout()
    }

    /// Serves a request stream to completion.
    #[must_use]
    pub fn serve(&self, stream: &RequestStream) -> RunReport {
        self.engine().run(stream)
    }

    /// Serves `stream` through an engine built from `config` instead of
    /// the system's own configuration — the one engine-construction
    /// path shared by [`ServingSystem::serve`], the open-loop facade
    /// (which overrides only the online knobs) and the cluster
    /// dispatcher (which overrides the preload order per node).
    ///
    /// # Errors
    ///
    /// Returns [`EngineError`] when `config` is not servable on this
    /// system's device/model/matrix.
    pub fn serve_configured(
        &self,
        stream: &RequestStream,
        config: &SystemConfig,
    ) -> Result<RunReport, EngineError> {
        Ok(Engine::new(&self.device, &self.model, &self.perf, config)?.run(stream))
    }

    /// Opens a re-entrant serving session against the system's own
    /// configuration: submit jobs and poll completions incrementally
    /// instead of consuming a whole stream (see
    /// [`EngineSession`](crate::engine::EngineSession)). The session
    /// borrows the system.
    #[must_use]
    pub fn session(&self, label: impl Into<String>) -> crate::engine::EngineSession<'_> {
        self.engine().session(label)
    }

    /// Opens a re-entrant session through an engine built from
    /// `config` instead of the system's own configuration — the
    /// session equivalent of [`ServingSystem::serve_configured`].
    /// `config` must outlive the session.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError`] when `config` is not servable on this
    /// system's device/model/matrix.
    pub fn session_configured<'a>(
        &'a self,
        label: impl Into<String>,
        config: &'a SystemConfig,
    ) -> Result<crate::engine::EngineSession<'a>, EngineError> {
        Ok(Engine::new(&self.device, &self.model, &self.perf, config)?.session(label))
    }

    fn engine(&self) -> Engine<'_> {
        Engine::new(&self.device, &self.model, &self.perf, &self.config)
            .expect("validated at construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;
    use coserve_model::devices;
    use coserve_workload::task::TaskSpec;

    #[test]
    fn facade_round_trip() {
        let device = devices::numa_rtx3080ti();
        let task = TaskSpec::a1().scaled(0.02); // 50 requests
        let model = task.build_model().unwrap();
        let config = presets::coserve(&device);
        let system = ServingSystem::new(device, model, config).unwrap();
        let stream = task.stream(system.model());
        let report = system.serve(&stream);
        assert_eq!(report.completed, 50);
        assert_eq!(report.system, "CoServe");
        assert!(system.memory_layout().cache > coserve_sim::memory::Bytes::ZERO);
        assert_eq!(system.perf().num_experts(), system.model().num_experts());
    }

    #[test]
    fn reconfigure_revalidates() {
        let device = devices::uma_apple_m2();
        let task = TaskSpec::b1().scaled(0.01);
        let model = task.build_model().unwrap();
        let mut system = ServingSystem::new(
            device,
            model,
            presets::coserve_casual(&devices::uma_apple_m2()),
        )
        .unwrap();
        let new = presets::coserve(system.device()).renamed("renamed");
        system.reconfigure(new).unwrap();
        assert_eq!(system.config().name, "renamed");
    }

    #[test]
    fn serve_configured_matches_serve_for_own_config() {
        let device = devices::numa_rtx3080ti();
        let task = TaskSpec::a1().scaled(0.02);
        let model = task.build_model().unwrap();
        let system =
            ServingSystem::new(device, model, presets::coserve(&devices::numa_rtx3080ti()))
                .unwrap();
        let stream = task.stream(system.model());
        let direct = system.serve(&stream);
        let via_helper = system
            .serve_configured(&stream, &system.config().clone())
            .unwrap();
        assert_eq!(direct, via_helper);
        // A different-but-valid override (CPU-only executors) also
        // serves through the helper.
        let mut cpu_only = system.config().clone();
        cpu_only.executors.clear();
        cpu_only.executors.push(crate::config::ExecutorSpec {
            processor: coserve_sim::device::ProcessorKind::Cpu,
        });
        assert!(system.serve_configured(&stream, &cpu_only).is_ok());
        // Invalid overrides surface as errors, not panics.
        let mut unknown = system.config().clone();
        unknown.preload_order = Some(vec![coserve_model::expert::ExpertId(u32::MAX)]);
        assert!(system.serve_configured(&stream, &unknown).is_err());
    }

    #[test]
    fn construction_fails_without_kernels() {
        let bare = coserve_sim::device::DeviceProfile::numa_rtx3080ti();
        let task = TaskSpec::a1().scaled(0.01);
        let model = task.build_model().unwrap();
        let config = presets::coserve(&bare);
        // Profiling itself needs kernels; with_matrix path reports the
        // engine error instead of panicking.
        let perf = PerfMatrix::from_model_with("bare", &model, |_, _| None);
        assert!(ServingSystem::with_matrix(bare, model, perf, config).is_err());
    }
}
