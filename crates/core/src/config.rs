//! Serving-system configuration.
//!
//! One engine serves every system in the paper's evaluation; a
//! [`SystemConfig`] selects the policies: how requests are assigned to
//! executor queues, how queues are ordered, how experts are evicted,
//! how memory is split between expert pools and inference workspace,
//! and how many executors run on each processor (§4.5's
//! "user-configurable parameters").

use coserve_model::expert::ExpertId;
use coserve_sim::device::ProcessorKind;
use coserve_sim::time::SimSpan;

use crate::evict::EvictionPolicy;

/// How incoming requests are assigned to executor queues.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AssignPolicy {
    /// CoServe's dependency-aware assignment (§4.2): minimize the total
    /// inference time across all executors, tie-broken by the smallest
    /// additional latency.
    DependencyAware,
    /// Round-robin distribution (Samba-CoE Parallel, CoServe-None).
    RoundRobin,
}

/// How requests are ordered within a queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrangePolicy {
    /// CoServe's request arranging (§4.2): group behind the last queued
    /// request that uses the same expert.
    Grouped,
    /// Plain FCFS append (the baselines).
    Fcfs,
}

/// One inference executor to create at initialization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecutorSpec {
    /// The processor the executor runs on.
    pub processor: ProcessorKind,
}

/// Admission control for open-loop online serving: executor queues are
/// bounded and requests that would overflow them are dropped (and
/// accounted) instead of queued indefinitely.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionControl {
    /// Maximum pending requests per executor queue; a request assigned
    /// to a full queue is dropped.
    pub queue_capacity: usize,
}

impl AdmissionControl {
    /// Bounds each executor queue at `queue_capacity` requests.
    ///
    /// # Panics
    ///
    /// Panics if `queue_capacity` is zero (no request could ever be
    /// admitted).
    #[must_use]
    pub fn with_queue_capacity(queue_capacity: usize) -> Self {
        assert!(queue_capacity > 0, "queue capacity must be positive");
        AdmissionControl { queue_capacity }
    }
}

impl Default for AdmissionControl {
    /// A per-executor bound of 64 pending requests — deep enough to
    /// ride out bursts, shallow enough that queueing delay stays
    /// bounded at overload.
    fn default() -> Self {
        AdmissionControl { queue_capacity: 64 }
    }
}

/// How device memory is split between expert pools, inference
/// workspace, and (on NUMA devices) the CPU staging cache (§4.4).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoryPlan {
    /// Total number of experts to keep resident across all GPU
    /// executors, as selected by the decay-window search. `None` falls
    /// back to [`MemoryPlan::gpu_pool_fraction`].
    pub gpu_resident_experts: Option<usize>,
    /// Fraction of each GPU executor's share given to its expert pool
    /// when no resident-expert target is set (CoServe-Casual uses 0.75).
    pub gpu_pool_fraction: f64,
    /// Apply §4.4's limited-computation rule on CPU executors: reserve
    /// exactly the memory the maximum batch size needs for inference
    /// and give *all* remaining memory to the expert pool. When false,
    /// [`MemoryPlan::cpu_pool_fraction`] splits the share instead.
    pub cpu_max_batch_rule: bool,
    /// Fraction of each CPU executor's share given to its expert pool
    /// when [`MemoryPlan::cpu_max_batch_rule`] is off.
    pub cpu_pool_fraction: f64,
    /// Fraction of usable CPU memory reserved as the staging cache on
    /// NUMA devices (ignored on UMA). When the system has no CPU
    /// executors, all usable CPU memory becomes cache.
    pub cpu_cache_fraction: f64,
}

impl Default for MemoryPlan {
    fn default() -> Self {
        MemoryPlan {
            gpu_resident_experts: None,
            gpu_pool_fraction: 0.75,
            cpu_max_batch_rule: true,
            cpu_pool_fraction: 0.70,
            cpu_cache_fraction: 0.35,
        }
    }
}

/// Full configuration of a serving system run.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemConfig {
    /// Display name ("CoServe Best", "Samba-CoE", …).
    pub name: String,
    /// The executors to create (§4.1's executor creator input).
    pub executors: Vec<ExecutorSpec>,
    /// Request → queue assignment policy.
    pub assign: AssignPolicy,
    /// Within-queue ordering policy.
    pub arrange: ArrangePolicy,
    /// Expert eviction policy.
    pub eviction: EvictionPolicy,
    /// Whether the expert initializer preloads pools by descending
    /// usage probability (§4.1).
    pub preload: bool,
    /// Overrides the preload priority order. `None` — the default —
    /// preloads by descending usage probability (§4.1); a cluster
    /// placement planner supplies the node's placed experts first so
    /// each node specializes in its shard of the model. Experts must
    /// belong to the model (validated at engine construction).
    pub preload_order: Option<Vec<ExpertId>>,
    /// Whether the batch splitter may batch same-expert requests; when
    /// false every batch has size 1.
    pub batching: bool,
    /// Per-request scheduling latency charged on the scheduler worker
    /// pool — Figure 19's "scheduling" cost.
    pub scheduling_cost: SimSpan,
    /// Scheduler worker threads. Scheduling runs on the host CPU in
    /// parallel with inference (§5.3); with the paper's 8.3 ms
    /// per-request cost and 4 ms arrival interval, two workers keep up
    /// with arrivals.
    pub scheduler_slots: usize,
    /// Memory split.
    pub memory: MemoryPlan,
    /// Open-loop admission control (bounded executor queues with drop
    /// accounting). `None` — the default — is the paper's closed-loop
    /// mode: queues grow without bound and nothing is dropped.
    pub admission: Option<AdmissionControl>,
    /// Starvation bound for grouped arranging: the maximum number of
    /// times a queued request may be overtaken by same-expert grouping
    /// before later arrivals append FCFS behind it. `None` — the
    /// default — reproduces the paper's unbounded §4.2 behaviour.
    pub max_overtake: Option<u32>,
    /// Seed for the run's deterministic RNG.
    pub seed: u64,
}

impl SystemConfig {
    /// Starts a builder.
    #[must_use]
    pub fn builder(name: impl Into<String>) -> SystemConfigBuilder {
        SystemConfigBuilder {
            config: SystemConfig {
                name: name.into(),
                executors: Vec::new(),
                assign: AssignPolicy::DependencyAware,
                arrange: ArrangePolicy::Grouped,
                eviction: EvictionPolicy::DependencyAware,
                preload: true,
                preload_order: None,
                batching: true,
                scheduling_cost: SimSpan::from_micros(500),
                scheduler_slots: 2,
                memory: MemoryPlan::default(),
                admission: None,
                max_overtake: None,
                seed: 7,
            },
        }
    }

    /// Number of GPU executors.
    #[must_use]
    pub fn gpu_executor_count(&self) -> usize {
        self.executors
            .iter()
            .filter(|e| e.processor == ProcessorKind::Gpu)
            .count()
    }

    /// Number of CPU executors.
    #[must_use]
    pub fn cpu_executor_count(&self) -> usize {
        self.executors
            .iter()
            .filter(|e| e.processor == ProcessorKind::Cpu)
            .count()
    }

    /// A copy with a different name.
    #[must_use]
    pub fn renamed(&self, name: impl Into<String>) -> SystemConfig {
        SystemConfig {
            name: name.into(),
            ..self.clone()
        }
    }

    /// A copy with zero scheduling cost — Figure 19's "pre-scheduled
    /// inference" setup.
    #[must_use]
    pub fn pre_scheduled(&self) -> SystemConfig {
        SystemConfig {
            name: format!("{} (pre-sched)", self.name),
            scheduling_cost: SimSpan::ZERO,
            ..self.clone()
        }
    }
}

/// Builder for [`SystemConfig`].
#[derive(Debug, Clone)]
pub struct SystemConfigBuilder {
    config: SystemConfig,
}

impl SystemConfigBuilder {
    /// Adds `n` GPU executors.
    #[must_use]
    pub fn gpu_executors(mut self, n: usize) -> Self {
        self.config.executors.extend(std::iter::repeat_n(
            ExecutorSpec {
                processor: ProcessorKind::Gpu,
            },
            n,
        ));
        self
    }

    /// Adds `n` CPU executors.
    #[must_use]
    pub fn cpu_executors(mut self, n: usize) -> Self {
        self.config.executors.extend(std::iter::repeat_n(
            ExecutorSpec {
                processor: ProcessorKind::Cpu,
            },
            n,
        ));
        self
    }

    /// Sets the assignment policy.
    #[must_use]
    pub fn assign(mut self, policy: AssignPolicy) -> Self {
        self.config.assign = policy;
        self
    }

    /// Sets the arranging policy.
    #[must_use]
    pub fn arrange(mut self, policy: ArrangePolicy) -> Self {
        self.config.arrange = policy;
        self
    }

    /// Sets the eviction policy.
    #[must_use]
    pub fn eviction(mut self, policy: EvictionPolicy) -> Self {
        self.config.eviction = policy;
        self
    }

    /// Enables or disables usage-ordered preloading.
    #[must_use]
    pub fn preload(mut self, on: bool) -> Self {
        self.config.preload = on;
        self
    }

    /// Overrides the preload priority order (cluster placement plans).
    #[must_use]
    pub fn preload_order(mut self, order: Vec<ExpertId>) -> Self {
        self.config.preload_order = Some(order);
        self
    }

    /// Enables or disables batching.
    #[must_use]
    pub fn batching(mut self, on: bool) -> Self {
        self.config.batching = on;
        self
    }

    /// Sets the per-request scheduling latency.
    #[must_use]
    pub fn scheduling_cost(mut self, cost: SimSpan) -> Self {
        self.config.scheduling_cost = cost;
        self
    }

    /// Sets the scheduler worker-thread count.
    ///
    /// # Panics
    ///
    /// Panics at [`SystemConfigBuilder::build`] time if zero.
    #[must_use]
    pub fn scheduler_slots(mut self, slots: usize) -> Self {
        self.config.scheduler_slots = slots;
        self
    }

    /// Replaces the memory plan.
    #[must_use]
    pub fn memory(mut self, plan: MemoryPlan) -> Self {
        self.config.memory = plan;
        self
    }

    /// Enables open-loop admission control with bounded executor
    /// queues.
    #[must_use]
    pub fn admission(mut self, control: AdmissionControl) -> Self {
        self.config.admission = Some(control);
        self
    }

    /// Sets the grouped-arranging starvation bound (maximum overtakes
    /// per queued request).
    #[must_use]
    pub fn max_overtake(mut self, bound: u32) -> Self {
        self.config.max_overtake = Some(bound);
        self
    }

    /// Sets the window-search result: total GPU-resident experts.
    #[must_use]
    pub fn gpu_resident_experts(mut self, n: usize) -> Self {
        self.config.memory.gpu_resident_experts = Some(n);
        self
    }

    /// Sets the run seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Finishes the configuration.
    ///
    /// # Panics
    ///
    /// Panics when no executors were configured or a memory fraction is
    /// outside `(0, 1)`.
    #[must_use]
    pub fn build(self) -> SystemConfig {
        let c = self.config;
        assert!(
            !c.executors.is_empty(),
            "system needs at least one executor"
        );
        assert!(c.scheduler_slots > 0, "scheduler needs at least one worker");
        for f in [
            c.memory.gpu_pool_fraction,
            c.memory.cpu_pool_fraction,
            c.memory.cpu_cache_fraction,
        ] {
            assert!((0.0..1.0).contains(&f), "memory fraction {f} outside [0,1)");
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_are_coserve_policies() {
        let c = SystemConfig::builder("CoServe")
            .gpu_executors(3)
            .cpu_executors(1)
            .build();
        assert_eq!(c.assign, AssignPolicy::DependencyAware);
        assert_eq!(c.arrange, ArrangePolicy::Grouped);
        assert_eq!(c.eviction, EvictionPolicy::DependencyAware);
        assert!(c.preload);
        assert!(c.batching);
        assert_eq!(c.gpu_executor_count(), 3);
        assert_eq!(c.cpu_executor_count(), 1);
        assert_eq!(c.executors.len(), 4);
    }

    #[test]
    fn builder_overrides() {
        let c = SystemConfig::builder("Samba-CoE")
            .gpu_executors(1)
            .assign(AssignPolicy::RoundRobin)
            .arrange(ArrangePolicy::Fcfs)
            .eviction(EvictionPolicy::Lru)
            .batching(false)
            .scheduling_cost(SimSpan::from_micros(100))
            .seed(42)
            .build();
        assert_eq!(c.assign, AssignPolicy::RoundRobin);
        assert_eq!(c.eviction, EvictionPolicy::Lru);
        assert!(!c.batching);
        assert_eq!(c.seed, 42);
    }

    #[test]
    fn memory_plan_defaults_match_casual() {
        let plan = MemoryPlan::default();
        assert_eq!(plan.gpu_resident_experts, None);
        assert!((plan.gpu_pool_fraction - 0.75).abs() < 1e-12);
    }

    #[test]
    fn resident_expert_override() {
        let c = SystemConfig::builder("best")
            .gpu_executors(3)
            .gpu_resident_experts(35)
            .build();
        assert_eq!(c.memory.gpu_resident_experts, Some(35));
    }

    #[test]
    fn closed_loop_defaults_have_no_admission() {
        let c = SystemConfig::builder("closed").gpu_executors(1).build();
        assert_eq!(c.admission, None);
        assert_eq!(c.max_overtake, None);
    }

    #[test]
    fn online_knobs_round_trip() {
        let c = SystemConfig::builder("online")
            .gpu_executors(1)
            .admission(AdmissionControl::with_queue_capacity(32))
            .max_overtake(8)
            .build();
        assert_eq!(c.admission.unwrap().queue_capacity, 32);
        assert_eq!(c.max_overtake, Some(8));
        assert_eq!(AdmissionControl::default().queue_capacity, 64);
    }

    #[test]
    fn preload_order_round_trips() {
        let c = SystemConfig::builder("placed").gpu_executors(1).build();
        assert_eq!(c.preload_order, None, "default keeps §4.1 usage order");
        let order = vec![ExpertId(3), ExpertId(0), ExpertId(1)];
        let c = SystemConfig::builder("placed")
            .gpu_executors(1)
            .preload_order(order.clone())
            .build();
        assert_eq!(c.preload_order, Some(order));
    }

    #[test]
    #[should_panic(expected = "queue capacity must be positive")]
    fn zero_queue_capacity_panics() {
        let _ = AdmissionControl::with_queue_capacity(0);
    }

    #[test]
    fn renamed_and_pre_scheduled_copies() {
        let c = SystemConfig::builder("x").gpu_executors(1).build();
        assert_eq!(c.renamed("y").name, "y");
        let p = c.pre_scheduled();
        assert_eq!(p.scheduling_cost, SimSpan::ZERO);
        assert!(p.name.contains("pre-sched"));
        // Original untouched.
        assert_eq!(c.scheduling_cost, SimSpan::from_micros(500));
    }

    #[test]
    #[should_panic(expected = "at least one executor")]
    fn empty_executors_panics() {
        let _ = SystemConfig::builder("none").build();
    }

    #[test]
    #[should_panic(expected = "memory fraction")]
    fn bad_fraction_panics() {
        let _ = SystemConfig::builder("bad")
            .gpu_executors(1)
            .memory(MemoryPlan {
                gpu_pool_fraction: 1.5,
                ..MemoryPlan::default()
            })
            .build();
    }
}
