//! The network front-end.
//!
//! A deliberately boring threaded TCP server in the shape of Pelikan's
//! `pingserver`: one acceptor, a fixed pool of worker threads fed
//! through a channel, one [`FrameBuffer`] per connection so reads can
//! stop at arbitrary byte boundaries, and an admin listener on a
//! second port (see [`crate::admin`]). Workers decode frames, hand
//! them to the shared [`ServiceCore`], and write the response back —
//! all engine logic lives behind the core's mutex, none in the
//! network layer.
//!
//! Everything polls a shared shutdown flag on short timeouts instead
//! of blocking forever, so `GET /shutdown` on the admin port (or
//! [`Server::shutdown`]) unwinds the whole scope cleanly.

use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Mutex};
use std::time::Duration;

use crate::admin;
use crate::protocol::{
    decode_request, encode_response, write_frame, ErrorCode, FrameBuffer, Request, Response,
};
use crate::service::ServiceCore;

/// How long blocking points (accept polls, worker channel waits,
/// connection reads) wait before re-checking the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(20);

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Data-port bind address (`127.0.0.1:0` picks a free port).
    pub addr: SocketAddr,
    /// Admin-port bind address.
    pub admin_addr: SocketAddr,
    /// Worker threads serving data connections (at least 1).
    pub workers: usize,
    /// How long a graceful drain (`/drain` or [`Server::drain`]) waits
    /// for in-flight connections to finish before forcing shutdown.
    pub drain_grace: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: SocketAddr::from(([127, 0, 0, 1], 0)),
            admin_addr: SocketAddr::from(([127, 0, 0, 1], 0)),
            workers: 2,
            drain_grace: Duration::from_secs(5),
        }
    }
}

/// Monotone counters the admin endpoint reports.
#[derive(Debug, Default)]
pub struct ServerCounters {
    /// Data connections accepted.
    pub accepted: AtomicU64,
    /// Request frames decoded and handled.
    pub frames: AtomicU64,
    /// Protocol failures of either kind (`frame_errors` +
    /// `decode_errors`), kept as a single headline counter.
    pub protocol_errors: AtomicU64,
    /// Connections dropped on malformed framing (bad length prefix).
    pub frame_errors: AtomicU64,
    /// Well-framed payloads that failed to decode as a request.
    pub decode_errors: AtomicU64,
}

/// A bound (but not yet running) server.
///
/// Binding is split from running so tests and the binary can bind port
/// 0, read the real addresses back, and only then start serving:
///
/// ```no_run
/// # use coserve_server::server::{Server, ServerConfig};
/// # fn demo(core: &coserve_server::service::ServiceCore<'_>) -> std::io::Result<()> {
/// let server = Server::bind(&ServerConfig::default())?;
/// println!("data on {}, admin on {}", server.data_addr()?, server.admin_addr()?);
/// server.run(core)?; // blocks until /shutdown
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Server {
    data: TcpListener,
    admin: TcpListener,
    workers: usize,
    shutdown: AtomicBool,
    /// Graceful-drain flag: stop accepting, serve out what's open.
    draining: AtomicBool,
    /// Data connections currently inside `serve_connection`.
    active_conns: AtomicU64,
    drain_grace: Duration,
    counters: ServerCounters,
}

impl Server {
    /// Binds the data and admin listeners.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn bind(config: &ServerConfig) -> io::Result<Server> {
        Ok(Server {
            data: TcpListener::bind(config.addr)?,
            admin: TcpListener::bind(config.admin_addr)?,
            workers: config.workers.max(1),
            shutdown: AtomicBool::new(false),
            draining: AtomicBool::new(false),
            active_conns: AtomicU64::new(0),
            drain_grace: config.drain_grace,
            counters: ServerCounters::default(),
        })
    }

    /// The bound data address (resolves port 0).
    ///
    /// # Errors
    ///
    /// Propagates `local_addr` failures.
    pub fn data_addr(&self) -> io::Result<SocketAddr> {
        self.data.local_addr()
    }

    /// The bound admin address (resolves port 0).
    ///
    /// # Errors
    ///
    /// Propagates `local_addr` failures.
    pub fn admin_addr(&self) -> io::Result<SocketAddr> {
        self.admin.local_addr()
    }

    /// Requests shutdown; [`Server::run`] returns once in-flight
    /// connections notice (bounded by the internal poll interval).
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Whether shutdown has been requested.
    #[must_use]
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Requests a graceful drain: the acceptor stops taking new
    /// connections, open connections keep being served — `Pump`,
    /// `Poll` and `Finish` still work, so clients can flush their
    /// pending completions — but new `Submit`s are rejected with
    /// [`ErrorCode::Shutdown`]. Once every connection has finished (or
    /// the configured grace period elapses) the server shuts down.
    pub fn drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
    }

    /// Whether a graceful drain has been requested.
    #[must_use]
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Data connections currently being served.
    #[must_use]
    pub fn active_connections(&self) -> u64 {
        self.active_conns.load(Ordering::SeqCst)
    }

    /// The server's monotone counters.
    #[must_use]
    pub fn counters(&self) -> &ServerCounters {
        &self.counters
    }

    /// Serves until shutdown: accepts data connections, fans them out
    /// to the worker pool, and answers admin requests. Blocks the
    /// calling thread; the engine session inside `core` borrows state
    /// on the caller's stack, which is why the whole pool lives in a
    /// [`std::thread::scope`].
    ///
    /// # Errors
    ///
    /// Propagates listener configuration failures; per-connection I/O
    /// errors only drop that connection.
    pub fn run(&self, core: &ServiceCore<'_>) -> io::Result<()> {
        self.data.set_nonblocking(true)?;
        self.admin.set_nonblocking(true)?;
        let (tx, rx) = mpsc::channel::<TcpStream>();
        let rx = Mutex::new(rx);

        let mut spawn_err: Option<io::Error> = None;
        std::thread::scope(|scope| {
            for worker in 0..self.workers {
                let rx = &rx;
                let spawned = std::thread::Builder::new()
                    .name(format!("coserve-worker-{worker}"))
                    .spawn_scoped(scope, move || self.worker_loop(core, rx));
                if let Err(e) = spawned {
                    spawn_err = Some(e);
                    self.shutdown();
                    return;
                }
            }
            let spawned = std::thread::Builder::new()
                .name("coserve-admin".into())
                .spawn_scoped(scope, move || self.admin_loop(core));
            if let Err(e) = spawned {
                spawn_err = Some(e);
                self.shutdown();
                return;
            }

            // The acceptor runs on the calling thread.
            while !self.is_shutting_down() && !self.is_draining() {
                match self.data.accept() {
                    Ok((stream, _peer)) => {
                        self.counters.accepted.fetch_add(1, Ordering::Relaxed);
                        if tx.send(stream).is_err() {
                            break;
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(POLL_INTERVAL);
                    }
                    Err(_) => std::thread::sleep(POLL_INTERVAL),
                }
            }
            // Graceful drain: wait for the open connections to finish
            // (bounded by the grace period), then force the shutdown
            // flag so the workers unwind.
            if self.is_draining() && !self.is_shutting_down() {
                let deadline = std::time::Instant::now() + self.drain_grace;
                while self.active_connections() > 0 && std::time::Instant::now() < deadline {
                    std::thread::sleep(POLL_INTERVAL);
                }
                self.shutdown();
            }
            drop(tx); // workers drain the queue, then see the hangup
        });
        match spawn_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    fn worker_loop(&self, core: &ServiceCore<'_>, rx: &Mutex<mpsc::Receiver<TcpStream>>) {
        loop {
            let next = {
                // A panic in a sibling worker poisons the lock but
                // leaves the receiver intact; keep serving.
                let rx = rx.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                rx.recv_timeout(POLL_INTERVAL)
            };
            match next {
                Ok(stream) => self.serve_connection(core, stream),
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    if self.is_shutting_down() {
                        return;
                    }
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => return,
            }
        }
    }

    /// Serves one data connection to EOF: Pelikan-style per-session
    /// receive buffer, short read timeouts so the shutdown flag is
    /// polled even while a frame is partially received.
    fn serve_connection(&self, core: &ServiceCore<'_>, mut stream: TcpStream) {
        self.active_conns.fetch_add(1, Ordering::SeqCst);
        let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
        let _ = stream.set_nodelay(true);
        let mut frames = FrameBuffer::new();
        let mut conn: Option<u32> = None;
        let mut read_buf = [0u8; 16 * 1024];

        'conn: loop {
            if self.is_shutting_down() {
                let bye = Response::Error {
                    code: ErrorCode::Shutdown,
                    message: "server shutting down".into(),
                };
                let _ = write_frame(&mut stream, &encode_response(&bye));
                break;
            }
            let n = match stream.read(&mut read_buf) {
                Ok(0) => break,
                Ok(n) => n,
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    continue;
                }
                Err(_) => break,
            };
            let Some(chunk) = read_buf.get(..n) else {
                break;
            };
            frames.extend(chunk);
            loop {
                let payload = match frames.next_frame() {
                    Ok(Some(payload)) => payload,
                    Ok(None) => break,
                    Err(_) => {
                        self.counters
                            .protocol_errors
                            .fetch_add(1, Ordering::Relaxed);
                        self.counters.frame_errors.fetch_add(1, Ordering::Relaxed);
                        break 'conn;
                    }
                };
                let mut finishing = false;
                let response = match decode_request(&payload) {
                    // A draining server flushes what's in flight but
                    // takes no new work: submits are refused with a
                    // typed Shutdown error while Pump/Poll/Finish keep
                    // working so the client can collect its
                    // completions and leave.
                    Ok(Request::Submit { .. }) if self.is_draining() => {
                        self.counters.frames.fetch_add(1, Ordering::Relaxed);
                        Response::Error {
                            code: ErrorCode::Shutdown,
                            message: "server draining".into(),
                        }
                    }
                    Ok(request) => {
                        self.counters.frames.fetch_add(1, Ordering::Relaxed);
                        finishing = matches!(request, Request::Finish);
                        core.handle(&mut conn, request)
                    }
                    Err(e) => {
                        self.counters
                            .protocol_errors
                            .fetch_add(1, Ordering::Relaxed);
                        self.counters.decode_errors.fetch_add(1, Ordering::Relaxed);
                        Response::Error {
                            code: ErrorCode::BadRequest,
                            message: e.to_string(),
                        }
                    }
                };
                if write_frame(&mut stream, &encode_response(&response)).is_err() {
                    break 'conn;
                }
                // On a draining server a `Finish` is goodbye: close
                // so the drain can complete without waiting for the
                // client to hang up.
                if finishing && self.is_draining() {
                    break 'conn;
                }
            }
        }
        // A connection that vanished without `Finish` still releases
        // its session state (and orphans its undelivered completions).
        if let Some(id) = conn {
            core.disconnect(id);
        }
        self.active_conns.fetch_sub(1, Ordering::SeqCst);
    }

    fn admin_loop(&self, core: &ServiceCore<'_>) {
        while !self.is_shutting_down() {
            match self.admin.accept() {
                Ok((stream, _peer)) => admin::serve_admin_connection(self, core, stream),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(POLL_INTERVAL);
                }
                Err(_) => std::thread::sleep(POLL_INTERVAL),
            }
        }
    }
}

/// Blocking wire client used by the load generator and the tests; one
/// request frame out, one response frame back.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to a server's data port.
    ///
    /// # Errors
    ///
    /// Propagates connect failures.
    pub fn connect(addr: SocketAddr) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client { stream })
    }

    /// Sends one request and reads the matching response.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures; a server-closed connection is
    /// [`io::ErrorKind::UnexpectedEof`].
    pub fn call(&mut self, request: &crate::protocol::Request) -> io::Result<Response> {
        write_frame(&mut self.stream, &crate::protocol::encode_request(request))?;
        let payload = crate::protocol::read_frame(&mut self.stream)?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "server closed connection")
        })?;
        Ok(crate::protocol::decode_response(&payload)?)
    }
}
