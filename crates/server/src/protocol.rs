//! The CoServe wire protocol.
//!
//! A deliberately small binary protocol in the Pelikan `pingserver`
//! tradition: every message is one **length-prefixed frame** — a
//! little-endian `u32` payload length followed by the payload, whose
//! first byte is the opcode. Requests use opcodes `0x01..=0x06`,
//! responses echo the request opcode with the high bit set
//! (`0x81..=0x86`), and `0xFF` is the error response. Integers are
//! little-endian; strings are UTF-8 with a length prefix; simulation
//! times travel as nanoseconds.
//!
//! The protocol maps 1:1 onto the re-entrant engine session API
//! (`EngineSession`): `Submit` is `submit`, `Pump` is
//! `pump`/`pump_until`, `Poll` is `drain_completions` filtered to the
//! calling connection, `Stats` is a live `RunSnapshot`. See
//! `PROTOCOL.md` for the byte-level layout and a worked example.

use std::fmt;
use std::io::{self, Read, Write};

use coserve_core::engine::{Completion, CompletionStatus};
use coserve_model::expert::ExpertId;
use coserve_sim::time::{SimSpan, SimTime};

/// Frames larger than this are rejected before allocation — nothing
/// the protocol expresses comes close (the largest legitimate frame is
/// a `Stats` JSON body of a few KiB).
pub const MAX_FRAME: usize = 1 << 20;

/// A client-to-server message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Opens the session handshake: the server answers with the
    /// connection id and the serving system's identity.
    Hello,
    /// Submits one request chain arriving at `arrival` (floored to the
    /// engine's current simulation time if already past).
    Submit {
        /// Simulated arrival time.
        arrival: SimTime,
        /// The expert chain, in execution order.
        stages: Vec<ExpertId>,
    },
    /// Drains the calling connection's finished completions.
    Poll,
    /// Advances the shared engine: processes every pending event
    /// strictly before `limit`, or all of them when `limit` is `None`.
    Pump {
        /// Exclusive simulation-time watermark (`None` = drain).
        limit: Option<SimTime>,
    },
    /// Ends the session for this connection (queued completions for it
    /// are discarded).
    Finish,
    /// Requests a live `RunSnapshot` of the shared engine as JSON.
    Stats,
}

/// One finished job as it travels on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireCompletion {
    /// The job id `Submit` returned.
    pub job: u32,
    /// How the job ended.
    pub status: CompletionStatus,
    /// When it ended (simulation time).
    pub finished_at: SimTime,
    /// End-to-end latency (zero for admission drops).
    pub latency: SimSpan,
}

impl From<Completion> for WireCompletion {
    fn from(c: Completion) -> Self {
        WireCompletion {
            job: c.job,
            status: c.status,
            finished_at: c.finished_at,
            latency: c.latency,
        }
    }
}

/// A server-to-client message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Handshake answer.
    Hello {
        /// The server-assigned connection id.
        conn: u32,
        /// Experts in the served model.
        num_experts: u32,
        /// The serving system's name (e.g. `CoServe`).
        system: String,
    },
    /// The submitted job's id (unique across the whole session).
    Submit {
        /// Engine-assigned job id.
        job: u32,
    },
    /// The connection's finished jobs since its last poll.
    Poll {
        /// Completions in finish order.
        completions: Vec<WireCompletion>,
    },
    /// Pump outcome.
    Pump {
        /// Events processed by this pump.
        processed: u64,
        /// Simulation time after the pump.
        now: SimTime,
        /// Events still pending.
        pending: u32,
    },
    /// Connection closed; how many remain open.
    Finish {
        /// Connections still open after this one closed.
        open_conns: u32,
    },
    /// Live engine snapshot.
    Stats {
        /// `RunSnapshot` as JSON.
        json: String,
    },
    /// The server is saturated and shed this `Submit` at admission
    /// (graceful degradation, not an error): nothing was enqueued, and
    /// the client should back off at least `retry_after` of simulation
    /// time before retrying.
    Busy {
        /// Suggested minimum backoff before the retry.
        retry_after: SimSpan,
    },
    /// Request failed.
    Error {
        /// Machine-readable error class.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

/// Error classes the server reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// The frame decoded but the request was not valid now (e.g.
    /// `Submit` before `Hello`).
    BadRequest = 1,
    /// The submitted chain was rejected by the engine.
    Rejected = 2,
    /// The server is shutting down.
    Shutdown = 3,
}

impl ErrorCode {
    fn from_u8(v: u8) -> Option<ErrorCode> {
        match v {
            1 => Some(ErrorCode::BadRequest),
            2 => Some(ErrorCode::Rejected),
            3 => Some(ErrorCode::Shutdown),
            _ => None,
        }
    }
}

/// A malformed frame or payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolError(pub String);

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "protocol error: {}", self.0)
    }
}

impl std::error::Error for ProtocolError {}

impl From<ProtocolError> for io::Error {
    fn from(e: ProtocolError) -> io::Error {
        io::Error::new(io::ErrorKind::InvalidData, e)
    }
}

// --- opcode bytes ---

const OP_HELLO: u8 = 0x01;
const OP_SUBMIT: u8 = 0x02;
const OP_POLL: u8 = 0x03;
const OP_PUMP: u8 = 0x04;
const OP_FINISH: u8 = 0x05;
const OP_STATS: u8 = 0x06;
/// `Busy` is response-only (there is no 0x07 request); on the wire it
/// travels as `RESP | OP_BUSY` = `0x87`.
const OP_BUSY: u8 = 0x07;
const RESP: u8 = 0x80;
const OP_ERROR: u8 = 0xFF;

const STATUS_COMPLETED: u8 = 0;
const STATUS_FAILED: u8 = 1;
const STATUS_DROPPED: u8 = 2;

fn status_byte(s: CompletionStatus) -> u8 {
    match s {
        CompletionStatus::Completed => STATUS_COMPLETED,
        CompletionStatus::Failed => STATUS_FAILED,
        CompletionStatus::Dropped => STATUS_DROPPED,
    }
}

fn status_from(v: u8) -> Result<CompletionStatus, ProtocolError> {
    match v {
        STATUS_COMPLETED => Ok(CompletionStatus::Completed),
        STATUS_FAILED => Ok(CompletionStatus::Failed),
        STATUS_DROPPED => Ok(CompletionStatus::Dropped),
        other => Err(ProtocolError(format!("unknown completion status {other}"))),
    }
}

// --- little-endian cursor helpers ---

struct Cursor<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, at: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtocolError> {
        let end = self.at.checked_add(n).filter(|&e| e <= self.buf.len());
        let slice = end
            .and_then(|end| self.buf.get(self.at..end))
            .ok_or_else(|| ProtocolError(format!("truncated payload (wanted {n} more bytes)")))?;
        self.at = self.at.saturating_add(n);
        Ok(slice)
    }

    /// Takes exactly `N` bytes as a fixed-size array, so the
    /// `from_le_bytes` readers below need no fallible conversion.
    fn array<const N: usize>(&mut self) -> Result<[u8; N], ProtocolError> {
        self.take(N)?
            .first_chunk::<N>()
            .copied()
            .ok_or_else(|| ProtocolError(format!("truncated payload (wanted {N} bytes)")))
    }

    fn u8(&mut self) -> Result<u8, ProtocolError> {
        self.array::<1>().map(|[b]| b)
    }

    fn u16(&mut self) -> Result<u16, ProtocolError> {
        Ok(u16::from_le_bytes(self.array()?))
    }

    fn u32(&mut self) -> Result<u32, ProtocolError> {
        Ok(u32::from_le_bytes(self.array()?))
    }

    fn u64(&mut self) -> Result<u64, ProtocolError> {
        Ok(u64::from_le_bytes(self.array()?))
    }

    fn string(&mut self) -> Result<String, ProtocolError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| ProtocolError("invalid UTF-8".into()))
    }

    fn finish(&self) -> Result<(), ProtocolError> {
        if self.at == self.buf.len() {
            Ok(())
        } else {
            Err(ProtocolError(format!(
                "{} trailing bytes after payload",
                self.buf.len() - self.at
            )))
        }
    }
}

fn put_string(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

/// Encodes a request payload (opcode + body, without the frame length).
#[must_use]
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut out = Vec::new();
    match req {
        Request::Hello => out.push(OP_HELLO),
        Request::Submit { arrival, stages } => {
            out.push(OP_SUBMIT);
            out.extend_from_slice(&arrival.nanos().to_le_bytes());
            out.extend_from_slice(&(stages.len() as u16).to_le_bytes());
            for e in stages {
                out.extend_from_slice(&e.0.to_le_bytes());
            }
        }
        Request::Poll => out.push(OP_POLL),
        Request::Pump { limit } => {
            out.push(OP_PUMP);
            match limit {
                Some(t) => {
                    out.push(1);
                    out.extend_from_slice(&t.nanos().to_le_bytes());
                }
                None => out.push(0),
            }
        }
        Request::Finish => out.push(OP_FINISH),
        Request::Stats => out.push(OP_STATS),
    }
    out
}

/// Decodes a request payload.
///
/// # Errors
///
/// Returns [`ProtocolError`] on an unknown opcode, a truncated body or
/// trailing bytes.
pub fn decode_request(payload: &[u8]) -> Result<Request, ProtocolError> {
    let mut c = Cursor::new(payload);
    let req = match c.u8()? {
        OP_HELLO => Request::Hello,
        OP_SUBMIT => {
            let arrival = SimTime::from_nanos(c.u64()?);
            let n = c.u16()? as usize;
            let mut stages = Vec::with_capacity(n);
            for _ in 0..n {
                stages.push(ExpertId(c.u32()?));
            }
            Request::Submit { arrival, stages }
        }
        OP_POLL => Request::Poll,
        OP_PUMP => {
            let limit = match c.u8()? {
                0 => None,
                1 => Some(SimTime::from_nanos(c.u64()?)),
                other => return Err(ProtocolError(format!("bad pump limit flag {other}"))),
            };
            Request::Pump { limit }
        }
        OP_FINISH => Request::Finish,
        OP_STATS => Request::Stats,
        op => return Err(ProtocolError(format!("unknown request opcode {op:#04x}"))),
    };
    c.finish()?;
    Ok(req)
}

/// Encodes a response payload (opcode + body, without the frame
/// length).
#[must_use]
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut out = Vec::new();
    match resp {
        Response::Hello {
            conn,
            num_experts,
            system,
        } => {
            out.push(RESP | OP_HELLO);
            out.extend_from_slice(&conn.to_le_bytes());
            out.extend_from_slice(&num_experts.to_le_bytes());
            put_string(&mut out, system);
        }
        Response::Submit { job } => {
            out.push(RESP | OP_SUBMIT);
            out.extend_from_slice(&job.to_le_bytes());
        }
        Response::Poll { completions } => {
            out.push(RESP | OP_POLL);
            out.extend_from_slice(&(completions.len() as u32).to_le_bytes());
            for c in completions {
                out.extend_from_slice(&c.job.to_le_bytes());
                out.push(status_byte(c.status));
                out.extend_from_slice(&c.finished_at.nanos().to_le_bytes());
                out.extend_from_slice(&c.latency.nanos().to_le_bytes());
            }
        }
        Response::Pump {
            processed,
            now,
            pending,
        } => {
            out.push(RESP | OP_PUMP);
            out.extend_from_slice(&processed.to_le_bytes());
            out.extend_from_slice(&now.nanos().to_le_bytes());
            out.extend_from_slice(&pending.to_le_bytes());
        }
        Response::Finish { open_conns } => {
            out.push(RESP | OP_FINISH);
            out.extend_from_slice(&open_conns.to_le_bytes());
        }
        Response::Stats { json } => {
            out.push(RESP | OP_STATS);
            put_string(&mut out, json);
        }
        Response::Busy { retry_after } => {
            out.push(RESP | OP_BUSY);
            out.extend_from_slice(&retry_after.nanos().to_le_bytes());
        }
        Response::Error { code, message } => {
            out.push(OP_ERROR);
            out.push(*code as u8);
            put_string(&mut out, message);
        }
    }
    out
}

/// Decodes a response payload.
///
/// # Errors
///
/// Returns [`ProtocolError`] on an unknown opcode, a truncated body or
/// trailing bytes.
pub fn decode_response(payload: &[u8]) -> Result<Response, ProtocolError> {
    let mut c = Cursor::new(payload);
    let resp = match c.u8()? {
        op if op == RESP | OP_HELLO => Response::Hello {
            conn: c.u32()?,
            num_experts: c.u32()?,
            system: c.string()?,
        },
        op if op == RESP | OP_SUBMIT => Response::Submit { job: c.u32()? },
        op if op == RESP | OP_POLL => {
            let n = c.u32()? as usize;
            if n > MAX_FRAME / 21 {
                return Err(ProtocolError(format!("completion count {n} too large")));
            }
            let mut completions = Vec::with_capacity(n);
            for _ in 0..n {
                completions.push(WireCompletion {
                    job: c.u32()?,
                    status: status_from(c.u8()?)?,
                    finished_at: SimTime::from_nanos(c.u64()?),
                    latency: SimSpan::from_nanos(c.u64()?),
                });
            }
            Response::Poll { completions }
        }
        op if op == RESP | OP_PUMP => Response::Pump {
            processed: c.u64()?,
            now: SimTime::from_nanos(c.u64()?),
            pending: c.u32()?,
        },
        op if op == RESP | OP_FINISH => Response::Finish {
            open_conns: c.u32()?,
        },
        op if op == RESP | OP_STATS => Response::Stats { json: c.string()? },
        op if op == RESP | OP_BUSY => Response::Busy {
            retry_after: SimSpan::from_nanos(c.u64()?),
        },
        OP_ERROR => {
            let code = c.u8()?;
            let code = ErrorCode::from_u8(code)
                .ok_or_else(|| ProtocolError(format!("unknown error code {code}")))?;
            Response::Error {
                code,
                message: c.string()?,
            }
        }
        op => return Err(ProtocolError(format!("unknown response opcode {op:#04x}"))),
    };
    c.finish()?;
    Ok(resp)
}

/// Writes one frame (length prefix + payload) to `w`.
///
/// # Errors
///
/// Propagates I/O errors; rejects payloads over [`MAX_FRAME`].
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME {
        return Err(ProtocolError(format!("frame of {} bytes too large", payload.len())).into());
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame from `r`, blocking until it is complete. Returns
/// `None` on a clean EOF at a frame boundary.
///
/// # Errors
///
/// Propagates I/O errors; an EOF mid-frame or an oversized length
/// prefix is [`io::ErrorKind::InvalidData`] /
/// [`io::ErrorKind::UnexpectedEof`].
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len = [0u8; 4];
    match r.read(&mut len) {
        Ok(0) => return Ok(None),
        Ok(n) => match len.get_mut(n..) {
            Some(rest) => r.read_exact(rest)?,
            None => return Err(ProtocolError("short read overran prefix".into()).into()),
        },
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len) as usize;
    if len > MAX_FRAME {
        return Err(ProtocolError(format!("frame length {len} exceeds MAX_FRAME")).into());
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// An incremental frame splitter: feed it raw socket bytes, take
/// complete frames out. This is the per-session receive buffer of the
/// worker loop — reads can stop at arbitrary byte boundaries (short
/// reads, read timeouts used to poll the shutdown flag) without
/// corrupting the framing.
#[derive(Debug, Default)]
pub struct FrameBuffer {
    buf: Vec<u8>,
}

impl FrameBuffer {
    /// An empty buffer.
    #[must_use]
    pub fn new() -> Self {
        FrameBuffer::default()
    }

    /// Appends raw bytes from the socket.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Pops the next complete frame's payload, if one is buffered.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError`] when the buffered length prefix
    /// exceeds [`MAX_FRAME`] (the connection should be dropped).
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, ProtocolError> {
        let Some(prefix) = self.buf.first_chunk::<4>() else {
            return Ok(None);
        };
        let len = u32::from_le_bytes(*prefix) as usize;
        if len > MAX_FRAME {
            return Err(ProtocolError(format!(
                "frame length {len} exceeds MAX_FRAME"
            )));
        }
        let Some(payload) = self.buf.get(4..4 + len) else {
            return Ok(None);
        };
        let payload = payload.to_vec();
        self.buf.drain(..4 + len);
        Ok(Some(payload))
    }

    /// Bytes buffered but not yet consumed.
    #[must_use]
    pub fn pending_bytes(&self) -> usize {
        self.buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn round_trip_request(req: &Request) {
        let payload = encode_request(req);
        assert_eq!(&decode_request(&payload).unwrap(), req);
    }

    fn round_trip_response(resp: &Response) {
        let payload = encode_response(resp);
        assert_eq!(&decode_response(&payload).unwrap(), resp);
    }

    #[test]
    fn fixed_round_trips() {
        round_trip_request(&Request::Hello);
        round_trip_request(&Request::Poll);
        round_trip_request(&Request::Pump { limit: None });
        round_trip_request(&Request::Pump {
            limit: Some(SimTime::from_nanos(123_456_789)),
        });
        round_trip_request(&Request::Finish);
        round_trip_request(&Request::Stats);
        round_trip_response(&Response::Hello {
            conn: 3,
            num_experts: 361,
            system: "CoServe".into(),
        });
        round_trip_response(&Response::Submit { job: 41 });
        round_trip_response(&Response::Pump {
            processed: 10,
            now: SimTime::from_nanos(5),
            pending: 0,
        });
        round_trip_response(&Response::Finish { open_conns: 0 });
        round_trip_response(&Response::Stats {
            json: "{\"completed\":1}".into(),
        });
        round_trip_response(&Response::Busy {
            retry_after: SimSpan::from_millis(8),
        });
        round_trip_response(&Response::Error {
            code: ErrorCode::Rejected,
            message: "unknown expert".into(),
        });
    }

    #[test]
    fn garbage_is_rejected_not_panicked() {
        assert!(decode_request(&[]).is_err());
        assert!(decode_request(&[0x42]).is_err());
        assert!(decode_request(&[OP_SUBMIT, 1, 2]).is_err());
        let mut ok = encode_request(&Request::Hello);
        ok.push(0); // trailing byte
        assert!(decode_request(&ok).is_err());
        assert!(decode_response(&[OP_ERROR, 200]).is_err());
    }

    #[test]
    fn frame_buffer_reassembles_byte_by_byte() {
        let a = encode_request(&Request::Submit {
            arrival: SimTime::from_nanos(77),
            stages: vec![ExpertId(1), ExpertId(2), ExpertId(3)],
        });
        let b = encode_request(&Request::Poll);
        let mut wire = Vec::new();
        for payload in [&a, &b] {
            wire.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            wire.extend_from_slice(payload);
        }
        let mut fb = FrameBuffer::new();
        let mut frames = Vec::new();
        for byte in wire {
            fb.extend(&[byte]);
            while let Some(f) = fb.next_frame().unwrap() {
                frames.push(f);
            }
        }
        assert_eq!(frames, vec![a, b]);
        assert_eq!(fb.pending_bytes(), 0);
    }

    #[test]
    fn oversized_frames_are_rejected() {
        let mut fb = FrameBuffer::new();
        fb.extend(&u32::MAX.to_le_bytes());
        assert!(fb.next_frame().is_err());
        let huge = vec![0u8; MAX_FRAME + 1];
        let mut sink = Vec::new();
        assert!(write_frame(&mut sink, &huge).is_err());
    }

    #[test]
    fn read_write_frame_round_trips() {
        let payload = encode_request(&Request::Stats);
        let mut wire = Vec::new();
        write_frame(&mut wire, &payload).unwrap();
        let mut r = &wire[..];
        assert_eq!(read_frame(&mut r).unwrap(), Some(payload));
        assert_eq!(read_frame(&mut r).unwrap(), None);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn submit_round_trips(
            arrival in any::<u64>(),
            stages in proptest::collection::vec(0u32..1_000_000, 0..32),
        ) {
            let req = Request::Submit {
                arrival: SimTime::from_nanos(arrival),
                stages: stages.into_iter().map(ExpertId).collect(),
            };
            let payload = encode_request(&req);
            prop_assert_eq!(decode_request(&payload).unwrap(), req);
        }

        #[test]
        fn poll_round_trips(
            jobs in proptest::collection::vec((any::<u32>(), 0u8..3, any::<u64>(), any::<u64>()), 0..64),
        ) {
            let completions: Vec<WireCompletion> = jobs
                .into_iter()
                .map(|(job, status, at, lat)| WireCompletion {
                    job,
                    status: status_from(status).unwrap(),
                    finished_at: SimTime::from_nanos(at),
                    latency: SimSpan::from_nanos(lat),
                })
                .collect();
            let resp = Response::Poll { completions };
            let payload = encode_response(&resp);
            prop_assert_eq!(decode_response(&payload).unwrap(), resp);
        }

        #[test]
        fn fuzzed_payloads_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
            let _ = decode_request(&bytes);
            let _ = decode_response(&bytes);
        }
    }
}
