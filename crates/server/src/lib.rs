//! # coserve-server
//!
//! A network front-end for the CoServe engine, in the shape of
//! Pelikan's `pingserver`: a small length-prefixed binary protocol, an
//! acceptor feeding a fixed pool of worker threads, per-session frame
//! buffers, and an admin port that reports live engine telemetry as
//! JSON without pausing the run.
//!
//! The crate is the network face of the re-entrant service core added
//! to `coserve-core`: where `ServingSystem::serve` consumes a whole
//! request stream and returns one report, an
//! [`EngineSession`](coserve_core::engine::EngineSession) accepts
//! individual submissions and hands back completions incrementally —
//! exactly the shape a socket protocol needs. The layering mirrors
//! Pelikan's server/worker/storage split:
//!
//! ```text
//!                    ┌───────────────────────────────────────────┐
//!   TCP data port ──▶│ acceptor ─▶ channel ─▶ worker 0..N        │
//!                    │               each: FrameBuffer per conn  │
//!                    │               decode ─▶ ServiceCore       │
//!                    │                           │ Mutex         │
//!                    │                           ▼               │
//!                    │                     EngineSession         │
//!   TCP admin port ─▶│ admin: /healthz /stats /metrics           │
//!                    │        /trace /shutdown                   │
//!                    └───────────────────────────────────────────┘
//! ```
//!
//! * [`protocol`] — the wire format (`PROTOCOL.md` has the bytes);
//! * [`service`] — the shared core multiplexing one engine session
//!   across connections;
//! * [`server`] — listener, worker pool, blocking [`server::Client`];
//! * [`admin`] — the mini-HTTP admin responder.
//!
//! Determinism survives the network: the engine behind the mutex is
//! the same deterministic simulator the batch facades use, so a
//! request stream pushed through the wire completes with bit-identical
//! per-job results to `ServingSystem::serve` — the end-to-end tests in
//! this crate pin that with 1, 2 and 4 worker threads.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod admin;
pub mod protocol;
pub mod server;
pub mod service;

/// Convenient re-exports of the most commonly used items.
pub mod prelude {
    pub use crate::protocol::{
        decode_request, decode_response, encode_request, encode_response, read_frame, write_frame,
        ErrorCode, FrameBuffer, ProtocolError, Request, Response, WireCompletion, MAX_FRAME,
    };
    pub use crate::server::{Client, Server, ServerConfig, ServerCounters};
    pub use crate::service::ServiceCore;
}

pub use prelude::*;
