//! The `coserve-server` binary: builds a serving system for one of the
//! paper's circuit-board tasks and serves it over TCP until
//! `GET /shutdown` arrives on the admin port.
//!
//! ```text
//! coserve-server [--addr 127.0.0.1:7600] [--admin-addr 127.0.0.1:7601]
//!                [--workers 2] [--task a1|a2|b1|b2] [--scale 1.0]
//!                [--trace trace.json] [--busy-limit N] [--retry-after-us U]
//! ```
//!
//! Port 0 binds a free port; the real addresses are printed on stdout
//! (`data addr: …` / `admin addr: …`) so scripted drivers — the CI
//! smoke test, `coserve-loadgen --boot` — can read them back. On
//! shutdown the final engine report summary is printed and a
//! `RunReport` JSON artifact is written next to the figure CSVs.
//!
//! `--trace <path>` installs a ring tracer on the engine session and,
//! on shutdown, writes whatever the admin `/trace` endpoint has not
//! already drained as Chrome trace-event JSON (open it in Perfetto or
//! `chrome://tracing`).

use std::net::SocketAddr;
use std::process::ExitCode;

use coserve_core::prelude::*;
use coserve_model::devices;
use coserve_server::server::{Server, ServerConfig};
use coserve_server::service::ServiceCore;
use coserve_workload::task::TaskSpec;

struct Args {
    addr: SocketAddr,
    admin_addr: SocketAddr,
    workers: usize,
    task: String,
    scale: f64,
    trace: Option<std::path::PathBuf>,
    busy_limit: Option<usize>,
    retry_after_us: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:7600".parse().expect("literal addr"),
        admin_addr: "127.0.0.1:7601".parse().expect("literal addr"),
        workers: 2,
        task: "a1".to_string(),
        scale: 1.0,
        trace: None,
        busy_limit: None,
        retry_after_us: 500,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        match flag.as_str() {
            "--addr" => {
                args.addr = value("--addr")?
                    .parse()
                    .map_err(|e| format!("bad --addr: {e}"))?;
            }
            "--admin-addr" => {
                args.admin_addr = value("--admin-addr")?
                    .parse()
                    .map_err(|e| format!("bad --admin-addr: {e}"))?;
            }
            "--workers" => {
                args.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("bad --workers: {e}"))?;
            }
            "--task" => args.task = value("--task")?,
            "--trace" => args.trace = Some(value("--trace")?.into()),
            "--busy-limit" => {
                let limit: usize = value("--busy-limit")?
                    .parse()
                    .map_err(|e| format!("bad --busy-limit: {e}"))?;
                if limit == 0 {
                    return Err("--busy-limit must be at least 1".into());
                }
                args.busy_limit = Some(limit);
            }
            "--retry-after-us" => {
                args.retry_after_us = value("--retry-after-us")?
                    .parse()
                    .map_err(|e| format!("bad --retry-after-us: {e}"))?;
            }
            "--scale" => {
                args.scale = value("--scale")?
                    .parse()
                    .map_err(|e| format!("bad --scale: {e}"))?;
                if !(args.scale > 0.0 && args.scale.is_finite()) {
                    return Err("--scale must be positive and finite".into());
                }
            }
            "--help" | "-h" => {
                return Err(
                    "usage: coserve-server [--addr A] [--admin-addr A] [--workers N] \
                     [--task a1|a2|b1|b2] [--scale F] [--trace PATH] \
                     [--busy-limit N] [--retry-after-us U]"
                        .into(),
                );
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn task_spec(name: &str) -> Result<TaskSpec, String> {
    match name {
        "a1" => Ok(TaskSpec::a1()),
        "a2" => Ok(TaskSpec::a2()),
        "b1" => Ok(TaskSpec::b1()),
        "b2" => Ok(TaskSpec::b2()),
        other => Err(format!("unknown task {other} (expected a1|a2|b1|b2)")),
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let task = match task_spec(&args.task) {
        Ok(task) => {
            if (args.scale - 1.0).abs() < 1e-9 {
                task
            } else {
                task.scaled(args.scale)
            }
        }
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    let device = devices::numa_rtx3080ti();
    let model = task.build_model().expect("built-in boards validate");
    let config = presets::coserve(&device);
    let system = match ServingSystem::new(device, model, config) {
        Ok(system) => system,
        Err(e) => {
            eprintln!("cannot build serving system: {e}");
            return ExitCode::FAILURE;
        }
    };

    let server = match Server::bind(&ServerConfig {
        addr: args.addr,
        admin_addr: args.admin_addr,
        workers: args.workers,
        ..ServerConfig::default()
    }) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("cannot bind: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "data addr: {}",
        server.data_addr().expect("bound listener has an address")
    );
    println!(
        "admin addr: {}",
        server.admin_addr().expect("bound listener has an address")
    );
    println!(
        "serving task {} ({} experts) with {} workers",
        task.name(),
        system.model().num_experts(),
        args.workers,
    );

    let mut session = system.session("CoServe");
    if args.trace.is_some() {
        let _ = session.set_tracer(Box::new(coserve_trace::RingTracer::new()));
        println!("tracing: on (ring buffer, drain via admin /trace)");
    }
    let core = ServiceCore::new(session, system.model().num_experts());
    if let Some(limit) = args.busy_limit {
        core.set_busy_limit(
            limit,
            coserve_sim::time::SimSpan::from_micros(args.retry_after_us),
        );
        println!(
            "graceful degradation: busy limit {limit} in flight, retry-after {}us",
            args.retry_after_us
        );
    }
    if let Err(e) = server.run(&core) {
        eprintln!("server error: {e}");
        return ExitCode::FAILURE;
    }

    if let Some(trace_path) = &args.trace {
        // Flush the engine first so the final window includes every
        // event, then export whatever `/trace` has not already drained.
        core.pump_all();
        let trace_json = core.drain_trace_json();
        let write = || -> std::io::Result<()> {
            if let Some(parent) = trace_path.parent() {
                if !parent.as_os_str().is_empty() {
                    std::fs::create_dir_all(parent)?;
                }
            }
            std::fs::write(trace_path, &trace_json)
        };
        match write() {
            Ok(()) => println!("[trace] {}", trace_path.display()),
            Err(e) => eprintln!("[trace] failed to write {}: {e}", trace_path.display()),
        }
    }

    let report = core.into_report();
    println!("{}", report.summary_line());
    let json = report.to_json();
    let path = coserve_metrics::output::out_dir().join("server_run.json");
    let write = || -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(&path, &json)
    };
    match write() {
        Ok(()) => println!("[json] {}", path.display()),
        Err(e) => eprintln!("[json] failed to write {}: {e}", path.display()),
    }
    ExitCode::SUCCESS
}
