//! The shared service core.
//!
//! [`ServiceCore`] wraps one re-entrant [`EngineSession`] behind a
//! mutex and multiplexes it across connections: every connection gets
//! an id at `Hello`, submitted jobs are tagged with their owning
//! connection, and each engine pump routes freshly drained completions
//! into per-connection buffers that `Poll` empties. This is the
//! layering Pelikan uses between its worker threads and the storage
//! module — the network side never touches engine state directly, it
//! hands decoded requests to the core and writes back the response.
//!
//! The engine itself is single-threaded and deterministic; the mutex
//! serializes all engine access, so results are identical to a serial
//! session no matter how many worker threads drive the core (pinned by
//! the equivalence tests in `crates/core` and the end-to-end tests in
//! this crate).

use std::collections::BTreeMap;
use std::sync::{Mutex, MutexGuard, PoisonError};

use coserve_core::engine::EngineSession;
use coserve_metrics::faults::FaultLedger;
use coserve_metrics::report::{RunReport, RunSnapshot};
use coserve_sim::time::SimSpan;
use coserve_trace::{chrome_trace_json, TraceEvent, TraceKind};

use crate::protocol::{ErrorCode, Request, Response, WireCompletion};

/// Engine session shared by every connection of one server run.
#[derive(Debug)]
pub struct ServiceCore<'a> {
    inner: Mutex<CoreInner<'a>>,
}

#[derive(Debug)]
struct CoreInner<'a> {
    session: EngineSession<'a>,
    /// Experts in the served model (for the `Hello` answer).
    num_experts: u32,
    next_conn: u32,
    /// Open connections and their undelivered completions.
    conns: BTreeMap<u32, Vec<WireCompletion>>,
    /// Job id → owning connection id, indexed by job id (job ids are
    /// assigned densely by the engine).
    owner: Vec<u32>,
    /// Total connections ever opened (admin counter).
    opened: u64,
    /// Total completions delivered through `Poll` (admin counter).
    delivered: u64,
    /// Jobs whose completion the engine has drained (any status).
    finished: u64,
    /// Admission limit; `None` (the default) never sheds.
    busy: Option<BusyLimit>,
    /// Service-level fault accounting (`busy_shed`); merged with the
    /// engine's own ledger by [`ServiceCore::fault_ledger`].
    shed: FaultLedger,
}

/// Graceful-degradation admission limit (see
/// [`ServiceCore::set_busy_limit`]).
#[derive(Debug, Clone, Copy)]
struct BusyLimit {
    max_in_flight: u64,
    retry_after: SimSpan,
}

impl<'a> ServiceCore<'a> {
    /// Locks the core. The engine keeps no invariant across a panic
    /// mid-request (each request either completes or leaves the
    /// session untouched), so a poisoned lock is recovered rather than
    /// propagated — one crashed worker must not take the whole server
    /// down with it.
    fn locked(&self) -> MutexGuard<'_, CoreInner<'a>> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Wraps a session for shared service.
    #[must_use]
    pub fn new(session: EngineSession<'a>, num_experts: usize) -> Self {
        ServiceCore {
            inner: Mutex::new(CoreInner {
                session,
                num_experts: u32::try_from(num_experts).unwrap_or(u32::MAX),
                next_conn: 0,
                conns: BTreeMap::new(),
                owner: Vec::new(),
                opened: 0,
                delivered: 0,
                finished: 0,
                busy: None,
                shed: FaultLedger::default(),
            }),
        }
    }

    /// Arms graceful degradation: a `Submit` arriving while
    /// `max_in_flight` jobs are already submitted-but-unfinished is
    /// shed with a typed [`Response::Busy`] carrying `retry_after`,
    /// instead of growing the engine backlog without bound. Shed
    /// submits enqueue nothing — with no limit set (the default) the
    /// admission path is byte-identical to the pre-fault server.
    pub fn set_busy_limit(&self, max_in_flight: usize, retry_after: SimSpan) {
        self.locked().busy = Some(BusyLimit {
            max_in_flight: max_in_flight as u64,
            retry_after,
        });
    }

    /// Handles one decoded request on behalf of a connection.
    ///
    /// `conn` is the worker's per-socket session state: `None` until a
    /// successful `Hello` fills it in, back to `None` after `Finish`.
    /// Requests other than `Hello`/`Stats` on an un-greeted connection
    /// get a [`ErrorCode::BadRequest`] response.
    pub fn handle(&self, conn: &mut Option<u32>, req: Request) -> Response {
        let mut inner = self.locked();
        match req {
            Request::Hello => {
                let id = inner.next_conn;
                inner.next_conn += 1;
                inner.opened += 1;
                inner.conns.insert(id, Vec::new());
                *conn = Some(id);
                Response::Hello {
                    conn: id,
                    num_experts: inner.num_experts,
                    system: inner.session.label().to_string(),
                }
            }
            Request::Submit { arrival, stages } => {
                let Some(id) = *conn else {
                    return bad_request("submit before hello");
                };
                if let Some(limit) = inner.busy {
                    let in_flight = inner.owner.len() as u64 - inner.finished;
                    if in_flight >= limit.max_in_flight {
                        let at = inner.session.now();
                        inner.shed.busy_shed += 1;
                        inner.shed.note_fault(at);
                        inner.emit_busy_shed(id);
                        return Response::Busy {
                            retry_after: limit.retry_after,
                        };
                    }
                }
                // Arrivals never travel backwards: the engine requires
                // monotone submission, so a wire arrival that is
                // already in the past is floored to "now".
                let arrival = arrival.max(inner.session.now());
                match inner.session.submit(arrival, &stages) {
                    Ok(job) => {
                        debug_assert_eq!(inner.owner.len(), job as usize);
                        inner.owner.push(id);
                        // An admission after shedding began marks the
                        // degradation window: first shed → last
                        // successful (re)submission.
                        if inner.shed.busy_shed > 0 {
                            inner.shed.note_recovery(arrival);
                        }
                        Response::Submit { job }
                    }
                    Err(e) => Response::Error {
                        code: ErrorCode::Rejected,
                        message: e.to_string(),
                    },
                }
            }
            Request::Poll => {
                let Some(id) = *conn else {
                    return bad_request("poll before hello");
                };
                let completions = inner
                    .conns
                    .get_mut(&id)
                    .map(std::mem::take)
                    .unwrap_or_default();
                inner.delivered += completions.len() as u64;
                Response::Poll { completions }
            }
            Request::Pump { limit } => {
                if conn.is_none() {
                    return bad_request("pump before hello");
                }
                let processed = match limit {
                    Some(t) => inner.session.pump_until(t),
                    None => inner.session.pump(),
                };
                inner.route_completions();
                Response::Pump {
                    processed: processed as u64,
                    now: inner.session.now(),
                    pending: u32::try_from(inner.session.pending_events()).unwrap_or(u32::MAX),
                }
            }
            Request::Finish => {
                let Some(id) = conn.take() else {
                    return bad_request("finish before hello");
                };
                inner.conns.remove(&id);
                Response::Finish {
                    open_conns: u32::try_from(inner.conns.len()).unwrap_or(u32::MAX),
                }
            }
            Request::Stats => Response::Stats {
                json: inner.session.snapshot().to_json(),
            },
        }
    }

    /// Drops a connection that disconnected without `Finish`.
    pub fn disconnect(&self, conn: u32) {
        let mut inner = self.locked();
        inner.conns.remove(&conn);
    }

    /// A live, non-consuming snapshot of the shared engine.
    #[must_use]
    pub fn snapshot(&self) -> RunSnapshot {
        self.locked().session.snapshot()
    }

    /// Service-level counters for the admin endpoint:
    /// `(connections opened, connections open, completions delivered)`.
    #[must_use]
    pub fn counters(&self) -> (u64, u64, u64) {
        let inner = self.locked();
        (inner.opened, inner.conns.len() as u64, inner.delivered)
    }

    /// Fault accounting for this server run: the engine session's own
    /// ledger (load faults, retries, …) merged with the service-level
    /// shed count. Empty unless faults were armed or a busy limit
    /// shed work.
    #[must_use]
    pub fn fault_ledger(&self) -> FaultLedger {
        let inner = self.locked();
        let mut ledger = *inner.session.fault_ledger();
        ledger.merge(&inner.shed);
        ledger
    }

    /// Submits shed with a `Busy` answer so far (admin counter).
    #[must_use]
    pub fn busy_shed(&self) -> u64 {
        self.locked().shed.busy_shed
    }

    /// Jobs submitted but not yet finished by the engine.
    #[must_use]
    pub fn in_flight(&self) -> u64 {
        let inner = self.locked();
        inner.owner.len() as u64 - inner.finished
    }

    /// Undelivered completions buffered per open connection, as
    /// `(connection id, buffered completions)` in id order.
    #[must_use]
    pub fn pending_completions(&self) -> Vec<(u32, u64)> {
        let inner = self.locked();
        inner
            .conns
            .iter()
            .map(|(&id, buf)| (id, buf.len() as u64))
            .collect()
    }

    /// Tracer lifetime counters: `(recorded, dropped, buffered)`.
    /// All zero when the session runs the default no-op tracer.
    #[must_use]
    pub fn trace_counters(&self) -> (u64, u64, u64) {
        let mut inner = self.locked();
        let t = inner.session.tracer_mut();
        (t.recorded(), t.dropped(), t.len() as u64)
    }

    /// Drains every buffered trace event out of the session's tracer.
    /// The dump is destructive by design — each event is exported
    /// exactly once, so repeated `/trace` requests stream disjoint
    /// windows of the run.
    #[must_use]
    pub fn drain_trace(&self) -> Vec<TraceEvent> {
        let mut inner = self.locked();
        inner.session.tracer_mut().drain()
    }

    /// The drained trace as Chrome trace-event JSON (see
    /// [`chrome_trace_json`]). An idle or untraced session yields a
    /// valid document with an empty `traceEvents` array.
    #[must_use]
    pub fn drain_trace_json(&self) -> String {
        chrome_trace_json(&self.drain_trace())
    }

    /// Pumps the engine to completion and routes the resulting
    /// completions, without consuming the core. Idempotent; used by
    /// the binary to flush the final trace window before export.
    pub fn pump_all(&self) {
        let mut inner = self.locked();
        inner.session.pump();
        inner.route_completions();
    }

    /// Drains any remaining events and consumes the core into the
    /// engine's final [`RunReport`].
    #[must_use]
    pub fn into_report(self) -> RunReport {
        let mut inner = self
            .inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner);
        inner.session.pump();
        inner.session.into_report()
    }
}

impl CoreInner<'_> {
    /// Routes freshly drained completions into their owning
    /// connection's buffer; completions owned by a connection that
    /// already finished are dropped on the floor.
    fn route_completions(&mut self) {
        for completion in self.session.drain_completions() {
            self.finished += 1;
            // Every completed job was submitted through `handle`, so
            // its owner entry exists; a completion the table somehow
            // doesn't know is dropped like one whose owner finished.
            let Some(&owner) = self.owner.get(completion.job as usize) else {
                continue;
            };
            if let Some(buf) = self.conns.get_mut(&owner) {
                buf.push(WireCompletion::from(completion));
            }
        }
    }

    /// Records a `busy-shed` trace event (no-op under the default
    /// no-op tracer, like every engine emission).
    fn emit_busy_shed(&mut self, conn: u32) {
        let at = self.session.now();
        let tracer = self.session.tracer_mut();
        if tracer.enabled() {
            tracer.record(TraceEvent {
                at,
                node: 0,
                kind: TraceKind::BusyShed { conn },
            });
        }
    }
}

fn bad_request(message: &str) -> Response {
    Response::Error {
        code: ErrorCode::BadRequest,
        message: message.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coserve_core::prelude::*;
    use coserve_model::devices;
    use coserve_sim::time::SimTime;
    use coserve_workload::task::TaskSpec;

    fn tiny_system() -> ServingSystem {
        let device = devices::numa_rtx3080ti();
        let task = TaskSpec::a1().scaled(0.01);
        let model = task.build_model().unwrap();
        let config = presets::coserve(&device);
        ServingSystem::new(device, model, config).unwrap()
    }

    #[test]
    fn hello_submit_pump_poll_finish() {
        let system = tiny_system();
        let core = ServiceCore::new(system.session("CoServe"), system.model().num_experts());

        let mut conn = None;
        let hello = core.handle(&mut conn, Request::Hello);
        let Response::Hello {
            conn: id,
            num_experts,
            system: name,
        } = hello
        else {
            panic!("expected hello, got {hello:?}");
        };
        assert_eq!(conn, Some(id));
        assert_eq!(num_experts as usize, system.model().num_experts());
        assert_eq!(name, "CoServe");

        let stream = TaskSpec::a1().scaled(0.01).stream(system.model());
        let req = &stream.jobs()[0];
        let submit = core.handle(
            &mut conn,
            Request::Submit {
                arrival: SimTime::ZERO,
                stages: req.stages.clone(),
            },
        );
        let Response::Submit { job } = submit else {
            panic!("expected submit ok, got {submit:?}");
        };
        assert_eq!(job, 0);

        let pump = core.handle(&mut conn, Request::Pump { limit: None });
        let Response::Pump {
            processed, pending, ..
        } = pump
        else {
            panic!("expected pump ok, got {pump:?}");
        };
        assert!(processed > 0);
        assert_eq!(pending, 0);

        let poll = core.handle(&mut conn, Request::Poll);
        let Response::Poll { completions } = poll else {
            panic!("expected poll ok, got {poll:?}");
        };
        assert_eq!(completions.len(), 1);
        assert_eq!(completions[0].job, 0);

        // Polling again is empty — completions are delivered once.
        let again = core.handle(&mut conn, Request::Poll);
        assert_eq!(
            again,
            Response::Poll {
                completions: Vec::new()
            }
        );

        let finish = core.handle(&mut conn, Request::Finish);
        assert_eq!(finish, Response::Finish { open_conns: 0 });
        assert_eq!(conn, None);

        let (opened, open, delivered) = core.counters();
        assert_eq!((opened, open, delivered), (1, 0, 1));
    }

    #[test]
    fn requests_before_hello_are_rejected() {
        let system = tiny_system();
        let core = ServiceCore::new(system.session("CoServe"), system.model().num_experts());
        let mut conn = None;
        for req in [
            Request::Submit {
                arrival: SimTime::ZERO,
                stages: vec![coserve_model::expert::ExpertId(0)],
            },
            Request::Poll,
            Request::Pump { limit: None },
            Request::Finish,
        ] {
            let resp = core.handle(&mut conn, req);
            assert!(
                matches!(
                    resp,
                    Response::Error {
                        code: ErrorCode::BadRequest,
                        ..
                    }
                ),
                "expected bad request, got {resp:?}"
            );
        }
    }

    #[test]
    fn completions_route_to_their_owning_connection() {
        let system = tiny_system();
        let core = ServiceCore::new(system.session("CoServe"), system.model().num_experts());
        let stream = TaskSpec::a1().scaled(0.01).stream(system.model());

        let mut a = None;
        let mut b = None;
        core.handle(&mut a, Request::Hello);
        core.handle(&mut b, Request::Hello);

        // Even jobs from connection a, odd jobs from connection b.
        let mut expect_a = Vec::new();
        let mut expect_b = Vec::new();
        for (i, req) in stream.jobs().iter().enumerate() {
            let who = if i % 2 == 0 { &mut a } else { &mut b };
            let resp = core.handle(
                who,
                Request::Submit {
                    arrival: req.arrival,
                    stages: req.stages.clone(),
                },
            );
            let Response::Submit { job } = resp else {
                panic!("expected submit ok, got {resp:?}");
            };
            if i % 2 == 0 {
                expect_a.push(job);
            } else {
                expect_b.push(job);
            }
        }

        core.handle(&mut a, Request::Pump { limit: None });
        let polled = |resp: Response| -> Vec<u32> {
            let Response::Poll { completions } = resp else {
                panic!("expected poll ok, got {resp:?}");
            };
            let mut jobs: Vec<u32> = completions.iter().map(|c| c.job).collect();
            jobs.sort_unstable();
            jobs
        };
        assert_eq!(polled(core.handle(&mut a, Request::Poll)), expect_a);
        assert_eq!(polled(core.handle(&mut b, Request::Poll)), expect_b);
    }

    #[test]
    fn busy_limit_sheds_submits_with_retry_after() {
        let system = tiny_system();
        let core = ServiceCore::new(system.session("CoServe"), system.model().num_experts());
        core.set_busy_limit(2, SimSpan::from_millis(1));
        let stream = TaskSpec::a1().scaled(0.01).stream(system.model());

        let mut conn = None;
        core.handle(&mut conn, Request::Hello);
        let (mut admitted, mut shed) = (0u64, 0u64);
        for job in stream.jobs().iter().take(6) {
            let resp = core.handle(
                &mut conn,
                Request::Submit {
                    arrival: job.arrival,
                    stages: job.stages.clone(),
                },
            );
            match resp {
                Response::Submit { .. } => admitted += 1,
                Response::Busy { retry_after } => {
                    assert_eq!(retry_after, SimSpan::from_millis(1));
                    shed += 1;
                }
                other => panic!("expected submit or busy, got {other:?}"),
            }
        }
        // The first two fill the window; the rest are shed, enqueue
        // nothing, and are accounted in the ledger.
        assert_eq!((admitted, shed), (2, 4));
        assert_eq!(core.busy_shed(), 4);
        assert_eq!(core.in_flight(), 2);
        let ledger = core.fault_ledger();
        assert_eq!(ledger.busy_shed, 4);
        assert!(!ledger.is_empty());

        // Draining the backlog reopens admission.
        core.handle(&mut conn, Request::Pump { limit: None });
        assert_eq!(core.in_flight(), 0);
        let job = &stream.jobs()[0];
        let resp = core.handle(
            &mut conn,
            Request::Submit {
                arrival: SimTime::ZERO,
                stages: job.stages.clone(),
            },
        );
        assert!(matches!(resp, Response::Submit { .. }), "{resp:?}");

        let report = core.into_report();
        assert_eq!(report.submitted, 3);
    }

    #[test]
    fn disconnected_connections_drop_their_completions() {
        let system = tiny_system();
        let core = ServiceCore::new(system.session("CoServe"), system.model().num_experts());
        let stream = TaskSpec::a1().scaled(0.01).stream(system.model());
        let req = &stream.jobs()[0];

        let mut gone = None;
        core.handle(&mut gone, Request::Hello);
        core.handle(
            &mut gone,
            Request::Submit {
                arrival: SimTime::ZERO,
                stages: req.stages.clone(),
            },
        );
        core.disconnect(gone.unwrap());

        let mut live = None;
        core.handle(&mut live, Request::Hello);
        core.handle(&mut live, Request::Pump { limit: None });
        // The orphaned completion is discarded, not misdelivered.
        assert_eq!(
            core.handle(&mut live, Request::Poll),
            Response::Poll {
                completions: Vec::new()
            }
        );
        let report = core.into_report();
        assert_eq!(report.completed, 1);
    }
}
