//! The admin port.
//!
//! A minimal HTTP/1.0 responder on a second listener, in the Pelikan
//! tradition of keeping operational traffic off the data port:
//!
//! | endpoint    | answer                                             |
//! |-------------|----------------------------------------------------|
//! | `/healthz`  | `200 ok` while the server is accepting             |
//! | `/stats`    | live JSON: server counters + engine `RunSnapshot`  |
//! | `/metrics`  | Pelikan-style flat `name value` counter lines      |
//! | `/trace`    | Chrome trace-event JSON; **drains** the tracer     |
//! | `/drain`    | graceful drain: serve out open connections, then stop |
//! | `/shutdown` | sets the shutdown flag and acknowledges            |
//!
//! `/stats` and `/metrics` are served mid-run without consuming or
//! pausing the engine — they take the core lock just long enough to
//! copy a non-consuming
//! [`RunSnapshot`](coserve_metrics::report::RunSnapshot). `/trace` is
//! destructive by design: each buffered trace event is exported
//! exactly once, so repeated requests stream disjoint windows of the
//! run (and the buffer never needs unbounded memory).

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::time::Duration;

use crate::server::Server;
use crate::service::ServiceCore;

/// Answers one admin connection: read a single HTTP request, write a
/// single response, close. Malformed or slow requests are dropped
/// silently — the admin port never blocks the server.
pub(crate) fn serve_admin_connection(
    server: &Server,
    core: &ServiceCore<'_>,
    mut stream: TcpStream,
) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let Some(path) = read_request_path(&mut stream) else {
        return;
    };
    let (status, body) = match path.as_str() {
        "/healthz" => ("200 OK", "ok\n".to_string()),
        "/stats" => ("200 OK", stats_json(server, core)),
        "/metrics" => ("200 OK", metrics_text(server, core)),
        "/trace" => ("200 OK", core.drain_trace_json()),
        "/drain" => {
            server.drain();
            ("200 OK", "draining\n".to_string())
        }
        "/shutdown" => {
            server.shutdown();
            ("200 OK", "shutting down\n".to_string())
        }
        _ => ("404 Not Found", "unknown endpoint\n".to_string()),
    };
    let content_type = if status.starts_with("200") && (path == "/stats" || path == "/trace") {
        "application/json"
    } else {
        "text/plain"
    };
    let _ = write!(
        stream,
        "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    );
    let _ = stream.flush();
}

/// Reads request bytes until the header terminator (or 4 KiB, or
/// timeout) and extracts the request path from the request line.
fn read_request_path(stream: &mut TcpStream) -> Option<String> {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 512];
    while buf.len() < 4096 && !buf.windows(4).any(|w| w == b"\r\n\r\n") {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => match chunk.get(..n) {
                Some(read) => buf.extend_from_slice(read),
                None => break,
            },
            Err(_) => break,
        }
    }
    let text = String::from_utf8_lossy(&buf);
    let request_line = text.lines().next()?;
    // "GET /stats HTTP/1.1" → "/stats"
    request_line.split_whitespace().nth(1).map(str::to_string)
}

/// The `/stats` document: server-level counters (including the
/// malformed-frame breakdown), per-connection pending completions,
/// and a live engine snapshot, all one JSON object.
fn stats_json(server: &Server, core: &ServiceCore<'_>) -> String {
    let counters = server.counters();
    let (opened, open, delivered) = core.counters();
    let pending = core.pending_completions();
    let pending_total: u64 = pending.iter().map(|&(_, n)| n).sum();
    let conns: Vec<String> = pending
        .iter()
        .map(|&(id, n)| format!("{{\"conn\":{id},\"pending\":{n}}}"))
        .collect();
    format!(
        "{{\"server\":{{\"accepted\":{},\"frames\":{},\"protocol_errors\":{},\
         \"frame_errors\":{},\"decode_errors\":{},\
         \"conns_opened\":{opened},\"conns_open\":{open},\"completions_delivered\":{delivered},\
         \"completions_pending\":{pending_total},\"busy_shed\":{},\"in_flight\":{},\
         \"draining\":{},\"conns\":[{}]}},\
         \"engine\":{}}}",
        counters.accepted.load(Ordering::Relaxed),
        counters.frames.load(Ordering::Relaxed),
        counters.protocol_errors.load(Ordering::Relaxed),
        counters.frame_errors.load(Ordering::Relaxed),
        counters.decode_errors.load(Ordering::Relaxed),
        core.busy_shed(),
        core.in_flight(),
        server.is_draining(),
        conns.join(","),
        core.snapshot().to_json(),
    )
}

/// The `/metrics` document: one `name value` line per counter, in the
/// flat-text style of Pelikan's stats port. Values are integers; times
/// are microseconds.
fn metrics_text(server: &Server, core: &ServiceCore<'_>) -> String {
    let counters = server.counters();
    let (opened, open, delivered) = core.counters();
    let pending_total: u64 = core.pending_completions().iter().map(|&(_, n)| n).sum();
    let (trace_recorded, trace_dropped, trace_buffered) = core.trace_counters();
    let snap = core.snapshot();
    let mut out = String::new();
    let mut line = |name: &str, value: u64| {
        out.push_str(name);
        out.push(' ');
        out.push_str(&value.to_string());
        out.push('\n');
    };
    line("server_accepted", counters.accepted.load(Ordering::Relaxed));
    line("server_frames", counters.frames.load(Ordering::Relaxed));
    line(
        "server_protocol_errors",
        counters.protocol_errors.load(Ordering::Relaxed),
    );
    line(
        "server_frame_errors",
        counters.frame_errors.load(Ordering::Relaxed),
    );
    line(
        "server_decode_errors",
        counters.decode_errors.load(Ordering::Relaxed),
    );
    line("conns_opened", opened);
    line("conns_open", open);
    line("completions_delivered", delivered);
    line("completions_pending", pending_total);
    line("server_busy_shed", core.busy_shed());
    line("server_in_flight", core.in_flight());
    line("server_draining", u64::from(server.is_draining()));
    line("engine_submitted", snap.submitted as u64);
    line("engine_admitted", snap.admitted as u64);
    line("engine_dropped", snap.dropped as u64);
    line("engine_completed", snap.completed as u64);
    line("engine_failed", snap.failed as u64);
    line("engine_stages_executed", snap.stages_executed as u64);
    line("engine_pending_events", snap.pending_events as u64);
    line(
        "engine_completions_pending",
        snap.completions_pending as u64,
    );
    line("engine_expert_switches", snap.expert_switches);
    line("engine_makespan_us", snap.makespan.nanos() / 1_000);
    line(
        "engine_switch_time_us",
        snap.switch_time_total.nanos() / 1_000,
    );
    line("engine_exec_time_us", snap.exec_time_total.nanos() / 1_000);
    line("trace_events_recorded", trace_recorded);
    line("trace_events_dropped", trace_dropped);
    line("trace_events_buffered", trace_buffered);
    out
}
