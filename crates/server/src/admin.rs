//! The admin port.
//!
//! A minimal HTTP/1.0 responder on a second listener, in the Pelikan
//! tradition of keeping operational traffic off the data port:
//!
//! | endpoint    | answer                                             |
//! |-------------|----------------------------------------------------|
//! | `/healthz`  | `200 ok` while the server is accepting             |
//! | `/stats`    | live JSON: server counters + engine `RunSnapshot`  |
//! | `/shutdown` | sets the shutdown flag and acknowledges            |
//!
//! `/stats` is served mid-run without consuming or pausing the engine
//! — it takes the core lock just long enough to copy a non-consuming
//! [`RunSnapshot`](coserve_metrics::report::RunSnapshot) (the
//! satellite API added for exactly this endpoint).

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::time::Duration;

use crate::server::Server;
use crate::service::ServiceCore;

/// Answers one admin connection: read a single HTTP request, write a
/// single response, close. Malformed or slow requests are dropped
/// silently — the admin port never blocks the server.
pub(crate) fn serve_admin_connection(
    server: &Server,
    core: &ServiceCore<'_>,
    mut stream: TcpStream,
) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let Some(path) = read_request_path(&mut stream) else {
        return;
    };
    let (status, body) = match path.as_str() {
        "/healthz" => ("200 OK", "ok\n".to_string()),
        "/stats" => ("200 OK", stats_json(server, core)),
        "/shutdown" => {
            server.shutdown();
            ("200 OK", "shutting down\n".to_string())
        }
        _ => ("404 Not Found", "unknown endpoint\n".to_string()),
    };
    let content_type = if status.starts_with("200") && path == "/stats" {
        "application/json"
    } else {
        "text/plain"
    };
    let _ = write!(
        stream,
        "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    );
    let _ = stream.flush();
}

/// Reads request bytes until the header terminator (or 4 KiB, or
/// timeout) and extracts the request path from the request line.
fn read_request_path(stream: &mut TcpStream) -> Option<String> {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 512];
    while buf.len() < 4096 && !buf.windows(4).any(|w| w == b"\r\n\r\n") {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => match chunk.get(..n) {
                Some(read) => buf.extend_from_slice(read),
                None => break,
            },
            Err(_) => break,
        }
    }
    let text = String::from_utf8_lossy(&buf);
    let request_line = text.lines().next()?;
    // "GET /stats HTTP/1.1" → "/stats"
    request_line.split_whitespace().nth(1).map(str::to_string)
}

/// The `/stats` document: server-level counters plus a live engine
/// snapshot, all one JSON object.
fn stats_json(server: &Server, core: &ServiceCore<'_>) -> String {
    let counters = server.counters();
    let (opened, open, delivered) = core.counters();
    format!(
        "{{\"server\":{{\"accepted\":{},\"frames\":{},\"protocol_errors\":{},\
         \"conns_opened\":{opened},\"conns_open\":{open},\"completions_delivered\":{delivered}}},\
         \"engine\":{}}}",
        counters.accepted.load(Ordering::Relaxed),
        counters.frames.load(Ordering::Relaxed),
        counters.protocol_errors.load(Ordering::Relaxed),
        core.snapshot().to_json(),
    )
}
