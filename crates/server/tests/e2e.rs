//! End-to-end tests: real TCP loopback sockets, the full worker pool,
//! and the admin port — pinned against the batch facade.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use coserve_core::prelude::*;
use coserve_model::devices;
use coserve_server::prelude::*;
use coserve_server::server::{Client, Server, ServerConfig};
use coserve_sim::time::{SimSpan, SimTime};
use coserve_workload::task::TaskSpec;

fn tiny_setup() -> (ServingSystem, coserve_workload::stream::RequestStream) {
    let device = devices::numa_rtx3080ti();
    let task = TaskSpec::a1().scaled(0.02); // 50 requests
    let model = task.build_model().unwrap();
    let config = presets::coserve(&device);
    let system = ServingSystem::new(device, model, config).unwrap();
    let stream = task.stream(system.model());
    (system, stream)
}

/// Boots a server around `core`, runs `client_side` against the bound
/// addresses, shuts down, and returns once the scope unwinds.
fn with_server<'a>(
    core: &ServiceCore<'a>,
    workers: usize,
    client_side: impl FnOnce(std::net::SocketAddr, std::net::SocketAddr),
) {
    let server = Server::bind(&ServerConfig {
        workers,
        ..ServerConfig::default()
    })
    .unwrap();
    let data = server.data_addr().unwrap();
    let admin = server.admin_addr().unwrap();
    std::thread::scope(|scope| {
        let handle = scope.spawn(|| server.run(core));
        client_side(data, admin);
        server.shutdown();
        handle.join().unwrap().unwrap();
    });
}

fn admin_get(admin: std::net::SocketAddr, path: &str) -> String {
    let mut stream = TcpStream::connect(admin).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    write!(stream, "GET {path} HTTP/1.0\r\n\r\n").unwrap();
    let mut out = String::new();
    stream.read_to_string(&mut out).unwrap();
    out
}

/// The acceptance pin: a request stream pushed through the wire — at
/// 1, 2 and 4 worker threads — completes with per-job latencies
/// bit-identical to the consumed batch facade.
#[test]
fn wire_serving_matches_batch_serve_across_worker_counts() {
    let (system, stream) = tiny_setup();
    let batch = system.serve(&stream);
    let mut expected: Vec<SimSpan> = batch.job_latencies.clone();
    expected.sort_unstable();

    for workers in [1usize, 2, 4] {
        let core = ServiceCore::new(system.session("CoServe"), system.model().num_experts());
        with_server(&core, workers, |data, _admin| {
            let mut client = Client::connect(data).unwrap();
            let hello = client.call(&Request::Hello).unwrap();
            assert!(
                matches!(hello, Response::Hello { conn: 0, .. }),
                "unexpected hello: {hello:?}"
            );

            for job in stream.jobs() {
                let resp = client
                    .call(&Request::Submit {
                        arrival: job.arrival,
                        stages: job.stages.clone(),
                    })
                    .unwrap();
                assert!(matches!(resp, Response::Submit { .. }), "{resp:?}");
            }
            let pump = client.call(&Request::Pump { limit: None }).unwrap();
            let Response::Pump { pending, .. } = pump else {
                panic!("expected pump ok, got {pump:?}");
            };
            assert_eq!(pending, 0);

            let poll = client.call(&Request::Poll).unwrap();
            let Response::Poll { completions } = poll else {
                panic!("expected poll ok, got {poll:?}");
            };
            assert_eq!(completions.len(), batch.completed, "workers={workers}");
            let mut latencies: Vec<SimSpan> = completions.iter().map(|c| c.latency).collect();
            latencies.sort_unstable();
            assert_eq!(latencies, expected, "workers={workers}");

            let finish = client.call(&Request::Finish).unwrap();
            assert_eq!(finish, Response::Finish { open_conns: 0 });
        });
        let report = core.into_report();
        assert_eq!(report.completed, batch.completed, "workers={workers}");
        assert_eq!(report.job_latencies, batch.job_latencies);
    }
}

/// Two concurrent connections served by a 2-worker pool: every job
/// completes exactly once and lands on its owning connection.
#[test]
fn concurrent_connections_conserve_jobs() {
    let (system, stream) = tiny_setup();
    let total = stream.len();
    let core = ServiceCore::new(system.session("CoServe"), system.model().num_experts());
    with_server(&core, 2, |data, _admin| {
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..2)
                .map(|half| {
                    let jobs: Vec<_> = stream
                        .jobs()
                        .iter()
                        .skip(half)
                        .step_by(2)
                        .cloned()
                        .collect();
                    scope.spawn(move || {
                        let mut client = Client::connect(data).unwrap();
                        client.call(&Request::Hello).unwrap();
                        let mut mine = Vec::new();
                        for job in &jobs {
                            let resp = client
                                .call(&Request::Submit {
                                    arrival: job.arrival,
                                    stages: job.stages.clone(),
                                })
                                .unwrap();
                            let Response::Submit { job: id } = resp else {
                                panic!("expected submit ok, got {resp:?}");
                            };
                            mine.push(id);
                        }
                        // Pump + poll until all of this connection's
                        // jobs came back.
                        let mut got = Vec::new();
                        while got.len() < jobs.len() {
                            client.call(&Request::Pump { limit: None }).unwrap();
                            let resp = client.call(&Request::Poll).unwrap();
                            let Response::Poll { completions } = resp else {
                                panic!("expected poll ok, got {resp:?}");
                            };
                            got.extend(completions.iter().map(|c| c.job));
                        }
                        got.sort_unstable();
                        mine.sort_unstable();
                        assert_eq!(got, mine, "completions must route to their owner");
                        client.call(&Request::Finish).unwrap();
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
        });
    });
    let report = core.into_report();
    assert_eq!(report.completed, total);
    assert_eq!(report.submitted, total);
}

/// The admin port answers mid-run with live JSON, and `/shutdown`
/// unwinds the server cleanly.
#[test]
fn admin_port_serves_live_stats_and_shutdown() {
    let (system, stream) = tiny_setup();
    let core = ServiceCore::new(system.session("CoServe"), system.model().num_experts());

    let server = Server::bind(&ServerConfig::default()).unwrap();
    let data = server.data_addr().unwrap();
    let admin = server.admin_addr().unwrap();
    std::thread::scope(|scope| {
        let handle = scope.spawn(|| server.run(&core));

        let health = admin_get(admin, "/healthz");
        assert!(health.starts_with("HTTP/1.0 200"), "{health}");

        // Submit half the stream and pump, then read stats mid-run —
        // the engine is live, not consumed.
        let mut client = Client::connect(data).unwrap();
        client.call(&Request::Hello).unwrap();
        for job in stream.jobs().iter().take(stream.len() / 2) {
            client
                .call(&Request::Submit {
                    arrival: job.arrival,
                    stages: job.stages.clone(),
                })
                .unwrap();
        }
        client.call(&Request::Pump { limit: None }).unwrap();

        let stats = admin_get(admin, "/stats");
        assert!(stats.starts_with("HTTP/1.0 200"), "{stats}");
        let body = stats.split("\r\n\r\n").nth(1).unwrap();
        assert!(body.starts_with("{\"server\":{\"accepted\":"), "{body}");
        assert!(body.contains("\"conns_open\":1"), "{body}");
        assert!(body.contains("\"engine\":{"), "{body}");
        let submitted = format!("\"submitted\":{}", stream.len() / 2);
        assert!(body.contains(&submitted), "{body}");

        // The wire stats answer matches the admin document's engine half.
        let wire = client.call(&Request::Stats).unwrap();
        let Response::Stats { json } = wire else {
            panic!("expected stats, got {wire:?}");
        };
        assert!(body.contains(&json), "wire and admin snapshots agree");

        assert!(admin_get(admin, "/nope").starts_with("HTTP/1.0 404"));

        let bye = admin_get(admin, "/shutdown");
        assert!(bye.starts_with("HTTP/1.0 200"), "{bye}");
        handle.join().unwrap().unwrap();
    });

    // The session survives shutdown: the remaining jobs were simply
    // never submitted, and what ran is in the final report.
    let report = core.into_report();
    assert_eq!(report.submitted, stream.len() / 2);
    assert_eq!(report.completed, stream.len() / 2);
}

/// A graceful drain (`/drain`) serves out the open connection — Pump,
/// Poll and Finish keep flushing pending completions — while new
/// submits get a typed Shutdown error, and the server stops on its own
/// once the last connection finishes (no `/shutdown` needed).
#[test]
fn graceful_drain_flushes_in_flight_connections() {
    let (system, stream) = tiny_setup();
    let core = ServiceCore::new(system.session("CoServe"), system.model().num_experts());
    let server = Server::bind(&ServerConfig::default()).unwrap();
    let data = server.data_addr().unwrap();
    let admin = server.admin_addr().unwrap();
    let submitted = stream.len() / 2;
    std::thread::scope(|scope| {
        let handle = scope.spawn(|| server.run(&core));

        let mut client = Client::connect(data).unwrap();
        client.call(&Request::Hello).unwrap();
        for job in stream.jobs().iter().take(submitted) {
            let resp = client
                .call(&Request::Submit {
                    arrival: job.arrival,
                    stages: job.stages.clone(),
                })
                .unwrap();
            assert!(matches!(resp, Response::Submit { .. }), "{resp:?}");
        }
        // Pump so the completions are buffered but not yet polled,
        // then ask for a graceful drain.
        client.call(&Request::Pump { limit: None }).unwrap();
        let ack = admin_get(admin, "/drain");
        assert!(ack.starts_with("HTTP/1.0 200"), "{ack}");

        let stats = admin_get(admin, "/stats");
        let body = stats.split("\r\n\r\n").nth(1).unwrap();
        assert!(body.contains("\"draining\":true"), "{body}");

        // New work is refused with the typed shutdown error...
        let refused = client
            .call(&Request::Submit {
                arrival: SimTime::ZERO,
                stages: stream.jobs()[0].stages.clone(),
            })
            .unwrap();
        assert!(
            matches!(
                refused,
                Response::Error {
                    code: ErrorCode::Shutdown,
                    ..
                }
            ),
            "{refused:?}"
        );

        // ...but the in-flight completions still flush.
        let resp = client.call(&Request::Poll).unwrap();
        let Response::Poll { completions } = resp else {
            panic!("expected poll ok, got {resp:?}");
        };
        assert_eq!(completions.len(), submitted);
        client.call(&Request::Finish).unwrap();

        // The drain completes by itself once the connection is gone.
        handle.join().unwrap().unwrap();
    });
    let report = core.into_report();
    assert_eq!(report.submitted, submitted);
    assert_eq!(report.completed, submitted);
}

/// A server armed with a busy limit sheds excess submits with a typed
/// `Busy`/retry-after answer; a client that backs off (pump, retry)
/// still lands every job, and the shed count is on the admin port.
#[test]
fn busy_server_sheds_with_retry_after_and_recovers() {
    let (system, stream) = tiny_setup();
    let core = ServiceCore::new(system.session("CoServe"), system.model().num_experts());
    core.set_busy_limit(4, SimSpan::from_millis(2));

    let mut shed_total = 0u64;
    with_server(&core, 2, |data, admin| {
        let mut client = Client::connect(data).unwrap();
        client.call(&Request::Hello).unwrap();
        let mut admitted = 0usize;
        for job in stream.jobs() {
            let resp = client
                .call(&Request::Submit {
                    arrival: job.arrival,
                    stages: job.stages.clone(),
                })
                .unwrap();
            match resp {
                Response::Submit { .. } => admitted += 1,
                Response::Busy { retry_after } => {
                    assert_eq!(retry_after, SimSpan::from_millis(2));
                    shed_total += 1;
                    // Busy means nothing was enqueued: back off by
                    // draining the backlog, then resubmit.
                    client.call(&Request::Pump { limit: None }).unwrap();
                    let retry = client
                        .call(&Request::Submit {
                            arrival: job.arrival,
                            stages: job.stages.clone(),
                        })
                        .unwrap();
                    assert!(matches!(retry, Response::Submit { .. }), "{retry:?}");
                    admitted += 1;
                }
                other => panic!("expected submit or busy, got {other:?}"),
            }
        }
        assert!(shed_total > 0, "the busy limit never tripped");
        assert_eq!(admitted, stream.len());

        let stats = admin_get(admin, "/stats");
        let body = stats.split("\r\n\r\n").nth(1).unwrap();
        let needle = format!("\"busy_shed\":{shed_total}");
        assert!(body.contains(&needle), "{body}");

        client.call(&Request::Pump { limit: None }).unwrap();
        client.call(&Request::Poll).unwrap();
        client.call(&Request::Finish).unwrap();
    });

    let ledger = core.fault_ledger();
    assert_eq!(ledger.busy_shed, shed_total);
    let report = core.into_report();
    assert_eq!(report.submitted, stream.len());
    assert_eq!(report.completed, stream.len());
}

/// Malformed bytes on the data port get an error frame or a dropped
/// connection — never a panic, never a wedged server.
#[test]
fn malformed_frames_do_not_wedge_the_server() {
    let (system, _) = tiny_setup();
    let core = ServiceCore::new(system.session("CoServe"), system.model().num_experts());
    with_server(&core, 2, |data, admin| {
        // A valid frame with a garbage opcode: server answers Error.
        let mut stream = TcpStream::connect(data).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        stream.write_all(&2u32.to_le_bytes()).unwrap();
        stream.write_all(&[0x42, 0x42]).unwrap();
        let payload = read_frame(&mut stream).unwrap().unwrap();
        let resp = decode_response(&payload).unwrap();
        assert!(
            matches!(
                resp,
                Response::Error {
                    code: ErrorCode::BadRequest,
                    ..
                }
            ),
            "{resp:?}"
        );
        drop(stream);

        // An oversized length prefix: the connection is dropped.
        let mut stream = TcpStream::connect(data).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        stream.write_all(&u32::MAX.to_le_bytes()).unwrap();
        let mut buf = [0u8; 1];
        assert_eq!(stream.read(&mut buf).unwrap_or(0), 0, "connection closed");

        // The server still serves well-formed clients afterwards.
        let mut client = Client::connect(data).unwrap();
        let hello = client.call(&Request::Hello).unwrap();
        assert!(matches!(hello, Response::Hello { .. }), "{hello:?}");
        client.call(&Request::Finish).unwrap();

        // The two failure modes are counted separately and surfaced
        // on the admin port: one decode error (garbage opcode), one
        // frame error (oversized length prefix).
        let stats = admin_get(admin, "/stats");
        let body = stats.split("\r\n\r\n").nth(1).unwrap();
        assert!(body.contains("\"protocol_errors\":2"), "{body}");
        assert!(body.contains("\"frame_errors\":1"), "{body}");
        assert!(body.contains("\"decode_errors\":1"), "{body}");
    });
}

/// `/metrics` serves flat counters, `/trace` drains the session's
/// tracer as Chrome trace-event JSON, and `/stats` reports the
/// per-connection completion backlog.
#[test]
fn admin_trace_and_metrics_endpoints() {
    let (system, stream) = tiny_setup();
    let mut session = system.session("CoServe");
    let _ = session.set_tracer(Box::new(coserve_trace::RingTracer::new()));
    let core = ServiceCore::new(session, system.model().num_experts());

    with_server(&core, 2, |data, admin| {
        let mut client = Client::connect(data).unwrap();
        client.call(&Request::Hello).unwrap();
        for job in stream.jobs() {
            client
                .call(&Request::Submit {
                    arrival: job.arrival,
                    stages: job.stages.clone(),
                })
                .unwrap();
        }
        client.call(&Request::Pump { limit: None }).unwrap();

        // /stats surfaces the undelivered-completion backlog while the
        // connection has pumped but not yet polled.
        let stats = admin_get(admin, "/stats");
        let body = stats.split("\r\n\r\n").nth(1).unwrap();
        let backlog = format!("\"completions_pending\":{}", stream.len());
        assert!(body.contains(&backlog), "{body}");
        let conn = format!("{{\"conn\":0,\"pending\":{}}}", stream.len());
        assert!(body.contains(&conn), "{body}");

        // /metrics: flat `name value` lines, Pelikan style.
        let metrics = admin_get(admin, "/metrics");
        assert!(metrics.starts_with("HTTP/1.0 200"), "{metrics}");
        let body = metrics.split("\r\n\r\n").nth(1).unwrap();
        let value = |name: &str| -> u64 {
            body.lines()
                .find_map(|l| l.strip_prefix(name).and_then(|v| v.trim().parse().ok()))
                .unwrap_or_else(|| panic!("missing counter {name} in {body}"))
        };
        assert_eq!(value("engine_submitted "), stream.len() as u64);
        assert_eq!(value("engine_completed "), stream.len() as u64);
        assert_eq!(value("server_frame_errors "), 0);
        assert!(value("trace_events_recorded ") > 0);
        assert_eq!(
            value("trace_events_buffered "),
            value("trace_events_recorded ")
        );

        // /trace drains the buffer: the first dump carries the run...
        let trace = admin_get(admin, "/trace");
        assert!(trace.starts_with("HTTP/1.0 200"), "{trace}");
        assert!(trace.contains("application/json"), "{trace}");
        let body = trace.split("\r\n\r\n").nth(1).unwrap();
        assert!(body.starts_with("{\"displayTimeUnit\": \"ms\""), "{body}");
        assert!(body.contains("\"stage-done\""), "{body}");
        assert!(body.contains("\"completed\""), "{body}");

        // ...and the second is a valid, empty document.
        let again = admin_get(admin, "/trace");
        let body = again.split("\r\n\r\n").nth(1).unwrap();
        assert!(!body.contains("\"stage-done\""), "{body}");
        assert!(body.trim_end().ends_with("]}"), "{body}");

        client.call(&Request::Poll).unwrap();
        client.call(&Request::Finish).unwrap();
    });
}

/// Writes one raw request frame and decodes the response frame.
fn raw_call(stream: &mut TcpStream, body: &[u8]) -> Response {
    stream
        .write_all(&(body.len() as u32).to_le_bytes())
        .unwrap();
    stream.write_all(body).unwrap();
    let payload = read_frame(stream).unwrap().unwrap();
    decode_response(&payload).unwrap()
}

fn assert_bad_request(resp: &Response) {
    assert!(
        matches!(
            resp,
            Response::Error {
                code: ErrorCode::BadRequest,
                ..
            }
        ),
        "{resp:?}"
    );
}

/// The cases the panic-path audit turned up: bodies that decode partway
/// and then run out (or leave bytes over) must come back as BadRequest
/// error frames on a connection that keeps serving — the decoder may
/// never index past the payload.
#[test]
fn truncated_and_overlong_bodies_get_error_frames() {
    const OP_HELLO: u8 = 0x01;
    const OP_SUBMIT: u8 = 0x02;
    const OP_PUMP: u8 = 0x04;

    let (system, _) = tiny_setup();
    let core = ServiceCore::new(system.session("CoServe"), system.model().num_experts());
    with_server(&core, 2, |data, _admin| {
        let mut stream = TcpStream::connect(data).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();

        // A Submit declaring 5 stages but carrying only 1: the stage
        // loop must hit a truncation error, not read out of bounds.
        let mut body = vec![OP_SUBMIT];
        body.extend_from_slice(&0u64.to_le_bytes()); // arrival
        body.extend_from_slice(&5u16.to_le_bytes()); // claims 5 stages
        body.extend_from_slice(&0u32.to_le_bytes()); // provides 1
        assert_bad_request(&raw_call(&mut stream, &body));

        // A Submit cut off mid-arrival (3 of 8 bytes).
        assert_bad_request(&raw_call(&mut stream, &[OP_SUBMIT, 1, 2, 3]));

        // A Pump with a limit flag that is neither 0 nor 1.
        assert_bad_request(&raw_call(&mut stream, &[OP_PUMP, 2]));

        // A Pump claiming a limit (flag 1) but carrying no timestamp.
        assert_bad_request(&raw_call(&mut stream, &[OP_PUMP, 1, 9]));

        // Trailing bytes after a complete request are rejected, not
        // silently swallowed into the next frame.
        assert_bad_request(&raw_call(&mut stream, &[OP_HELLO, 0xEE]));

        // The same connection still serves well-formed requests: the
        // error frames above were answers, not connection drops.
        let hello = raw_call(&mut stream, &[OP_HELLO]);
        assert!(matches!(hello, Response::Hello { .. }), "{hello:?}");
    });
}
