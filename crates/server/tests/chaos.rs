//! Byte-level chaos tests: the framing and decode layers against the
//! fault plan's seeded stream mutilator ([`ByteChaos`]). Whatever a
//! hostile network does to the wire image — re-chunked reads, stalls,
//! mid-frame disconnects, truncation, corruption — the receive path
//! must neither panic nor desync: every fully delivered frame decodes
//! to exactly the request that was sent, and damage is confined to an
//! error result.

use coserve_faults::{ByteChaos, ChaosStep, FaultPlan};
use coserve_server::protocol::{decode_request, encode_request, FrameBuffer, Request};
use coserve_sim::time::SimTime;
use proptest::prelude::*;

/// A deterministic mixed bag of requests derived from `seed`.
fn request_mix(seed: u64, n: usize) -> Vec<Request> {
    (0..n)
        .map(|i| match (seed.wrapping_add(i as u64)) % 5 {
            0 => Request::Hello,
            1 => Request::Submit {
                arrival: SimTime::from_nanos(seed ^ (i as u64) << 7),
                stages: (0..=(i % 7) as u32)
                    .map(coserve_model::expert::ExpertId)
                    .collect(),
            },
            2 => Request::Poll,
            3 => Request::Pump {
                limit: (i % 2 == 0).then(|| SimTime::from_nanos(seed >> 3)),
            },
            _ => Request::Finish,
        })
        .collect()
}

/// The full wire image of `requests`: length-prefixed frames, back to
/// back, exactly as a client writes them.
fn wire_image(requests: &[Request]) -> Vec<u8> {
    let mut image = Vec::new();
    for request in requests {
        let payload = encode_request(request);
        image.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        image.extend_from_slice(&payload);
    }
    image
}

fn chaos(seed: u64) -> ByteChaos {
    FaultPlan::seeded(seed).connection_chaos(seed)
}

/// Feeds `image` to a `FrameBuffer` along `schedule`, collecting every
/// complete frame. Returns the decoded frames; a framing error ends
/// delivery (the server would drop the connection there).
fn deliver(image: &[u8], schedule: &[ChaosStep]) -> Vec<Vec<u8>> {
    let mut frames = FrameBuffer::new();
    let mut out = Vec::new();
    let mut offset = 0usize;
    for step in schedule {
        match step {
            ChaosStep::Stall => {}
            ChaosStep::Disconnect => break,
            ChaosStep::Deliver { len } => {
                let end = (offset + len).min(image.len());
                frames.extend(&image[offset..end]);
                offset = end;
                loop {
                    match frames.next_frame() {
                        Ok(Some(payload)) => out.push(payload),
                        Ok(None) => break,
                        Err(_) => return out,
                    }
                }
            }
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Arbitrary re-chunking with stalls delivers every byte: the
    /// frame sequence comes out whole, in order, and each payload
    /// decodes to the request that was sent.
    #[test]
    fn rechunked_streams_never_desync(seed in any::<u64>(), n in 1usize..12) {
        let requests = request_mix(seed, n);
        let image = wire_image(&requests);
        let schedule = chaos(seed).schedule(image.len(), false);
        let delivered = deliver(&image, &schedule);
        prop_assert_eq!(delivered.len(), requests.len());
        for (payload, request) in delivered.iter().zip(&requests) {
            let decoded = decode_request(payload);
            prop_assert_eq!(decoded.as_ref().ok(), Some(request));
        }
    }

    /// A lossy schedule may cut the stream mid-frame: everything fully
    /// delivered before the disconnect still decodes, in order — a
    /// prefix of the sent sequence, never garbage.
    #[test]
    fn mid_frame_disconnects_leave_a_clean_prefix(seed in any::<u64>(), n in 1usize..12) {
        let requests = request_mix(seed, n);
        let image = wire_image(&requests);
        let schedule = chaos(seed).schedule(image.len(), true);
        let delivered = deliver(&image, &schedule);
        prop_assert!(delivered.len() <= requests.len());
        for (payload, request) in delivered.iter().zip(&requests) {
            let decoded = decode_request(payload);
            prop_assert_eq!(decoded.as_ref().ok(), Some(request));
        }
    }

    /// Truncating the wire image at a seeded point (usually mid-frame)
    /// yields a clean prefix and a quietly incomplete tail — no panic,
    /// no phantom frame.
    #[test]
    fn truncated_streams_yield_a_clean_prefix(seed in any::<u64>(), n in 1usize..12) {
        let requests = request_mix(seed, n);
        let mut image = wire_image(&requests);
        let _survives = chaos(seed).truncate(&mut image);

        let mut frames = FrameBuffer::new();
        frames.extend(&image);
        let mut complete = 0usize;
        while let Ok(Some(payload)) = frames.next_frame() {
            let decoded = decode_request(&payload);
            prop_assert_eq!(decoded.as_ref().ok(), Some(&requests[complete]));
            complete += 1;
        }
        prop_assert!(complete <= requests.len());
    }

    /// Corrupted bytes never panic the receive path: each frame either
    /// fails the length check (connection drop), decodes to an error,
    /// or — when the damage missed the payload — decodes to a request.
    /// The loop always terminates.
    #[test]
    fn corrupted_streams_never_panic(
        seed in any::<u64>(),
        n in 1usize..12,
        rate in 0.001f64..0.25,
    ) {
        let requests = request_mix(seed, n);
        let mut image = wire_image(&requests);
        let _hits = chaos(seed).corrupt(&mut image, rate);

        let mut frames = FrameBuffer::new();
        frames.extend(&image);
        let mut steps = 0usize;
        loop {
            steps += 1;
            prop_assert!(steps <= image.len() + 1, "framing loop did not terminate");
            match frames.next_frame() {
                Ok(Some(payload)) => {
                    // Decode must return, not panic; both outcomes are
                    // legal under corruption.
                    let _ = decode_request(&payload);
                }
                Ok(None) => break,    // waiting for bytes that never come
                Err(_) => break,      // hostile length prefix: drop the conn
            }
        }
    }
}
