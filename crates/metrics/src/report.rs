//! Run reports.
//!
//! Every serving run produces a [`RunReport`]: the throughput and
//! expert-switch counts the paper's Figures 13–16 plot, plus the
//! latency ledgers behind Figure 19, per-executor accounting for
//! debugging and utilization analysis, and — for open-loop online
//! serving — admission/drop counters and per-stage latency ledgers
//! backing tail-latency (p50/p90/p95/p99) SLO reporting.

use std::collections::BTreeMap;

use coserve_model::expert::ExpertId;
use coserve_sim::device::ProcessorKind;
use coserve_sim::memory::{Bytes, MemoryTier};
use coserve_sim::time::{SimSpan, SimTime};

use crate::stats::Summary;

/// One expert load into an executor's model pool after initialization —
/// an "expert switch" in the paper's accounting (Figure 14).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwitchEvent {
    /// When the switch started.
    pub at: SimTime,
    /// Index of the executor that loaded the expert.
    pub executor: usize,
    /// The expert that was loaded.
    pub expert: ExpertId,
    /// Where the expert came from ([`MemoryTier::Cpu`] = staging cache,
    /// [`MemoryTier::Ssd`] = cold load).
    pub source: MemoryTier,
    /// End-to-end load duration.
    pub duration: SimSpan,
}

/// Per-executor accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecutorReport {
    /// Executor index (stable across the run).
    pub index: usize,
    /// Which processor the executor ran on.
    pub processor: ProcessorKind,
    /// Batches executed.
    pub batches: u64,
    /// Requests (batch items) executed.
    pub items: u64,
    /// Time spent executing batches.
    pub exec_time: SimSpan,
    /// Time spent switching experts.
    pub switch_time: SimSpan,
    /// Expert switches performed.
    pub switches: u64,
    /// Model-pool capacity.
    pub pool_capacity: Bytes,
    /// Peak model-pool usage.
    pub pool_peak: Bytes,
    /// When the executor completed its last batch.
    pub finished_at: SimTime,
}

/// Accounting for one shared hardware channel (GPU compute, DMA, SSD,
/// CPU compute, scheduler thread).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChannelReport {
    /// Channel name.
    pub name: &'static str,
    /// Total committed busy time.
    pub busy: SimSpan,
    /// Number of reservations served.
    pub reservations: u64,
}

/// The outcome of one serving run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Serving system name (e.g. "CoServe Best", "Samba-CoE").
    pub system: String,
    /// Device name.
    pub device: String,
    /// Task name.
    pub task: String,
    /// Primary requests submitted.
    pub submitted: usize,
    /// Primary requests fully completed (all stages done).
    pub completed: usize,
    /// Primary requests that could not be served (e.g. an expert that
    /// fits in no pool).
    pub failed: usize,
    /// Primary requests whose first stage passed admission control
    /// (equals `submitted` when no admission bound is configured).
    pub admitted: usize,
    /// Primary requests dropped by admission control at any stage —
    /// the open-loop overload/backpressure counter.
    pub dropped: usize,
    /// Total stages executed (a two-stage job counts twice).
    pub stages_executed: usize,
    /// Time from the first arrival to the last completion.
    pub makespan: SimSpan,
    /// All expert switches, in order.
    pub switch_events: Vec<SwitchEvent>,
    /// Total time executors spent switching.
    pub switch_time_total: SimSpan,
    /// Total time executors spent executing.
    pub exec_time_total: SimSpan,
    /// Per-job sojourn times (arrival → final-stage completion) for
    /// completed jobs.
    pub job_latencies: Vec<SimSpan>,
    /// Per-stage sojourn times (stage enqueued → stage batch finished),
    /// keyed by stage index — the ledger behind per-stage percentile
    /// reporting.
    pub stage_latencies: BTreeMap<u8, Vec<SimSpan>>,
    /// Per-request scheduling processing latencies (Figure 19).
    pub sched_latencies: Vec<SimSpan>,
    /// Per-executor accounting.
    pub executors: Vec<ExecutorReport>,
    /// Shared-channel accounting.
    pub channels: Vec<ChannelReport>,
}

impl RunReport {
    /// A zero report for a system that was handed no work: every
    /// counter and ledger empty, makespan zero. Cluster merges use this
    /// for nodes the dispatcher routed nothing to, keeping the
    /// zero-semantics decision next to the type that owns it.
    #[must_use]
    pub fn empty(
        system: impl Into<String>,
        device: impl Into<String>,
        task: impl Into<String>,
    ) -> RunReport {
        RunReport {
            system: system.into(),
            device: device.into(),
            task: task.into(),
            submitted: 0,
            completed: 0,
            failed: 0,
            admitted: 0,
            dropped: 0,
            stages_executed: 0,
            makespan: SimSpan::ZERO,
            switch_events: Vec::new(),
            switch_time_total: SimSpan::ZERO,
            exec_time_total: SimSpan::ZERO,
            job_latencies: Vec::new(),
            stage_latencies: BTreeMap::new(),
            sched_latencies: Vec::new(),
            executors: Vec::new(),
            channels: Vec::new(),
        }
    }

    /// Folds another report for the *same* system/device into this one
    /// — the cluster runtime's per-tick accounting: each control tick
    /// produces one engine run per node, and the node's run-level
    /// report is the tick reports merged. Counters and ledgers sum or
    /// extend; the makespan takes the maximum (tick reports share the
    /// global time origin); switch events are re-sorted chronologically;
    /// executors merge by index and channels by name.
    pub fn absorb(&mut self, other: RunReport) {
        self.submitted += other.submitted;
        self.completed += other.completed;
        self.failed += other.failed;
        self.admitted += other.admitted;
        self.dropped += other.dropped;
        self.stages_executed += other.stages_executed;
        self.makespan = self.makespan.max(other.makespan);
        self.switch_events.extend(other.switch_events);
        self.switch_events
            .sort_by_key(|s| (s.at, s.executor, s.expert));
        self.switch_time_total += other.switch_time_total;
        self.exec_time_total += other.exec_time_total;
        self.job_latencies.extend(other.job_latencies);
        for (stage, latencies) in other.stage_latencies {
            self.stage_latencies
                .entry(stage)
                .or_default()
                .extend(latencies);
        }
        self.sched_latencies.extend(other.sched_latencies);
        for e in other.executors {
            match self.executors.iter_mut().find(|x| x.index == e.index) {
                Some(mine) => {
                    mine.batches += e.batches;
                    mine.items += e.items;
                    mine.exec_time += e.exec_time;
                    mine.switch_time += e.switch_time;
                    mine.switches += e.switches;
                    mine.pool_peak = mine.pool_peak.max(e.pool_peak);
                    mine.finished_at = mine.finished_at.max(e.finished_at);
                }
                None => self.executors.push(e),
            }
        }
        self.executors.sort_by_key(|e| e.index);
        for c in other.channels {
            match self.channels.iter_mut().find(|x| x.name == c.name) {
                Some(mine) => {
                    mine.busy += c.busy;
                    mine.reservations += c.reservations;
                }
                None => self.channels.push(c),
            }
        }
    }

    /// Throughput in images (primary requests) per second — the paper's
    /// headline metric.
    ///
    /// Zero when nothing completed or the makespan is empty.
    #[must_use]
    pub fn throughput_ips(&self) -> f64 {
        let secs = self.makespan.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.completed as f64 / secs
    }

    /// Total number of expert switches (Figure 14's metric).
    #[must_use]
    pub fn expert_switches(&self) -> u64 {
        self.switch_events.len() as u64
    }

    /// Switches served from the CPU staging cache.
    #[must_use]
    pub fn switches_from_cpu(&self) -> u64 {
        self.switch_events
            .iter()
            .filter(|s| s.source == MemoryTier::Cpu)
            .count() as u64
    }

    /// Switches served cold from SSD.
    #[must_use]
    pub fn switches_from_ssd(&self) -> u64 {
        self.switch_events
            .iter()
            .filter(|s| s.source == MemoryTier::Ssd)
            .count() as u64
    }

    /// Summary of job sojourn latencies, if any job completed.
    #[must_use]
    pub fn latency_summary(&self) -> Option<Summary> {
        Summary::of_spans(&self.job_latencies)
    }

    /// Summary of scheduling latencies, if recorded.
    #[must_use]
    pub fn sched_summary(&self) -> Option<Summary> {
        Summary::of_spans(&self.sched_latencies)
    }

    /// Summary of sojourn latencies for one stage index, if any request
    /// of that stage completed.
    #[must_use]
    pub fn stage_summary(&self, stage: u8) -> Option<Summary> {
        Summary::of_spans(self.stage_latencies.get(&stage)?)
    }

    /// The stage indices with recorded latencies, in order.
    #[must_use]
    pub fn stages(&self) -> Vec<u8> {
        self.stage_latencies.keys().copied().collect()
    }

    /// Fraction of submitted requests dropped by admission control
    /// (zero for closed-loop runs).
    #[must_use]
    pub fn drop_rate(&self) -> f64 {
        if self.submitted == 0 {
            return 0.0;
        }
        self.dropped as f64 / self.submitted as f64
    }

    /// Fraction of *submitted* requests that completed within `slo` —
    /// the goodput-style SLO-attainment metric of open-loop serving
    /// comparisons. Dropped and failed requests count as violations:
    /// a system shedding 90 % of its load must not report near-100 %
    /// attainment off the survivors. `None` when nothing was submitted.
    #[must_use]
    pub fn slo_attainment(&self, slo: SimSpan) -> Option<f64> {
        if self.submitted == 0 {
            return None;
        }
        let met = self.job_latencies.iter().filter(|&&l| l <= slo).count();
        Some(met as f64 / self.submitted as f64)
    }

    /// Mean inference latency per *request* — total execution time
    /// divided by stages executed (the per-image inference latency of
    /// Figure 19).
    #[must_use]
    pub fn mean_exec_latency_ms(&self) -> f64 {
        if self.stages_executed == 0 {
            return 0.0;
        }
        self.exec_time_total.as_millis_f64() / self.stages_executed as f64
    }

    /// The report as a JSON object — headline metrics, latency
    /// summaries and per-executor/channel accounting, machine-readable
    /// without scraping [`RunReport::summary_line`]. Switch *events*
    /// are summarized by count and source (the full ledger can run to
    /// thousands of entries).
    #[must_use]
    pub fn to_json(&self) -> String {
        let executors: Vec<String> = self
            .executors
            .iter()
            .map(|e| {
                format!(
                    "{{\"index\":{},\"processor\":{},\"batches\":{},\"items\":{},\
                     \"exec_ms\":{},\"switch_ms\":{},\"switches\":{},\
                     \"pool_capacity_bytes\":{},\"pool_peak_bytes\":{}}}",
                    e.index,
                    json_str(&e.processor.to_string()),
                    e.batches,
                    e.items,
                    json_f64(e.exec_time.as_millis_f64()),
                    json_f64(e.switch_time.as_millis_f64()),
                    e.switches,
                    e.pool_capacity.get(),
                    e.pool_peak.get(),
                )
            })
            .collect();
        let channels: Vec<String> = self
            .channels
            .iter()
            .map(|c| {
                format!(
                    "{{\"name\":{},\"busy_ms\":{},\"reservations\":{}}}",
                    json_str(c.name),
                    json_f64(c.busy.as_millis_f64()),
                    c.reservations,
                )
            })
            .collect();
        let stages: Vec<String> = self
            .stages()
            .into_iter()
            .map(|s| {
                format!(
                    "{{\"stage\":{},\"latency\":{}}}",
                    s,
                    json_summary(self.stage_summary(s))
                )
            })
            .collect();
        format!(
            "{{\"system\":{},\"device\":{},\"task\":{},\
             \"submitted\":{},\"completed\":{},\"failed\":{},\
             \"admitted\":{},\"dropped\":{},\"stages_executed\":{},\
             \"makespan_ms\":{},\"throughput_ips\":{},\"drop_rate\":{},\
             \"expert_switches\":{},\"switches_from_ssd\":{},\"switches_from_cpu\":{},\
             \"switch_time_total_ms\":{},\"exec_time_total_ms\":{},\
             \"latency\":{},\"scheduling\":{},\"stage_latencies\":[{}],\
             \"executors\":[{}],\"channels\":[{}]}}",
            json_str(&self.system),
            json_str(&self.device),
            json_str(&self.task),
            self.submitted,
            self.completed,
            self.failed,
            self.admitted,
            self.dropped,
            self.stages_executed,
            json_f64(self.makespan.as_millis_f64()),
            json_f64(self.throughput_ips()),
            json_f64(self.drop_rate()),
            self.expert_switches(),
            self.switches_from_ssd(),
            self.switches_from_cpu(),
            json_f64(self.switch_time_total.as_millis_f64()),
            json_f64(self.exec_time_total.as_millis_f64()),
            json_summary(self.latency_summary()),
            json_summary(self.sched_summary()),
            stages.join(","),
            executors.join(","),
            channels.join(","),
        )
    }

    /// A one-line human-readable summary. Open-loop runs with drops
    /// append the drop count.
    #[must_use]
    pub fn summary_line(&self) -> String {
        let drops = if self.dropped > 0 {
            format!(
                ", {} dropped ({:.1} %)",
                self.dropped,
                100.0 * self.drop_rate()
            )
        } else {
            String::new()
        };
        format!(
            "{} / {} / {}: {:.1} img/s, {} switches ({} SSD, {} cached), makespan {}{}",
            self.system,
            self.device,
            self.task,
            self.throughput_ips(),
            self.expert_switches(),
            self.switches_from_ssd(),
            self.switches_from_cpu(),
            self.makespan,
            drops
        )
    }
}

/// A non-consuming, allocation-light view of a run's live counters.
///
/// Built mid-run by the engine session (for the server's admin
/// endpoint) or from a finished [`RunReport`] via
/// [`RunReport::snapshot`]. Unlike cloning a report, a snapshot never
/// copies the latency/switch ledgers: the latency distribution is
/// reduced to a [`Summary`] in place.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSnapshot {
    /// Serving system name.
    pub system: String,
    /// Device name.
    pub device: String,
    /// Task / session label.
    pub task: String,
    /// Jobs submitted so far.
    pub submitted: usize,
    /// Jobs fully completed.
    pub completed: usize,
    /// Jobs failed.
    pub failed: usize,
    /// Jobs past admission control.
    pub admitted: usize,
    /// Jobs dropped by admission control.
    pub dropped: usize,
    /// Stages executed.
    pub stages_executed: usize,
    /// Time from the first arrival to the latest completion.
    pub makespan: SimSpan,
    /// Events still pending in the session calendar (zero for a
    /// finished run).
    pub pending_events: usize,
    /// Terminal job records produced but not yet taken via
    /// `drain_completions` — the completion backlog a live consumer
    /// (e.g. a server connection) still has to collect (zero for a
    /// finished, fully drained run, and for a snapshot derived from a
    /// [`RunReport`]: a report is a final artifact, not a live queue).
    pub completions_pending: usize,
    /// Expert switches so far.
    pub expert_switches: u64,
    /// Total executor time spent switching.
    pub switch_time_total: SimSpan,
    /// Total executor time spent executing.
    pub exec_time_total: SimSpan,
    /// Completed-job sojourn summary, if any job completed.
    pub latency: Option<Summary>,
}

impl RunSnapshot {
    /// Completed jobs per second over the makespan so far.
    #[must_use]
    pub fn throughput_ips(&self) -> f64 {
        let secs = self.makespan.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.completed as f64 / secs
    }

    /// The snapshot as a JSON object (same field conventions as
    /// [`RunReport::to_json`]).
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"system\":{},\"device\":{},\"task\":{},\
             \"submitted\":{},\"completed\":{},\"failed\":{},\
             \"admitted\":{},\"dropped\":{},\"stages_executed\":{},\
             \"makespan_ms\":{},\"throughput_ips\":{},\"pending_events\":{},\
             \"completions_pending\":{},\"expert_switches\":{},\
             \"switch_time_total_ms\":{},\"exec_time_total_ms\":{},\
             \"latency\":{}}}",
            json_str(&self.system),
            json_str(&self.device),
            json_str(&self.task),
            self.submitted,
            self.completed,
            self.failed,
            self.admitted,
            self.dropped,
            self.stages_executed,
            json_f64(self.makespan.as_millis_f64()),
            json_f64(self.throughput_ips()),
            self.pending_events,
            self.completions_pending,
            self.expert_switches,
            json_f64(self.switch_time_total.as_millis_f64()),
            json_f64(self.exec_time_total.as_millis_f64()),
            json_summary(self.latency),
        )
    }
}

impl RunReport {
    /// A live-counter view of this (finished) report; see
    /// [`RunSnapshot`].
    #[must_use]
    pub fn snapshot(&self) -> RunSnapshot {
        RunSnapshot {
            system: self.system.clone(),
            device: self.device.clone(),
            task: self.task.clone(),
            submitted: self.submitted,
            completed: self.completed,
            failed: self.failed,
            admitted: self.admitted,
            dropped: self.dropped,
            stages_executed: self.stages_executed,
            makespan: self.makespan,
            pending_events: 0,
            completions_pending: 0,
            expert_switches: self.expert_switches(),
            switch_time_total: self.switch_time_total,
            exec_time_total: self.exec_time_total,
            latency: self.latency_summary(),
        }
    }
}

/// Escapes `s` as a JSON string literal (quotes included).
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// An `f64` as a JSON value; non-finite values become `null` (JSON has
/// no NaN/Infinity literals).
pub fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// A latency [`Summary`] as a JSON object, `null` when absent.
pub(crate) fn json_summary(s: Option<Summary>) -> String {
    match s {
        None => "null".to_string(),
        Some(s) => format!(
            "{{\"count\":{},\"mean_ms\":{},\"min_ms\":{},\"p50_ms\":{},\
             \"p90_ms\":{},\"p95_ms\":{},\"p99_ms\":{},\"max_ms\":{}}}",
            s.count,
            json_f64(s.mean),
            json_f64(s.min),
            json_f64(s.p50),
            json_f64(s.p90),
            json_f64(s.p95),
            json_f64(s.p99),
            json_f64(s.max),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> RunReport {
        RunReport {
            system: "CoServe".into(),
            device: "NUMA".into(),
            task: "Task A1".into(),
            submitted: 100,
            completed: 100,
            failed: 0,
            admitted: 100,
            dropped: 0,
            stages_executed: 150,
            makespan: SimSpan::from_secs(10),
            switch_events: vec![
                SwitchEvent {
                    at: SimTime::ZERO,
                    executor: 0,
                    expert: ExpertId(5),
                    source: MemoryTier::Ssd,
                    duration: SimSpan::from_millis(800),
                },
                SwitchEvent {
                    at: SimTime::from_nanos(5),
                    executor: 1,
                    expert: ExpertId(6),
                    source: MemoryTier::Cpu,
                    duration: SimSpan::from_millis(60),
                },
            ],
            switch_time_total: SimSpan::from_millis(860),
            exec_time_total: SimSpan::from_secs(3),
            job_latencies: vec![SimSpan::from_millis(40), SimSpan::from_millis(60)],
            stage_latencies: BTreeMap::from([
                (
                    0u8,
                    vec![SimSpan::from_millis(30), SimSpan::from_millis(50)],
                ),
                (1u8, vec![SimSpan::from_millis(10)]),
            ]),
            sched_latencies: vec![SimSpan::from_millis(8)],
            executors: vec![ExecutorReport {
                index: 0,
                processor: ProcessorKind::Gpu,
                batches: 20,
                items: 100,
                exec_time: SimSpan::from_secs(2),
                switch_time: SimSpan::from_millis(800),
                switches: 1,
                pool_capacity: Bytes::gib(3),
                pool_peak: Bytes::gib(2),
                finished_at: SimTime::ZERO + SimSpan::from_secs(10),
            }],
            channels: vec![ChannelReport {
                name: "gpu-compute",
                busy: SimSpan::from_secs(2),
                reservations: 20,
            }],
        }
    }

    #[test]
    fn empty_report_is_all_zeros() {
        let r = RunReport::empty("sys", "dev", "task");
        assert_eq!(r.submitted, 0);
        assert_eq!(r.throughput_ips(), 0.0);
        assert_eq!(r.expert_switches(), 0);
        assert_eq!(r.drop_rate(), 0.0);
        assert!(r.latency_summary().is_none());
        assert_eq!(r.makespan, SimSpan::ZERO);
        assert!(r.to_json().contains("\"system\":\"sys\""));
    }

    #[test]
    fn throughput_is_completed_over_makespan() {
        let r = sample_report();
        assert!((r.throughput_ips() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn throughput_of_empty_run_is_zero() {
        let mut r = sample_report();
        r.makespan = SimSpan::ZERO;
        assert_eq!(r.throughput_ips(), 0.0);
    }

    #[test]
    fn switch_accounting_by_source() {
        let r = sample_report();
        assert_eq!(r.expert_switches(), 2);
        assert_eq!(r.switches_from_ssd(), 1);
        assert_eq!(r.switches_from_cpu(), 1);
    }

    #[test]
    fn latency_summaries() {
        let r = sample_report();
        let lat = r.latency_summary().unwrap();
        assert!((lat.mean - 50.0).abs() < 1e-9);
        let sched = r.sched_summary().unwrap();
        assert_eq!(sched.count, 1);
        assert!((r.mean_exec_latency_ms() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn summary_line_mentions_key_numbers() {
        let line = sample_report().summary_line();
        assert!(line.contains("10.0 img/s"));
        assert!(line.contains("2 switches"));
        assert!(line.contains("CoServe"));
    }

    #[test]
    fn mean_exec_latency_of_empty_run() {
        let mut r = sample_report();
        r.stages_executed = 0;
        assert_eq!(r.mean_exec_latency_ms(), 0.0);
    }

    #[test]
    fn stage_summaries_cover_recorded_stages() {
        let r = sample_report();
        assert_eq!(r.stages(), vec![0, 1]);
        let s0 = r.stage_summary(0).unwrap();
        assert_eq!(s0.count, 2);
        assert!((s0.mean - 40.0).abs() < 1e-9);
        assert_eq!(r.stage_summary(1).unwrap().count, 1);
        assert!(r.stage_summary(7).is_none());
    }

    #[test]
    fn to_json_is_machine_readable() {
        let r = sample_report();
        let json = r.to_json();
        // Headline metrics appear as fields, not prose.
        assert!(json.contains("\"system\":\"CoServe\""));
        assert!(json.contains("\"completed\":100"));
        assert!(json.contains("\"throughput_ips\":10"));
        assert!(json.contains("\"expert_switches\":2"));
        assert!(json.contains("\"p99_ms\":"));
        assert!(json.contains("\"channels\":[{\"name\":\"gpu-compute\""));
        // Balanced braces/brackets — the cheap well-formedness check.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces in {json}"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.starts_with('{') && json.ends_with('}'));
    }

    #[test]
    fn json_helpers_escape_and_guard() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_str("tab\tend"), "\"tab\\tend\"");
        assert_eq!(json_f64(1.5), "1.5");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
        assert_eq!(json_summary(None), "null");
        // Empty-ledger reports still serialize (null summaries).
        let mut r = sample_report();
        r.job_latencies.clear();
        r.sched_latencies.clear();
        assert!(r.to_json().contains("\"latency\":null"));
    }

    #[test]
    fn absorb_sums_counters_and_merges_ledgers() {
        let mut a = sample_report();
        let mut b = sample_report();
        // The second tick ran later: its makespan extends the run.
        b.makespan = SimSpan::from_secs(14);
        b.switch_events[0].at = SimTime::ZERO + SimSpan::from_secs(11);
        b.executors[0].finished_at = SimTime::ZERO + SimSpan::from_secs(14);
        b.executors.push(ExecutorReport {
            index: 1,
            processor: ProcessorKind::Cpu,
            batches: 5,
            items: 10,
            exec_time: SimSpan::from_secs(1),
            switch_time: SimSpan::ZERO,
            switches: 0,
            pool_capacity: Bytes::gib(1),
            pool_peak: Bytes::gib(1),
            finished_at: SimTime::ZERO + SimSpan::from_secs(3),
        });
        a.absorb(b);
        assert_eq!(a.submitted, 200);
        assert_eq!(a.completed, 200);
        assert_eq!(a.stages_executed, 300);
        assert_eq!(a.makespan, SimSpan::from_secs(14));
        assert_eq!(a.expert_switches(), 4);
        // Ledgers concatenate; switch events stay chronological.
        assert_eq!(a.job_latencies.len(), 4);
        assert_eq!(a.stage_latencies[&0].len(), 4);
        assert_eq!(a.stage_latencies[&1].len(), 2);
        assert!(a.switch_events.windows(2).all(|w| w[0].at <= w[1].at));
        // Executor 0 merged by index, executor 1 appended.
        assert_eq!(a.executors.len(), 2);
        assert_eq!(a.executors[0].batches, 40);
        assert_eq!(
            a.executors[0].finished_at,
            SimTime::ZERO + SimSpan::from_secs(14)
        );
        assert_eq!(a.executors[1].items, 10);
        // Channels merged by name.
        assert_eq!(a.channels.len(), 1);
        assert_eq!(a.channels[0].reservations, 40);
        assert_eq!(a.channels[0].busy, SimSpan::from_secs(4));
    }

    #[test]
    fn drop_accounting_and_slo() {
        let mut r = sample_report();
        assert_eq!(r.drop_rate(), 0.0);
        assert!(!r.summary_line().contains("dropped"));
        r.dropped = 25;
        r.admitted = 75;
        assert!((r.drop_rate() - 0.25).abs() < 1e-12);
        assert!(r.summary_line().contains("25 dropped (25.0 %)"));
        // SLO attainment is goodput-style: measured over *submitted*
        // requests, so the 98 that recorded no completion latency (and
        // any drops) count as violations, not survivorship.
        r.submitted = 4;
        assert_eq!(r.slo_attainment(SimSpan::from_millis(50)), Some(0.25));
        assert_eq!(r.slo_attainment(SimSpan::from_millis(100)), Some(0.5));
        r.job_latencies.clear();
        assert_eq!(r.slo_attainment(SimSpan::from_millis(50)), Some(0.0));
        // Empty latency ledgers are explicit `None`s, never NaN rows.
        assert!(r.latency_summary().is_none());
        r.submitted = 0;
        assert_eq!(r.drop_rate(), 0.0);
        assert_eq!(r.slo_attainment(SimSpan::from_millis(50)), None);
    }
}
