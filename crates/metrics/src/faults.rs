//! Fault and recovery accounting.
//!
//! A [`FaultLedger`] partitions what a faulted run did about its
//! faults: every injected fault is either **recovered** (retried to
//! success, hedged to a replica, degraded to a fallback path) or
//! **terminal** (retries exhausted, request shed). The ledger also
//! prices recovery — wasted work re-spent on failed attempts, idle
//! backoff, dilated service — and brackets the run's fault exposure in
//! simulated time so a figure can report time-to-recover per fault
//! class.
//!
//! The ledger is deliberately flat plain-old-data: every injection
//! site owns one (engine sessions, the cluster runtime, the server
//! core) and [`FaultLedger::merge`] folds them into the run-level view
//! carried by `FleetDynamics`.

use std::fmt;

use coserve_sim::time::{SimSpan, SimTime};

/// Counters partitioning injected faults and the work recovery spent.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultLedger {
    /// Expert-load read failures injected (each is recovered via
    /// retries or terminal: `load_faults == load_recovered +
    /// load_exhausted` always holds).
    pub load_faults: u64,
    /// Load faults recovered by retrying to success.
    pub load_recovered: u64,
    /// Load faults where the retry budget (or deadline) ran out.
    pub load_exhausted: u64,
    /// Slow (dilated, but successful) expert loads injected.
    pub slow_loads: u64,
    /// Individual retry attempts spent across all load faults.
    pub retries: u64,
    /// Fabric transfers that ran dilated.
    pub link_dilated: u64,
    /// Fabric transfers that hit a partitioned pair.
    pub link_partitioned: u64,
    /// Partitioned transfers degraded to a local fallback (SSD
    /// checkpoint reload instead of the fabric copy).
    pub degraded_local: u64,
    /// Jobs re-routed to a replica because their first-choice node was
    /// unreachable for some chain stage.
    pub hedged_reroutes: u64,
    /// Node-ticks served under slow-node dilation.
    pub slow_node_ticks: u64,
    /// Requests shed with a typed busy/retry-after response.
    pub busy_shed: u64,
    /// Work re-spent on attempts that then failed (load reads, dead
    /// fabric transfers).
    pub wasted_time: SimSpan,
    /// Idle time spent backing off between retries.
    pub backoff_time: SimSpan,
    /// Extra service time paid to dilation (slow loads, slow links,
    /// slow nodes).
    pub degraded_time: SimSpan,
    /// When the first fault was injected (`None` = clean run).
    pub first_fault: Option<SimTime>,
    /// When the last recovery action completed.
    pub last_recovery: Option<SimTime>,
}

impl FaultLedger {
    /// Whether nothing was ever injected or recovered — the ledger of
    /// a run with faults disabled.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        *self == FaultLedger::default()
    }

    /// Total faults injected across every class.
    #[must_use]
    pub fn injected(&self) -> u64 {
        self.load_faults
            + self.slow_loads
            + self.link_dilated
            + self.link_partitioned
            + self.slow_node_ticks
            + self.busy_shed
    }

    /// Faults a recovery action absorbed (retried to success, degraded
    /// to a fallback, hedged to a replica).
    #[must_use]
    pub fn recovered(&self) -> u64 {
        self.load_recovered + self.degraded_local + self.hedged_reroutes
    }

    /// Marks a fault injection at `at` (keeps the earliest).
    pub fn note_fault(&mut self, at: SimTime) {
        self.first_fault = Some(self.first_fault.map_or(at, |t| t.min(at)));
    }

    /// Marks a completed recovery action at `at` (keeps the latest).
    pub fn note_recovery(&mut self, at: SimTime) {
        self.last_recovery = Some(self.last_recovery.map_or(at, |t| t.max(at)));
    }

    /// First-fault to last-recovery span: how long the run was
    /// actively absorbing faults. `None` until both ends exist.
    #[must_use]
    pub fn recovery_span(&self) -> Option<SimSpan> {
        match (self.first_fault, self.last_recovery) {
            (Some(f), Some(r)) => Some(r.saturating_since(f)),
            _ => None,
        }
    }

    /// Folds `other` into `self` (counter sums; the fault window is
    /// the union).
    pub fn merge(&mut self, other: &FaultLedger) {
        self.load_faults += other.load_faults;
        self.load_recovered += other.load_recovered;
        self.load_exhausted += other.load_exhausted;
        self.slow_loads += other.slow_loads;
        self.retries += other.retries;
        self.link_dilated += other.link_dilated;
        self.link_partitioned += other.link_partitioned;
        self.degraded_local += other.degraded_local;
        self.hedged_reroutes += other.hedged_reroutes;
        self.slow_node_ticks += other.slow_node_ticks;
        self.busy_shed += other.busy_shed;
        self.wasted_time += other.wasted_time;
        self.backoff_time += other.backoff_time;
        self.degraded_time += other.degraded_time;
        if let Some(f) = other.first_fault {
            self.note_fault(f);
        }
        if let Some(r) = other.last_recovery {
            self.note_recovery(r);
        }
    }

    /// The ledger as a JSON object (stable key order).
    #[must_use]
    pub fn to_json(&self) -> String {
        let span = self
            .recovery_span()
            .map_or("null".to_string(), |s| format!("{:.6}", s.as_millis_f64()));
        format!(
            concat!(
                "{{\"load_faults\":{},\"load_recovered\":{},\"load_exhausted\":{},",
                "\"slow_loads\":{},\"retries\":{},\"link_dilated\":{},",
                "\"link_partitioned\":{},\"degraded_local\":{},\"hedged_reroutes\":{},",
                "\"slow_node_ticks\":{},\"busy_shed\":{},\"wasted_ms\":{:.6},",
                "\"backoff_ms\":{:.6},\"degraded_ms\":{:.6},\"recovery_span_ms\":{}}}"
            ),
            self.load_faults,
            self.load_recovered,
            self.load_exhausted,
            self.slow_loads,
            self.retries,
            self.link_dilated,
            self.link_partitioned,
            self.degraded_local,
            self.hedged_reroutes,
            self.slow_node_ticks,
            self.busy_shed,
            self.wasted_time.as_millis_f64(),
            self.backoff_time.as_millis_f64(),
            self.degraded_time.as_millis_f64(),
            span,
        )
    }
}

impl fmt::Display for FaultLedger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} faults injected, {} recovered, {} exhausted, {} retries, {} shed",
            self.injected(),
            self.recovered(),
            self.load_exhausted,
            self.retries,
            self.busy_shed,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FaultLedger {
        let mut ledger = FaultLedger {
            load_faults: 5,
            load_recovered: 4,
            load_exhausted: 1,
            slow_loads: 2,
            retries: 9,
            link_dilated: 3,
            link_partitioned: 2,
            degraded_local: 2,
            hedged_reroutes: 1,
            slow_node_ticks: 6,
            busy_shed: 7,
            wasted_time: SimSpan::from_millis(12),
            backoff_time: SimSpan::from_millis(3),
            degraded_time: SimSpan::from_millis(40),
            first_fault: None,
            last_recovery: None,
        };
        ledger.note_fault(SimTime::from_nanos(500));
        ledger.note_recovery(SimTime::from_nanos(2_500));
        ledger
    }

    #[test]
    fn default_is_empty_and_sums_partition() {
        assert!(FaultLedger::default().is_empty());
        assert_eq!(FaultLedger::default().injected(), 0);
        assert_eq!(FaultLedger::default().recovery_span(), None);
        let ledger = sample();
        assert!(!ledger.is_empty());
        assert_eq!(ledger.injected(), 5 + 2 + 3 + 2 + 6 + 7);
        assert_eq!(ledger.recovered(), 4 + 2 + 1);
        assert_eq!(
            ledger.load_faults,
            ledger.load_recovered + ledger.load_exhausted,
            "every load fault is recovered or terminal"
        );
    }

    #[test]
    fn fault_window_keeps_extremes() {
        let mut ledger = FaultLedger::default();
        ledger.note_fault(SimTime::from_nanos(100));
        ledger.note_fault(SimTime::from_nanos(50));
        ledger.note_fault(SimTime::from_nanos(200));
        ledger.note_recovery(SimTime::from_nanos(300));
        ledger.note_recovery(SimTime::from_nanos(120));
        assert_eq!(ledger.first_fault, Some(SimTime::from_nanos(50)));
        assert_eq!(ledger.last_recovery, Some(SimTime::from_nanos(300)));
        assert_eq!(ledger.recovery_span(), Some(SimSpan::from_nanos(250)));
    }

    #[test]
    fn merge_sums_counters_and_unions_windows() {
        let mut a = sample();
        let b = sample();
        a.merge(&b);
        assert_eq!(a.load_faults, 10);
        assert_eq!(a.retries, 18);
        assert_eq!(a.wasted_time, SimSpan::from_millis(24));
        assert_eq!(a.first_fault, Some(SimTime::from_nanos(500)));
        assert_eq!(a.last_recovery, Some(SimTime::from_nanos(2_500)));
        let mut clean = FaultLedger::default();
        clean.merge(&FaultLedger::default());
        assert!(clean.is_empty());
    }

    #[test]
    fn json_is_stable_and_complete() {
        let json = sample().to_json();
        for key in [
            "load_faults",
            "load_recovered",
            "load_exhausted",
            "slow_loads",
            "retries",
            "link_dilated",
            "link_partitioned",
            "degraded_local",
            "hedged_reroutes",
            "slow_node_ticks",
            "busy_shed",
            "wasted_ms",
            "backoff_ms",
            "degraded_ms",
            "recovery_span_ms",
        ] {
            assert!(
                json.contains(&format!("\"{key}\"")),
                "missing {key}: {json}"
            );
        }
        assert!(json.contains("\"recovery_span_ms\":0.002000"), "{json}");
        assert!(
            FaultLedger::default()
                .to_json()
                .contains("\"recovery_span_ms\":null"),
            "clean runs have no recovery span"
        );
        assert_eq!(sample().to_json(), sample().to_json());
    }

    #[test]
    fn display_summarizes() {
        let s = sample().to_string();
        assert!(s.contains("25 faults injected"), "{s}");
        assert!(s.contains("7 shed"), "{s}");
    }
}
