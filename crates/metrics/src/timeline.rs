//! Time-bucketed analysis of a run.
//!
//! Figures like the paper's switch-count comparison summarize a whole
//! run in one number; understanding *why* a policy wins usually needs
//! the time dimension — when do switches cluster, how does the warm-up
//! phase differ between policies, how loaded is each executor over
//! time. [`Timeline`] buckets a run's switch events into fixed windows.

use coserve_sim::memory::MemoryTier;
use coserve_sim::time::{SimSpan, SimTime};

use crate::report::RunReport;

/// One time bucket of activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TimelineBucket {
    /// Expert switches that *started* in this bucket.
    pub switches: u32,
    /// Of those, loads served cold from SSD.
    pub from_ssd: u32,
    /// Total switch wall time begun in this bucket.
    pub switch_wall_nanos: u64,
}

impl TimelineBucket {
    /// Total switch wall time begun in this bucket.
    #[must_use]
    pub fn switch_wall(&self) -> SimSpan {
        SimSpan::from_nanos(self.switch_wall_nanos)
    }
}

/// A run's switch activity bucketed into fixed windows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Timeline {
    bucket: SimSpan,
    buckets: Vec<TimelineBucket>,
}

impl Timeline {
    /// Buckets `report`'s switch events into windows of `bucket` width.
    /// The timeline spans from time zero to the run's makespan.
    ///
    /// # Panics
    ///
    /// Panics if `bucket` is zero.
    #[must_use]
    pub fn from_report(report: &RunReport, bucket: SimSpan) -> Self {
        assert!(!bucket.is_zero(), "bucket width must be positive");
        let horizon = report.makespan.max(bucket);
        let n = horizon.nanos().div_ceil(bucket.nanos()) as usize;
        let mut buckets = vec![TimelineBucket::default(); n];
        for ev in &report.switch_events {
            let idx = (ev.at.nanos() / bucket.nanos()) as usize;
            let Some(b) = buckets.get_mut(idx) else {
                continue; // switch started at the very edge of makespan
            };
            b.switches += 1;
            if ev.source == MemoryTier::Ssd {
                b.from_ssd += 1;
            }
            b.switch_wall_nanos = b.switch_wall_nanos.saturating_add(ev.duration.nanos());
        }
        Timeline { bucket, buckets }
    }

    /// The bucket width.
    #[must_use]
    pub fn bucket_width(&self) -> SimSpan {
        self.bucket
    }

    /// The buckets in time order.
    #[must_use]
    pub fn buckets(&self) -> &[TimelineBucket] {
        &self.buckets
    }

    /// Number of buckets.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buckets.len()
    }

    /// Whether the timeline is empty (never true after construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buckets.is_empty()
    }

    /// The start time of bucket `i`.
    #[must_use]
    pub fn bucket_start(&self, i: usize) -> SimTime {
        SimTime::ZERO + self.bucket * i as u64
    }

    /// Total switches across the whole timeline (equals the report's
    /// ledger, minus any events starting exactly at the horizon edge).
    #[must_use]
    pub fn total_switches(&self) -> u64 {
        self.buckets.iter().map(|b| u64::from(b.switches)).sum()
    }

    /// The index of the first bucket after the initial burst: the first
    /// bucket whose switch count is at most `threshold` of the maximum
    /// bucket. Serving systems warm up (cold loads of first-seen
    /// experts) and then settle; this locates the settling point.
    #[must_use]
    pub fn warmup_end(&self, threshold: f64) -> Option<usize> {
        let max = self.buckets.iter().map(|b| b.switches).max()?;
        if max == 0 {
            return Some(0);
        }
        let limit = (f64::from(max) * threshold.clamp(0.0, 1.0)).floor() as u32;
        self.buckets.iter().position(|b| b.switches <= limit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{RunReport, SwitchEvent};
    use coserve_model::expert::ExpertId;

    fn report_with_switches(at_ms: &[(u64, MemoryTier)]) -> RunReport {
        RunReport {
            system: "t".into(),
            device: "d".into(),
            task: "k".into(),
            submitted: 10,
            completed: 10,
            failed: 0,
            admitted: 10,
            dropped: 0,
            stages_executed: 10,
            makespan: SimSpan::from_millis(100),
            switch_events: at_ms
                .iter()
                .map(|&(ms, source)| SwitchEvent {
                    at: SimTime::ZERO + SimSpan::from_millis(ms),
                    executor: 0,
                    expert: ExpertId(0),
                    source,
                    duration: SimSpan::from_millis(5),
                })
                .collect(),
            switch_time_total: SimSpan::ZERO,
            exec_time_total: SimSpan::ZERO,
            job_latencies: vec![],
            stage_latencies: std::collections::BTreeMap::new(),
            sched_latencies: vec![],
            executors: vec![],
            channels: vec![],
        }
    }

    #[test]
    fn buckets_cover_the_makespan() {
        let r = report_with_switches(&[
            (5, MemoryTier::Ssd),
            (15, MemoryTier::Cpu),
            (95, MemoryTier::Ssd),
        ]);
        let t = Timeline::from_report(&r, SimSpan::from_millis(10));
        assert_eq!(t.len(), 10);
        assert!(!t.is_empty());
        assert_eq!(t.bucket_width(), SimSpan::from_millis(10));
        assert_eq!(t.buckets()[0].switches, 1);
        assert_eq!(t.buckets()[0].from_ssd, 1);
        assert_eq!(t.buckets()[1].switches, 1);
        assert_eq!(t.buckets()[1].from_ssd, 0);
        assert_eq!(t.buckets()[9].switches, 1);
        assert_eq!(t.total_switches(), 3);
        assert_eq!(t.bucket_start(3), SimTime::ZERO + SimSpan::from_millis(30));
    }

    #[test]
    fn switch_wall_accumulates() {
        let r = report_with_switches(&[(5, MemoryTier::Ssd), (6, MemoryTier::Ssd)]);
        let t = Timeline::from_report(&r, SimSpan::from_millis(10));
        assert_eq!(t.buckets()[0].switch_wall(), SimSpan::from_millis(10));
    }

    #[test]
    fn warmup_detection() {
        // Burst early, quiet later.
        let events: Vec<(u64, MemoryTier)> = (0..20)
            .map(|i| (i, MemoryTier::Ssd))
            .chain([(50, MemoryTier::Ssd)])
            .collect();
        let r = report_with_switches(&events);
        let t = Timeline::from_report(&r, SimSpan::from_millis(10));
        // Bucket 0 has 10 switches; warmup ends at the first bucket with
        // <= 20% of the max.
        let end = t.warmup_end(0.2).unwrap();
        assert!(end >= 2, "warmup ended too early: {end}");
    }

    #[test]
    fn empty_switches_are_fine() {
        let r = report_with_switches(&[]);
        let t = Timeline::from_report(&r, SimSpan::from_millis(10));
        assert_eq!(t.total_switches(), 0);
        assert_eq!(t.warmup_end(0.5), Some(0));
    }

    #[test]
    #[should_panic(expected = "bucket width")]
    fn zero_bucket_panics() {
        let r = report_with_switches(&[]);
        let _ = Timeline::from_report(&r, SimSpan::ZERO);
    }

    #[test]
    fn real_run_timeline_is_consistent() {
        // Integration-flavoured: a tiny synthetic report from many
        // events keeps totals consistent.
        let events: Vec<(u64, MemoryTier)> = (0..97)
            .map(|i| {
                (
                    i,
                    if i % 3 == 0 {
                        MemoryTier::Cpu
                    } else {
                        MemoryTier::Ssd
                    },
                )
            })
            .collect();
        let r = report_with_switches(&events);
        let t = Timeline::from_report(&r, SimSpan::from_millis(7));
        assert_eq!(t.total_switches(), 97);
        let ssd: u64 = t.buckets().iter().map(|b| u64::from(b.from_ssd)).sum();
        assert_eq!(ssd, r.switches_from_ssd());
    }
}
