//! Trace-derived analytics: latency attribution and expert heat.
//!
//! These summaries consume the typed event stream produced by
//! `coserve-trace` rather than the engine's aggregate ledgers, so they
//! can answer questions the [`crate::report::RunReport`] cannot: *where
//! inside a stage* the time went (queue wait vs. expert switch vs.
//! compute stall vs. execution), and *which experts* were hot, how
//! often they were switched in, and from which memory tier.
//!
//! Both summaries are pure folds over `&[TraceEvent]` — they never
//! mutate the tracer — and iterate in deterministic (`BTreeMap`) order
//! so tables and JSON render identically across runs.

use std::collections::BTreeMap;

use coserve_model::expert::ExpertId;
use coserve_sim::memory::MemoryTier;
use coserve_sim::time::SimSpan;
use coserve_trace::{TraceEvent, TraceKind};

use crate::report::json_f64;
use crate::stats::Summary;
use crate::table::{fmt_f64, Table};

/// Per-stage latency attribution built from `stage-done` trace events.
///
/// For every chain stage index this collects the four sojourn
/// components reported by the engine — queue wait, expert switch,
/// compute-channel stall, and execution — plus their sum (the stage
/// sojourn), and summarizes each as a [`Summary`] in milliseconds.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LatencyAttribution {
    stages: BTreeMap<u8, StageSamples>,
}

#[derive(Debug, Clone, Default, PartialEq)]
struct StageSamples {
    queue: Vec<SimSpan>,
    switch: Vec<SimSpan>,
    stall: Vec<SimSpan>,
    exec: Vec<SimSpan>,
    sojourn: Vec<SimSpan>,
}

impl StageSamples {
    fn push(&mut self, queue: SimSpan, switch: SimSpan, stall: SimSpan, exec: SimSpan) {
        self.queue.push(queue);
        self.switch.push(switch);
        self.stall.push(stall);
        self.exec.push(exec);
        self.sojourn.push(queue + switch + stall + exec);
    }

    fn row(&self, stage: u8) -> StageAttribution {
        StageAttribution {
            stage,
            count: self.sojourn.len() as u64,
            queue: Summary::of_spans(&self.queue),
            switch: Summary::of_spans(&self.switch),
            stall: Summary::of_spans(&self.stall),
            exec: Summary::of_spans(&self.exec),
            sojourn: Summary::of_spans(&self.sojourn),
        }
    }
}

/// One row of the attribution table: summaries for a single stage
/// index (or for all stages pooled, from
/// [`LatencyAttribution::overall`]). All summaries are milliseconds.
#[derive(Debug, Clone, PartialEq)]
pub struct StageAttribution {
    /// Chain stage index.
    pub stage: u8,
    /// Stage executions observed.
    pub count: u64,
    /// Ready-to-batch-start queue wait.
    pub queue: Option<Summary>,
    /// Expert switch time charged to the batch.
    pub switch: Option<Summary>,
    /// Post-switch wait for the compute channel.
    pub stall: Option<Summary>,
    /// Execution time on the compute channel.
    pub exec: Option<Summary>,
    /// Sum of the four components: the stage sojourn.
    pub sojourn: Option<Summary>,
}

impl LatencyAttribution {
    /// Folds `stage-done` events into per-stage component samples.
    /// Every other event kind is ignored.
    #[must_use]
    pub fn from_events(events: &[TraceEvent]) -> Self {
        let mut stages: BTreeMap<u8, StageSamples> = BTreeMap::new();
        for ev in events {
            if let TraceKind::StageDone {
                stage,
                queue,
                switch,
                stall,
                exec_span,
                ..
            } = ev.kind
            {
                stages
                    .entry(stage)
                    .or_default()
                    .push(queue, switch, stall, exec_span);
            }
        }
        LatencyAttribution { stages }
    }

    /// Total stage executions across all stage indices.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.stages.values().map(|s| s.sojourn.len() as u64).sum()
    }

    /// Whether no `stage-done` events were observed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// One row per stage index, ascending.
    #[must_use]
    pub fn rows(&self) -> Vec<StageAttribution> {
        self.stages.iter().map(|(&st, s)| s.row(st)).collect()
    }

    /// All stages pooled into a single row (`stage` reported as 0).
    /// `None` when no events were observed.
    #[must_use]
    pub fn overall(&self) -> Option<StageAttribution> {
        if self.stages.is_empty() {
            return None;
        }
        let mut pooled = StageSamples::default();
        for s in self.stages.values() {
            pooled.queue.extend_from_slice(&s.queue);
            pooled.switch.extend_from_slice(&s.switch);
            pooled.stall.extend_from_slice(&s.stall);
            pooled.exec.extend_from_slice(&s.exec);
            pooled.sojourn.extend_from_slice(&s.sojourn);
        }
        Some(pooled.row(0))
    }

    /// The attribution table: mean and p95 (ms) for each component,
    /// one row per stage plus an `all` row when more than one stage
    /// index was observed.
    #[must_use]
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "latency attribution (ms)",
            &[
                "stage", "count", "queue", "q-p95", "switch", "sw-p95", "stall", "st-p95", "exec",
                "ex-p95", "total", "t-p95",
            ],
        );
        let mean_p95 = |s: &Option<Summary>| -> (String, String) {
            match s {
                Some(s) => (fmt_f64(s.mean, 3), fmt_f64(s.p95, 3)),
                None => ("-".to_string(), "-".to_string()),
            }
        };
        let mut push = |label: String, row: &StageAttribution| {
            let (qm, qp) = mean_p95(&row.queue);
            let (wm, wp) = mean_p95(&row.switch);
            let (sm, sp) = mean_p95(&row.stall);
            let (em, ep) = mean_p95(&row.exec);
            let (tm, tp) = mean_p95(&row.sojourn);
            t.row(vec![
                label,
                row.count.to_string(),
                qm,
                qp,
                wm,
                wp,
                sm,
                sp,
                em,
                ep,
                tm,
                tp,
            ]);
        };
        for row in self.rows() {
            push(row.stage.to_string(), &row);
        }
        if self.stages.len() > 1 {
            if let Some(all) = self.overall() {
                push("all".to_string(), &all);
            }
        }
        t
    }

    /// The attribution as a JSON array of per-stage objects.
    #[must_use]
    pub fn to_json(&self) -> String {
        let obj = |row: &StageAttribution| -> String {
            format!(
                "{{\"stage\":{},\"count\":{},\"queue\":{},\"switch\":{},\
                 \"stall\":{},\"exec\":{},\"total\":{}}}",
                row.stage,
                row.count,
                json_component(&row.queue),
                json_component(&row.switch),
                json_component(&row.stall),
                json_component(&row.exec),
                json_component(&row.sojourn),
            )
        };
        let rows: Vec<String> = self.rows().iter().map(obj).collect();
        format!("[{}]", rows.join(","))
    }
}

fn json_component(s: &Option<Summary>) -> String {
    match s {
        None => "null".to_string(),
        Some(s) => format!(
            "{{\"mean_ms\":{},\"p50_ms\":{},\"p95_ms\":{},\"p99_ms\":{},\"max_ms\":{}}}",
            json_f64(s.mean),
            json_f64(s.p50),
            json_f64(s.p95),
            json_f64(s.p99),
            json_f64(s.max),
        ),
    }
}

/// Per-expert heat and residency summary built from execution and
/// residency trace events.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExpertHeat {
    experts: BTreeMap<ExpertId, ExpertHeatRow>,
}

/// Counters for one expert.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExpertHeatRow {
    /// The expert.
    pub expert: ExpertId,
    /// Stage executions attributed to this expert (`stage-done`).
    pub stages: u64,
    /// Compute batches that ran this expert (`exec`).
    pub batches: u64,
    /// Total compute time across those batches.
    pub exec_time: SimSpan,
    /// Times the expert was switched into a pool mid-run.
    pub switches: u64,
    /// Total switch time spent bringing the expert in.
    pub switch_time: SimSpan,
    /// Mid-run loads whose weights came from host (CPU) memory.
    pub loads_from_cpu: u64,
    /// Mid-run loads whose weights came from SSD.
    pub loads_from_ssd: u64,
    /// Times the expert was preloaded before serving began.
    pub preloads: u64,
    /// Pool evictions of this expert.
    pub evictions: u64,
    /// Evictions that demoted the weights into the staging cache.
    pub demotions: u64,
    /// Insertions into the shared staging cache.
    pub cache_inserts: u64,
    /// LRU evictions from the staging cache.
    pub cache_evicts: u64,
}

impl ExpertHeatRow {
    fn new(expert: ExpertId) -> Self {
        ExpertHeatRow {
            expert,
            stages: 0,
            batches: 0,
            exec_time: SimSpan::ZERO,
            switches: 0,
            switch_time: SimSpan::ZERO,
            loads_from_cpu: 0,
            loads_from_ssd: 0,
            preloads: 0,
            evictions: 0,
            demotions: 0,
            cache_inserts: 0,
            cache_evicts: 0,
        }
    }
}

impl ExpertHeat {
    /// Folds execution and residency events into per-expert counters.
    #[must_use]
    pub fn from_events(events: &[TraceEvent]) -> Self {
        let mut experts: BTreeMap<ExpertId, ExpertHeatRow> = BTreeMap::new();
        fn row(
            expert: ExpertId,
            experts: &mut BTreeMap<ExpertId, ExpertHeatRow>,
        ) -> &mut ExpertHeatRow {
            experts
                .entry(expert)
                .or_insert_with(|| ExpertHeatRow::new(expert))
        }
        for ev in events {
            match ev.kind {
                TraceKind::StageDone { expert, .. } => {
                    row(expert, &mut experts).stages += 1;
                }
                TraceKind::Exec { expert, span, .. } => {
                    let r = row(expert, &mut experts);
                    r.batches += 1;
                    r.exec_time += span;
                }
                TraceKind::Switch { expert, span, .. } => {
                    let r = row(expert, &mut experts);
                    r.switches += 1;
                    r.switch_time += span;
                }
                TraceKind::Loaded { expert, source, .. } => {
                    let r = row(expert, &mut experts);
                    match source {
                        MemoryTier::Cpu => r.loads_from_cpu += 1,
                        MemoryTier::Ssd => r.loads_from_ssd += 1,
                        MemoryTier::Gpu => {}
                    }
                }
                TraceKind::Preloaded { expert, .. } => {
                    row(expert, &mut experts).preloads += 1;
                }
                TraceKind::Evicted {
                    expert, demoted, ..
                } => {
                    let r = row(expert, &mut experts);
                    r.evictions += 1;
                    if demoted {
                        r.demotions += 1;
                    }
                }
                TraceKind::CacheInserted { expert } => {
                    row(expert, &mut experts).cache_inserts += 1;
                }
                TraceKind::CacheEvicted { expert } => {
                    row(expert, &mut experts).cache_evicts += 1;
                }
                _ => {}
            }
        }
        ExpertHeat { experts }
    }

    /// Experts observed.
    #[must_use]
    pub fn len(&self) -> usize {
        self.experts.len()
    }

    /// Whether no expert events were observed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.experts.is_empty()
    }

    /// The counters for one expert, if observed.
    #[must_use]
    pub fn get(&self, expert: ExpertId) -> Option<&ExpertHeatRow> {
        self.experts.get(&expert)
    }

    /// Rows hottest-first: descending stage executions, ties broken by
    /// ascending expert id (deterministic).
    #[must_use]
    pub fn rows(&self) -> Vec<ExpertHeatRow> {
        let mut rows: Vec<ExpertHeatRow> = self.experts.values().copied().collect();
        rows.sort_by(|a, b| b.stages.cmp(&a.stages).then(a.expert.cmp(&b.expert)));
        rows
    }

    /// The heat table, hottest expert first.
    #[must_use]
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "expert heat / residency",
            &[
                "expert",
                "stages",
                "batches",
                "exec-ms",
                "switches",
                "switch-ms",
                "ld-cpu",
                "ld-ssd",
                "preload",
                "evict",
                "demote",
                "cache-in",
                "cache-out",
            ],
        );
        for r in self.rows() {
            t.row(vec![
                format!("e{}", r.expert.index()),
                r.stages.to_string(),
                r.batches.to_string(),
                fmt_f64(r.exec_time.as_millis_f64(), 3),
                r.switches.to_string(),
                fmt_f64(r.switch_time.as_millis_f64(), 3),
                r.loads_from_cpu.to_string(),
                r.loads_from_ssd.to_string(),
                r.preloads.to_string(),
                r.evictions.to_string(),
                r.demotions.to_string(),
                r.cache_inserts.to_string(),
                r.cache_evicts.to_string(),
            ]);
        }
        t
    }

    /// The heat summary as a JSON array, hottest expert first.
    #[must_use]
    pub fn to_json(&self) -> String {
        let rows: Vec<String> = self
            .rows()
            .iter()
            .map(|r| {
                format!(
                    "{{\"expert\":{},\"stages\":{},\"batches\":{},\"exec_ms\":{},\
                     \"switches\":{},\"switch_ms\":{},\"loads_from_cpu\":{},\
                     \"loads_from_ssd\":{},\"preloads\":{},\"evictions\":{},\
                     \"demotions\":{},\"cache_inserts\":{},\"cache_evicts\":{}}}",
                    r.expert.index(),
                    r.stages,
                    r.batches,
                    json_f64(r.exec_time.as_millis_f64()),
                    r.switches,
                    json_f64(r.switch_time.as_millis_f64()),
                    r.loads_from_cpu,
                    r.loads_from_ssd,
                    r.preloads,
                    r.evictions,
                    r.demotions,
                    r.cache_inserts,
                    r.cache_evicts,
                )
            })
            .collect();
        format!("[{}]", rows.join(","))
    }
}

/// Flat `name -> count` tally of every event kind, for Pelikan-style
/// counter export (`trace_events_arrived 42` lines).
#[must_use]
pub fn kind_counts(events: &[TraceEvent]) -> BTreeMap<&'static str, u64> {
    let mut counts: BTreeMap<&'static str, u64> = BTreeMap::new();
    for ev in events {
        *counts.entry(ev.kind.name()).or_insert(0) += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use coserve_sim::time::SimTime;

    fn ms(v: u64) -> SimSpan {
        SimSpan::from_millis_f64(v as f64)
    }

    fn stage_done(
        stage: u8,
        expert: u32,
        queue: u64,
        switch: u64,
        stall: u64,
        exec: u64,
    ) -> TraceEvent {
        TraceEvent {
            at: SimTime::ZERO,
            node: 0,
            kind: TraceKind::StageDone {
                job: 0,
                stage,
                exec: 0,
                expert: ExpertId(expert),
                queue: ms(queue),
                switch: ms(switch),
                stall: ms(stall),
                exec_span: ms(exec),
            },
        }
    }

    #[test]
    fn attribution_components_sum_to_sojourn() {
        let events = vec![
            stage_done(0, 0, 1, 2, 3, 4),
            stage_done(0, 1, 5, 0, 0, 5),
            stage_done(1, 0, 0, 0, 0, 10),
        ];
        let attr = LatencyAttribution::from_events(&events);
        assert_eq!(attr.count(), 3);
        let rows = attr.rows();
        assert_eq!(rows.len(), 2);
        let s0 = &rows[0];
        assert_eq!(s0.stage, 0);
        assert_eq!(s0.count, 2);
        let soj = s0.sojourn.expect("stage 0 has samples");
        assert!((soj.mean - 10.0).abs() < 1e-9, "mean sojourn {}", soj.mean);
        let overall = attr.overall().expect("non-empty");
        assert_eq!(overall.count, 3);
        let total = overall.sojourn.expect("pooled");
        assert!((total.mean - 10.0).abs() < 1e-9);
    }

    #[test]
    fn attribution_ignores_other_kinds_and_handles_empty() {
        let other = TraceEvent {
            at: SimTime::ZERO,
            node: 0,
            kind: TraceKind::Arrived { job: 0, stages: 2 },
        };
        let attr = LatencyAttribution::from_events(&[other]);
        assert!(attr.is_empty());
        assert!(attr.overall().is_none());
        assert_eq!(attr.to_json(), "[]");
        assert!(attr.table().is_empty());
    }

    #[test]
    fn attribution_table_has_all_row_only_with_multiple_stages() {
        let one = LatencyAttribution::from_events(&[stage_done(0, 0, 1, 1, 1, 1)]);
        assert_eq!(one.table().len(), 1);
        let two = LatencyAttribution::from_events(&[
            stage_done(0, 0, 1, 1, 1, 1),
            stage_done(1, 0, 1, 1, 1, 1),
        ]);
        assert_eq!(two.table().len(), 3);
    }

    #[test]
    fn heat_counts_execution_and_residency() {
        let e = ExpertId(7);
        let at = SimTime::ZERO;
        let events = vec![
            TraceEvent {
                at,
                node: 0,
                kind: TraceKind::Preloaded { exec: 0, expert: e },
            },
            stage_done(0, 7, 1, 2, 0, 3),
            TraceEvent {
                at,
                node: 0,
                kind: TraceKind::Exec {
                    exec: 0,
                    expert: e,
                    items: 4,
                    span: ms(3),
                },
            },
            TraceEvent {
                at,
                node: 0,
                kind: TraceKind::Switch {
                    exec: 0,
                    expert: e,
                    source: MemoryTier::Ssd,
                    span: ms(2),
                },
            },
            TraceEvent {
                at,
                node: 0,
                kind: TraceKind::Loaded {
                    exec: 0,
                    expert: e,
                    source: MemoryTier::Ssd,
                },
            },
            TraceEvent {
                at,
                node: 0,
                kind: TraceKind::Loaded {
                    exec: 1,
                    expert: e,
                    source: MemoryTier::Cpu,
                },
            },
            TraceEvent {
                at,
                node: 0,
                kind: TraceKind::Evicted {
                    exec: 0,
                    expert: e,
                    demoted: true,
                },
            },
            TraceEvent {
                at,
                node: 0,
                kind: TraceKind::CacheInserted { expert: e },
            },
            TraceEvent {
                at,
                node: 0,
                kind: TraceKind::CacheEvicted { expert: e },
            },
        ];
        let heat = ExpertHeat::from_events(&events);
        assert_eq!(heat.len(), 1);
        let r = heat.get(e).expect("expert observed");
        assert_eq!(r.stages, 1);
        assert_eq!(r.batches, 1);
        assert_eq!(r.exec_time, ms(3));
        assert_eq!(r.switches, 1);
        assert_eq!(r.switch_time, ms(2));
        assert_eq!(r.loads_from_cpu, 1);
        assert_eq!(r.loads_from_ssd, 1);
        assert_eq!(r.preloads, 1);
        assert_eq!(r.evictions, 1);
        assert_eq!(r.demotions, 1);
        assert_eq!(r.cache_inserts, 1);
        assert_eq!(r.cache_evicts, 1);
    }

    #[test]
    fn heat_rows_sort_hottest_first_with_id_tiebreak() {
        let events = vec![
            stage_done(0, 3, 0, 0, 0, 1),
            stage_done(0, 1, 0, 0, 0, 1),
            stage_done(0, 1, 0, 0, 0, 1),
            stage_done(0, 2, 0, 0, 0, 1),
        ];
        let heat = ExpertHeat::from_events(&events);
        let ids: Vec<u32> = heat.rows().iter().map(|r| r.expert.0).collect();
        assert_eq!(ids, vec![1, 2, 3]);
        assert_eq!(heat.table().len(), 3);
    }

    #[test]
    fn kind_counts_tallies_names() {
        let events = vec![
            stage_done(0, 0, 0, 0, 0, 1),
            stage_done(0, 1, 0, 0, 0, 1),
            TraceEvent {
                at: SimTime::ZERO,
                node: 0,
                kind: TraceKind::NodeRevived,
            },
        ];
        let counts = kind_counts(&events);
        assert_eq!(counts.get("stage-done"), Some(&2));
        assert_eq!(counts.get("node-revived"), Some(&1));
        assert_eq!(counts.get("arrived"), None);
    }

    #[test]
    fn json_outputs_are_deterministic() {
        let events = vec![stage_done(1, 2, 1, 0, 0, 2), stage_done(0, 5, 2, 1, 0, 3)];
        let a1 = LatencyAttribution::from_events(&events);
        let a2 = LatencyAttribution::from_events(&events);
        assert_eq!(a1.to_json(), a2.to_json());
        assert!(a1.to_json().starts_with("[{\"stage\":0"));
        let h1 = ExpertHeat::from_events(&events);
        let h2 = ExpertHeat::from_events(&events);
        assert_eq!(h1.to_json(), h2.to_json());
        assert_eq!(h1.table().render(), h2.table().render());
    }
}
