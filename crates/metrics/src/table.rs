//! Plain-text tables and CSV output.
//!
//! The figure harness prints paper-style tables to stdout and writes
//! CSV files for plotting. Rendering is intentionally dependency-free:
//! fixed-width columns, right-aligned numbers.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// A simple column-aligned text table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    #[must_use]
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| (*s).to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width {} != header width {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as aligned text.
    #[must_use]
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "# {}", self.title);
        }
        let line = |cells: &[String], widths: &[usize]| -> String {
            let mut s = String::new();
            for (i, (cell, w)) in cells.iter().zip(widths).enumerate() {
                if i > 0 {
                    s.push_str("  ");
                }
                // Right-align numeric-looking cells, left-align text.
                let numeric = cell
                    .chars()
                    .next()
                    .is_some_and(|c| c.is_ascii_digit() || c == '-' || c == '+');
                if numeric {
                    let _ = write!(s, "{cell:>w$}");
                } else {
                    let _ = write!(s, "{cell:<w$}");
                }
            }
            s
        };
        let _ = writeln!(out, "{}", line(&self.headers, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Renders the table as CSV (headers + rows, comma-separated with
    /// quoting of cells containing commas or quotes).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let esc = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }

    /// Writes the CSV rendering to `path`, creating parent directories.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from directory creation or the write.
    pub fn write_csv(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        fs::write(path, self.to_csv())
    }
}

/// Formats a float with `digits` decimal places (harness convenience).
#[must_use]
pub fn fmt_f64(value: f64, digits: usize) -> String {
    format!("{value:.digits$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("demo", &["system", "throughput"]);
        t.row(vec!["CoServe".into(), "26.3".into()]);
        t.row(vec!["Samba-CoE".into(), "3.5".into()]);
        let s = t.render();
        assert!(s.contains("# demo"));
        assert!(s.contains("system"));
        let lines: Vec<&str> = s.lines().collect();
        // title + header + rule + 2 rows
        assert_eq!(lines.len(), 5);
        // Numbers right-aligned under the header.
        assert!(lines[3].ends_with("26.3"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn csv_escapes_special_cells() {
        let mut t = Table::new("", &["a", "b"]);
        t.row(vec!["x,y".into(), "say \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn csv_round_trip_structure() {
        let mut t = Table::new("t", &["k", "v"]);
        t.row(vec!["alpha".into(), "1".into()]);
        t.row(vec!["beta".into(), "2".into()]);
        let csv = t.to_csv();
        assert_eq!(csv.lines().count(), 3);
        assert_eq!(csv.lines().next(), Some("k,v"));
    }

    #[test]
    fn write_csv_creates_directories() {
        let dir = std::env::temp_dir().join("coserve-metrics-test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("deep/nested/out.csv");
        let mut t = Table::new("t", &["x"]);
        t.row(vec!["1".into()]);
        t.write_csv(&path).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.starts_with("x\n"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new("t", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn fmt_helper() {
        assert_eq!(fmt_f64(2.5625, 2), "2.56");
        assert_eq!(fmt_f64(10.0, 1), "10.0");
    }
}
