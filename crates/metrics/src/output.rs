//! Output-directory resolution shared by every artifact-writing
//! binary (figure generators, the network server, the load generator).
//!
//! One rule, applied everywhere: `COSERVE_OUT_DIR` wins when set,
//! otherwise artifacts land in `target/figures/` under the workspace
//! root — anchored to the workspace, not the invocation directory, so
//! binaries and tests behave the same from any working directory.

use std::path::{Path, PathBuf};

/// Resolves the artifact output directory: `COSERVE_OUT_DIR` when
/// set, else `target/figures/` under the workspace root.
#[must_use]
pub fn out_dir() -> PathBuf {
    out_dir_anchored(Path::new(env!("CARGO_MANIFEST_DIR")))
}

/// The resolution rule with an explicit anchor: `manifest_dir` is a
/// workspace crate's `CARGO_MANIFEST_DIR` (`<root>/crates/<name>`),
/// whose grandparent is the workspace root.
#[must_use]
pub fn out_dir_anchored(manifest_dir: &Path) -> PathBuf {
    // This is the one sanctioned environment read in the deterministic
    // crates: it picks where artifacts are written, never what they
    // contain, so results stay reproducible under any COSERVE_OUT_DIR.
    // tidy:allow(determinism)
    if let Some(dir) = std::env::var_os("COSERVE_OUT_DIR") {
        return PathBuf::from(dir);
    }
    manifest_dir
        .ancestors()
        .nth(2)
        .unwrap_or(manifest_dir)
        .join("target/figures")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anchored_resolution_climbs_two_levels() {
        // Other tests in this binary don't set COSERVE_OUT_DIR; when
        // the harness environment does, the override must win verbatim.
        let dir = out_dir_anchored(Path::new("/ws/crates/metrics"));
        match std::env::var_os("COSERVE_OUT_DIR") {
            Some(v) => assert_eq!(dir, PathBuf::from(v)),
            None => assert_eq!(dir, PathBuf::from("/ws/target/figures")),
        }
    }

    #[test]
    fn default_is_workspace_anchored() {
        let dir = out_dir();
        if std::env::var_os("COSERVE_OUT_DIR").is_none() {
            assert!(dir.is_absolute(), "default must not depend on CWD");
            assert!(dir.ends_with("target/figures"));
        }
    }
}
