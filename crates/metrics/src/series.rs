//! Labeled data series for figure regeneration.
//!
//! Each paper figure is one or more series of `(x, y)` points (batch
//! size → latency, resident experts → throughput, …). [`Series`] and
//! [`FigureData`] carry those points from the harness to stdout/CSV.

use std::fmt::Write as _;

use crate::table::Table;

/// One labeled curve.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    label: String,
    points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates an empty series.
    #[must_use]
    pub fn new(label: impl Into<String>) -> Self {
        Series {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// Creates a series from points.
    #[must_use]
    pub fn from_points(label: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Series {
            label: label.into(),
            points,
        }
    }

    /// The series label.
    #[must_use]
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Appends a point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }

    /// The points in insertion order.
    #[must_use]
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Number of points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the series has no points.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The y value at the given x, if present (exact match).
    #[must_use]
    pub fn y_at(&self, x: f64) -> Option<f64> {
        self.points.iter().find(|p| p.0 == x).map(|p| p.1)
    }

    /// The maximum y value, if any.
    #[must_use]
    pub fn y_max(&self) -> Option<f64> {
        self.points
            .iter()
            .map(|p| p.1)
            .fold(None, |acc, y| Some(acc.map_or(y, |m: f64| m.max(y))))
    }
}

/// A figure: several series over a shared x axis.
#[derive(Debug, Clone, PartialEq)]
pub struct FigureData {
    name: String,
    x_label: String,
    y_label: String,
    series: Vec<Series>,
}

impl FigureData {
    /// Creates an empty figure.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        FigureData {
            name: name.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
        }
    }

    /// Adds a series.
    pub fn add(&mut self, series: Series) -> &mut Self {
        self.series.push(series);
        self
    }

    /// The figure's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The series.
    #[must_use]
    pub fn series(&self) -> &[Series] {
        &self.series
    }

    /// Looks up a series by label.
    #[must_use]
    pub fn series_by_label(&self, label: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.label() == label)
    }

    /// Renders the figure as a long-format table
    /// (`series, x, y` rows) — the structure the CSV export uses.
    #[must_use]
    pub fn to_table(&self) -> Table {
        let mut t = Table::new(
            self.name.clone(),
            &["series", self.x_label.as_str(), self.y_label.as_str()],
        );
        for s in &self.series {
            for &(x, y) in s.points() {
                t.row(vec![
                    s.label().to_string(),
                    format!("{x}"),
                    format!("{y:.4}"),
                ]);
            }
        }
        t
    }

    /// A compact textual rendering for stdout: one block per series.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.name);
        let _ = writeln!(out, "   x: {}, y: {}", self.x_label, self.y_label);
        for s in &self.series {
            let _ = write!(out, "  {}:", s.label());
            for &(x, y) in s.points() {
                let _ = write!(out, " ({x:.6}, {y:.3})");
            }
            let _ = writeln!(out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_accumulates_points() {
        let mut s = Series::new("GPU");
        assert!(s.is_empty());
        s.push(1.0, 9.1);
        s.push(2.0, 10.2);
        assert_eq!(s.len(), 2);
        assert_eq!(s.points()[1], (2.0, 10.2));
        assert_eq!(s.y_at(1.0), Some(9.1));
        assert_eq!(s.y_at(3.0), None);
        assert_eq!(s.y_max(), Some(10.2));
        assert_eq!(s.label(), "GPU");
    }

    #[test]
    fn empty_series_y_max_is_none() {
        assert_eq!(Series::new("x").y_max(), None);
    }

    #[test]
    fn figure_lookup_and_render() {
        let mut f = FigureData::new("Figure 5", "batch", "latency_ms");
        f.add(Series::from_points("NUMA", vec![(1.0, 9.1), (2.0, 10.2)]));
        f.add(Series::from_points("UMA", vec![(1.0, 11.2)]));
        assert_eq!(f.series().len(), 2);
        assert!(f.series_by_label("UMA").is_some());
        assert!(f.series_by_label("???").is_none());
        let text = f.render();
        assert!(text.contains("== Figure 5 =="));
        assert!(text.contains("NUMA"));
        assert_eq!(f.name(), "Figure 5");
    }

    #[test]
    fn figure_to_table_is_long_format() {
        let mut f = FigureData::new("fig", "x", "y");
        f.add(Series::from_points("a", vec![(1.0, 2.0), (3.0, 4.0)]));
        let t = f.to_table();
        assert_eq!(t.len(), 2);
        let csv = t.to_csv();
        assert!(csv.starts_with("series,x,y"));
        assert!(csv.contains("a,1,2.0000"));
    }
}
