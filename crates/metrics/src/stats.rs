//! Descriptive statistics and linear fitting.
//!
//! The offline profiler fits the paper's `latency = K·n + B` model to
//! measured batch latencies (§4.5) and the memory autotuner fits a
//! linear trend to throughput samples (§4.4, Eq. 2–3). Both use
//! [`linear_fit`]. [`Summary`] condenses latency samples for reports.

use coserve_sim::time::SimSpan;

/// An ordinary least-squares line `y = slope · x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinFit {
    /// The slope (the paper's `K` when fitting batch latencies).
    pub slope: f64,
    /// The intercept (the paper's `B`).
    pub intercept: f64,
    /// Coefficient of determination in `[0, 1]`.
    pub r_squared: f64,
}

impl LinFit {
    /// The fitted value at `x`.
    #[must_use]
    pub fn predict(&self, x: f64) -> f64 {
        self.slope * x + self.intercept
    }
}

/// Fits a least-squares line through `(x, y)` points.
///
/// Returns `None` when fewer than two points are given or all `x`
/// values coincide (the slope would be undefined).
#[must_use]
pub fn linear_fit(points: &[(f64, f64)]) -> Option<LinFit> {
    if points.len() < 2 {
        return None;
    }
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let mx = sx / n;
    let my = sy / n;
    let sxx: f64 = points.iter().map(|p| (p.0 - mx) * (p.0 - mx)).sum();
    if sxx == 0.0 {
        return None;
    }
    let sxy: f64 = points.iter().map(|p| (p.0 - mx) * (p.1 - my)).sum();
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let ss_tot: f64 = points.iter().map(|p| (p.1 - my) * (p.1 - my)).sum();
    let ss_res: f64 = points
        .iter()
        .map(|p| {
            let e = p.1 - (slope * p.0 + intercept);
            e * e
        })
        .sum();
    let r_squared = if ss_tot == 0.0 {
        1.0
    } else {
        (1.0 - ss_res / ss_tot).clamp(0.0, 1.0)
    };
    Some(LinFit {
        slope,
        intercept,
        r_squared,
    })
}

/// A percentile-grade summary of a sample (tail-latency reporting).
///
/// Construction goes through [`Summary::of`], which rejects empty
/// samples with `None` — the `count > 0` invariant is what keeps every
/// field finite (no silent `NaN` means or percentiles in reports and
/// CSVs downstream).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of samples (always positive).
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Minimum.
    pub min: f64,
    /// Median (p50).
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Summarizes a sample. Returns `None` for an empty sample — the
    /// zero-safe contract every report/CSV path relies on instead of
    /// dividing by a zero count.
    #[must_use]
    pub fn of(values: &[f64]) -> Option<Summary> {
        if values.is_empty() {
            return None;
        }
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
        let count = sorted.len();
        let mean = sorted.iter().sum::<f64>() / count as f64;
        Some(Summary {
            count,
            mean,
            min: sorted[0],
            p50: percentile_sorted(&sorted, 50.0),
            p90: percentile_sorted(&sorted, 90.0),
            p95: percentile_sorted(&sorted, 95.0),
            p99: percentile_sorted(&sorted, 99.0),
            max: sorted[count - 1],
        })
    }

    /// Whether every statistic is a finite number — the invariant the
    /// empty-sample guard exists to protect.
    #[must_use]
    pub fn is_finite(&self) -> bool {
        [
            self.mean, self.min, self.p50, self.p90, self.p95, self.p99, self.max,
        ]
        .iter()
        .all(|v| v.is_finite())
    }

    /// Summarizes a sample of spans, in milliseconds.
    #[must_use]
    pub fn of_spans(spans: &[SimSpan]) -> Option<Summary> {
        let values: Vec<f64> = spans.iter().map(|s| s.as_millis_f64()).collect();
        Summary::of(&values)
    }
}

/// The `p`-th percentile (nearest-rank with linear interpolation) of an
/// already sorted, non-empty slice.
fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    let p = p.clamp(0.0, 100.0);
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// The `p`-th percentile of an arbitrary sample; `None` when empty.
#[must_use]
pub fn percentile(values: &[f64], p: f64) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
    Some(percentile_sorted(&sorted, p))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_recovers_exact_line() {
        let pts: Vec<(f64, f64)> = (1..=10).map(|n| (n as f64, 1.1 * n as f64 + 8.0)).collect();
        let fit = linear_fit(&pts).unwrap();
        assert!((fit.slope - 1.1).abs() < 1e-9);
        assert!((fit.intercept - 8.0).abs() < 1e-9);
        assert!((fit.r_squared - 1.0).abs() < 1e-9);
        assert!((fit.predict(20.0) - 30.0).abs() < 1e-9);
    }

    #[test]
    fn fit_handles_noise() {
        let pts: Vec<(f64, f64)> = (1..=20)
            .map(|n| {
                let noise = if n % 2 == 0 { 0.3 } else { -0.3 };
                (n as f64, 2.0 * n as f64 + 5.0 + noise)
            })
            .collect();
        let fit = linear_fit(&pts).unwrap();
        assert!((fit.slope - 2.0).abs() < 0.05);
        assert!((fit.intercept - 5.0).abs() < 0.5);
        assert!(fit.r_squared > 0.99);
    }

    #[test]
    fn fit_degenerate_cases() {
        assert!(linear_fit(&[]).is_none());
        assert!(linear_fit(&[(1.0, 2.0)]).is_none());
        assert!(linear_fit(&[(3.0, 1.0), (3.0, 5.0)]).is_none());
        // Constant y: slope 0, perfect fit.
        let fit = linear_fit(&[(1.0, 4.0), (2.0, 4.0), (3.0, 4.0)]).unwrap();
        assert_eq!(fit.slope, 0.0);
        assert_eq!(fit.r_squared, 1.0);
    }

    #[test]
    fn summary_of_simple_sample() {
        let s = Summary::of(&[4.0, 1.0, 3.0, 2.0, 5.0]).unwrap();
        assert_eq!(s.count, 5);
        assert!((s.mean - 3.0).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.p50, 3.0);
        assert_eq!(s.max, 5.0);
        assert!(s.p99 > 4.9 && s.p99 <= 5.0);
    }

    #[test]
    fn summary_empty_and_singleton() {
        assert!(Summary::of(&[]).is_none());
        let s = Summary::of(&[7.0]).unwrap();
        assert_eq!(s.p50, 7.0);
        assert_eq!(s.p90, 7.0);
        assert_eq!(s.p95, 7.0);
        assert_eq!(s.p99, 7.0);
    }

    /// Regression: an empty sample must be an explicit `None`, never a
    /// summary with `NaN` statistics — both for raw values and spans
    /// (the path reports and CSVs consume).
    #[test]
    fn empty_samples_are_explicit_not_nan() {
        assert!(Summary::of(&[]).is_none());
        assert!(Summary::of_spans(&[]).is_none());
        assert_eq!(percentile(&[], 99.0), None);
        // Every non-empty summary is fully finite.
        let s = Summary::of(&[1.0, 2.0, 3.0]).unwrap();
        assert!(s.is_finite());
    }

    #[test]
    fn summary_tail_percentiles_are_ordered() {
        let values: Vec<f64> = (0..1000).map(f64::from).collect();
        let s = Summary::of(&values).unwrap();
        assert!(s.p50 <= s.p90 && s.p90 <= s.p95 && s.p95 <= s.p99);
        assert!((s.p90 - 899.1).abs() < 1e-9);
        assert!((s.p95 - 949.05).abs() < 1e-9);
    }

    #[test]
    fn summary_of_spans_in_millis() {
        let spans = vec![SimSpan::from_millis(10), SimSpan::from_millis(20)];
        let s = Summary::of_spans(&spans).unwrap();
        assert!((s.mean - 15.0).abs() < 1e-9);
    }

    #[test]
    fn percentile_interpolates() {
        let v = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile(&v, 0.0), Some(10.0));
        assert_eq!(percentile(&v, 100.0), Some(40.0));
        assert!((percentile(&v, 50.0).unwrap() - 25.0).abs() < 1e-9);
        assert_eq!(percentile(&[], 50.0), None);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The fit recovers planted coefficients from noiseless data.
        #[test]
        fn fit_recovers_planted_line(
            slope in -100.0f64..100.0,
            intercept in -100.0f64..100.0,
            n in 3usize..40,
        ) {
            let pts: Vec<(f64, f64)> = (0..n)
                .map(|i| (i as f64, slope * i as f64 + intercept))
                .collect();
            let fit = linear_fit(&pts).unwrap();
            prop_assert!((fit.slope - slope).abs() < 1e-6 * (1.0 + slope.abs()));
            prop_assert!((fit.intercept - intercept).abs() < 1e-6 * (1.0 + intercept.abs()));
        }

        /// Percentiles are bounded by the sample extremes and monotone
        /// in p.
        #[test]
        fn percentiles_bounded_and_monotone(
            values in proptest::collection::vec(-1e6f64..1e6, 1..50),
        ) {
            let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let mut prev = lo;
            for p in [0.0, 10.0, 50.0, 90.0, 99.0, 100.0] {
                let v = percentile(&values, p).unwrap();
                prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
                prop_assert!(v + 1e-9 >= prev);
                prev = v;
            }
        }
    }
}
