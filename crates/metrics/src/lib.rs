//! # coserve-metrics
//!
//! Measurement and reporting for CoServe runs: [`report::RunReport`]
//! (throughput, expert switches, latency ledgers — the quantities in
//! the paper's Figures 13–16 and 19), descriptive statistics and the
//! `K·n + B` linear fit used by the offline profiler (§4.5), and
//! dependency-free table/CSV/series rendering for the figure harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod attribution;
pub mod cluster;
pub mod faults;
pub mod output;
pub mod report;
pub mod series;
pub mod stats;
pub mod table;
pub mod timeline;

/// Convenient re-exports of the most commonly used items.
pub mod prelude {
    pub use crate::attribution::{
        kind_counts, ExpertHeat, ExpertHeatRow, LatencyAttribution, StageAttribution,
    };
    pub use crate::cluster::{
        ClusterReport, ClusterSnapshot, FailureRecord, FleetDynamics, TickStat,
    };
    pub use crate::faults::FaultLedger;
    pub use crate::report::{ExecutorReport, RunReport, RunSnapshot, SwitchEvent};
    pub use crate::series::{FigureData, Series};
    pub use crate::stats::{linear_fit, percentile, LinFit, Summary};
    pub use crate::table::{fmt_f64, Table};
    pub use crate::timeline::{Timeline, TimelineBucket};
}

pub use prelude::*;
