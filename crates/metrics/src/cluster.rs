//! Cluster-level run reports.
//!
//! A multi-node serving run produces one [`crate::report::RunReport`]
//! per node; [`ClusterReport`] merges them into fleet-level accounting:
//! aggregate throughput and latency percentiles, per-node utilization,
//! cross-node hop counts and the fabric time those hops cost, plus
//! admission/drop totals. The merge is pure bookkeeping — the
//! dispatcher that owns the fabric supplies the hop counters.

use coserve_sim::time::SimSpan;

use crate::report::{json_f64, json_str, json_summary, RunReport};
use crate::stats::Summary;

/// The outcome of one cluster serving run.
///
/// Per-node `job_latencies` measure the sojourn *at the node* (from
/// arrival at the node's admission queue to completion); the fabric
/// time a request spent in flight before reaching its node is accounted
/// separately in [`ClusterReport::fabric_time_total`] and
/// [`ClusterReport::cross_node_hops`].
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterReport {
    /// Cluster system name (e.g. "CoServe ×4 (usage-aware, residency-first)").
    pub system: String,
    /// Task name.
    pub task: String,
    /// Per-node reports, in node order.
    pub nodes: Vec<RunReport>,
    /// Primary requests submitted to the cluster.
    pub submitted: usize,
    /// Primary requests completed across all nodes.
    pub completed: usize,
    /// Primary requests failed across all nodes.
    pub failed: usize,
    /// Primary requests admitted across all nodes.
    pub admitted: usize,
    /// Primary requests dropped by per-node admission control.
    pub dropped: usize,
    /// Total stages executed across all nodes.
    pub stages_executed: usize,
    /// Cluster makespan: the latest node completion time (all nodes
    /// share the global time origin).
    pub makespan: SimSpan,
    /// Stages whose expert lived on a different node than the one the
    /// request was routed to — each paid one fabric transfer.
    pub cross_node_hops: u64,
    /// Total time requests spent on fabric links.
    pub fabric_time_total: SimSpan,
}

impl ClusterReport {
    /// Merges per-node reports into a cluster report. The dispatcher
    /// supplies the fabric counters; everything else is summed from the
    /// nodes (makespan is the maximum, since nodes share a time
    /// origin).
    ///
    /// # Panics
    ///
    /// Panics when `nodes` is empty — a cluster has at least one node.
    #[must_use]
    pub fn merge(
        system: impl Into<String>,
        task: impl Into<String>,
        nodes: Vec<RunReport>,
        cross_node_hops: u64,
        fabric_time_total: SimSpan,
    ) -> Self {
        assert!(!nodes.is_empty(), "cluster needs at least one node");
        ClusterReport {
            system: system.into(),
            task: task.into(),
            submitted: nodes.iter().map(|n| n.submitted).sum(),
            completed: nodes.iter().map(|n| n.completed).sum(),
            failed: nodes.iter().map(|n| n.failed).sum(),
            admitted: nodes.iter().map(|n| n.admitted).sum(),
            dropped: nodes.iter().map(|n| n.dropped).sum(),
            stages_executed: nodes.iter().map(|n| n.stages_executed).sum(),
            makespan: nodes
                .iter()
                .map(|n| n.makespan)
                .fold(SimSpan::ZERO, SimSpan::max),
            cross_node_hops,
            fabric_time_total,
            nodes,
        }
    }

    /// Number of nodes in the fleet.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Aggregate throughput in primary requests per second.
    #[must_use]
    pub fn throughput_ips(&self) -> f64 {
        let secs = self.makespan.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.completed as f64 / secs
    }

    /// Total expert switches across all nodes.
    #[must_use]
    pub fn expert_switches(&self) -> u64 {
        self.nodes.iter().map(RunReport::expert_switches).sum()
    }

    /// Fraction of submitted requests dropped by admission control.
    #[must_use]
    pub fn drop_rate(&self) -> f64 {
        if self.submitted == 0 {
            return 0.0;
        }
        self.dropped as f64 / self.submitted as f64
    }

    /// Mean cross-node hops per submitted request — the locality metric
    /// placement/routing ablations compare.
    #[must_use]
    pub fn hops_per_request(&self) -> f64 {
        if self.submitted == 0 {
            return 0.0;
        }
        self.cross_node_hops as f64 / self.submitted as f64
    }

    /// Aggregate node-sojourn latency summary over every completed job
    /// in the fleet (see the type-level note on fabric accounting).
    #[must_use]
    pub fn latency_summary(&self) -> Option<Summary> {
        let all: Vec<SimSpan> = self
            .nodes
            .iter()
            .flat_map(|n| n.job_latencies.iter().copied())
            .collect();
        Summary::of_spans(&all)
    }

    /// Per-node busy fraction: executor time (execution + switching)
    /// over `executors × cluster makespan`. Idle or workless nodes
    /// report 0.
    #[must_use]
    pub fn node_utilization(&self) -> Vec<f64> {
        let wall = self.makespan.as_secs_f64();
        self.nodes
            .iter()
            .map(|n| {
                let slots = n.executors.len() as f64 * wall;
                if slots <= 0.0 {
                    return 0.0;
                }
                let busy = (n.exec_time_total + n.switch_time_total).as_secs_f64();
                (busy / slots).min(1.0)
            })
            .collect()
    }

    /// A one-line human-readable summary.
    #[must_use]
    pub fn summary_line(&self) -> String {
        let drops = if self.dropped > 0 {
            format!(
                ", {} dropped ({:.1} %)",
                self.dropped,
                100.0 * self.drop_rate()
            )
        } else {
            String::new()
        };
        format!(
            "{} / {}: {} nodes, {:.1} img/s, {} switches, {} cross-node hops ({:.2}/req), makespan {}{}",
            self.system,
            self.task,
            self.num_nodes(),
            self.throughput_ips(),
            self.expert_switches(),
            self.cross_node_hops,
            self.hops_per_request(),
            self.makespan,
            drops
        )
    }

    /// The cluster report as a JSON object; per-node reports nest via
    /// [`RunReport::to_json`].
    #[must_use]
    pub fn to_json(&self) -> String {
        let utilization: Vec<String> = self.node_utilization().into_iter().map(json_f64).collect();
        let nodes: Vec<String> = self.nodes.iter().map(RunReport::to_json).collect();
        format!(
            "{{\"system\":{},\"task\":{},\"num_nodes\":{},\
             \"submitted\":{},\"completed\":{},\"failed\":{},\
             \"admitted\":{},\"dropped\":{},\"stages_executed\":{},\
             \"makespan_ms\":{},\"throughput_ips\":{},\"drop_rate\":{},\
             \"expert_switches\":{},\"cross_node_hops\":{},\"hops_per_request\":{},\
             \"fabric_time_total_ms\":{},\"latency\":{},\
             \"node_utilization\":[{}],\"nodes\":[{}]}}",
            json_str(&self.system),
            json_str(&self.task),
            self.num_nodes(),
            self.submitted,
            self.completed,
            self.failed,
            self.admitted,
            self.dropped,
            self.stages_executed,
            json_f64(self.makespan.as_millis_f64()),
            json_f64(self.throughput_ips()),
            json_f64(self.drop_rate()),
            self.expert_switches(),
            self.cross_node_hops,
            json_f64(self.hops_per_request()),
            json_f64(self.fabric_time_total.as_millis_f64()),
            json_summary(self.latency_summary()),
            utilization.join(","),
            nodes.join(","),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coserve_sim::device::ProcessorKind;
    use coserve_sim::memory::Bytes;
    use coserve_sim::time::SimTime;
    use std::collections::BTreeMap;

    fn node_report(name: &str, completed: usize, makespan_secs: u64) -> RunReport {
        RunReport {
            system: name.into(),
            device: "NUMA".into(),
            task: "Task A1".into(),
            submitted: completed + 10,
            completed,
            failed: 4,
            admitted: completed + 6,
            dropped: 6,
            stages_executed: completed,
            makespan: SimSpan::from_secs(makespan_secs),
            switch_events: vec![
                crate::report::SwitchEvent {
                    at: SimTime::ZERO,
                    executor: 0,
                    expert: coserve_model::expert::ExpertId(1),
                    source: coserve_sim::memory::MemoryTier::Ssd,
                    duration: SimSpan::from_millis(800),
                };
                3
            ],
            switch_time_total: SimSpan::from_secs(1),
            exec_time_total: SimSpan::from_secs(2),
            job_latencies: vec![SimSpan::from_millis(40); completed],
            stage_latencies: BTreeMap::new(),
            sched_latencies: Vec::new(),
            executors: vec![crate::report::ExecutorReport {
                index: 0,
                processor: ProcessorKind::Gpu,
                batches: 10,
                items: completed as u64,
                exec_time: SimSpan::from_secs(2),
                switch_time: SimSpan::from_secs(1),
                switches: 3,
                pool_capacity: Bytes::gib(3),
                pool_peak: Bytes::gib(2),
                finished_at: SimTime::ZERO + SimSpan::from_secs(makespan_secs),
            }],
            channels: Vec::new(),
        }
    }

    fn sample_cluster() -> ClusterReport {
        ClusterReport::merge(
            "CoServe ×2",
            "Task A1",
            vec![node_report("n0", 90, 10), node_report("n1", 60, 8)],
            42,
            SimSpan::from_millis(300),
        )
    }

    #[test]
    fn merge_sums_and_takes_max_makespan() {
        let c = sample_cluster();
        assert_eq!(c.num_nodes(), 2);
        assert_eq!(c.submitted, 90 + 10 + 60 + 10);
        assert_eq!(c.completed, 150);
        assert_eq!(c.failed, 8);
        assert_eq!(c.dropped, 12);
        assert_eq!(c.makespan, SimSpan::from_secs(10));
        assert!((c.throughput_ips() - 15.0).abs() < 1e-9);
        assert_eq!(c.expert_switches(), 6);
        assert_eq!(c.cross_node_hops, 42);
        assert!((c.hops_per_request() - 42.0 / 170.0).abs() < 1e-12);
        assert!((c.drop_rate() - 12.0 / 170.0).abs() < 1e-12);
    }

    #[test]
    fn latency_summary_merges_all_nodes() {
        let c = sample_cluster();
        let lat = c.latency_summary().unwrap();
        assert_eq!(lat.count, 150);
        assert!((lat.mean - 40.0).abs() < 1e-9);
    }

    #[test]
    fn utilization_is_busy_over_cluster_wall_clock() {
        let c = sample_cluster();
        let u = c.node_utilization();
        assert_eq!(u.len(), 2);
        // Node 0: 3 s busy / (1 executor × 10 s wall).
        assert!((u[0] - 0.3).abs() < 1e-12);
        // Node 1 also measures against the *cluster* makespan.
        assert!((u[1] - 0.3).abs() < 1e-12);
        for v in u {
            assert!((0.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn summary_line_and_json_carry_fleet_metrics() {
        let c = sample_cluster();
        let line = c.summary_line();
        assert!(line.contains("2 nodes"));
        assert!(line.contains("42 cross-node hops"));
        assert!(line.contains("12 dropped"));
        let json = c.to_json();
        assert!(json.contains("\"num_nodes\":2"));
        assert!(json.contains("\"cross_node_hops\":42"));
        assert!(json.contains("\"nodes\":[{"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn empty_merge_panics() {
        let _ = ClusterReport::merge("x", "t", Vec::new(), 0, SimSpan::ZERO);
    }
}
