//! Cluster-level run reports.
//!
//! A multi-node serving run produces one [`crate::report::RunReport`]
//! per node; [`ClusterReport`] merges them into fleet-level accounting:
//! aggregate throughput and latency percentiles, per-node utilization,
//! cross-node hop counts and the fabric time those hops cost, plus
//! admission/drop totals. The merge is pure bookkeeping — the
//! dispatcher that owns the fabric supplies the hop counters.

use coserve_sim::memory::Bytes;
use coserve_sim::time::{SimSpan, SimTime};

use crate::faults::FaultLedger;
use crate::report::{json_f64, json_str, json_summary, RunReport};
use crate::stats::Summary;

/// One node failure observed by the cluster runtime, with its recovery
/// milestones.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailureRecord {
    /// The node that failed.
    pub node: usize,
    /// When the node died.
    pub failed_at: SimTime,
    /// When the re-replication of the node's orphaned shard finished
    /// landing on the survivors — `None` under a static placement that
    /// never re-replicates (the shard stays lost).
    pub recovered_at: Option<SimTime>,
    /// When the node came back, if the failure schedule revived it.
    pub revived_at: Option<SimTime>,
}

impl FailureRecord {
    /// Time from the failure to the completed re-replication, `None`
    /// while the shard is still orphaned.
    #[must_use]
    pub fn recovery_time(&self) -> Option<SimSpan> {
        self.recovered_at
            .map(|r| r.saturating_since(self.failed_at))
    }
}

/// Aggregate outcomes of one control tick of the cluster runtime.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TickStat {
    /// Tick index, from zero.
    pub index: u32,
    /// Tick window start.
    pub start: SimTime,
    /// Tick window end (for the final open-ended tick: the last
    /// arrival).
    pub end: SimTime,
    /// Requests the front-end routed (or rejected) during the tick.
    pub routed: usize,
    /// Requests completed by the node engines for this tick's work.
    pub completed: usize,
    /// Requests dropped during the tick (front-end rejections plus
    /// per-node admission drops).
    pub dropped: usize,
    /// Completed requests that met the runtime's SLO.
    pub slo_met: usize,
    /// p95 node-sojourn latency of the tick's completions, ms.
    pub p95_ms: Option<f64>,
}

impl TickStat {
    /// Fraction of the tick's routed requests that completed within the
    /// SLO (drops count as violations); `None` for a workless tick.
    #[must_use]
    pub fn slo_attainment(&self) -> Option<f64> {
        (self.routed > 0).then(|| self.slo_met as f64 / self.routed as f64)
    }
}

/// What the *dynamic* cluster runtime did beyond serving: front-end
/// rejections, re-routes, expert migrations (and the fabric traffic
/// they cost), plan re-versioning, failures with recovery milestones,
/// dispatcher estimate quality, and the per-tick timeline.
///
/// All-zero (`Default`) for a plain one-shot serve.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FleetDynamics {
    /// Requests rejected at the front-end because a chain expert had no
    /// live holder (static placement after a failure).
    pub routing_dropped: usize,
    /// Requests shed by queue-depth-aware dispatcher pacing (every
    /// node's per-tick send budget was exhausted); zero unless pacing
    /// is enabled.
    pub paced_shed: u64,
    /// In-flight requests pulled back from a dying node and re-routed.
    pub rerouted: u64,
    /// Expert copies shipped by re-placements.
    pub migrations: u64,
    /// Migration copies that crossed the fabric (the rest were local
    /// checkpoint reloads on the receiving node).
    pub migration_hops: u64,
    /// Total checkpoint bytes shipped by re-placements.
    pub migration_bytes: Bytes,
    /// Total transfer time charged for migrations (on the same fabric
    /// links requests use).
    pub migration_time_total: SimSpan,
    /// The placement-plan version at the end of the run (0 = the
    /// offline plan was never touched).
    pub plan_versions: u64,
    /// Node failures in event order.
    pub failures: Vec<FailureRecord>,
    /// Mean absolute dispatcher estimate error vs observed node finish
    /// times, ms (`None` without control ticks).
    pub estimate_error_ms: Option<f64>,
    /// Per-tick timeline (one entry per control tick that saw work).
    pub ticks: Vec<TickStat>,
    /// Injected-fault and recovery accounting (all-zero — and absent
    /// from the JSON — when no fault plan was armed).
    pub faults: FaultLedger,
}

/// The outcome of one cluster serving run.
///
/// Per-node `job_latencies` measure the sojourn *at the node* (from
/// arrival at the node's admission queue to completion); the fabric
/// time a request spent in flight before reaching its node is accounted
/// separately in [`ClusterReport::fabric_time_total`] and
/// [`ClusterReport::cross_node_hops`].
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterReport {
    /// Cluster system name (e.g. "CoServe ×4 (usage-aware, residency-first)").
    pub system: String,
    /// Task name.
    pub task: String,
    /// Per-node reports, in node order.
    pub nodes: Vec<RunReport>,
    /// Primary requests submitted to the cluster.
    pub submitted: usize,
    /// Primary requests completed across all nodes.
    pub completed: usize,
    /// Primary requests failed across all nodes.
    pub failed: usize,
    /// Primary requests admitted across all nodes.
    pub admitted: usize,
    /// Primary requests dropped by per-node admission control.
    pub dropped: usize,
    /// Total stages executed across all nodes.
    pub stages_executed: usize,
    /// Cluster makespan: the latest node completion time (all nodes
    /// share the global time origin).
    pub makespan: SimSpan,
    /// Stages whose expert lived on a different node than the one the
    /// request was routed to — each paid one fabric transfer.
    pub cross_node_hops: u64,
    /// Total time requests spent on fabric links.
    pub fabric_time_total: SimSpan,
    /// What the dynamic runtime did (failures, migrations, re-routes,
    /// control-tick timeline); all-zero for a one-shot serve.
    pub dynamics: FleetDynamics,
}

impl ClusterReport {
    /// Merges per-node reports into a cluster report. The dispatcher
    /// supplies the fabric counters; everything else is summed from the
    /// nodes (makespan is the maximum, since nodes share a time
    /// origin).
    ///
    /// # Panics
    ///
    /// Panics when `nodes` is empty — a cluster has at least one node.
    #[must_use]
    pub fn merge(
        system: impl Into<String>,
        task: impl Into<String>,
        nodes: Vec<RunReport>,
        cross_node_hops: u64,
        fabric_time_total: SimSpan,
    ) -> Self {
        assert!(!nodes.is_empty(), "cluster needs at least one node");
        ClusterReport {
            system: system.into(),
            task: task.into(),
            submitted: nodes.iter().map(|n| n.submitted).sum(),
            completed: nodes.iter().map(|n| n.completed).sum(),
            failed: nodes.iter().map(|n| n.failed).sum(),
            admitted: nodes.iter().map(|n| n.admitted).sum(),
            dropped: nodes.iter().map(|n| n.dropped).sum(),
            stages_executed: nodes.iter().map(|n| n.stages_executed).sum(),
            makespan: nodes
                .iter()
                .map(|n| n.makespan)
                .fold(SimSpan::ZERO, SimSpan::max),
            cross_node_hops,
            fabric_time_total,
            dynamics: FleetDynamics::default(),
            nodes,
        }
    }

    /// Number of nodes in the fleet.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Aggregate throughput in primary requests per second.
    #[must_use]
    pub fn throughput_ips(&self) -> f64 {
        let secs = self.makespan.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.completed as f64 / secs
    }

    /// Total expert switches across all nodes.
    #[must_use]
    pub fn expert_switches(&self) -> u64 {
        self.nodes.iter().map(RunReport::expert_switches).sum()
    }

    /// Fraction of submitted requests dropped by admission control.
    #[must_use]
    pub fn drop_rate(&self) -> f64 {
        if self.submitted == 0 {
            return 0.0;
        }
        self.dropped as f64 / self.submitted as f64
    }

    /// Mean cross-node hops per submitted request — the locality metric
    /// placement/routing ablations compare.
    #[must_use]
    pub fn hops_per_request(&self) -> f64 {
        if self.submitted == 0 {
            return 0.0;
        }
        self.cross_node_hops as f64 / self.submitted as f64
    }

    /// Aggregate node-sojourn latency summary over every completed job
    /// in the fleet (see the type-level note on fabric accounting).
    #[must_use]
    pub fn latency_summary(&self) -> Option<Summary> {
        let all: Vec<SimSpan> = self
            .nodes
            .iter()
            .flat_map(|n| n.job_latencies.iter().copied())
            .collect();
        Summary::of_spans(&all)
    }

    /// Per-node busy fraction: executor time (execution + switching)
    /// over `executors × cluster makespan`. Idle or workless nodes
    /// report 0.
    #[must_use]
    pub fn node_utilization(&self) -> Vec<f64> {
        let wall = self.makespan.as_secs_f64();
        self.nodes
            .iter()
            .map(|n| {
                let slots = n.executors.len() as f64 * wall;
                if slots <= 0.0 {
                    return 0.0;
                }
                let busy = (n.exec_time_total + n.switch_time_total).as_secs_f64();
                (busy / slots).min(1.0)
            })
            .collect()
    }

    /// Fraction of *submitted* requests completing within `slo` across
    /// the fleet (drops — including front-end rejections — count as
    /// violations). `None` when nothing was submitted.
    #[must_use]
    pub fn slo_attainment(&self, slo: SimSpan) -> Option<f64> {
        if self.submitted == 0 {
            return None;
        }
        let met: usize = self
            .nodes
            .iter()
            .map(|n| n.job_latencies.iter().filter(|&&l| l <= slo).count())
            .sum();
        Some(met as f64 / self.submitted as f64)
    }

    /// The slowest completed recovery across all failures: how long the
    /// fleet took to re-replicate a dead node's orphaned shard. `None`
    /// when no failure recovered (either none happened, or a static
    /// placement left the shard orphaned — see
    /// [`ClusterReport::has_unrecovered_failure`]).
    #[must_use]
    pub fn recovery_time(&self) -> Option<SimSpan> {
        self.dynamics
            .failures
            .iter()
            .filter_map(FailureRecord::recovery_time)
            .max()
    }

    /// Whether any failed node's shard was never re-replicated — the
    /// unbounded-drop regime of a static placement.
    #[must_use]
    pub fn has_unrecovered_failure(&self) -> bool {
        self.dynamics
            .failures
            .iter()
            .any(|f| f.recovered_at.is_none())
    }

    /// A one-line human-readable summary.
    #[must_use]
    pub fn summary_line(&self) -> String {
        let drops = if self.dropped > 0 {
            format!(
                ", {} dropped ({:.1} %)",
                self.dropped,
                100.0 * self.drop_rate()
            )
        } else {
            String::new()
        };
        let migrations = if self.dynamics.migrations > 0 {
            format!(
                ", {} expert migrations ({:.0} MiB)",
                self.dynamics.migrations,
                self.dynamics.migration_bytes.as_mib_f64()
            )
        } else {
            String::new()
        };
        format!(
            "{} / {}: {} nodes, {:.1} img/s, {} switches, {} cross-node hops ({:.2}/req), makespan {}{}{}",
            self.system,
            self.task,
            self.num_nodes(),
            self.throughput_ips(),
            self.expert_switches(),
            self.cross_node_hops,
            self.hops_per_request(),
            self.makespan,
            drops,
            migrations
        )
    }

    /// The cluster report as a JSON object; per-node reports nest via
    /// [`RunReport::to_json`].
    #[must_use]
    pub fn to_json(&self) -> String {
        let utilization: Vec<String> = self.node_utilization().into_iter().map(json_f64).collect();
        let nodes: Vec<String> = self.nodes.iter().map(RunReport::to_json).collect();
        format!(
            "{{\"system\":{},\"task\":{},\"num_nodes\":{},\
             \"submitted\":{},\"completed\":{},\"failed\":{},\
             \"admitted\":{},\"dropped\":{},\"stages_executed\":{},\
             \"makespan_ms\":{},\"throughput_ips\":{},\"drop_rate\":{},\
             \"expert_switches\":{},\"cross_node_hops\":{},\"hops_per_request\":{},\
             \"fabric_time_total_ms\":{},\"latency\":{},\
             \"dynamics\":{},\
             \"node_utilization\":[{}],\"nodes\":[{}]}}",
            json_str(&self.system),
            json_str(&self.task),
            self.num_nodes(),
            self.submitted,
            self.completed,
            self.failed,
            self.admitted,
            self.dropped,
            self.stages_executed,
            json_f64(self.makespan.as_millis_f64()),
            json_f64(self.throughput_ips()),
            json_f64(self.drop_rate()),
            self.expert_switches(),
            self.cross_node_hops,
            json_f64(self.hops_per_request()),
            json_f64(self.fabric_time_total.as_millis_f64()),
            json_summary(self.latency_summary()),
            self.dynamics_json(),
            utilization.join(","),
            nodes.join(","),
        )
    }

    /// The runtime-dynamics block of [`ClusterReport::to_json`].
    fn dynamics_json(&self) -> String {
        let d = &self.dynamics;
        let opt_ms = |t: Option<SimTime>| {
            t.map_or_else(
                || "null".to_string(),
                |t| json_f64(t.saturating_since(SimTime::ZERO).as_millis_f64()),
            )
        };
        let failures: Vec<String> = d
            .failures
            .iter()
            .map(|f| {
                format!(
                    "{{\"node\":{},\"failed_at_ms\":{},\"recovered_at_ms\":{},\
                     \"revived_at_ms\":{},\"recovery_ms\":{}}}",
                    f.node,
                    json_f64(f.failed_at.saturating_since(SimTime::ZERO).as_millis_f64()),
                    opt_ms(f.recovered_at),
                    opt_ms(f.revived_at),
                    f.recovery_time()
                        .map_or_else(|| "null".to_string(), |s| json_f64(s.as_millis_f64())),
                )
            })
            .collect();
        let ticks: Vec<String> = d
            .ticks
            .iter()
            .map(|t| {
                format!(
                    "{{\"index\":{},\"start_ms\":{},\"end_ms\":{},\"routed\":{},\
                     \"completed\":{},\"dropped\":{},\"slo_met\":{},\"p95_ms\":{}}}",
                    t.index,
                    json_f64(t.start.saturating_since(SimTime::ZERO).as_millis_f64()),
                    json_f64(t.end.saturating_since(SimTime::ZERO).as_millis_f64()),
                    t.routed,
                    t.completed,
                    t.dropped,
                    t.slo_met,
                    t.p95_ms.map_or_else(|| "null".to_string(), json_f64),
                )
            })
            .collect();
        format!(
            "{{\"routing_dropped\":{},\"paced_shed\":{},\"rerouted\":{},\"migrations\":{},\
             \"migration_hops\":{},\"migration_bytes\":{},\"migration_time_ms\":{},\
             \"plan_versions\":{},\"estimate_error_ms\":{},\"recovery_ms\":{},\
             \"unrecovered_failure\":{},\"failures\":[{}],\"ticks\":[{}]{}}}",
            d.routing_dropped,
            d.paced_shed,
            d.rerouted,
            d.migrations,
            d.migration_hops,
            d.migration_bytes.get(),
            json_f64(d.migration_time_total.as_millis_f64()),
            d.plan_versions,
            d.estimate_error_ms
                .map_or_else(|| "null".to_string(), json_f64),
            self.recovery_time()
                .map_or_else(|| "null".to_string(), |s| json_f64(s.as_millis_f64())),
            self.has_unrecovered_failure(),
            failures.join(","),
            ticks.join(","),
            // Only faulted runs carry the ledger: the faults-off JSON
            // stays byte-identical to what pre-fault builds emitted.
            if d.faults.is_empty() {
                String::new()
            } else {
                format!(",\"faults\":{}", d.faults.to_json())
            },
        )
    }

    /// A live-counter view of the fleet; see [`ClusterSnapshot`].
    #[must_use]
    pub fn snapshot(&self) -> ClusterSnapshot {
        ClusterSnapshot {
            system: self.system.clone(),
            task: self.task.clone(),
            num_nodes: self.num_nodes(),
            submitted: self.submitted,
            completed: self.completed,
            failed: self.failed,
            admitted: self.admitted,
            dropped: self.dropped,
            stages_executed: self.stages_executed,
            makespan: self.makespan,
            cross_node_hops: self.cross_node_hops,
            expert_switches: self.expert_switches(),
            routing_dropped: self.dynamics.routing_dropped,
            paced_shed: self.dynamics.paced_shed,
            rerouted: self.dynamics.rerouted,
            migrations: self.dynamics.migrations,
            migration_bytes: self.dynamics.migration_bytes,
            plan_versions: self.dynamics.plan_versions,
            failures: self.dynamics.failures.len(),
            unrecovered_failure: self.has_unrecovered_failure(),
            latency: self.latency_summary(),
        }
    }
}

/// A non-consuming view of a fleet's live counters — the cluster
/// equivalent of [`crate::report::RunSnapshot`]. Per-node reports and
/// the full latency ledgers stay behind; the latency distribution is
/// reduced to a [`Summary`].
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterSnapshot {
    /// Cluster system name.
    pub system: String,
    /// Task name.
    pub task: String,
    /// Fleet size.
    pub num_nodes: usize,
    /// Requests submitted.
    pub submitted: usize,
    /// Requests completed.
    pub completed: usize,
    /// Requests failed.
    pub failed: usize,
    /// Requests admitted.
    pub admitted: usize,
    /// Requests dropped (node admission + front-end).
    pub dropped: usize,
    /// Stages executed.
    pub stages_executed: usize,
    /// Cluster makespan so far.
    pub makespan: SimSpan,
    /// Cross-node fabric hops.
    pub cross_node_hops: u64,
    /// Expert switches across the fleet.
    pub expert_switches: u64,
    /// Front-end rejections (no live holder for a chain expert).
    pub routing_dropped: usize,
    /// Requests shed by dispatcher pacing.
    pub paced_shed: u64,
    /// In-flight requests pulled back from dying nodes.
    pub rerouted: u64,
    /// Expert copies shipped by re-placements.
    pub migrations: u64,
    /// Checkpoint bytes shipped by re-placements.
    pub migration_bytes: Bytes,
    /// Placement-plan version.
    pub plan_versions: u64,
    /// Node failures so far.
    pub failures: usize,
    /// Whether a failed shard is still orphaned.
    pub unrecovered_failure: bool,
    /// Completed-job node-sojourn summary.
    pub latency: Option<Summary>,
}

impl ClusterSnapshot {
    /// Completed requests per second over the makespan so far.
    #[must_use]
    pub fn throughput_ips(&self) -> f64 {
        let secs = self.makespan.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.completed as f64 / secs
    }

    /// The snapshot as a JSON object.
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"system\":{},\"task\":{},\"num_nodes\":{},\
             \"submitted\":{},\"completed\":{},\"failed\":{},\
             \"admitted\":{},\"dropped\":{},\"stages_executed\":{},\
             \"makespan_ms\":{},\"throughput_ips\":{},\
             \"cross_node_hops\":{},\"expert_switches\":{},\
             \"routing_dropped\":{},\"paced_shed\":{},\"rerouted\":{},\
             \"migrations\":{},\"migration_bytes\":{},\"plan_versions\":{},\
             \"failures\":{},\"unrecovered_failure\":{},\"latency\":{}}}",
            json_str(&self.system),
            json_str(&self.task),
            self.num_nodes,
            self.submitted,
            self.completed,
            self.failed,
            self.admitted,
            self.dropped,
            self.stages_executed,
            json_f64(self.makespan.as_millis_f64()),
            json_f64(self.throughput_ips()),
            self.cross_node_hops,
            self.expert_switches,
            self.routing_dropped,
            self.paced_shed,
            self.rerouted,
            self.migrations,
            self.migration_bytes.get(),
            self.plan_versions,
            self.failures,
            self.unrecovered_failure,
            json_summary(self.latency),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coserve_sim::device::ProcessorKind;
    use coserve_sim::memory::Bytes;
    use coserve_sim::time::SimTime;
    use std::collections::BTreeMap;

    fn node_report(name: &str, completed: usize, makespan_secs: u64) -> RunReport {
        RunReport {
            system: name.into(),
            device: "NUMA".into(),
            task: "Task A1".into(),
            submitted: completed + 10,
            completed,
            failed: 4,
            admitted: completed + 6,
            dropped: 6,
            stages_executed: completed,
            makespan: SimSpan::from_secs(makespan_secs),
            switch_events: vec![
                crate::report::SwitchEvent {
                    at: SimTime::ZERO,
                    executor: 0,
                    expert: coserve_model::expert::ExpertId(1),
                    source: coserve_sim::memory::MemoryTier::Ssd,
                    duration: SimSpan::from_millis(800),
                };
                3
            ],
            switch_time_total: SimSpan::from_secs(1),
            exec_time_total: SimSpan::from_secs(2),
            job_latencies: vec![SimSpan::from_millis(40); completed],
            stage_latencies: BTreeMap::new(),
            sched_latencies: Vec::new(),
            executors: vec![crate::report::ExecutorReport {
                index: 0,
                processor: ProcessorKind::Gpu,
                batches: 10,
                items: completed as u64,
                exec_time: SimSpan::from_secs(2),
                switch_time: SimSpan::from_secs(1),
                switches: 3,
                pool_capacity: Bytes::gib(3),
                pool_peak: Bytes::gib(2),
                finished_at: SimTime::ZERO + SimSpan::from_secs(makespan_secs),
            }],
            channels: Vec::new(),
        }
    }

    fn sample_cluster() -> ClusterReport {
        ClusterReport::merge(
            "CoServe ×2",
            "Task A1",
            vec![node_report("n0", 90, 10), node_report("n1", 60, 8)],
            42,
            SimSpan::from_millis(300),
        )
    }

    #[test]
    fn merge_sums_and_takes_max_makespan() {
        let c = sample_cluster();
        assert_eq!(c.num_nodes(), 2);
        assert_eq!(c.submitted, 90 + 10 + 60 + 10);
        assert_eq!(c.completed, 150);
        assert_eq!(c.failed, 8);
        assert_eq!(c.dropped, 12);
        assert_eq!(c.makespan, SimSpan::from_secs(10));
        assert!((c.throughput_ips() - 15.0).abs() < 1e-9);
        assert_eq!(c.expert_switches(), 6);
        assert_eq!(c.cross_node_hops, 42);
        assert!((c.hops_per_request() - 42.0 / 170.0).abs() < 1e-12);
        assert!((c.drop_rate() - 12.0 / 170.0).abs() < 1e-12);
    }

    #[test]
    fn latency_summary_merges_all_nodes() {
        let c = sample_cluster();
        let lat = c.latency_summary().unwrap();
        assert_eq!(lat.count, 150);
        assert!((lat.mean - 40.0).abs() < 1e-9);
    }

    #[test]
    fn utilization_is_busy_over_cluster_wall_clock() {
        let c = sample_cluster();
        let u = c.node_utilization();
        assert_eq!(u.len(), 2);
        // Node 0: 3 s busy / (1 executor × 10 s wall).
        assert!((u[0] - 0.3).abs() < 1e-12);
        // Node 1 also measures against the *cluster* makespan.
        assert!((u[1] - 0.3).abs() < 1e-12);
        for v in u {
            assert!((0.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn summary_line_and_json_carry_fleet_metrics() {
        let c = sample_cluster();
        let line = c.summary_line();
        assert!(line.contains("2 nodes"));
        assert!(line.contains("42 cross-node hops"));
        assert!(line.contains("12 dropped"));
        let json = c.to_json();
        assert!(json.contains("\"num_nodes\":2"));
        assert!(json.contains("\"cross_node_hops\":42"));
        assert!(json.contains("\"nodes\":[{"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn empty_merge_panics() {
        let _ = ClusterReport::merge("x", "t", Vec::new(), 0, SimSpan::ZERO);
    }

    #[test]
    fn dynamics_default_is_inert() {
        let c = sample_cluster();
        assert_eq!(c.dynamics, FleetDynamics::default());
        assert_eq!(c.recovery_time(), None);
        assert!(!c.has_unrecovered_failure());
        assert!(!c.summary_line().contains("migrations"));
        let json = c.to_json();
        assert!(json.contains("\"dynamics\":{\"routing_dropped\":0"));
        assert!(json.contains("\"failures\":[]"));
    }

    #[test]
    fn dynamics_recovery_and_slo_accounting() {
        let mut c = sample_cluster();
        c.dynamics.routing_dropped = 5;
        c.submitted += 5;
        c.dropped += 5;
        c.dynamics.rerouted = 3;
        c.dynamics.migrations = 4;
        c.dynamics.migration_hops = 3;
        c.dynamics.migration_bytes = Bytes::mib(700);
        c.dynamics.migration_time_total = SimSpan::from_millis(90);
        c.dynamics.plan_versions = 2;
        c.dynamics.failures.push(FailureRecord {
            node: 1,
            failed_at: SimTime::ZERO + SimSpan::from_secs(2),
            recovered_at: Some(SimTime::ZERO + SimSpan::from_secs(3)),
            revived_at: None,
        });
        c.dynamics.ticks.push(TickStat {
            index: 0,
            start: SimTime::ZERO,
            end: SimTime::ZERO + SimSpan::from_secs(5),
            routed: 100,
            completed: 80,
            dropped: 20,
            slo_met: 60,
            p95_ms: Some(42.0),
        });
        assert_eq!(c.recovery_time(), Some(SimSpan::from_secs(1)));
        assert!(!c.has_unrecovered_failure());
        assert_eq!(
            c.dynamics.failures[0].recovery_time(),
            Some(SimSpan::from_secs(1))
        );
        assert_eq!(c.dynamics.ticks[0].slo_attainment(), Some(0.6));
        // Fleet SLO attainment counts drops as violations: all 150
        // completions are at 40 ms.
        assert_eq!(
            c.slo_attainment(SimSpan::from_millis(40)),
            Some(150.0 / 175.0)
        );
        assert_eq!(c.slo_attainment(SimSpan::from_millis(1)), Some(0.0));
        let line = c.summary_line();
        assert!(line.contains("4 expert migrations (700 MiB)"));
        let json = c.to_json();
        assert!(json.contains("\"recovery_ms\":1000"));
        assert!(json.contains("\"unrecovered_failure\":false"));
        assert!(json.contains("\"migration_bytes\":734003200"));
        assert!(json.contains("\"ticks\":[{\"index\":0"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        // A static-placement failure never recovers.
        c.dynamics.failures[0].recovered_at = None;
        assert_eq!(c.recovery_time(), None);
        assert!(c.has_unrecovered_failure());
    }
}
