//! Deterministic pseudo-random numbers.
//!
//! Every stochastic decision in the simulator flows from a [`SimRng`] —
//! a xoshiro256** generator seeded explicitly — so that a run is a pure
//! function of its configuration. We implement the generator ourselves
//! (it is ~30 lines) rather than depending on an external crate whose
//! stream might change between versions: schedule reproducibility is a
//! core requirement of the evaluation harness.
//!
//! ```
//! use coserve_sim::rng::SimRng;
//!
//! let mut a = SimRng::seed_from(7);
//! let mut b = SimRng::seed_from(7);
//! assert_eq!(a.next_u64(), b.next_u64());
//! ```

/// A deterministic xoshiro256** pseudo-random number generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    state: [u64; 4],
}

/// SplitMix64 step, used to expand a single seed word into generator state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a single seed word.
    ///
    /// Any seed is acceptable, including zero: the seed is first expanded
    /// through SplitMix64 so the internal state is never all-zero.
    #[must_use]
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = seed;
        SimRng {
            state: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Derives an independent child generator; useful for giving each
    /// subsystem its own stream so adding draws in one place does not
    /// perturb another.
    #[must_use]
    pub fn fork(&mut self, label: u64) -> SimRng {
        SimRng::seed_from(self.next_u64() ^ label.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// A uniform value in `[0, bound)`, via Lemire rejection (unbiased).
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below bound must be positive");
        // Lemire's multiply-shift method with rejection for exactness.
        let mut x = self.next_u64();
        let mut m = (x as u128).wrapping_mul(bound as u128);
        let mut low = m as u64;
        if low < bound {
            let threshold = bound.wrapping_neg() % bound;
            while low < threshold {
                x = self.next_u64();
                m = (x as u128).wrapping_mul(bound as u128);
                low = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// A uniform value in the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "range_inclusive requires lo <= hi");
        if lo == 0 && hi == u64::MAX {
            return self.next_u64();
        }
        lo + self.next_below(hi - lo + 1)
    }

    /// A uniform float in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A Bernoulli draw with success probability `p` (clamped to `[0, 1]`).
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// Picks a uniformly random element of `items`, or `None` when empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            Some(&items[self.next_below(items.len() as u64) as usize])
        }
    }

    /// Fisher–Yates shuffle, in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }

    /// A multiplicative jitter factor in `[1 - amplitude, 1 + amplitude]`.
    ///
    /// Used by the profiler to make "measured" latencies realistically
    /// noisy without ever going negative; `amplitude` is clamped to
    /// `[0, 0.99]`.
    pub fn jitter(&mut self, amplitude: f64) -> f64 {
        let a = amplitude.clamp(0.0, 0.99);
        1.0 + (self.next_f64() * 2.0 - 1.0) * a
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = SimRng::seed_from(123);
        let mut b = SimRng::seed_from(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams from different seeds look identical");
    }

    #[test]
    fn zero_seed_is_fine() {
        let mut r = SimRng::seed_from(0);
        assert_ne!(r.next_u64(), 0u64.wrapping_add(r.next_u64()));
    }

    #[test]
    fn next_below_is_in_range() {
        let mut r = SimRng::seed_from(9);
        for bound in [1u64, 2, 3, 7, 1000] {
            for _ in 0..200 {
                assert!(r.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn next_below_covers_small_ranges() {
        let mut r = SimRng::seed_from(5);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[r.next_below(5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "some residues never produced");
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn next_below_zero_panics() {
        SimRng::seed_from(1).next_below(0);
    }

    #[test]
    fn range_inclusive_hits_endpoints() {
        let mut r = SimRng::seed_from(11);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..1000 {
            match r.range_inclusive(3, 5) {
                3 => lo_seen = true,
                5 => hi_seen = true,
                4 => {}
                other => panic!("out of range: {other}"),
            }
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn f64_is_unit_interval() {
        let mut r = SimRng::seed_from(2);
        for _ in 0..1000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_is_plausible() {
        let mut r = SimRng::seed_from(3);
        let mean: f64 = (0..4000).map(|_| r.next_f64()).sum::<f64>() / 4000.0;
        assert!((mean - 0.5).abs() < 0.03, "mean {mean} far from 0.5");
    }

    #[test]
    fn bernoulli_extremes() {
        let mut r = SimRng::seed_from(4);
        assert!((0..100).all(|_| r.bernoulli(1.0)));
        assert!((0..100).all(|_| !r.bernoulli(0.0)));
        // Out-of-range probabilities clamp instead of panicking.
        assert!(r.bernoulli(2.0));
        assert!(!r.bernoulli(-3.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SimRng::seed_from(8);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "shuffle did nothing");
    }

    #[test]
    fn choose_empty_is_none() {
        let mut r = SimRng::seed_from(6);
        assert_eq!(r.choose::<u8>(&[]), None);
        assert_eq!(r.choose(&[42]), Some(&42));
    }

    #[test]
    fn jitter_stays_in_band() {
        let mut r = SimRng::seed_from(7);
        for _ in 0..1000 {
            let j = r.jitter(0.05);
            assert!((0.95..=1.05).contains(&j), "jitter {j} out of band");
        }
    }

    #[test]
    fn fork_produces_independent_streams() {
        let mut parent = SimRng::seed_from(42);
        let mut c1 = parent.fork(1);
        let mut c2 = parent.fork(2);
        assert_ne!(c1.next_u64(), c2.next_u64());
    }
}
