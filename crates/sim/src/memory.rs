//! Byte quantities and tiered memory pools.
//!
//! Experts live in one of three tiers — GPU memory, CPU memory, SSD —
//! and the whole point of CoServe is deciding what resides where. The
//! simulator therefore does byte-accurate accounting: a [`MemoryPool`]
//! refuses to over-commit and records its high-water mark, and [`Bytes`]
//! keeps capacities, weights and footprints from being confused with
//! other integers.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, Sub, SubAssign};

/// A number of bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Bytes(u64);

impl Bytes {
    /// Zero bytes.
    pub const ZERO: Bytes = Bytes(0);

    /// Creates a byte count from a raw value.
    #[must_use]
    pub const fn new(bytes: u64) -> Self {
        Bytes(bytes)
    }

    /// Whole kibibytes.
    #[must_use]
    pub const fn kib(kib: u64) -> Self {
        Bytes(kib * 1024)
    }

    /// Whole mebibytes.
    #[must_use]
    pub const fn mib(mib: u64) -> Self {
        Bytes(mib * 1024 * 1024)
    }

    /// Whole gibibytes.
    #[must_use]
    pub const fn gib(gib: u64) -> Self {
        Bytes(gib * 1024 * 1024 * 1024)
    }

    /// Fractional mebibytes, rounded to the nearest byte (clamped at zero).
    #[must_use]
    pub fn mib_f64(mib: f64) -> Self {
        if !mib.is_finite() || mib <= 0.0 {
            return Bytes::ZERO;
        }
        Bytes((mib * 1024.0 * 1024.0).round() as u64)
    }

    /// The raw byte count.
    #[must_use]
    pub const fn get(self) -> u64 {
        self.0
    }

    /// The count as fractional mebibytes.
    #[must_use]
    pub fn as_mib_f64(self) -> f64 {
        self.0 as f64 / (1024.0 * 1024.0)
    }

    /// The count as fractional gibibytes.
    #[must_use]
    pub fn as_gib_f64(self) -> f64 {
        self.0 as f64 / (1024.0 * 1024.0 * 1024.0)
    }

    /// Whether this is zero bytes.
    #[must_use]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    #[must_use]
    pub fn saturating_sub(self, other: Bytes) -> Bytes {
        Bytes(self.0.saturating_sub(other.0))
    }

    /// The larger of two counts.
    #[must_use]
    pub fn max(self, other: Bytes) -> Bytes {
        Bytes(self.0.max(other.0))
    }

    /// The smaller of two counts.
    #[must_use]
    pub fn min(self, other: Bytes) -> Bytes {
        Bytes(self.0.min(other.0))
    }
}

impl Add for Bytes {
    type Output = Bytes;
    fn add(self, rhs: Bytes) -> Bytes {
        Bytes(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for Bytes {
    fn add_assign(&mut self, rhs: Bytes) {
        *self = *self + rhs;
    }
}

impl Sub for Bytes {
    type Output = Bytes;
    fn sub(self, rhs: Bytes) -> Bytes {
        debug_assert!(self.0 >= rhs.0, "Bytes subtraction went negative");
        Bytes(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for Bytes {
    fn sub_assign(&mut self, rhs: Bytes) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for Bytes {
    type Output = Bytes;
    fn mul(self, rhs: u64) -> Bytes {
        Bytes(self.0.saturating_mul(rhs))
    }
}

impl Sum for Bytes {
    fn sum<I: Iterator<Item = Bytes>>(iter: I) -> Bytes {
        iter.fold(Bytes::ZERO, Add::add)
    }
}

impl fmt::Display for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1024 * 1024 * 1024 {
            write!(f, "{:.2}GiB", self.as_gib_f64())
        } else if self.0 >= 1024 * 1024 {
            write!(f, "{:.1}MiB", self.as_mib_f64())
        } else {
            write!(f, "{}B", self.0)
        }
    }
}

/// The storage tier an expert currently occupies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemoryTier {
    /// Device (GPU) memory — where inference on the GPU happens.
    Gpu,
    /// Host (CPU) memory — inference on the CPU, or a staging cache.
    Cpu,
    /// Solid-state storage — every expert always has a copy here.
    Ssd,
}

impl fmt::Display for MemoryTier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemoryTier::Gpu => write!(f, "GPU"),
            MemoryTier::Cpu => write!(f, "CPU"),
            MemoryTier::Ssd => write!(f, "SSD"),
        }
    }
}

/// Error returned when a [`MemoryPool`] allocation does not fit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocError {
    /// How many bytes the caller asked for.
    pub requested: Bytes,
    /// How many bytes were free at the time.
    pub available: Bytes,
    /// Total pool capacity.
    pub capacity: Bytes,
}

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "allocation of {} exceeds available {} (capacity {})",
            self.requested, self.available, self.capacity
        )
    }
}

impl std::error::Error for AllocError {}

/// A fixed-capacity memory pool with exact accounting.
///
/// ```
/// use coserve_sim::memory::{Bytes, MemoryPool};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut pool = MemoryPool::new(Bytes::mib(10));
/// pool.allocate(Bytes::mib(4))?;
/// assert_eq!(pool.available(), Bytes::mib(6));
/// pool.free(Bytes::mib(4));
/// assert_eq!(pool.used(), Bytes::ZERO);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemoryPool {
    capacity: Bytes,
    used: Bytes,
    peak: Bytes,
}

impl MemoryPool {
    /// Creates an empty pool with the given capacity.
    #[must_use]
    pub fn new(capacity: Bytes) -> Self {
        MemoryPool {
            capacity,
            used: Bytes::ZERO,
            peak: Bytes::ZERO,
        }
    }

    /// Total capacity.
    #[must_use]
    pub fn capacity(&self) -> Bytes {
        self.capacity
    }

    /// Bytes currently allocated.
    #[must_use]
    pub fn used(&self) -> Bytes {
        self.used
    }

    /// Bytes currently free.
    #[must_use]
    pub fn available(&self) -> Bytes {
        self.capacity.saturating_sub(self.used)
    }

    /// The largest `used` value ever observed.
    #[must_use]
    pub fn peak(&self) -> Bytes {
        self.peak
    }

    /// Whether an allocation of `size` would fit right now.
    #[must_use]
    pub fn fits(&self, size: Bytes) -> bool {
        size <= self.available()
    }

    /// Allocates `size` bytes.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError`] when fewer than `size` bytes are free; the
    /// pool is left unchanged.
    pub fn allocate(&mut self, size: Bytes) -> Result<(), AllocError> {
        if !self.fits(size) {
            return Err(AllocError {
                requested: size,
                available: self.available(),
                capacity: self.capacity,
            });
        }
        self.used += size;
        self.peak = self.peak.max(self.used);
        Ok(())
    }

    /// Releases `size` bytes.
    ///
    /// Freeing more than is allocated indicates an engine bug; it is
    /// clamped to zero in release builds and flagged in debug builds.
    pub fn free(&mut self, size: Bytes) {
        debug_assert!(
            size <= self.used,
            "freeing {size} but only {} used",
            self.used
        );
        self.used = self.used.saturating_sub(size);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_constructors() {
        assert_eq!(Bytes::kib(2).get(), 2048);
        assert_eq!(Bytes::mib(1).get(), 1 << 20);
        assert_eq!(Bytes::gib(1).get(), 1 << 30);
        assert_eq!(Bytes::mib_f64(1.5).get(), 3 << 19);
        assert_eq!(Bytes::mib_f64(-2.0), Bytes::ZERO);
        assert_eq!(Bytes::mib_f64(f64::NAN), Bytes::ZERO);
    }

    #[test]
    fn byte_arithmetic_and_display() {
        let a = Bytes::mib(3);
        let b = Bytes::mib(2);
        assert_eq!(a + b, Bytes::mib(5));
        assert_eq!(a - b, Bytes::mib(1));
        assert_eq!(b * 3, Bytes::mib(6));
        assert_eq!(b.saturating_sub(a), Bytes::ZERO);
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
        assert_eq!(Bytes::gib(2).to_string(), "2.00GiB");
        assert_eq!(Bytes::mib(3).to_string(), "3.0MiB");
        assert_eq!(Bytes::new(10).to_string(), "10B");
        let total: Bytes = [a, b].into_iter().sum();
        assert_eq!(total, Bytes::mib(5));
    }

    #[test]
    fn pool_allocate_and_free() {
        let mut p = MemoryPool::new(Bytes::mib(8));
        p.allocate(Bytes::mib(5)).unwrap();
        assert_eq!(p.used(), Bytes::mib(5));
        assert_eq!(p.available(), Bytes::mib(3));
        p.free(Bytes::mib(2));
        assert_eq!(p.used(), Bytes::mib(3));
        assert_eq!(p.peak(), Bytes::mib(5));
    }

    #[test]
    fn pool_rejects_overcommit() {
        let mut p = MemoryPool::new(Bytes::mib(4));
        p.allocate(Bytes::mib(3)).unwrap();
        let err = p.allocate(Bytes::mib(2)).unwrap_err();
        assert_eq!(err.requested, Bytes::mib(2));
        assert_eq!(err.available, Bytes::mib(1));
        assert_eq!(err.capacity, Bytes::mib(4));
        // Failed allocation leaves the pool unchanged.
        assert_eq!(p.used(), Bytes::mib(3));
        assert!(err.to_string().contains("exceeds available"));
    }

    #[test]
    fn pool_exact_fill() {
        let mut p = MemoryPool::new(Bytes::mib(4));
        assert!(p.fits(Bytes::mib(4)));
        p.allocate(Bytes::mib(4)).unwrap();
        assert_eq!(p.available(), Bytes::ZERO);
        assert!(!p.fits(Bytes::new(1)));
        assert!(p.fits(Bytes::ZERO));
    }

    #[test]
    fn zero_capacity_pool() {
        let mut p = MemoryPool::new(Bytes::ZERO);
        assert!(p.allocate(Bytes::new(1)).is_err());
        assert!(p.allocate(Bytes::ZERO).is_ok());
    }

    #[test]
    fn tier_display() {
        assert_eq!(MemoryTier::Gpu.to_string(), "GPU");
        assert_eq!(MemoryTier::Cpu.to_string(), "CPU");
        assert_eq!(MemoryTier::Ssd.to_string(), "SSD");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Applying an arbitrary sequence of allocs/frees never
        /// over-commits the pool and never lets `used` underflow.
        #[test]
        fn pool_accounting_is_consistent(
            capacity_mib in 1u64..64,
            ops in proptest::collection::vec((any::<bool>(), 0u64..32), 0..64),
        ) {
            let mut pool = MemoryPool::new(Bytes::mib(capacity_mib));
            let mut live: Vec<Bytes> = Vec::new();
            for (is_alloc, size_mib) in ops {
                if is_alloc {
                    let size = Bytes::mib(size_mib);
                    if pool.allocate(size).is_ok() {
                        live.push(size);
                    }
                } else if let Some(size) = live.pop() {
                    pool.free(size);
                }
                let expected: Bytes = live.iter().copied().sum();
                prop_assert_eq!(pool.used(), expected);
                prop_assert!(pool.used() <= pool.capacity());
                prop_assert!(pool.peak() >= pool.used());
            }
        }

        /// `fits` agrees with `allocate` succeeding.
        #[test]
        fn fits_predicts_allocate(cap in 0u64..1_000_000, used in 0u64..1_000_000, req in 0u64..1_000_000) {
            let mut pool = MemoryPool::new(Bytes::new(cap));
            if pool.allocate(Bytes::new(used)).is_ok() {
                let fits = pool.fits(Bytes::new(req));
                prop_assert_eq!(fits, pool.allocate(Bytes::new(req)).is_ok());
            }
        }
    }
}
