//! The discrete-event queue and the multi-lane event calendar.
//!
//! A simulation run is a loop over an [`EventQueue`]: pop the earliest
//! event, advance the clock to its timestamp, handle it, possibly push
//! more events. Events at the same timestamp pop in insertion order
//! (FIFO), which makes runs fully deterministic — an essential property
//! for reproducing schedules and for the determinism tests.
//!
//! [`Calendar`] is the high-throughput sibling used by the engine's hot
//! loop: the same `(time, seq)` pop contract, but pushes whose source is
//! known to emit in non-decreasing time order land in O(1) FIFO *lanes*
//! instead of the heap. See the type-level docs for the determinism
//! contract and the proof sketch of pop-order equivalence.
//!
//! ```
//! use coserve_sim::events::EventQueue;
//! use coserve_sim::time::SimTime;
//!
//! let mut q = EventQueue::new();
//! q.push(SimTime::from_nanos(20), "late");
//! q.push(SimTime::from_nanos(10), "early");
//! assert_eq!(q.pop().unwrap().payload, "early");
//! ```

use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

use crate::time::SimTime;

/// A scheduled event: a timestamp plus an arbitrary payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scheduled<E> {
    /// When the event fires.
    pub at: SimTime,
    /// Monotone insertion index; breaks timestamp ties FIFO.
    pub seq: u64,
    /// The event itself.
    pub payload: E,
}

/// Internal heap entry ordered as a min-heap on `(at, seq)`.
#[derive(Debug)]
struct Entry<E>(Scheduled<E>);

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.0.at == other.0.at && self.0.seq == other.0.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we need the earliest first.
        (other.0.at, other.0.seq).cmp(&(self.0.at, self.0.seq))
    }
}

/// A deterministic min-priority queue of timestamped events.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    last_popped: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            last_popped: SimTime::ZERO,
        }
    }

    /// Schedules `payload` to fire at `at`.
    ///
    /// Scheduling in the past (before the last popped timestamp) is a
    /// logic error in the engine; it is tolerated here (the event fires
    /// "now") but flagged in debug builds.
    pub fn push(&mut self, at: SimTime, payload: E) {
        debug_assert!(
            at >= self.last_popped,
            "event scheduled at {at} before current time {}",
            self.last_popped
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry(Scheduled {
            at: at.max(self.last_popped),
            seq,
            payload,
        }));
    }

    /// Removes and returns the earliest event, advancing the internal
    /// notion of "now".
    pub fn pop(&mut self) -> Option<Scheduled<E>> {
        let entry = self.heap.pop()?;
        self.last_popped = entry.0.at;
        Some(entry.0)
    }

    /// The timestamp of the next event without removing it.
    #[must_use]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.0.at)
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The timestamp of the most recently popped event.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.last_popped
    }
}

/// A multi-lane event calendar: the engine-grade replacement for
/// driving a hot event loop through a single binary heap.
///
/// # Determinism contract
///
/// A `Calendar` pops events in exactly the same order as an
/// [`EventQueue`] fed the same pushes: strictly ascending `(at, seq)`,
/// where `seq` is a single monotone counter shared by every push —
/// equal-timestamp events therefore pop FIFO, and results depend only
/// on the push sequence, never on which container held an event.
///
/// # Lanes
///
/// Most event sources in a discrete-event serving loop are *monotone*:
/// a FIFO channel's reservations end in non-decreasing order, events
/// scheduled "at now" trail the non-decreasing simulation clock. A push
/// through [`Calendar::push_lane`] appends to that lane's `VecDeque` in
/// O(1) when it keeps the lane sorted (non-decreasing `at`; `seq` is
/// monotone by construction), and silently falls back to the shared
/// binary heap otherwise — monotonicity is a fast path the calendar
/// verifies per push, never an obligation on the caller.
///
/// # Why the pop order is identical
///
/// Every pending event lives in exactly one container: a sorted lane or
/// the heap. Each lane is sorted by `(at, seq)` (enforced on append),
/// so its front is its minimum; the heap's top is its minimum. The
/// global minimum of disjoint sets is the minimum over their minima, so
/// scanning the lane fronts plus the heap top yields exactly the event
/// a single global heap would pop. `seq` uniqueness makes the minimum
/// unique, so there are no ambiguous ties.
///
/// Popping is O(lanes) compares plus O(1) (lane hit) or O(log heap)
/// (heap hit); pushing a monotone source is O(1) instead of O(log n) —
/// and with deep calendars (millions of pending arrivals) the lanes
/// keep both ends of the loop flat.
#[derive(Debug)]
pub struct Calendar<E> {
    lanes: Vec<VecDeque<Scheduled<E>>>,
    /// Packed `(at, seq)` front key per lane (`EMPTY_KEY` when empty),
    /// kept in a flat array so the per-pop min scan touches one cache
    /// line instead of chasing every lane's deque header.
    fronts: Vec<u128>,
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    last_popped: SimTime,
    len: usize,
    /// Reference mode: every push goes to the heap, reducing the
    /// calendar to a plain [`EventQueue`]. The equivalence proptests
    /// drive both modes over identical workloads.
    reference: bool,
}

/// Sentinel front key for an empty lane. Never collides with a real
/// key: sequence numbers stay far below `u64::MAX`.
const EMPTY_KEY: u128 = u128::MAX;

/// Packs an `(at, seq)` pair so `u128` order equals lexicographic
/// `(at, seq)` order.
fn pack_key(at: SimTime, seq: u64) -> u128 {
    (u128::from(at.nanos()) << 64) | u128::from(seq)
}

impl<E> Calendar<E> {
    /// Creates an empty calendar with `lanes` FIFO lanes.
    #[must_use]
    pub fn new(lanes: usize) -> Self {
        Calendar {
            lanes: (0..lanes).map(|_| VecDeque::new()).collect(),
            fronts: vec![EMPTY_KEY; lanes],
            heap: BinaryHeap::new(),
            next_seq: 0,
            last_popped: SimTime::ZERO,
            len: 0,
            reference: false,
        }
    }

    /// Creates a calendar whose lane pushes all take the heap path —
    /// behaviourally a plain [`EventQueue`]. Test/verification aid: runs
    /// driven through a reference calendar must be bit-identical to the
    /// laned ones.
    #[must_use]
    pub fn reference(lanes: usize) -> Self {
        let mut cal = Calendar::new(lanes);
        cal.reference = true;
        cal
    }

    /// Whether this calendar was built with [`Calendar::reference`].
    #[must_use]
    pub fn is_reference(&self) -> bool {
        self.reference
    }

    fn next_seq(&mut self, at: SimTime) -> (SimTime, u64) {
        debug_assert!(
            at >= self.last_popped,
            "event scheduled at {at} before current time {}",
            self.last_popped
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.len += 1;
        (at.max(self.last_popped), seq)
    }

    /// Schedules `payload` at `at` through the shared heap — the path
    /// for sources with no ordering guarantee. Scheduling in the past is
    /// tolerated (floored to "now") but flagged in debug builds, exactly
    /// like [`EventQueue::push`].
    pub fn push(&mut self, at: SimTime, payload: E) {
        let (at, seq) = self.next_seq(at);
        self.heap.push(Entry(Scheduled { at, seq, payload }));
    }

    /// Schedules `payload` at `at`, appending to `lane` when that keeps
    /// the lane sorted and falling back to the heap otherwise. Use one
    /// lane per monotone event source.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range.
    pub fn push_lane(&mut self, lane: usize, at: SimTime, payload: E) {
        let (at, seq) = self.next_seq(at);
        let lane_q = &mut self.lanes[lane];
        if !self.reference && lane_q.back().is_none_or(|b| b.at <= at) {
            if lane_q.is_empty() {
                self.fronts[lane] = pack_key(at, seq);
            }
            lane_q.push_back(Scheduled { at, seq, payload });
        } else {
            self.heap.push(Entry(Scheduled { at, seq, payload }));
        }
    }

    /// The `(at, seq)` key of the earliest pending event, with the
    /// container it lives in (`Some(lane)` or `None` for the heap).
    fn min_key(&self) -> Option<(SimTime, u64, Option<usize>)> {
        let mut best_key = self
            .heap
            .peek()
            .map_or(EMPTY_KEY, |e| pack_key(e.0.at, e.0.seq));
        let mut best_src = None;
        for (i, &key) in self.fronts.iter().enumerate() {
            if key < best_key {
                best_key = key;
                best_src = Some(i);
            }
        }
        if best_key == EMPTY_KEY {
            return None;
        }
        Some((
            SimTime::from_nanos((best_key >> 64) as u64),
            best_key as u64,
            best_src,
        ))
    }

    /// Removes the already-located minimum from its container.
    fn take_min(&mut self, at: SimTime, source: Option<usize>) -> Scheduled<E> {
        self.last_popped = at;
        self.len -= 1;
        match source {
            Some(lane) => {
                let ev = self.lanes[lane].pop_front().expect("lane front checked");
                self.fronts[lane] = self.lanes[lane]
                    .front()
                    .map_or(EMPTY_KEY, |f| pack_key(f.at, f.seq));
                ev
            }
            None => self.heap.pop().expect("heap top checked").0,
        }
    }

    /// Removes and returns the earliest event, advancing "now".
    pub fn pop(&mut self) -> Option<Scheduled<E>> {
        let (at, _, source) = self.min_key()?;
        Some(self.take_min(at, source))
    }

    /// Pops the earliest event only if it fires strictly before
    /// `limit` — the watermark primitive behind `pump_until`, costing a
    /// single min-scan instead of a peek-then-pop pair.
    pub fn pop_before(&mut self, limit: SimTime) -> Option<Scheduled<E>> {
        let (at, _, source) = self.min_key()?;
        if at >= limit {
            return None;
        }
        Some(self.take_min(at, source))
    }

    /// The timestamp of the next event without removing it.
    #[must_use]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.min_key().map(|(at, _, _)| at)
    }

    /// Number of pending events across every lane and the heap.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The timestamp of the most recently popped event.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.last_popped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimSpan;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(30), 3);
        q.push(SimTime::from_nanos(10), 1);
        q.push(SimTime::from_nanos(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(5);
        for i in 0..10 {
            q.push(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn now_tracks_last_pop() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(7), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_nanos(7));
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(3), "x");
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(3)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn empty_queue_behaviour() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.pop().is_none());
        assert!(q.peek_time().is_none());
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(10), 1);
        q.push(SimTime::from_nanos(40), 4);
        assert_eq!(q.pop().unwrap().payload, 1);
        // Push between the pops; still after "now".
        q.push(q.now() + SimSpan::from_nanos(5), 2);
        q.push(q.now() + SimSpan::from_nanos(6), 3);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec![2, 3, 4]);
    }

    #[test]
    fn calendar_pops_in_time_order_across_containers() {
        let mut c = Calendar::new(2);
        c.push_lane(0, SimTime::from_nanos(30), 3);
        c.push(SimTime::from_nanos(10), 1); // heap
        c.push_lane(1, SimTime::from_nanos(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| c.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec![1, 2, 3]);
        assert!(c.is_empty());
    }

    /// Equal timestamps pop FIFO (ascending seq) no matter which lane —
    /// or the heap — each event landed in.
    #[test]
    fn calendar_ties_break_fifo_across_lanes() {
        let mut c = Calendar::new(3);
        let t = SimTime::from_nanos(5);
        for i in 0..12 {
            match i % 4 {
                0 => c.push_lane(0, t, i),
                1 => c.push_lane(1, t, i),
                2 => c.push_lane(2, t, i),
                _ => c.push(t, i),
            }
        }
        let order: Vec<i32> = std::iter::from_fn(|| c.pop().map(|e| e.payload)).collect();
        assert_eq!(order, (0..12).collect::<Vec<_>>());
    }

    /// An out-of-order push to a lane must not corrupt the lane: it
    /// falls back to the heap and still pops at the right place.
    #[test]
    fn calendar_out_of_order_lane_push_falls_back_to_heap() {
        let mut c = Calendar::new(1);
        c.push_lane(0, SimTime::from_nanos(50), 5);
        c.push_lane(0, SimTime::from_nanos(20), 2); // regression: heap path
        c.push_lane(0, SimTime::from_nanos(60), 6);
        let order: Vec<i32> = std::iter::from_fn(|| c.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec![2, 5, 6]);
    }

    #[test]
    fn calendar_pop_before_respects_watermark() {
        let mut c = Calendar::new(1);
        c.push_lane(0, SimTime::from_nanos(10), 1);
        c.push_lane(0, SimTime::from_nanos(20), 2);
        assert_eq!(c.pop_before(SimTime::from_nanos(20)).unwrap().payload, 1);
        assert!(c.pop_before(SimTime::from_nanos(20)).is_none());
        assert_eq!(c.len(), 1);
        assert_eq!(c.peek_time(), Some(SimTime::from_nanos(20)));
        assert_eq!(c.pop_before(SimTime::from_nanos(21)).unwrap().payload, 2);
        assert!(c.is_empty());
    }

    #[test]
    fn calendar_now_tracks_last_pop() {
        let mut c = Calendar::new(1);
        assert_eq!(c.now(), SimTime::ZERO);
        c.push_lane(0, SimTime::from_nanos(7), ());
        c.pop();
        assert_eq!(c.now(), SimTime::from_nanos(7));
        assert!(!c.is_reference());
        assert!(Calendar::<()>::reference(1).is_reference());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The calendar's pop order is bit-identical to a plain
        /// [`EventQueue`] fed the same pushes, for arbitrary
        /// interleavings of lane/heap pushes (monotone or not) and pops.
        ///
        /// Op encoding: `pops` drains that many events after each push;
        /// `lane` 3 means the heap path; times are raw nanos (ties are
        /// frequent on purpose).
        #[test]
        fn calendar_matches_event_queue(
            ops in proptest::collection::vec((0u64..50, 0usize..4, 0u32..3), 1..200),
        ) {
            let mut cal: Calendar<usize> = Calendar::new(3);
            let mut reference: EventQueue<usize> = EventQueue::new();
            for (i, &(t, lane, pops)) in ops.iter().enumerate() {
                // Both sides floor past-times identically; feed the
                // already-floored time so debug asserts stay quiet.
                let at = SimTime::from_nanos(t).max(cal.now());
                if lane < 3 {
                    cal.push_lane(lane, at, i);
                } else {
                    cal.push(at, i);
                }
                reference.push(at, i);
                for _ in 0..pops {
                    let got = cal.pop();
                    let want = reference.pop();
                    prop_assert_eq!(got.clone().map(|e| (e.at, e.seq, e.payload)),
                                    want.map(|e| (e.at, e.seq, e.payload)));
                    if got.is_none() { break; }
                }
                prop_assert_eq!(cal.len(), reference.len());
                prop_assert_eq!(cal.peek_time(), reference.peek_time());
                prop_assert_eq!(cal.now(), reference.now());
            }
            // Drain: the full remaining order must match.
            while let Some(want) = reference.pop() {
                let got = cal.pop().expect("calendar holds the same events");
                prop_assert_eq!((got.at, got.seq, got.payload),
                                (want.at, want.seq, want.payload));
            }
            prop_assert!(cal.is_empty());
        }
    }
}
