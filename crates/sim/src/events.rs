//! The discrete-event queue.
//!
//! A simulation run is a loop over an [`EventQueue`]: pop the earliest
//! event, advance the clock to its timestamp, handle it, possibly push
//! more events. Events at the same timestamp pop in insertion order
//! (FIFO), which makes runs fully deterministic — an essential property
//! for reproducing schedules and for the determinism tests.
//!
//! ```
//! use coserve_sim::events::EventQueue;
//! use coserve_sim::time::SimTime;
//!
//! let mut q = EventQueue::new();
//! q.push(SimTime::from_nanos(20), "late");
//! q.push(SimTime::from_nanos(10), "early");
//! assert_eq!(q.pop().unwrap().payload, "early");
//! ```

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A scheduled event: a timestamp plus an arbitrary payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scheduled<E> {
    /// When the event fires.
    pub at: SimTime,
    /// Monotone insertion index; breaks timestamp ties FIFO.
    pub seq: u64,
    /// The event itself.
    pub payload: E,
}

/// Internal heap entry ordered as a min-heap on `(at, seq)`.
#[derive(Debug)]
struct Entry<E>(Scheduled<E>);

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.0.at == other.0.at && self.0.seq == other.0.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we need the earliest first.
        (other.0.at, other.0.seq).cmp(&(self.0.at, self.0.seq))
    }
}

/// A deterministic min-priority queue of timestamped events.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    last_popped: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            last_popped: SimTime::ZERO,
        }
    }

    /// Schedules `payload` to fire at `at`.
    ///
    /// Scheduling in the past (before the last popped timestamp) is a
    /// logic error in the engine; it is tolerated here (the event fires
    /// "now") but flagged in debug builds.
    pub fn push(&mut self, at: SimTime, payload: E) {
        debug_assert!(
            at >= self.last_popped,
            "event scheduled at {at} before current time {}",
            self.last_popped
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry(Scheduled {
            at: at.max(self.last_popped),
            seq,
            payload,
        }));
    }

    /// Removes and returns the earliest event, advancing the internal
    /// notion of "now".
    pub fn pop(&mut self) -> Option<Scheduled<E>> {
        let entry = self.heap.pop()?;
        self.last_popped = entry.0.at;
        Some(entry.0)
    }

    /// The timestamp of the next event without removing it.
    #[must_use]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.0.at)
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The timestamp of the most recently popped event.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.last_popped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimSpan;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(30), 3);
        q.push(SimTime::from_nanos(10), 1);
        q.push(SimTime::from_nanos(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(5);
        for i in 0..10 {
            q.push(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn now_tracks_last_pop() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(7), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_nanos(7));
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(3), "x");
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(3)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn empty_queue_behaviour() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.pop().is_none());
        assert!(q.peek_time().is_none());
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(10), 1);
        q.push(SimTime::from_nanos(40), 4);
        assert_eq!(q.pop().unwrap().payload, 1);
        // Push between the pops; still after "now".
        q.push(q.now() + SimSpan::from_nanos(5), 2);
        q.push(q.now() + SimSpan::from_nanos(6), 3);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec![2, 3, 4]);
    }
}
