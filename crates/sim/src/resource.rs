//! Serially-reusable hardware resources.
//!
//! A [`FifoResource`] models a channel that can do one thing at a time:
//! the GPU compute engine, the host↔device DMA engine, the SSD read path,
//! the CPU scheduler thread. Executors reserve slots on these channels;
//! contention between executors (e.g. two GPU executors both wanting the
//! compute engine) falls out of the reservation discipline for free.
//!
//! Reservations are granted first-come-first-served at the earliest
//! instant not before the request time. Because the engine processes
//! events in timestamp order, this reproduces FIFO hardware arbitration.

use std::fmt;

use crate::time::{SimSpan, SimTime};

/// A granted reservation on a [`FifoResource`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reservation {
    /// When the resource actually starts serving this request.
    pub start: SimTime,
    /// When the resource becomes free again.
    pub end: SimTime,
}

impl Reservation {
    /// How long the requester waited before service began.
    #[must_use]
    pub fn queueing_delay(&self, requested_at: SimTime) -> SimSpan {
        self.start.saturating_since(requested_at)
    }
}

/// A resource that serves one reservation at a time, FIFO.
///
/// ```
/// use coserve_sim::resource::FifoResource;
/// use coserve_sim::time::{SimSpan, SimTime};
///
/// let mut dma = FifoResource::new("dma");
/// let a = dma.reserve(SimTime::ZERO, SimSpan::from_millis(10));
/// let b = dma.reserve(SimTime::ZERO, SimSpan::from_millis(5));
/// assert_eq!(a.end, b.start); // b queues behind a
/// ```
#[derive(Debug, Clone)]
pub struct FifoResource {
    name: &'static str,
    next_free: SimTime,
    busy_total: SimSpan,
    reservations: u64,
}

impl FifoResource {
    /// Creates an idle resource. The name appears in diagnostics only.
    #[must_use]
    pub fn new(name: &'static str) -> Self {
        FifoResource {
            name,
            next_free: SimTime::ZERO,
            busy_total: SimSpan::ZERO,
            reservations: 0,
        }
    }

    /// The resource's diagnostic name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Reserves the resource for `duration`, starting no earlier than
    /// `not_before`. Zero-length reservations are permitted and do not
    /// delay anyone.
    pub fn reserve(&mut self, not_before: SimTime, duration: SimSpan) -> Reservation {
        let start = self.next_free.max(not_before);
        let end = start + duration;
        self.next_free = end;
        self.busy_total += duration;
        self.reservations += 1;
        Reservation { start, end }
    }

    /// The earliest instant a new reservation could start if requested
    /// at `at`.
    #[must_use]
    pub fn earliest_start(&self, at: SimTime) -> SimTime {
        self.next_free.max(at)
    }

    /// When the resource becomes idle given current commitments.
    #[must_use]
    pub fn next_free(&self) -> SimTime {
        self.next_free
    }

    /// Total committed busy time across all reservations.
    #[must_use]
    pub fn busy_total(&self) -> SimSpan {
        self.busy_total
    }

    /// How many reservations have been granted.
    #[must_use]
    pub fn reservation_count(&self) -> u64 {
        self.reservations
    }

    /// Utilization in `[0, 1]` over the window `[SimTime::ZERO, horizon]`.
    #[must_use]
    pub fn utilization(&self, horizon: SimTime) -> f64 {
        if horizon == SimTime::ZERO {
            return 0.0;
        }
        (self.busy_total.as_secs_f64() / horizon.as_secs_f64()).min(1.0)
    }
}

impl fmt::Display for FifoResource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: busy until {}, {} reservations, {} total busy",
            self.name, self.next_free, self.reservations, self.busy_total
        )
    }
}

/// A resource with `k` interchangeable servers (e.g. host CPU cores
/// performing checkpoint deserialization). A reservation is granted on
/// the earliest-available server; up to `k` reservations proceed
/// concurrently.
///
/// ```
/// use coserve_sim::resource::PooledResource;
/// use coserve_sim::time::{SimSpan, SimTime};
///
/// let mut cores = PooledResource::new("deserialize", 2);
/// let a = cores.reserve(SimTime::ZERO, SimSpan::from_millis(10));
/// let b = cores.reserve(SimTime::ZERO, SimSpan::from_millis(10));
/// let c = cores.reserve(SimTime::ZERO, SimSpan::from_millis(10));
/// assert_eq!(a.start, b.start);      // two servers run concurrently
/// assert_eq!(c.start, a.end);        // the third waits
/// ```
#[derive(Debug, Clone)]
pub struct PooledResource {
    name: &'static str,
    slots: Vec<SimTime>,
    busy_total: SimSpan,
    reservations: u64,
}

impl PooledResource {
    /// Creates an idle pool with `slots` servers.
    ///
    /// # Panics
    ///
    /// Panics if `slots` is zero.
    #[must_use]
    pub fn new(name: &'static str, slots: usize) -> Self {
        assert!(slots > 0, "pooled resource needs at least one slot");
        PooledResource {
            name,
            slots: vec![SimTime::ZERO; slots],
            busy_total: SimSpan::ZERO,
            reservations: 0,
        }
    }

    /// The pool's diagnostic name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Number of servers.
    #[must_use]
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Reserves the earliest-available server for `duration`, starting
    /// no earlier than `not_before`. Deterministic: ties pick the
    /// lowest-indexed server.
    pub fn reserve(&mut self, not_before: SimTime, duration: SimSpan) -> Reservation {
        let (idx, _) = self
            .slots
            .iter()
            .enumerate()
            .min_by_key(|&(i, &t)| (t, i))
            .expect("at least one slot");
        let start = self.slots[idx].max(not_before);
        let end = start + duration;
        self.slots[idx] = end;
        self.busy_total += duration;
        self.reservations += 1;
        Reservation { start, end }
    }

    /// Total committed busy time across all servers.
    #[must_use]
    pub fn busy_total(&self) -> SimSpan {
        self.busy_total
    }

    /// How many reservations have been granted.
    #[must_use]
    pub fn reservation_count(&self) -> u64 {
        self.reservations
    }
}

impl fmt::Display for PooledResource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} slots, {} reservations, {} total busy",
            self.name,
            self.slots.len(),
            self.reservations,
            self.busy_total
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimSpan {
        SimSpan::from_millis(v)
    }
    fn at(v: u64) -> SimTime {
        SimTime::ZERO + ms(v)
    }

    /// Regression: a reservation can be interrogated with a request
    /// timestamp *later* than its granted start (the engine replays
    /// reordered bookkeeping when batches complete out of arrival
    /// order). The delay must clamp to zero, never panic.
    #[test]
    fn queueing_delay_clamps_for_reordered_request_times() {
        let mut r = FifoResource::new("gpu");
        let first = r.reserve(at(0), ms(10)); // occupies [0, 10)
        let second = r.reserve(at(2), ms(5)); // queues: starts at 10
        assert_eq!(second.queueing_delay(at(2)), ms(8));
        // Reordered: asking with a timestamp after the granted start.
        assert_eq!(first.queueing_delay(at(7)), SimSpan::ZERO);
    }

    #[test]
    fn immediate_grant_when_idle() {
        let mut r = FifoResource::new("gpu");
        let res = r.reserve(at(5), ms(10));
        assert_eq!(res.start, at(5));
        assert_eq!(res.end, at(15));
        assert_eq!(res.queueing_delay(at(5)), SimSpan::ZERO);
    }

    #[test]
    fn queues_behind_existing_work() {
        let mut r = FifoResource::new("gpu");
        r.reserve(at(0), ms(10));
        let res = r.reserve(at(3), ms(4));
        assert_eq!(res.start, at(10));
        assert_eq!(res.end, at(14));
        assert_eq!(res.queueing_delay(at(3)), ms(7));
    }

    #[test]
    fn gap_when_requested_after_free() {
        let mut r = FifoResource::new("dma");
        r.reserve(at(0), ms(2));
        let res = r.reserve(at(10), ms(1));
        assert_eq!(res.start, at(10));
        assert_eq!(r.next_free(), at(11));
    }

    #[test]
    fn zero_duration_reservation() {
        let mut r = FifoResource::new("x");
        let res = r.reserve(at(4), SimSpan::ZERO);
        assert_eq!(res.start, res.end);
        let next = r.reserve(at(4), ms(1));
        assert_eq!(next.start, at(4));
    }

    #[test]
    fn accounting() {
        let mut r = FifoResource::new("x");
        r.reserve(at(0), ms(4));
        r.reserve(at(0), ms(6));
        assert_eq!(r.busy_total(), ms(10));
        assert_eq!(r.reservation_count(), 2);
        assert!((r.utilization(at(20)) - 0.5).abs() < 1e-9);
        assert_eq!(r.utilization(SimTime::ZERO), 0.0);
        assert_eq!(r.earliest_start(at(3)), at(10));
        assert!(r.to_string().contains("x: busy until"));
    }

    #[test]
    fn utilization_caps_at_one() {
        let mut r = FifoResource::new("x");
        r.reserve(at(0), ms(100));
        assert_eq!(r.utilization(at(10)), 1.0);
    }
}

#[cfg(test)]
mod pooled_tests {
    use super::*;

    fn ms(v: u64) -> SimSpan {
        SimSpan::from_millis(v)
    }
    fn at(v: u64) -> SimTime {
        SimTime::ZERO + ms(v)
    }

    #[test]
    fn k_reservations_run_concurrently() {
        let mut p = PooledResource::new("cores", 3);
        let starts: Vec<SimTime> = (0..3).map(|_| p.reserve(at(0), ms(10)).start).collect();
        assert!(starts.iter().all(|&s| s == at(0)));
        let fourth = p.reserve(at(0), ms(10));
        assert_eq!(fourth.start, at(10));
        assert_eq!(p.slot_count(), 3);
        assert_eq!(p.reservation_count(), 4);
        assert_eq!(p.busy_total(), ms(40));
    }

    #[test]
    fn later_requests_use_freed_slots() {
        let mut p = PooledResource::new("cores", 2);
        p.reserve(at(0), ms(10));
        p.reserve(at(0), ms(4));
        // Slot 1 frees at 4ms; a request at 5ms starts immediately.
        let r = p.reserve(at(5), ms(1));
        assert_eq!(r.start, at(5));
    }

    #[test]
    fn single_slot_behaves_like_fifo() {
        let mut p = PooledResource::new("one", 1);
        let a = p.reserve(at(0), ms(5));
        let b = p.reserve(at(0), ms(5));
        assert_eq!(b.start, a.end);
        assert!(p.to_string().contains("one: 1 slots"));
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_slots_panics() {
        let _ = PooledResource::new("none", 0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// At no point do more than `k` pooled reservations overlap.
        #[test]
        fn pool_never_oversubscribes(
            slots in 1usize..5,
            reqs in proptest::collection::vec((0u64..1_000, 1u64..100), 1..40),
        ) {
            let mut pool = PooledResource::new("p", slots);
            let mut reqs = reqs;
            reqs.sort_by_key(|&(t, _)| t);
            let mut intervals: Vec<(SimTime, SimTime)> = Vec::new();
            for (t, d) in reqs {
                let res = pool.reserve(SimTime::from_nanos(t), SimSpan::from_nanos(d));
                prop_assert!(res.start >= SimTime::from_nanos(t));
                intervals.push((res.start, res.end));
            }
            // Check overlap count at every interval start.
            for &(s, _) in &intervals {
                let overlapping = intervals
                    .iter()
                    .filter(|&&(a, b)| a <= s && s < b)
                    .count();
                prop_assert!(overlapping <= slots, "{} overlap {} slots", overlapping, slots);
            }
        }

        /// Reservations granted in request order never overlap and never
        /// start before requested.
        #[test]
        fn reservations_are_disjoint_and_causal(
            reqs in proptest::collection::vec((0u64..1_000, 0u64..100), 1..50)
        ) {
            let mut r = FifoResource::new("p");
            let mut last_end = SimTime::ZERO;
            // Requests must arrive in nondecreasing time order, as the
            // engine guarantees.
            let mut reqs = reqs;
            reqs.sort_by_key(|&(t, _)| t);
            for (t, d) in reqs {
                let not_before = SimTime::from_nanos(t);
                let res = r.reserve(not_before, SimSpan::from_nanos(d));
                prop_assert!(res.start >= not_before);
                prop_assert!(res.start >= last_end);
                prop_assert_eq!(res.end, res.start + SimSpan::from_nanos(d));
                last_end = res.end;
            }
        }
    }
}
