//! Device profiles.
//!
//! A [`DeviceProfile`] bundles everything the engine needs to know about
//! a target machine: the memory architecture (NUMA vs UMA), memory
//! capacities, data-path costs, and a kernel table mapping each
//! (architecture × processor) pair to its ground-truth latency and
//! memory models. The two presets correspond to the paper's Table 1:
//! an RTX 3080 Ti + Xeon Silver 4214R NUMA box and an Apple M2 UMA box.
//!
//! Presets describe *hardware only*; kernel entries for concrete expert
//! architectures are installed by higher layers (the model crate knows
//! what a ResNet101 is, this crate does not).

use std::collections::BTreeMap;
use std::fmt;

use crate::compute::{LatencyModel, MemoryModel};
use crate::memory::{Bytes, MemoryTier};
use crate::time::SimSpan;
use crate::transfer::{TransferCosts, TransferRoute, TransferStages};

/// Identifies an expert *architecture* (e.g. ResNet101). All experts of
/// one architecture share compute cost and footprint; the paper profiles
/// each architecture once (§4.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ArchId(pub u32);

impl fmt::Display for ArchId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "arch#{}", self.0)
    }
}

/// Which processor executes a batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ProcessorKind {
    /// The device's GPU (or the GPU cores of a UMA SoC).
    Gpu,
    /// The device's CPU.
    Cpu,
}

impl ProcessorKind {
    /// Both processor kinds, in a stable order.
    pub const ALL: [ProcessorKind; 2] = [ProcessorKind::Gpu, ProcessorKind::Cpu];

    /// The memory tier this processor executes from.
    #[must_use]
    pub fn home_tier(self) -> MemoryTier {
        match self {
            ProcessorKind::Gpu => MemoryTier::Gpu,
            ProcessorKind::Cpu => MemoryTier::Cpu,
        }
    }
}

impl fmt::Display for ProcessorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProcessorKind::Gpu => write!(f, "GPU"),
            ProcessorKind::Cpu => write!(f, "CPU"),
        }
    }
}

/// Memory architecture of the device (paper Figure 1 distinguishes both).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemoryArch {
    /// Discrete GPU with its own memory, connected over PCIe.
    Numa,
    /// Unified memory shared by CPU and GPU (e.g. Apple silicon).
    Uma,
}

impl fmt::Display for MemoryArch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemoryArch::Numa => write!(f, "NUMA"),
            MemoryArch::Uma => write!(f, "UMA"),
        }
    }
}

/// Ground-truth cost models for one (architecture × processor) pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelProfile {
    /// Batch execution latency.
    pub latency: LatencyModel,
    /// Memory footprint.
    pub memory: MemoryModel,
}

/// A complete description of a target device.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceProfile {
    name: String,
    memory_arch: MemoryArch,
    gpu_memory: Bytes,
    gpu_reserved: Bytes,
    cpu_memory: Bytes,
    cpu_reserved: Bytes,
    ssd_name: String,
    executor_overhead: Bytes,
    host_work_slots: usize,
    transfer: TransferCosts,
    kernels: BTreeMap<(ArchId, ProcessorKind), KernelProfile>,
}

impl DeviceProfile {
    /// Starts a builder for a custom device.
    #[must_use]
    pub fn builder(name: impl Into<String>, memory_arch: MemoryArch) -> DeviceProfileBuilder {
        DeviceProfileBuilder::new(name, memory_arch)
    }

    /// The paper's NUMA evaluation box: NVIDIA RTX 3080 Ti (12 GB) +
    /// Intel Xeon Silver 4214R (16 GB) + MICRON MTFDDAK480TDS SSD
    /// (530 MB/s reads). Kernel entries are installed by callers.
    #[must_use]
    pub fn numa_rtx3080ti() -> DeviceProfile {
        DeviceProfile::builder("NUMA (RTX 3080 Ti + Xeon 4214R)", MemoryArch::Numa)
            .gpu_memory(Bytes::gib(12), Bytes::mib(1536))
            .cpu_memory(Bytes::gib(16), Bytes::gib(2))
            .executor_overhead(Bytes::mib(384))
            .host_work_slots(4)
            .ssd("MICRON MTFDDAK480TDS", 530.0)
            .transfer(TransferCosts {
                ssd_read_mbps: 530.0,
                deserialize_mbps: 300.0,
                ssd_fixed: SimSpan::from_millis(2),
                h2d_mbps: 12_000.0,
                reorg_mbps: 8_000.0,
                h2d_fixed: SimSpan::from_millis(3),
                d2h_mbps: 12_000.0,
                d2h_fixed: SimSpan::from_millis(1),
            })
            .build()
    }

    /// The paper's UMA evaluation box: Apple M2 with 24 GB unified
    /// memory and an APPLE SSD AP0512Z (~3000 MB/s reads). There is no
    /// physical host→device copy, but the framework still reorganizes
    /// data when moving tensors to the GPU backend — the cost behind
    /// Figure 1's UMA columns.
    #[must_use]
    pub fn uma_apple_m2() -> DeviceProfile {
        DeviceProfile::builder("UMA (Apple M2)", MemoryArch::Uma)
            .unified_memory(Bytes::gib(24), Bytes::gib(4))
            .executor_overhead(Bytes::mib(512))
            .host_work_slots(2)
            .ssd("APPLE SSD AP0512Z", 3000.0)
            .transfer(TransferCosts {
                ssd_read_mbps: 3000.0,
                deserialize_mbps: 900.0,
                ssd_fixed: SimSpan::from_millis(1),
                h2d_mbps: f64::INFINITY,
                reorg_mbps: 2_600.0,
                h2d_fixed: SimSpan::from_millis(2),
                d2h_mbps: f64::INFINITY,
                d2h_fixed: SimSpan::ZERO,
            })
            .build()
    }

    /// Human-readable device name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// NUMA or UMA.
    #[must_use]
    pub fn memory_arch(&self) -> MemoryArch {
        self.memory_arch
    }

    /// Total GPU memory (on UMA: the unified pool).
    #[must_use]
    pub fn gpu_memory(&self) -> Bytes {
        self.gpu_memory
    }

    /// Total CPU memory (on UMA: the same unified pool).
    #[must_use]
    pub fn cpu_memory(&self) -> Bytes {
        self.cpu_memory
    }

    /// GPU memory available to the serving system after framework and
    /// context overheads.
    #[must_use]
    pub fn gpu_usable(&self) -> Bytes {
        self.gpu_memory.saturating_sub(self.gpu_reserved)
    }

    /// CPU memory available to the serving system after OS and runtime
    /// overheads. On UMA devices the unified pool is reported through
    /// [`DeviceProfile::gpu_usable`] and this returns the same value.
    #[must_use]
    pub fn cpu_usable(&self) -> Bytes {
        self.cpu_memory.saturating_sub(self.cpu_reserved)
    }

    /// SSD model string (Table 1).
    #[must_use]
    pub fn ssd_name(&self) -> &str {
        &self.ssd_name
    }

    /// Fixed memory cost of each inference-executor process (framework
    /// context, allocator arenas). Creating more executors fragments
    /// usable memory by this much per executor — the overhead behind
    /// the paper's observation that too many executors degrade
    /// throughput (Figure 17).
    #[must_use]
    pub fn executor_overhead(&self) -> Bytes {
        self.executor_overhead
    }

    /// How many checkpoint deserializations / data reorganizations the
    /// host CPU can run concurrently (roughly, performance cores
    /// available for framework work). Additional executors beyond this
    /// queue for the host-work pool.
    #[must_use]
    pub fn host_work_slots(&self) -> usize {
        self.host_work_slots
    }

    /// The device's transfer cost table.
    #[must_use]
    pub fn transfer(&self) -> &TransferCosts {
        self.transfer_ref()
    }

    fn transfer_ref(&self) -> &TransferCosts {
        &self.transfer
    }

    /// Installs (or replaces) the kernel profile for `(arch, proc)`.
    pub fn set_kernel(&mut self, arch: ArchId, proc: ProcessorKind, profile: KernelProfile) {
        self.kernels.insert((arch, proc), profile);
    }

    /// The kernel profile for `(arch, proc)`, if installed.
    #[must_use]
    pub fn kernel(&self, arch: ArchId, proc: ProcessorKind) -> Option<&KernelProfile> {
        self.kernels.get(&(arch, proc))
    }

    /// All installed kernel entries in a stable order.
    pub fn kernels(&self) -> impl Iterator<Item = (ArchId, ProcessorKind, &KernelProfile)> {
        self.kernels.iter().map(|(&(a, p), k)| (a, p, k))
    }

    /// Architectures with at least one installed kernel, deduplicated,
    /// in a stable order.
    #[must_use]
    pub fn arch_ids(&self) -> Vec<ArchId> {
        let mut ids: Vec<ArchId> = self.kernels.keys().map(|&(a, _)| a).collect();
        ids.dedup();
        ids
    }

    /// Stage durations for moving `bytes` along `route` on this device.
    #[must_use]
    pub fn transfer_stages(&self, bytes: Bytes, route: TransferRoute) -> TransferStages {
        self.transfer.stages(bytes, route)
    }

    /// End-to-end duration for moving `bytes` along `route`.
    #[must_use]
    pub fn transfer_duration(&self, bytes: Bytes, route: TransferRoute) -> SimSpan {
        self.transfer.duration(bytes, route)
    }

    /// Whether this device demotes evicted GPU experts into a CPU
    /// staging cache (NUMA) or drops them (UMA, where the paper's
    /// baseline loads directly from SSD).
    #[must_use]
    pub fn has_staging_cache(&self) -> bool {
        self.memory_arch == MemoryArch::Numa
    }
}

impl fmt::Display for DeviceProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] GPU {} (usable {}), CPU {} (usable {}), SSD {}",
            self.name,
            self.memory_arch,
            self.gpu_memory,
            self.gpu_usable(),
            self.cpu_memory,
            self.cpu_usable(),
            self.ssd_name
        )
    }
}

/// Builder for [`DeviceProfile`].
#[derive(Debug)]
pub struct DeviceProfileBuilder {
    name: String,
    memory_arch: MemoryArch,
    gpu_memory: Bytes,
    gpu_reserved: Bytes,
    cpu_memory: Bytes,
    cpu_reserved: Bytes,
    ssd_name: String,
    executor_overhead: Bytes,
    host_work_slots: usize,
    transfer: Option<TransferCosts>,
    kernels: BTreeMap<(ArchId, ProcessorKind), KernelProfile>,
}

impl DeviceProfileBuilder {
    fn new(name: impl Into<String>, memory_arch: MemoryArch) -> Self {
        DeviceProfileBuilder {
            name: name.into(),
            memory_arch,
            gpu_memory: Bytes::ZERO,
            gpu_reserved: Bytes::ZERO,
            cpu_memory: Bytes::ZERO,
            cpu_reserved: Bytes::ZERO,
            ssd_name: "generic-ssd".to_string(),
            executor_overhead: Bytes::ZERO,
            host_work_slots: 4,
            transfer: None,
            kernels: BTreeMap::new(),
        }
    }

    /// Sets discrete GPU memory and the framework reservation inside it.
    #[must_use]
    pub fn gpu_memory(mut self, total: Bytes, reserved: Bytes) -> Self {
        self.gpu_memory = total;
        self.gpu_reserved = reserved;
        self
    }

    /// Sets CPU memory and the OS/runtime reservation inside it.
    #[must_use]
    pub fn cpu_memory(mut self, total: Bytes, reserved: Bytes) -> Self {
        self.cpu_memory = total;
        self.cpu_reserved = reserved;
        self
    }

    /// Configures a unified memory pool shared by CPU and GPU (UMA).
    /// Both `gpu_memory` and `cpu_memory` report the same pool.
    #[must_use]
    pub fn unified_memory(mut self, total: Bytes, reserved: Bytes) -> Self {
        self.gpu_memory = total;
        self.gpu_reserved = reserved;
        self.cpu_memory = total;
        self.cpu_reserved = reserved;
        self
    }

    /// Names the SSD (for Table 1) and records its raw read bandwidth.
    /// The bandwidth also overwrites `transfer.ssd_read_mbps` if a
    /// transfer table was already supplied.
    #[must_use]
    pub fn ssd(mut self, name: impl Into<String>, read_mbps: f64) -> Self {
        self.ssd_name = name.into();
        if let Some(t) = &mut self.transfer {
            t.ssd_read_mbps = read_mbps;
        }
        self
    }

    /// Sets the per-executor fixed memory overhead.
    #[must_use]
    pub fn executor_overhead(mut self, overhead: Bytes) -> Self {
        self.executor_overhead = overhead;
        self
    }

    /// Sets the host-CPU concurrency for framework work.
    ///
    /// # Panics
    ///
    /// Panics if `slots` is zero.
    #[must_use]
    pub fn host_work_slots(mut self, slots: usize) -> Self {
        assert!(slots > 0, "host work needs at least one slot");
        self.host_work_slots = slots;
        self
    }

    /// Sets the transfer cost table.
    #[must_use]
    pub fn transfer(mut self, costs: TransferCosts) -> Self {
        self.transfer = Some(costs);
        self
    }

    /// Installs a kernel profile.
    #[must_use]
    pub fn kernel(mut self, arch: ArchId, proc: ProcessorKind, profile: KernelProfile) -> Self {
        self.kernels.insert((arch, proc), profile);
        self
    }

    /// Finishes the profile.
    ///
    /// # Panics
    ///
    /// Panics if no transfer cost table was supplied — a device without
    /// data paths cannot swap experts, which is the entire premise.
    #[must_use]
    pub fn build(self) -> DeviceProfile {
        DeviceProfile {
            name: self.name,
            memory_arch: self.memory_arch,
            gpu_memory: self.gpu_memory,
            gpu_reserved: self.gpu_reserved,
            cpu_memory: self.cpu_memory,
            cpu_reserved: self.cpu_reserved,
            ssd_name: self.ssd_name,
            executor_overhead: self.executor_overhead,
            host_work_slots: self.host_work_slots,
            transfer: self.transfer.expect("device profile needs transfer costs"),
            kernels: self.kernels,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_kernel() -> KernelProfile {
        KernelProfile {
            latency: LatencyModel::linear(8.0, 1.1).with_saturation(16, 0.5),
            memory: MemoryModel::new(Bytes::mib(200), Bytes::mib(178), Bytes::mib(260)),
        }
    }

    #[test]
    fn numa_preset_matches_table1() {
        let d = DeviceProfile::numa_rtx3080ti();
        assert_eq!(d.memory_arch(), MemoryArch::Numa);
        assert_eq!(d.gpu_memory(), Bytes::gib(12));
        assert_eq!(d.cpu_memory(), Bytes::gib(16));
        assert!(d.ssd_name().contains("MICRON"));
        assert!(d.has_staging_cache());
        assert!(d.gpu_usable() < d.gpu_memory());
    }

    #[test]
    fn uma_preset_matches_table1() {
        let d = DeviceProfile::uma_apple_m2();
        assert_eq!(d.memory_arch(), MemoryArch::Uma);
        assert_eq!(d.gpu_memory(), Bytes::gib(24));
        assert_eq!(d.gpu_memory(), d.cpu_memory(), "unified pool");
        assert!(!d.has_staging_cache());
        assert!(d.ssd_name().contains("APPLE"));
    }

    #[test]
    fn uma_ssd_is_faster_but_still_pays_reorg() {
        let numa = DeviceProfile::numa_rtx3080ti();
        let uma = DeviceProfile::uma_apple_m2();
        let b = Bytes::new(178_000_000);
        let numa_load = numa.transfer_duration(b, TransferRoute::SsdToGpu);
        let uma_load = uma.transfer_duration(b, TransferRoute::SsdToGpu);
        assert!(uma_load < numa_load, "UMA SSD is ~6x faster");
        assert!(
            uma_load > SimSpan::from_millis(100),
            "UMA still pays deserialize+reorg: {uma_load}"
        );
    }

    #[test]
    fn kernel_installation_and_lookup() {
        let mut d = DeviceProfile::numa_rtx3080ti();
        let arch = ArchId(1);
        assert!(d.kernel(arch, ProcessorKind::Gpu).is_none());
        d.set_kernel(arch, ProcessorKind::Gpu, sample_kernel());
        let k = d.kernel(arch, ProcessorKind::Gpu).unwrap();
        assert!((k.latency.latency_ms(1) - 9.1).abs() < 1e-9);
        assert_eq!(d.arch_ids(), vec![arch]);
        assert_eq!(d.kernels().count(), 1);
    }

    #[test]
    fn arch_ids_deduplicates_processors() {
        let mut d = DeviceProfile::numa_rtx3080ti();
        d.set_kernel(ArchId(3), ProcessorKind::Gpu, sample_kernel());
        d.set_kernel(ArchId(3), ProcessorKind::Cpu, sample_kernel());
        d.set_kernel(ArchId(7), ProcessorKind::Gpu, sample_kernel());
        assert_eq!(d.arch_ids(), vec![ArchId(3), ArchId(7)]);
    }

    #[test]
    fn builder_custom_device() {
        let d = DeviceProfile::builder("edge-box", MemoryArch::Numa)
            .gpu_memory(Bytes::gib(8), Bytes::gib(1))
            .cpu_memory(Bytes::gib(32), Bytes::gib(2))
            .ssd("test-ssd", 1000.0)
            .transfer(TransferCosts {
                ssd_read_mbps: 1000.0,
                deserialize_mbps: 500.0,
                ssd_fixed: SimSpan::ZERO,
                h2d_mbps: 10_000.0,
                reorg_mbps: 5_000.0,
                h2d_fixed: SimSpan::ZERO,
                d2h_mbps: 10_000.0,
                d2h_fixed: SimSpan::ZERO,
            })
            .kernel(ArchId(0), ProcessorKind::Cpu, sample_kernel())
            .build();
        assert_eq!(d.gpu_usable(), Bytes::gib(7));
        assert_eq!(d.cpu_usable(), Bytes::gib(30));
        assert!(d.kernel(ArchId(0), ProcessorKind::Cpu).is_some());
        assert!(d.to_string().contains("edge-box"));
    }

    #[test]
    #[should_panic(expected = "transfer costs")]
    fn builder_without_transfer_panics() {
        let _ = DeviceProfile::builder("broken", MemoryArch::Uma).build();
    }

    #[test]
    fn processor_home_tiers() {
        assert_eq!(ProcessorKind::Gpu.home_tier(), MemoryTier::Gpu);
        assert_eq!(ProcessorKind::Cpu.home_tier(), MemoryTier::Cpu);
        assert_eq!(ProcessorKind::Gpu.to_string(), "GPU");
        assert_eq!(MemoryArch::Numa.to_string(), "NUMA");
        assert_eq!(ArchId(5).to_string(), "arch#5");
    }
}
