//! Expert movement costs between memory tiers.
//!
//! Switching an expert is the paper's central cost (Figure 1: >90 % of
//! inference latency when loading from SSD). The cost of a move has two
//! physical parts plus two framework parts:
//!
//! * reading bytes off the SSD (`ssd_read`),
//! * deserializing the checkpoint into framework tensors (`deserialize`,
//!   the reason effective SSD load bandwidth is far below the device's
//!   raw read bandwidth),
//! * copying host→device over PCIe (`h2d`; absent on UMA devices), and
//! * reorganizing data for the target processor (`reorg` — the paper
//!   observes that even UMA devices pay >60 % switching overhead,
//!   "possibly due to data reorganization by AI frameworks").
//!
//! A transfer occupies two serially-reusable channels: the SSD read path
//! and the host↔device path. [`TransferCosts::stages`] exposes the split
//! so the engine can reserve each channel separately (an SSD read for
//! executor A can overlap a PCIe copy for executor B).

use std::fmt;

use crate::memory::{Bytes, MemoryTier};
use crate::time::SimSpan;

/// A direction of expert movement between tiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransferRoute {
    /// SSD → CPU memory (read + deserialize).
    SsdToCpu,
    /// CPU memory → GPU memory (copy + reorganize).
    CpuToGpu,
    /// SSD → GPU memory (the two stages back to back).
    SsdToGpu,
    /// GPU memory → CPU memory (demotion into the staging cache).
    GpuToCpu,
}

impl TransferRoute {
    /// The route that loads an expert currently resident in `tier` into
    /// GPU memory.
    ///
    /// # Panics
    ///
    /// Panics when `tier` is already [`MemoryTier::Gpu`] — there is
    /// nothing to transfer.
    #[must_use]
    pub fn into_gpu_from(tier: MemoryTier) -> TransferRoute {
        match tier {
            MemoryTier::Cpu => TransferRoute::CpuToGpu,
            MemoryTier::Ssd => TransferRoute::SsdToGpu,
            MemoryTier::Gpu => panic!("expert is already in GPU memory"),
        }
    }

    /// The route that loads an expert currently resident in `tier` into
    /// CPU memory for CPU-side inference.
    ///
    /// Experts already in CPU memory (or demoted from GPU on a UMA
    /// device) need no transfer, represented as `None`.
    #[must_use]
    pub fn into_cpu_from(tier: MemoryTier) -> Option<TransferRoute> {
        match tier {
            MemoryTier::Ssd => Some(TransferRoute::SsdToCpu),
            MemoryTier::Cpu | MemoryTier::Gpu => None,
        }
    }
}

impl fmt::Display for TransferRoute {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransferRoute::SsdToCpu => write!(f, "SSD→CPU"),
            TransferRoute::CpuToGpu => write!(f, "CPU→GPU"),
            TransferRoute::SsdToGpu => write!(f, "SSD→GPU"),
            TransferRoute::GpuToCpu => write!(f, "GPU→CPU"),
        }
    }
}

/// The per-channel split of a transfer's duration.
///
/// The split matters for parallelism: the SSD read path and the DMA
/// engine are device-wide serial resources, while deserialization and
/// data reorganization are *per-process* CPU work — multiple executors
/// overlap their `local` legs freely, which is a large part of why
/// parallel executors pay off (Samba-CoE Parallel, CoServe's multiple
/// GPU executors).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransferStages {
    /// Time on the shared SSD read path (raw read).
    pub ssd: SimSpan,
    /// Per-executor framework work (deserialize + reorganize); overlaps
    /// across executors.
    pub local: SimSpan,
    /// Time on the shared host↔device DMA engine (raw copy).
    pub dma: SimSpan,
}

impl TransferStages {
    /// End-to-end duration when the stages run back to back.
    #[must_use]
    pub fn total(&self) -> SimSpan {
        self.ssd + self.local + self.dma
    }
}

/// Bandwidths and fixed overheads describing a device's data paths.
///
/// Bandwidths are in MB/s (decimal megabytes, matching vendor spec
/// sheets); `f64::INFINITY` disables a term (e.g. UMA devices have no
/// physical host→device copy).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransferCosts {
    /// Raw SSD read bandwidth.
    pub ssd_read_mbps: f64,
    /// Framework deserialization bandwidth (checkpoint → tensors).
    pub deserialize_mbps: f64,
    /// Fixed overhead per SSD read (file open, dispatch).
    pub ssd_fixed: SimSpan,
    /// Host→device copy bandwidth (PCIe); infinite on UMA.
    pub h2d_mbps: f64,
    /// Framework data-reorganization bandwidth for the target processor.
    pub reorg_mbps: f64,
    /// Fixed overhead per host→device move.
    pub h2d_fixed: SimSpan,
    /// Device→host copy bandwidth (demotion); infinite on UMA.
    pub d2h_mbps: f64,
    /// Fixed overhead per device→host move.
    pub d2h_fixed: SimSpan,
}

/// `bytes` at `mbps` (decimal MB/s) as a span; infinite bandwidth is free.
fn span_at(bytes: Bytes, mbps: f64) -> SimSpan {
    if !mbps.is_finite() || mbps <= 0.0 {
        // Non-positive bandwidth would be a configuration bug; treat it
        // like infinity rather than dividing by zero. Infinite bandwidth
        // legitimately means "this path does not exist on this device".
        debug_assert!(mbps.is_infinite(), "non-positive transfer bandwidth");
        return SimSpan::ZERO;
    }
    SimSpan::from_secs_f64(bytes.get() as f64 / (mbps * 1e6))
}

impl TransferCosts {
    /// The per-channel stage durations for moving `bytes` along `route`.
    #[must_use]
    pub fn stages(&self, bytes: Bytes, route: TransferRoute) -> TransferStages {
        let read = || span_at(bytes, self.ssd_read_mbps) + self.ssd_fixed;
        let deserialize = || span_at(bytes, self.deserialize_mbps);
        let reorg = || span_at(bytes, self.reorg_mbps);
        let copy = || span_at(bytes, self.h2d_mbps) + self.h2d_fixed;
        match route {
            TransferRoute::SsdToCpu => TransferStages {
                ssd: read(),
                local: deserialize(),
                dma: SimSpan::ZERO,
            },
            TransferRoute::CpuToGpu => TransferStages {
                ssd: SimSpan::ZERO,
                local: reorg(),
                dma: copy(),
            },
            TransferRoute::SsdToGpu => TransferStages {
                ssd: read(),
                local: deserialize() + reorg(),
                dma: copy(),
            },
            TransferRoute::GpuToCpu => TransferStages {
                ssd: SimSpan::ZERO,
                local: SimSpan::ZERO,
                dma: span_at(bytes, self.d2h_mbps) + self.d2h_fixed,
            },
        }
    }

    /// End-to-end duration of moving `bytes` along `route`.
    #[must_use]
    pub fn duration(&self, bytes: Bytes, route: TransferRoute) -> SimSpan {
        self.stages(bytes, route).total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn costs() -> TransferCosts {
        TransferCosts {
            ssd_read_mbps: 530.0,
            deserialize_mbps: 300.0,
            ssd_fixed: SimSpan::from_millis(2),
            h2d_mbps: 12_000.0,
            reorg_mbps: 8_000.0,
            h2d_fixed: SimSpan::from_millis(3),
            d2h_mbps: 12_000.0,
            d2h_fixed: SimSpan::from_millis(1),
        }
    }

    #[test]
    fn ssd_to_gpu_is_sum_of_stages() {
        let c = costs();
        let b = Bytes::new(178_000_000);
        let full = c.duration(b, TransferRoute::SsdToGpu);
        let cpu = c.duration(b, TransferRoute::SsdToCpu);
        let gpu = c.duration(b, TransferRoute::CpuToGpu);
        assert_eq!(full, cpu + gpu);
    }

    #[test]
    fn stage_split_matches_channels() {
        let c = costs();
        let b = Bytes::new(100_000_000);
        let st = c.stages(b, TransferRoute::SsdToGpu);
        assert!(st.ssd > SimSpan::ZERO);
        assert!(st.local > SimSpan::ZERO);
        assert!(st.dma > SimSpan::ZERO);
        assert_eq!(st.total(), st.ssd + st.local + st.dma);
        let cpu_only = c.stages(b, TransferRoute::SsdToCpu);
        assert_eq!(cpu_only.dma, SimSpan::ZERO);
        let gpu_only = c.stages(b, TransferRoute::CpuToGpu);
        assert_eq!(gpu_only.ssd, SimSpan::ZERO);
    }

    #[test]
    fn deserialize_dominates_raw_read() {
        // 178 MB at 530 MB/s raw is ~336 ms; framework deserialization
        // (the per-executor `local` leg) pushes the end-to-end load
        // towards a second — the effect behind Figure 1's 98.9 %.
        let c = costs();
        let st = c.stages(Bytes::new(178_000_000), TransferRoute::SsdToCpu);
        assert!(st.local > st.ssd, "deserialize outweighs the raw read");
        assert!(st.total() > SimSpan::from_millis(900));
        assert!(st.total() < SimSpan::from_millis(1000));
    }

    #[test]
    fn infinite_bandwidth_is_free() {
        let mut c = costs();
        c.h2d_mbps = f64::INFINITY;
        c.h2d_fixed = SimSpan::ZERO;
        c.reorg_mbps = f64::INFINITY;
        let st = c.stages(Bytes::new(1_000_000), TransferRoute::CpuToGpu);
        assert_eq!(st.total(), SimSpan::ZERO);
    }

    #[test]
    fn demotion_is_cheap() {
        let c = costs();
        let b = Bytes::new(178_000_000);
        let demote = c.duration(b, TransferRoute::GpuToCpu);
        let promote = c.duration(b, TransferRoute::CpuToGpu);
        assert!(demote < promote, "demotion skips reorganization");
    }

    #[test]
    fn zero_bytes_costs_only_fixed_overheads() {
        let c = costs();
        assert_eq!(
            c.duration(Bytes::ZERO, TransferRoute::SsdToGpu),
            SimSpan::from_millis(5)
        );
    }

    #[test]
    fn route_helpers() {
        assert_eq!(
            TransferRoute::into_gpu_from(MemoryTier::Ssd),
            TransferRoute::SsdToGpu
        );
        assert_eq!(
            TransferRoute::into_gpu_from(MemoryTier::Cpu),
            TransferRoute::CpuToGpu
        );
        assert_eq!(
            TransferRoute::into_cpu_from(MemoryTier::Ssd),
            Some(TransferRoute::SsdToCpu)
        );
        assert_eq!(TransferRoute::into_cpu_from(MemoryTier::Cpu), None);
        assert_eq!(TransferRoute::SsdToGpu.to_string(), "SSD→GPU");
    }

    #[test]
    #[should_panic(expected = "already in GPU")]
    fn into_gpu_from_gpu_panics() {
        let _ = TransferRoute::into_gpu_from(MemoryTier::Gpu);
    }

    #[test]
    fn cost_monotone_in_bytes() {
        let c = costs();
        let small = c.duration(Bytes::mib(10), TransferRoute::SsdToGpu);
        let large = c.duration(Bytes::mib(100), TransferRoute::SsdToGpu);
        assert!(large > small);
    }
}
