//! # coserve-sim
//!
//! Deterministic discrete-event simulation substrate for the CoServe
//! reproduction (ASPLOS '25).
//!
//! The CoServe paper evaluates a serving system on two physical edge
//! devices. This crate supplies the *hardware* those experiments need,
//! as a simulator: a nanosecond clock and event queue, serially-reusable
//! channels (GPU compute, DMA, SSD), byte-accurate memory pools, a
//! transfer-cost model for moving experts between tiers, execution cost
//! models (`K·n + B` with a saturation knee), and device profiles
//! matching the paper's Table 1.
//!
//! Everything is deterministic: the same configuration produces the same
//! run, bit for bit, which is what makes the figure harness and the
//! scheduling comparisons meaningful.
//!
//! ```
//! use coserve_sim::prelude::*;
//!
//! let device = DeviceProfile::numa_rtx3080ti();
//! let weights = Bytes::new(178_000_000); // a ResNet101 checkpoint
//! let load = device.transfer_duration(weights, TransferRoute::SsdToGpu);
//! assert!(load > SimSpan::from_millis(500)); // switching is expensive
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod compute;
pub mod device;
pub mod events;
pub mod memory;
pub mod network;
pub mod resource;
pub mod rng;
pub mod time;
pub mod transfer;

/// Convenient re-exports of the most commonly used items.
pub mod prelude {
    pub use crate::compute::{LatencyModel, MemoryModel};
    pub use crate::device::{ArchId, DeviceProfile, KernelProfile, MemoryArch, ProcessorKind};
    pub use crate::events::{Calendar, EventQueue};
    pub use crate::memory::{AllocError, Bytes, MemoryPool, MemoryTier};
    pub use crate::network::{Fabric, LinkProfile, NodeId};
    pub use crate::resource::{FifoResource, Reservation};
    pub use crate::rng::SimRng;
    pub use crate::time::{SimSpan, SimTime};
    pub use crate::transfer::{TransferCosts, TransferRoute, TransferStages};
}

pub use prelude::*;
