//! The inter-node network fabric.
//!
//! Single-device CoServe moves experts along intra-node routes
//! (SSD→CPU→GPU, [`crate::transfer`]). Scaling *out* adds a second
//! cost surface: moving request activations and expert checkpoints
//! *between* nodes. A [`Fabric`] models that surface the same way
//! [`crate::transfer::TransferCosts`] models the intra-node paths —
//! per-link bandwidth plus a fixed latency, fully deterministic — so a
//! cluster dispatcher can charge cross-node hops with the same fidelity
//! the engine charges expert switches.
//!
//! The topology is a complete graph over `n` nodes with a default
//! [`LinkProfile`] and optional per-link overrides (e.g. two nodes in
//! the same rack on a faster switch). Links are symmetric: the cost of
//! `a → b` equals `b → a`.

use std::collections::BTreeMap;
use std::fmt;

use crate::memory::Bytes;
use crate::time::SimSpan;

/// Identifies a node in a cluster fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub usize);

impl NodeId {
    /// The id as a usize index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node#{}", self.0)
    }
}

/// Bandwidth and fixed latency of one inter-node link.
///
/// Mirrors the [`crate::transfer::TransferCosts`] convention: bandwidth
/// in decimal MB/s (vendor spec sheets), a fixed per-transfer latency
/// (propagation + protocol), and `f64::INFINITY` bandwidth for a free
/// path (loopback).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkProfile {
    /// Link bandwidth in MB/s (decimal megabytes).
    pub bandwidth_mbps: f64,
    /// Fixed per-transfer latency (RTT/2 + protocol overhead).
    pub latency: SimSpan,
}

impl LinkProfile {
    /// A new link profile.
    ///
    /// # Panics
    ///
    /// Panics when `bandwidth_mbps` is not positive (`INFINITY` is
    /// allowed and means the path is free).
    #[must_use]
    pub fn new(bandwidth_mbps: f64, latency: SimSpan) -> Self {
        assert!(
            bandwidth_mbps > 0.0 && !bandwidth_mbps.is_nan(),
            "link bandwidth must be positive"
        );
        LinkProfile {
            bandwidth_mbps,
            latency,
        }
    }

    /// 10 Gbit/s Ethernet: 1,250 MB/s, 50 µs fixed latency.
    #[must_use]
    pub fn ethernet_10g() -> Self {
        LinkProfile::new(1_250.0, SimSpan::from_micros(50))
    }

    /// 100 Gbit/s Ethernet: 12,500 MB/s, 20 µs fixed latency.
    #[must_use]
    pub fn ethernet_100g() -> Self {
        LinkProfile::new(12_500.0, SimSpan::from_micros(20))
    }

    /// 200 Gbit/s InfiniBand-class interconnect: 25,000 MB/s, 5 µs.
    #[must_use]
    pub fn infiniband_200g() -> Self {
        LinkProfile::new(25_000.0, SimSpan::from_micros(5))
    }

    /// Duration of moving `bytes` across this link.
    #[must_use]
    pub fn transfer_duration(&self, bytes: Bytes) -> SimSpan {
        let wire = if self.bandwidth_mbps.is_finite() {
            SimSpan::from_secs_f64(bytes.get() as f64 / (self.bandwidth_mbps * 1e6))
        } else {
            SimSpan::ZERO
        };
        wire + self.latency
    }
}

impl fmt::Display for LinkProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.0} MB/s (+{})", self.bandwidth_mbps, self.latency)
    }
}

/// A cluster network topology: a complete graph over `n` nodes with a
/// default link and optional per-pair overrides.
#[derive(Debug, Clone, PartialEq)]
pub struct Fabric {
    nodes: usize,
    default: LinkProfile,
    overrides: BTreeMap<(usize, usize), LinkProfile>,
}

impl Fabric {
    /// A fully connected fabric of `nodes` nodes, every pair joined by
    /// `link`.
    ///
    /// # Panics
    ///
    /// Panics when `nodes` is zero.
    #[must_use]
    pub fn fully_connected(nodes: usize, link: LinkProfile) -> Self {
        assert!(nodes > 0, "fabric needs at least one node");
        Fabric {
            nodes,
            default: link,
            overrides: BTreeMap::new(),
        }
    }

    /// A rack-aware fabric: nodes are grouped into racks of
    /// `rack_size` consecutive indices (the last rack may be smaller);
    /// pairs within one rack ride the fast `intra` link (top-of-rack
    /// switch), pairs in different racks the oversubscribed `inter`
    /// uplink. Built on the per-pair overrides, so
    /// [`Fabric::with_link`] can still special-case individual pairs
    /// afterwards.
    ///
    /// # Panics
    ///
    /// Panics when `nodes` or `rack_size` is zero.
    #[must_use]
    pub fn rack_aware(
        nodes: usize,
        rack_size: usize,
        intra: LinkProfile,
        inter: LinkProfile,
    ) -> Self {
        assert!(rack_size > 0, "racks need at least one node");
        let mut fabric = Fabric::fully_connected(nodes, inter);
        for a in 0..nodes {
            for b in (a + 1)..nodes {
                if a / rack_size == b / rack_size {
                    fabric = fabric.with_link(NodeId(a), NodeId(b), intra);
                }
            }
        }
        fabric
    }

    /// Overrides the (symmetric) link between `a` and `b`.
    ///
    /// # Panics
    ///
    /// Panics when either endpoint is out of range or `a == b` (there
    /// is no self-link; local moves are free by definition).
    #[must_use]
    pub fn with_link(mut self, a: NodeId, b: NodeId, link: LinkProfile) -> Self {
        assert!(
            a.index() < self.nodes && b.index() < self.nodes,
            "link endpoint out of range"
        );
        assert_ne!(a, b, "self-links are implicit and free");
        let key = (a.index().min(b.index()), a.index().max(b.index()));
        self.overrides.insert(key, link);
        self
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes
    }

    /// Whether the fabric has no nodes (never true after construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes == 0
    }

    /// The link profile between two distinct nodes.
    ///
    /// # Panics
    ///
    /// Panics when an endpoint is out of range or `a == b`.
    #[must_use]
    pub fn link(&self, a: NodeId, b: NodeId) -> &LinkProfile {
        assert!(
            a.index() < self.nodes && b.index() < self.nodes,
            "link endpoint out of range"
        );
        assert_ne!(a, b, "no link from a node to itself");
        let key = (a.index().min(b.index()), a.index().max(b.index()));
        self.overrides.get(&key).unwrap_or(&self.default)
    }

    /// Duration of moving `bytes` from node `a` to node `b`
    /// ([`SimSpan::ZERO`] when `a == b` — the intra-node tiers already
    /// charge local movement).
    ///
    /// # Panics
    ///
    /// Panics when an endpoint is out of range.
    #[must_use]
    pub fn transfer_duration(&self, bytes: Bytes, a: NodeId, b: NodeId) -> SimSpan {
        if a == b {
            assert!(a.index() < self.nodes, "node out of range");
            return SimSpan::ZERO;
        }
        self.link(a, b).transfer_duration(bytes)
    }
}

impl fmt::Display for Fabric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "fabric of {} nodes, default link {} ({} overrides)",
            self.nodes,
            self.default,
            self.overrides.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_duration_is_bandwidth_plus_latency() {
        let link = LinkProfile::ethernet_10g();
        // 125 MB at 1250 MB/s = 100 ms, plus 50 µs fixed.
        let d = link.transfer_duration(Bytes::new(125_000_000));
        assert_eq!(d, SimSpan::from_millis(100) + SimSpan::from_micros(50));
        // Zero bytes pay only the fixed latency.
        assert_eq!(
            link.transfer_duration(Bytes::ZERO),
            SimSpan::from_micros(50)
        );
    }

    #[test]
    fn presets_are_ordered_by_speed() {
        let b = Bytes::mib(64);
        let eth10 = LinkProfile::ethernet_10g().transfer_duration(b);
        let eth100 = LinkProfile::ethernet_100g().transfer_duration(b);
        let ib = LinkProfile::infiniband_200g().transfer_duration(b);
        assert!(eth10 > eth100);
        assert!(eth100 > ib);
    }

    #[test]
    fn infinite_bandwidth_is_free_wire_time() {
        let link = LinkProfile::new(f64::INFINITY, SimSpan::from_micros(10));
        assert_eq!(
            link.transfer_duration(Bytes::gib(100)),
            SimSpan::from_micros(10)
        );
    }

    #[test]
    fn fabric_links_are_symmetric() {
        let fast = LinkProfile::ethernet_100g();
        let fabric = Fabric::fully_connected(4, LinkProfile::ethernet_10g()).with_link(
            NodeId(1),
            NodeId(3),
            fast,
        );
        assert_eq!(fabric.len(), 4);
        assert!(!fabric.is_empty());
        assert_eq!(fabric.link(NodeId(1), NodeId(3)), &fast);
        assert_eq!(fabric.link(NodeId(3), NodeId(1)), &fast);
        assert_eq!(
            fabric.link(NodeId(0), NodeId(1)),
            &LinkProfile::ethernet_10g()
        );
        let b = Bytes::mib(8);
        assert_eq!(
            fabric.transfer_duration(b, NodeId(3), NodeId(1)),
            fast.transfer_duration(b)
        );
    }

    #[test]
    fn rack_aware_fabric_pins_asymmetric_transfer_times() {
        // Two racks of two: {0,1} and {2,3}. Intra-rack 100 GbE,
        // inter-rack an oversubscribed 10 GbE uplink.
        let fabric = Fabric::rack_aware(
            4,
            2,
            LinkProfile::ethernet_100g(),
            LinkProfile::ethernet_10g(),
        );
        let payload = Bytes::new(125_000_000); // 125 MB
                                               // Intra-rack: 125 MB at 12,500 MB/s = 10 ms + 20 µs.
        let intra = SimSpan::from_millis(10) + SimSpan::from_micros(20);
        // Inter-rack: 125 MB at 1,250 MB/s = 100 ms + 50 µs.
        let inter = SimSpan::from_millis(100) + SimSpan::from_micros(50);
        assert_eq!(
            fabric.transfer_duration(payload, NodeId(0), NodeId(1)),
            intra
        );
        assert_eq!(
            fabric.transfer_duration(payload, NodeId(2), NodeId(3)),
            intra
        );
        assert_eq!(
            fabric.transfer_duration(payload, NodeId(0), NodeId(2)),
            inter
        );
        assert_eq!(
            fabric.transfer_duration(payload, NodeId(1), NodeId(3)),
            inter
        );
        // The asymmetry is an order of magnitude, symmetric per pair.
        assert!(inter > intra * 9);
        assert_eq!(
            fabric.transfer_duration(payload, NodeId(3), NodeId(1)),
            fabric.transfer_duration(payload, NodeId(1), NodeId(3)),
        );
        // An odd tail rack still forms: node 4 alone in rack 2.
        let odd = Fabric::rack_aware(
            5,
            2,
            LinkProfile::ethernet_100g(),
            LinkProfile::ethernet_10g(),
        );
        assert_eq!(odd.transfer_duration(payload, NodeId(4), NodeId(0)), inter);
    }

    #[test]
    fn local_moves_are_free() {
        let fabric = Fabric::fully_connected(2, LinkProfile::ethernet_10g());
        assert_eq!(
            fabric.transfer_duration(Bytes::gib(10), NodeId(1), NodeId(1)),
            SimSpan::ZERO
        );
    }

    #[test]
    #[should_panic(expected = "self-links")]
    fn self_link_override_panics() {
        let _ = Fabric::fully_connected(2, LinkProfile::ethernet_10g()).with_link(
            NodeId(0),
            NodeId(0),
            LinkProfile::ethernet_100g(),
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_link_panics() {
        let fabric = Fabric::fully_connected(2, LinkProfile::ethernet_10g());
        let _ = fabric.link(NodeId(0), NodeId(5));
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn empty_fabric_panics() {
        let _ = Fabric::fully_connected(0, LinkProfile::ethernet_10g());
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn non_positive_bandwidth_panics() {
        let _ = LinkProfile::new(0.0, SimSpan::ZERO);
    }

    #[test]
    fn displays_name_the_parts() {
        assert_eq!(NodeId(3).to_string(), "node#3");
        assert!(LinkProfile::ethernet_10g().to_string().contains("1250"));
        let fabric = Fabric::fully_connected(4, LinkProfile::ethernet_10g());
        assert!(fabric.to_string().contains("4 nodes"));
    }
}
