//! Simulated time.
//!
//! The simulator keeps time as an integer number of nanoseconds since the
//! start of the run. Two newtypes keep instants and durations apart:
//! [`SimTime`] is a point on the simulated clock and [`SimSpan`] is a
//! length of simulated time. Mixing them up is a compile error, which is
//! the whole point.
//!
//! ```
//! use coserve_sim::time::{SimSpan, SimTime};
//!
//! let t = SimTime::ZERO + SimSpan::from_millis(4);
//! assert_eq!(t.nanos(), 4_000_000);
//! assert_eq!(t - SimTime::ZERO, SimSpan::from_millis(4));
//! ```

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the simulated clock, in nanoseconds since the run started.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimSpan(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from raw nanoseconds.
    ///
    /// ```
    /// # use coserve_sim::time::SimTime;
    /// assert_eq!(SimTime::from_nanos(5).nanos(), 5);
    /// ```
    #[must_use]
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Raw nanoseconds since the start of the run.
    #[must_use]
    pub const fn nanos(self) -> u64 {
        self.0
    }

    /// Seconds since the start of the run, as a float.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Milliseconds since the start of the run, as a float.
    #[must_use]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The later of two instants.
    #[must_use]
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// The earlier of two instants.
    #[must_use]
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }

    /// The span from `earlier` to `self`, or [`SimSpan::ZERO`] when
    /// `earlier` is actually later (saturating).
    #[must_use]
    pub fn saturating_since(self, earlier: SimTime) -> SimSpan {
        SimSpan(self.0.saturating_sub(earlier.0))
    }
}

impl SimSpan {
    /// The empty span.
    pub const ZERO: SimSpan = SimSpan(0);

    /// Creates a span from raw nanoseconds.
    #[must_use]
    pub const fn from_nanos(nanos: u64) -> Self {
        SimSpan(nanos)
    }

    /// Creates a span from whole microseconds.
    #[must_use]
    pub const fn from_micros(micros: u64) -> Self {
        SimSpan(micros * 1_000)
    }

    /// Creates a span from whole milliseconds.
    #[must_use]
    pub const fn from_millis(millis: u64) -> Self {
        SimSpan(millis * 1_000_000)
    }

    /// Creates a span from whole seconds.
    #[must_use]
    pub const fn from_secs(secs: u64) -> Self {
        SimSpan(secs * 1_000_000_000)
    }

    /// Creates a span from fractional milliseconds.
    ///
    /// Negative or NaN inputs clamp to zero (cost models are physically
    /// non-negative and a simulation must never move backwards); `+∞`
    /// saturates to the maximum representable span.
    #[must_use]
    pub fn from_millis_f64(millis: f64) -> Self {
        Self::from_secs_f64(millis / 1e3)
    }

    /// Creates a span from fractional seconds; negatives and NaN clamp
    /// to zero, `+∞` saturates.
    #[must_use]
    pub fn from_secs_f64(secs: f64) -> Self {
        if secs.is_nan() || secs <= 0.0 {
            return SimSpan::ZERO;
        }
        let nanos = secs * 1e9;
        if nanos >= u64::MAX as f64 {
            SimSpan(u64::MAX)
        } else {
            SimSpan(nanos.round() as u64)
        }
    }

    /// Raw nanoseconds.
    #[must_use]
    pub const fn nanos(self) -> u64 {
        self.0
    }

    /// The span as fractional seconds.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The span as fractional milliseconds.
    #[must_use]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Whether the span is empty.
    #[must_use]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The larger of two spans.
    #[must_use]
    pub fn max(self, other: SimSpan) -> SimSpan {
        SimSpan(self.0.max(other.0))
    }

    /// The smaller of two spans.
    #[must_use]
    pub fn min(self, other: SimSpan) -> SimSpan {
        SimSpan(self.0.min(other.0))
    }

    /// Saturating subtraction.
    #[must_use]
    pub fn saturating_sub(self, other: SimSpan) -> SimSpan {
        SimSpan(self.0.saturating_sub(other.0))
    }
}

impl Add<SimSpan> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimSpan) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimSpan> for SimTime {
    fn add_assign(&mut self, rhs: SimSpan) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimSpan;
    /// # Panics
    ///
    /// Panics in debug builds when subtracting a later instant from an
    /// earlier one; use [`SimTime::saturating_since`] when the ordering is
    /// not statically known.
    fn sub(self, rhs: SimTime) -> SimSpan {
        debug_assert!(self.0 >= rhs.0, "SimTime subtraction went negative");
        SimSpan(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimSpan {
    type Output = SimSpan;
    fn add(self, rhs: SimSpan) -> SimSpan {
        SimSpan(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimSpan {
    fn add_assign(&mut self, rhs: SimSpan) {
        *self = *self + rhs;
    }
}

impl Sub for SimSpan {
    type Output = SimSpan;
    fn sub(self, rhs: SimSpan) -> SimSpan {
        debug_assert!(self.0 >= rhs.0, "SimSpan subtraction went negative");
        SimSpan(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimSpan {
    fn sub_assign(&mut self, rhs: SimSpan) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimSpan {
    type Output = SimSpan;
    fn mul(self, rhs: u64) -> SimSpan {
        SimSpan(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimSpan {
    type Output = SimSpan;
    /// # Panics
    ///
    /// Panics when dividing by zero.
    fn div(self, rhs: u64) -> SimSpan {
        SimSpan(self.0 / rhs)
    }
}

impl Sum for SimSpan {
    fn sum<I: Iterator<Item = SimSpan>>(iter: I) -> SimSpan {
        iter.fold(SimSpan::ZERO, Add::add)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.3}ms", self.as_millis_f64())
    }
}

impl fmt::Display for SimSpan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_round_trip() {
        assert_eq!(SimSpan::from_micros(3).nanos(), 3_000);
        assert_eq!(SimSpan::from_millis(3).nanos(), 3_000_000);
        assert_eq!(SimSpan::from_secs(3).nanos(), 3_000_000_000);
        assert_eq!(SimTime::from_nanos(42).nanos(), 42);
    }

    #[test]
    fn float_conversions() {
        let s = SimSpan::from_millis_f64(1.5);
        assert_eq!(s.nanos(), 1_500_000);
        assert!((s.as_millis_f64() - 1.5).abs() < 1e-9);
        assert!((SimSpan::from_secs(2).as_secs_f64() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn negative_and_nan_floats_clamp_to_zero() {
        assert_eq!(SimSpan::from_secs_f64(-1.0), SimSpan::ZERO);
        assert_eq!(SimSpan::from_secs_f64(f64::NAN), SimSpan::ZERO);
        assert_eq!(SimSpan::from_secs_f64(f64::NEG_INFINITY), SimSpan::ZERO);
    }

    #[test]
    fn huge_floats_saturate() {
        assert_eq!(SimSpan::from_secs_f64(f64::INFINITY).nanos(), u64::MAX);
        assert_eq!(SimSpan::from_secs_f64(1e40).nanos(), u64::MAX);
    }

    #[test]
    fn time_arithmetic() {
        let t = SimTime::ZERO + SimSpan::from_millis(10);
        let u = t + SimSpan::from_millis(5);
        assert_eq!(u - t, SimSpan::from_millis(5));
        assert_eq!(t.max(u), u);
        assert_eq!(t.min(u), t);
    }

    #[test]
    fn saturating_since_clamps() {
        let t = SimTime::from_nanos(5);
        let u = SimTime::from_nanos(9);
        assert_eq!(t.saturating_since(u), SimSpan::ZERO);
        assert_eq!(u.saturating_since(t), SimSpan::from_nanos(4));
    }

    #[test]
    fn span_arithmetic() {
        let a = SimSpan::from_millis(2);
        let b = SimSpan::from_millis(3);
        assert_eq!(a + b, SimSpan::from_millis(5));
        assert_eq!(b - a, SimSpan::from_millis(1));
        assert_eq!(a * 3, SimSpan::from_millis(6));
        assert_eq!(SimSpan::from_millis(6) / 2, SimSpan::from_millis(3));
        assert_eq!(b.saturating_sub(a + b), SimSpan::ZERO);
        let total: SimSpan = [a, b, a].into_iter().sum();
        assert_eq!(total, SimSpan::from_millis(7));
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(SimSpan::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimSpan::from_millis(12).to_string(), "12.000ms");
        assert_eq!(SimSpan::from_secs(2).to_string(), "2.000s");
        assert_eq!(SimTime::from_nanos(1_000_000).to_string(), "t=1.000ms");
    }

    #[test]
    fn addition_saturates_at_max() {
        let t = SimTime::MAX + SimSpan::from_secs(1);
        assert_eq!(t, SimTime::MAX);
    }

    /// Regression for the panicking `Sub` contract: reordered operands
    /// trip the debug assertion rather than silently wrapping. Code that
    /// can legitimately observe reordered timestamps (scheduler and
    /// eviction paths) must use `saturating_since`/`saturating_sub`; a
    /// workspace-wide audit (disabling these `Sub` impls and recompiling
    /// all targets) found no such call site outside this module.
    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "SimTime subtraction went negative")]
    fn reordered_instant_subtraction_panics_in_debug() {
        let earlier = SimTime::from_nanos(5);
        let later = SimTime::from_nanos(9);
        let _ = earlier - later;
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "SimSpan subtraction went negative")]
    fn reordered_span_subtraction_panics_in_debug() {
        let _ = SimSpan::from_nanos(5) - SimSpan::from_nanos(9);
    }
}
