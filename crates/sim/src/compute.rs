//! Execution cost models.
//!
//! CoServe's scheduler (paper §4.2) models batch execution latency as a
//! linear function `latency = K · n + B` of the batch size `n`, and the
//! offline profiler (§4.5) measures `K`, `B`, the maximum useful batch
//! size, and the memory footprint per batch item. [`LatencyModel`] is the
//! simulator-side ground truth that those measurements sample: linear up
//! to a saturation batch size, with a quadratic penalty beyond it (a real
//! processor runs out of parallelism, so average latency plateaus and
//! then worsens — the behaviour in the paper's Figures 5 and 12).
//!
//! [`MemoryModel`] is the ground truth behind Figure 6: a fixed workspace
//! plus weights plus a per-batch-item activation footprint.

use crate::memory::Bytes;
use crate::time::SimSpan;

/// Ground-truth execution latency for one (architecture × processor) pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyModel {
    /// Fixed per-batch overhead `B`, in milliseconds.
    pub base_ms: f64,
    /// Marginal per-item cost `K`, in milliseconds.
    pub per_item_ms: f64,
    /// Batch size at which the processor saturates.
    pub saturation: u32,
    /// Quadratic penalty coefficient applied beyond saturation
    /// (ms per item²).
    pub over_penalty_ms: f64,
}

impl LatencyModel {
    /// A purely linear model with the given intercept and slope.
    #[must_use]
    pub fn linear(base_ms: f64, per_item_ms: f64) -> Self {
        LatencyModel {
            base_ms,
            per_item_ms,
            saturation: u32::MAX,
            over_penalty_ms: 0.0,
        }
    }

    /// Adds a saturation knee: beyond `saturation` items, each extra item
    /// costs an additional quadratic penalty.
    #[must_use]
    pub fn with_saturation(mut self, saturation: u32, over_penalty_ms: f64) -> Self {
        self.saturation = saturation;
        self.over_penalty_ms = over_penalty_ms;
        self
    }

    /// Latency of executing a batch of `n` requests, in milliseconds.
    ///
    /// `n = 0` costs nothing (the engine never executes empty batches;
    /// this keeps the model total).
    #[must_use]
    pub fn latency_ms(&self, n: u32) -> f64 {
        if n == 0 {
            return 0.0;
        }
        let over = n.saturating_sub(self.saturation) as f64;
        self.base_ms + self.per_item_ms * n as f64 + self.over_penalty_ms * over * over
    }

    /// Latency of a batch of `n`, as a [`SimSpan`].
    #[must_use]
    pub fn latency(&self, n: u32) -> SimSpan {
        SimSpan::from_millis_f64(self.latency_ms(n))
    }

    /// Average (per-request) latency of a batch of `n`, in milliseconds.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    #[must_use]
    pub fn avg_latency_ms(&self, n: u32) -> f64 {
        assert!(n > 0, "average latency of an empty batch is undefined");
        self.latency_ms(n) / n as f64
    }

    /// The batch size minimising average per-request latency, searched
    /// over `1..=limit`. This is the "plateau" point the profiler aims
    /// to recover.
    #[must_use]
    pub fn optimal_batch(&self, limit: u32) -> u32 {
        (1..=limit.max(1))
            .min_by(|&a, &b| {
                self.avg_latency_ms(a)
                    .partial_cmp(&self.avg_latency_ms(b))
                    .expect("latencies are finite")
            })
            .expect("range is non-empty")
    }
}

/// Ground-truth memory footprint for one (architecture × processor) pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryModel {
    /// Fixed framework workspace (kernels, allocator slack).
    pub workspace: Bytes,
    /// Model weights; resident while the expert is loaded.
    pub weights: Bytes,
    /// Activation / intermediate-result memory per batch item.
    pub per_item: Bytes,
}

impl MemoryModel {
    /// Creates a memory model.
    #[must_use]
    pub fn new(workspace: Bytes, weights: Bytes, per_item: Bytes) -> Self {
        MemoryModel {
            workspace,
            weights,
            per_item,
        }
    }

    /// Total footprint of running a batch of `n`: workspace + weights +
    /// `n` items' activations.
    #[must_use]
    pub fn footprint(&self, n: u32) -> Bytes {
        self.workspace + self.weights + self.per_item * u64::from(n)
    }

    /// Memory needed *beyond* the resident weights to run a batch of `n`.
    #[must_use]
    pub fn inference_footprint(&self, n: u32) -> Bytes {
        self.workspace + self.per_item * u64::from(n)
    }

    /// The largest batch whose inference footprint fits in `budget`
    /// (zero when even the workspace does not fit).
    #[must_use]
    pub fn max_batch_within(&self, budget: Bytes) -> u32 {
        if budget < self.workspace {
            return 0;
        }
        let room = budget - self.workspace;
        if self.per_item.is_zero() {
            return u32::MAX;
        }
        u32::try_from(room.get() / self.per_item.get()).unwrap_or(u32::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_region_is_linear() {
        let m = LatencyModel::linear(8.0, 1.1).with_saturation(16, 0.5);
        assert!((m.latency_ms(1) - 9.1).abs() < 1e-9);
        assert!((m.latency_ms(10) - 19.0).abs() < 1e-9);
        // Differences are constant K in the linear region.
        let d1 = m.latency_ms(5) - m.latency_ms(4);
        let d2 = m.latency_ms(12) - m.latency_ms(11);
        assert!((d1 - d2).abs() < 1e-9);
    }

    #[test]
    fn zero_batch_costs_nothing() {
        let m = LatencyModel::linear(8.0, 1.1);
        assert_eq!(m.latency_ms(0), 0.0);
        assert_eq!(m.latency(0), SimSpan::ZERO);
    }

    #[test]
    fn penalty_kicks_in_after_saturation() {
        let m = LatencyModel::linear(8.0, 1.0).with_saturation(4, 2.0);
        assert!((m.latency_ms(4) - 12.0).abs() < 1e-9);
        assert!((m.latency_ms(6) - (8.0 + 6.0 + 2.0 * 4.0)).abs() < 1e-9);
    }

    #[test]
    fn avg_latency_decreases_then_rises() {
        let m = LatencyModel::linear(8.0, 1.0).with_saturation(6, 3.0);
        assert!(m.avg_latency_ms(1) > m.avg_latency_ms(4));
        assert!(m.avg_latency_ms(6) < m.avg_latency_ms(20));
    }

    #[test]
    fn optimal_batch_sits_near_saturation() {
        let m = LatencyModel::linear(9.0, 2.2).with_saturation(6, 1.2);
        let opt = m.optimal_batch(32);
        assert!(
            (5..=9).contains(&opt),
            "optimal batch {opt} far from saturation 6"
        );
    }

    #[test]
    fn optimal_batch_for_pure_linear_is_limit() {
        // Without a knee, bigger batches always amortize B further.
        let m = LatencyModel::linear(10.0, 1.0);
        assert_eq!(m.optimal_batch(32), 32);
    }

    #[test]
    #[should_panic(expected = "empty batch")]
    fn avg_latency_zero_panics() {
        let _ = LatencyModel::linear(1.0, 1.0).avg_latency_ms(0);
    }

    #[test]
    fn memory_footprint_is_affine() {
        let m = MemoryModel::new(Bytes::mib(200), Bytes::mib(178), Bytes::mib(260));
        assert_eq!(m.footprint(0), Bytes::mib(378));
        assert_eq!(m.footprint(2), Bytes::mib(378 + 520));
        assert_eq!(m.inference_footprint(2), Bytes::mib(200 + 520));
    }

    #[test]
    fn max_batch_within_budget() {
        let m = MemoryModel::new(Bytes::mib(200), Bytes::mib(178), Bytes::mib(260));
        assert_eq!(m.max_batch_within(Bytes::mib(199)), 0);
        assert_eq!(m.max_batch_within(Bytes::mib(200)), 0);
        assert_eq!(m.max_batch_within(Bytes::mib(460)), 1);
        assert_eq!(m.max_batch_within(Bytes::mib(200 + 260 * 10)), 10);
    }

    #[test]
    fn max_batch_with_zero_per_item_is_unbounded() {
        let m = MemoryModel::new(Bytes::mib(10), Bytes::mib(1), Bytes::ZERO);
        assert_eq!(m.max_batch_within(Bytes::mib(20)), u32::MAX);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Latency is monotone non-decreasing in batch size.
        #[test]
        fn latency_monotone(
            base in 0.0f64..100.0,
            k in 0.0f64..50.0,
            sat in 1u32..32,
            pen in 0.0f64..10.0,
            n in 1u32..64,
        ) {
            let m = LatencyModel::linear(base, k).with_saturation(sat, pen);
            prop_assert!(m.latency_ms(n + 1) >= m.latency_ms(n));
        }

        /// The batch reported by `max_batch_within` actually fits, and
        /// one more does not.
        #[test]
        fn max_batch_is_tight(
            ws in 0u64..1024,
            w in 0u64..1024,
            per in 1u64..512,
            budget in 0u64..1_000_000,
        ) {
            let m = MemoryModel::new(Bytes::new(ws), Bytes::new(w), Bytes::new(per));
            let n = m.max_batch_within(Bytes::new(budget));
            if n > 0 {
                prop_assert!(m.inference_footprint(n) <= Bytes::new(budget));
            }
            if n < u32::MAX {
                prop_assert!(m.inference_footprint(n + 1) > Bytes::new(budget));
            }
        }
    }
}
