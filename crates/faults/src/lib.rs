//! # coserve-faults
//!
//! Deterministic fault injection for the CoServe reproduction.
//!
//! A production CoE fleet sees far richer failure modes than the binary
//! node kill/revive the cluster runtime already models: expert loads
//! fail or crawl when an SSD misbehaves, fabric links degrade or
//! partition, whole nodes slow down without dying, and client
//! connections drop mid-frame. A [`FaultPlan`] injects all of those —
//! **deterministically**. Every fault decision is a pure function of
//! the plan's seed, the fault site's identity (node, executor, expert,
//! link pair, connection) and the *simulated* time it is queried at;
//! there is no wall clock, no global RNG and no hidden state, so a
//! faulted run replays bit for bit and a disabled plan is
//! indistinguishable from no plan at all.
//!
//! The injection surface has four classes, mirroring the layers of the
//! stack that consult the plan:
//!
//! * **expert-load faults** ([`FaultPlan::expert_load`]) — a pool miss's
//!   SSD/tier read fails outright (to be retried or given up on) or
//!   runs dilated; consumed by the engine's switch path;
//! * **link faults** ([`FaultPlan::link`]) — a fabric link's bandwidth
//!   dilates or the pair partitions entirely; consumed by the
//!   dispatcher's hop charging and the runtime's migrations;
//! * **slow nodes** ([`FaultPlan::node_dilation`]) — a node's service
//!   rate dilates across a window; consumed by the cluster runtime's
//!   per-tick accounting (and recovered from by dispatcher feedback);
//! * **connection chaos** ([`FaultPlan::connection_chaos`]) — seeded
//!   byte-stream mutilation (re-chunking, truncation, corruption,
//!   mid-frame disconnects) for driving clients and protocol tests.
//!
//! Recovery lives next to injection: a [`RetryPolicy`] bounds retries
//! with exponential backoff and an optional per-request deadline, and
//! is consulted by the same code paths that consult the plan.
//!
//! ```
//! use coserve_faults::{FaultPlan, FaultWindow, LoadOutcome};
//! use coserve_sim::time::SimTime;
//!
//! let plan = FaultPlan::seeded(7).with_expert_load(0.5, 0.0, 1.0, FaultWindow::ALWAYS);
//! let a = plan.expert_load(0, 1, 42, SimTime::from_nanos(100));
//! let b = plan.expert_load(0, 1, 42, SimTime::from_nanos(100));
//! assert_eq!(a, b, "same site, same time, same outcome");
//! assert_eq!(FaultPlan::disabled().expert_load(0, 1, 42, SimTime::ZERO), LoadOutcome::Healthy);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use coserve_sim::rng::SimRng;
use coserve_sim::time::{SimSpan, SimTime};

/// Domain-separation tags so draws for different fault classes at the
/// same site/time never share a stream.
const TAG_LOAD: u64 = 0x4c4f_4144;
const TAG_LINK: u64 = 0x4c49_4e4b;
const TAG_CONN: u64 = 0x434f_4e4e;

/// A half-open window `[start, end)` of simulated time during which a
/// fault class is armed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultWindow {
    /// First instant the fault class is armed.
    pub start: SimTime,
    /// First instant it is disarmed again.
    pub end: SimTime,
}

impl FaultWindow {
    /// Armed for the whole run.
    pub const ALWAYS: FaultWindow = FaultWindow {
        start: SimTime::ZERO,
        end: SimTime::from_nanos(u64::MAX),
    };

    /// A window from `start` lasting `span`.
    #[must_use]
    pub fn new(start: SimTime, span: SimSpan) -> Self {
        FaultWindow {
            start,
            end: start + span,
        }
    }

    /// Whether `at` falls inside the window.
    #[must_use]
    pub fn contains(&self, at: SimTime) -> bool {
        self.start <= at && at < self.end
    }
}

/// What an expert-load query came back with.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LoadOutcome {
    /// The read succeeds at full speed.
    Healthy,
    /// The read succeeds but every transfer stage runs `factor`× slower
    /// (`factor > 1`).
    Slow(f64),
    /// The read fails `failures` consecutive times before an attempt
    /// would succeed; whether anything retries that often is the
    /// [`RetryPolicy`]'s call, not the plan's.
    Fail {
        /// Consecutive failed attempts before the first success.
        failures: u32,
    },
}

/// What a link query came back with.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LinkOutcome {
    /// The link is at its profiled speed.
    Healthy,
    /// The transfer runs `factor`× slower (`factor > 1`).
    Dilated(f64),
    /// The pair is unreachable; the transfer cannot happen at all.
    Partitioned,
}

#[derive(Debug, Clone, PartialEq)]
struct ExpertLoadFaults {
    fail_rate: f64,
    slow_rate: f64,
    slow_factor: f64,
    window: FaultWindow,
}

#[derive(Debug, Clone, PartialEq)]
struct LinkFaults {
    dilation_rate: f64,
    dilation: f64,
    partitions: Vec<(usize, usize)>,
    window: FaultWindow,
}

#[derive(Debug, Clone, PartialEq)]
struct SlowNodeFaults {
    nodes: Vec<usize>,
    factor: f64,
    window: FaultWindow,
}

/// A seeded, deterministic fault schedule. Constructed disabled; each
/// `with_*` builder arms one fault class. Cloning is cheap and two
/// clones answer every query identically.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    expert_load: Option<ExpertLoadFaults>,
    link: Option<LinkFaults>,
    slow_node: Option<SlowNodeFaults>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::disabled()
    }
}

impl FaultPlan {
    /// A plan that never injects anything, whatever it is asked.
    #[must_use]
    pub fn disabled() -> Self {
        FaultPlan {
            seed: 0,
            expert_load: None,
            link: None,
            slow_node: None,
        }
    }

    /// An empty plan carrying `seed`; arm classes with the `with_*`
    /// builders.
    #[must_use]
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..FaultPlan::disabled()
        }
    }

    /// Whether no fault class is armed (the plan can never inject).
    #[must_use]
    pub fn is_disabled(&self) -> bool {
        self.expert_load.is_none() && self.link.is_none() && self.slow_node.is_none()
    }

    /// Arms expert-load faults: inside `window`, a pool miss's tier
    /// read fails with probability `fail_rate` per attempt and (when it
    /// does not fail) runs `slow_factor`× slower with probability
    /// `slow_rate`.
    ///
    /// # Panics
    ///
    /// Panics when `slow_factor < 1.0` or either rate is outside
    /// `[0, 1)` (a rate of exactly 1 would make every retry fail
    /// forever, which no bounded policy recovers from).
    #[must_use]
    pub fn with_expert_load(
        mut self,
        fail_rate: f64,
        slow_rate: f64,
        slow_factor: f64,
        window: FaultWindow,
    ) -> Self {
        assert!(
            (0.0..1.0).contains(&fail_rate) && (0.0..1.0).contains(&slow_rate),
            "fault rates must be in [0, 1)"
        );
        assert!(slow_factor >= 1.0, "slow loads cannot speed reads up");
        self.expert_load = Some(ExpertLoadFaults {
            fail_rate,
            slow_rate,
            slow_factor,
            window,
        });
        self
    }

    /// Arms link faults: inside `window`, any transfer over a
    /// `partitions` pair is unreachable, and every other transfer runs
    /// `dilation`× slower with probability `dilation_rate`. Pairs are
    /// unordered (`(a, b)` also partitions `b → a`).
    ///
    /// # Panics
    ///
    /// Panics when `dilation < 1.0` or `dilation_rate` is outside
    /// `[0, 1]`.
    #[must_use]
    pub fn with_link(
        mut self,
        dilation_rate: f64,
        dilation: f64,
        partitions: Vec<(usize, usize)>,
        window: FaultWindow,
    ) -> Self {
        assert!(
            (0.0..=1.0).contains(&dilation_rate),
            "dilation rate must be in [0, 1]"
        );
        assert!(dilation >= 1.0, "link dilation cannot speed transfers up");
        let partitions = partitions
            .into_iter()
            .map(|(a, b)| (a.min(b), a.max(b)))
            .collect();
        self.link = Some(LinkFaults {
            dilation_rate,
            dilation,
            partitions,
            window,
        });
        self
    }

    /// Arms slow-node faults: inside `window`, every listed node's
    /// service runs `factor`× slower.
    ///
    /// # Panics
    ///
    /// Panics when `factor < 1.0`.
    #[must_use]
    pub fn with_slow_nodes(mut self, nodes: Vec<usize>, factor: f64, window: FaultWindow) -> Self {
        assert!(factor >= 1.0, "slow nodes cannot speed service up");
        self.slow_node = Some(SlowNodeFaults {
            nodes,
            factor,
            window,
        });
        self
    }

    /// A private per-query stream: the same `(tag, ids, at)` always
    /// yields the same draws, and distinct sites never share a stream.
    fn rng_for(&self, tag: u64, ids: &[u64], at: SimTime) -> SimRng {
        let mut key = self.seed ^ tag.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        for &id in ids {
            // One SplitMix-style absorption round per id word.
            key = key
                .wrapping_add(id)
                .wrapping_mul(0xBF58_476D_1CE4_E5B9)
                .rotate_left(31);
        }
        key ^= at.nanos().wrapping_mul(0x94D0_49BB_1331_11EB);
        SimRng::seed_from(key)
    }

    /// The outcome of loading `expert` into executor `exec` of `node`
    /// at simulated time `at`. [`LoadOutcome::Healthy`] whenever the
    /// class is unarmed or the window is closed.
    #[must_use]
    pub fn expert_load(&self, node: u32, exec: u32, expert: u32, at: SimTime) -> LoadOutcome {
        let Some(cfg) = &self.expert_load else {
            return LoadOutcome::Healthy;
        };
        if !cfg.window.contains(at) {
            return LoadOutcome::Healthy;
        }
        let mut rng = self.rng_for(
            TAG_LOAD,
            &[u64::from(node), u64::from(exec), u64::from(expert)],
            at,
        );
        if cfg.fail_rate > 0.0 && rng.bernoulli(cfg.fail_rate) {
            // Geometric tail, capped: the cap only matters to policies
            // retrying more than 16 times, which none do.
            let mut failures = 1;
            while failures < 16 && rng.bernoulli(cfg.fail_rate) {
                failures += 1;
            }
            return LoadOutcome::Fail { failures };
        }
        if cfg.slow_rate > 0.0 && rng.bernoulli(cfg.slow_rate) {
            return LoadOutcome::Slow(cfg.slow_factor);
        }
        LoadOutcome::Healthy
    }

    /// The state of the link between nodes `a` and `b` for a transfer
    /// at simulated time `at`. [`LinkOutcome::Healthy`] whenever the
    /// class is unarmed, the window is closed, or `a == b` (local moves
    /// never touch the fabric).
    #[must_use]
    pub fn link(&self, a: usize, b: usize, at: SimTime) -> LinkOutcome {
        let Some(cfg) = &self.link else {
            return LinkOutcome::Healthy;
        };
        if a == b || !cfg.window.contains(at) {
            return LinkOutcome::Healthy;
        }
        let pair = (a.min(b), a.max(b));
        if cfg.partitions.contains(&pair) {
            return LinkOutcome::Partitioned;
        }
        if cfg.dilation_rate > 0.0 {
            let mut rng = self.rng_for(TAG_LINK, &[pair.0 as u64, pair.1 as u64], at);
            if rng.bernoulli(cfg.dilation_rate) {
                return LinkOutcome::Dilated(cfg.dilation);
            }
        }
        LinkOutcome::Healthy
    }

    /// Whether the unordered pair `(a, b)` is partitioned at `at`
    /// (reachability only — dilation does not cut a link).
    #[must_use]
    pub fn partitioned(&self, a: usize, b: usize, at: SimTime) -> bool {
        matches!(self.link(a, b, at), LinkOutcome::Partitioned)
    }

    /// The service dilation of `node` at `at`: `1.0` when healthy,
    /// `> 1.0` while a slow-node window holds it.
    #[must_use]
    pub fn node_dilation(&self, node: usize, at: SimTime) -> f64 {
        match &self.slow_node {
            Some(cfg) if cfg.window.contains(at) && cfg.nodes.contains(&node) => cfg.factor,
            _ => 1.0,
        }
    }

    /// A seeded byte-stream mutilator for connection `conn` — the
    /// client-side fault class (mid-frame disconnects, stalled and
    /// re-chunked reads, bit corruption) used to drive servers and
    /// protocol decoders through hostile inputs.
    #[must_use]
    pub fn connection_chaos(&self, conn: u64) -> ByteChaos {
        ByteChaos {
            rng: self.rng_for(TAG_CONN, &[conn], SimTime::ZERO),
        }
    }
}

/// Bounded retry with exponential backoff and an optional per-request
/// deadline — the recovery half of the fault layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Attempts after the first (0 = fail on the first fault).
    pub max_retries: u32,
    /// Backoff before the first retry; doubles each further retry.
    pub base_backoff: SimSpan,
    /// Total budget (work + backoff) a recovery may spend before the
    /// request is failed anyway; `None` = unbounded.
    pub deadline: Option<SimSpan>,
}

impl RetryPolicy {
    /// No recovery at all: the first fault is terminal.
    #[must_use]
    pub fn none() -> Self {
        RetryPolicy {
            max_retries: 0,
            base_backoff: SimSpan::ZERO,
            deadline: None,
        }
    }

    /// Bounded retries with exponential backoff and no deadline.
    #[must_use]
    pub fn retries(max_retries: u32, base_backoff: SimSpan) -> Self {
        RetryPolicy {
            max_retries,
            base_backoff,
            deadline: None,
        }
    }

    /// Adds a per-request recovery deadline.
    #[must_use]
    pub fn with_deadline(mut self, deadline: SimSpan) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// The backoff before retry `attempt` (0-based): `base · 2^attempt`,
    /// saturating.
    #[must_use]
    pub fn backoff(&self, attempt: u32) -> SimSpan {
        let nanos = self
            .base_backoff
            .nanos()
            .saturating_mul(1u64.checked_shl(attempt).unwrap_or(u64::MAX));
        SimSpan::from_nanos(nanos)
    }

    /// Total backoff spent by `retries` retries (the sum of the first
    /// `retries` backoff terms).
    #[must_use]
    pub fn total_backoff(&self, retries: u32) -> SimSpan {
        (0..retries).map(|i| self.backoff(i)).sum()
    }

    /// Whether spending `cost` fits the deadline.
    #[must_use]
    pub fn within_deadline(&self, cost: SimSpan) -> bool {
        self.deadline.is_none_or(|d| cost <= d)
    }
}

/// How one chaos step mutilates a byte stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChaosStep {
    /// Deliver the next `len` bytes as one read.
    Deliver {
        /// Bytes in this read (always ≥ 1).
        len: usize,
    },
    /// Stall — deliver nothing this step (a read timeout on the
    /// receiver).
    Stall,
    /// Drop the connection here, mid-frame or not; nothing after this
    /// is delivered.
    Disconnect,
}

/// A seeded byte-stream mutilator: slices a wire image into hostile
/// read schedules and applies deterministic corruption. Obtained from
/// [`FaultPlan::connection_chaos`]; every method is a pure function of
/// the chaos stream's position, so a replay with the same seed makes
/// identical choices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ByteChaos {
    rng: SimRng,
}

impl ByteChaos {
    /// Slices a stream of `len` bytes into a read schedule: arbitrary
    /// re-chunking with interleaved stalls, and — when `lossy` — a
    /// possible mid-stream disconnect. The delivered lengths always sum
    /// to `len` unless a `Disconnect` cuts the tail.
    #[must_use]
    pub fn schedule(&mut self, len: usize, lossy: bool) -> Vec<ChaosStep> {
        let mut steps = Vec::new();
        let mut left = len;
        while left > 0 {
            if lossy && self.rng.bernoulli(0.02) {
                steps.push(ChaosStep::Disconnect);
                return steps;
            }
            if self.rng.bernoulli(0.15) {
                steps.push(ChaosStep::Stall);
                continue;
            }
            // Mostly tiny reads (tearing frames apart), occasionally a
            // big gulp that re-coalesces several frames.
            let chunk = if self.rng.bernoulli(0.8) {
                1 + self.rng.next_below(7) as usize
            } else {
                1 + self.rng.next_below(4096) as usize
            };
            let take = chunk.min(left);
            steps.push(ChaosStep::Deliver { len: take });
            left -= take;
        }
        steps
    }

    /// Truncates `bytes` at a seeded position (possibly mid-frame).
    /// Returns how many bytes survive.
    #[must_use]
    pub fn truncate(&mut self, bytes: &mut Vec<u8>) -> usize {
        if bytes.is_empty() {
            return 0;
        }
        let keep = self.rng.next_below(bytes.len() as u64 + 1) as usize;
        bytes.truncate(keep);
        keep
    }

    /// Flips seeded bytes of `bytes` in place (roughly `rate` of them,
    /// always at least one when the buffer is non-empty and
    /// `rate > 0`). Returns how many bytes were corrupted.
    #[must_use]
    pub fn corrupt(&mut self, bytes: &mut [u8], rate: f64) -> usize {
        if bytes.is_empty() || rate <= 0.0 {
            return 0;
        }
        let mut hits = 0;
        for b in bytes.iter_mut() {
            if self.rng.bernoulli(rate) {
                *b ^= (1 + self.rng.next_below(255)) as u8;
                hits += 1;
            }
        }
        if hits == 0 {
            let at = self.rng.next_below(bytes.len() as u64) as usize;
            if let Some(b) = bytes.get_mut(at) {
                *b ^= (1 + self.rng.next_below(255)) as u8;
                hits = 1;
            }
        }
        hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_plan_never_injects() {
        let plan = FaultPlan::disabled();
        assert!(plan.is_disabled());
        for t in [0u64, 1, 1_000_000_000] {
            let at = SimTime::from_nanos(t);
            assert_eq!(plan.expert_load(0, 0, 0, at), LoadOutcome::Healthy);
            assert_eq!(plan.link(0, 1, at), LinkOutcome::Healthy);
            assert!(!plan.partitioned(0, 1, at));
            assert!((plan.node_dilation(0, at) - 1.0).abs() < f64::EPSILON);
        }
        assert_eq!(FaultPlan::default(), FaultPlan::disabled());
    }

    #[test]
    fn queries_are_deterministic_and_site_sensitive() {
        let plan = FaultPlan::seeded(42).with_expert_load(0.5, 0.3, 2.0, FaultWindow::ALWAYS);
        let at = SimTime::from_nanos(777);
        assert_eq!(plan.expert_load(1, 2, 3, at), plan.expert_load(1, 2, 3, at));
        assert_eq!(
            plan.clone().expert_load(1, 2, 3, at),
            plan.expert_load(1, 2, 3, at)
        );
        // Different sites/times draw from different streams: over many
        // sites, outcomes must not all agree.
        let outcomes: Vec<LoadOutcome> = (0..64).map(|e| plan.expert_load(0, 0, e, at)).collect();
        assert!(outcomes.iter().any(|o| *o != outcomes[0]));
    }

    #[test]
    fn fail_rate_controls_fault_density() {
        let window = FaultWindow::ALWAYS;
        let lo = FaultPlan::seeded(1).with_expert_load(0.05, 0.0, 1.0, window);
        let hi = FaultPlan::seeded(1).with_expert_load(0.6, 0.0, 1.0, window);
        let count = |plan: &FaultPlan| {
            (0..400)
                .filter(|&e| {
                    matches!(
                        plan.expert_load(0, 0, e, SimTime::from_nanos(u64::from(e) * 13)),
                        LoadOutcome::Fail { .. }
                    )
                })
                .count()
        };
        let (lo_n, hi_n) = (count(&lo), count(&hi));
        assert!(lo_n > 0, "5% over 400 draws must fire");
        assert!(
            hi_n > 3 * lo_n,
            "60% must fire far more than 5%: {hi_n} vs {lo_n}"
        );
    }

    #[test]
    fn windows_gate_injection() {
        let window = FaultWindow::new(SimTime::from_nanos(100), SimSpan::from_nanos(50));
        let plan = FaultPlan::seeded(9)
            .with_expert_load(0.9, 0.0, 1.0, window)
            .with_slow_nodes(vec![1], 3.0, window)
            .with_link(0.0, 1.0, vec![(0, 1)], window);
        for t in [0, 99, 150, 1000] {
            let at = SimTime::from_nanos(t);
            assert_eq!(plan.expert_load(0, 0, 7, at), LoadOutcome::Healthy, "t={t}");
            assert!((plan.node_dilation(1, at) - 1.0).abs() < f64::EPSILON);
            assert!(!plan.partitioned(0, 1, at));
        }
        let inside = SimTime::from_nanos(120);
        assert!(plan.partitioned(0, 1, inside));
        assert!(plan.partitioned(1, 0, inside), "partitions are unordered");
        assert!((plan.node_dilation(1, inside) - 3.0).abs() < f64::EPSILON);
        assert!((plan.node_dilation(0, inside) - 1.0).abs() < f64::EPSILON);
        let faults = (0..100)
            .filter(|&e| plan.expert_load(0, 0, e, inside) != LoadOutcome::Healthy)
            .count();
        assert!(faults > 50, "90% inside the window must fire: {faults}");
    }

    #[test]
    fn link_dilation_fires_and_partitions_win() {
        let plan = FaultPlan::seeded(3).with_link(1.0, 4.0, vec![(2, 3)], FaultWindow::ALWAYS);
        let at = SimTime::from_nanos(5);
        assert_eq!(plan.link(0, 1, at), LinkOutcome::Dilated(4.0));
        assert_eq!(plan.link(2, 3, at), LinkOutcome::Partitioned);
        assert_eq!(
            plan.link(1, 1, at),
            LinkOutcome::Healthy,
            "self-links never fault"
        );
    }

    #[test]
    fn retry_policy_backoff_doubles_and_deadline_binds() {
        let policy = RetryPolicy::retries(3, SimSpan::from_millis(2));
        assert_eq!(policy.backoff(0), SimSpan::from_millis(2));
        assert_eq!(policy.backoff(1), SimSpan::from_millis(4));
        assert_eq!(policy.backoff(2), SimSpan::from_millis(8));
        assert_eq!(policy.total_backoff(3), SimSpan::from_millis(14));
        assert_eq!(policy.total_backoff(0), SimSpan::ZERO);
        assert!(policy.within_deadline(SimSpan::from_secs(100)));
        let strict = policy.with_deadline(SimSpan::from_millis(5));
        assert!(strict.within_deadline(SimSpan::from_millis(5)));
        assert!(!strict.within_deadline(SimSpan::from_millis(6)));
        assert_eq!(RetryPolicy::none().max_retries, 0);
        // Saturation instead of overflow at absurd attempt counts.
        let big = RetryPolicy::retries(80, SimSpan::from_secs(1));
        assert_eq!(big.backoff(70), SimSpan::from_nanos(u64::MAX));
    }

    #[test]
    fn chaos_schedule_conserves_bytes_when_lossless() {
        let plan = FaultPlan::seeded(11);
        let mut chaos = plan.connection_chaos(4);
        let steps = chaos.schedule(10_000, false);
        let delivered: usize = steps
            .iter()
            .map(|s| match s {
                ChaosStep::Deliver { len } => *len,
                ChaosStep::Stall => 0,
                ChaosStep::Disconnect => panic!("lossless schedule disconnected"),
            })
            .sum();
        assert_eq!(delivered, 10_000);
        assert!(steps.len() > 10, "10k bytes must split into many reads");
        // Same conn, same seed → same schedule.
        assert_eq!(plan.connection_chaos(4).schedule(10_000, false), steps);
        // Different conn → different schedule.
        assert_ne!(plan.connection_chaos(5).schedule(10_000, false), steps);
    }

    #[test]
    fn chaos_truncate_and_corrupt_are_bounded() {
        let mut chaos = FaultPlan::seeded(21).connection_chaos(0);
        let mut bytes = vec![0xAAu8; 256];
        let original = bytes.clone();
        let hits = chaos.corrupt(&mut bytes, 0.05);
        assert!(hits >= 1);
        assert_ne!(bytes, original, "corruption must change something");
        assert_eq!(bytes.len(), 256);
        let kept = chaos.truncate(&mut bytes);
        assert_eq!(bytes.len(), kept);
        assert!(kept <= 256);
        let mut empty: Vec<u8> = Vec::new();
        assert_eq!(chaos.truncate(&mut empty), 0);
        assert_eq!(chaos.corrupt(&mut empty, 0.5), 0);
    }

    #[test]
    #[should_panic(expected = "rates must be in")]
    fn certain_failure_rate_is_rejected() {
        let _ = FaultPlan::seeded(0).with_expert_load(1.0, 0.0, 1.0, FaultWindow::ALWAYS);
    }

    #[test]
    #[should_panic(expected = "cannot speed service up")]
    fn speedup_dilation_is_rejected() {
        let _ = FaultPlan::seeded(0).with_slow_nodes(vec![0], 0.5, FaultWindow::ALWAYS);
    }
}
