//! The expert dependency graph.
//!
//! In a CoE inference pipeline, *subsequent* experts consume the output
//! of *preliminary* experts (paper Figure 2: a classification expert
//! runs first; an object-detection expert may run on its output). The
//! paper's expert manager exploits this structure: a subsequent expert
//! resident in memory is useless until one of its preliminary experts is
//! also resident, so such experts are the first eviction candidates
//! (§4.3, Stage 1).
//!
//! The graph is a DAG over [`ExpertId`]s with edges preliminary →
//! subsequent. Roles are derived: an expert with at least one incoming
//! edge is a subsequent expert.

use std::collections::BTreeSet;
use std::fmt;

use crate::expert::ExpertId;

/// Error returned when adding an edge would corrupt the graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphError {
    /// Edge endpoint does not exist.
    UnknownExpert(ExpertId),
    /// Edge from an expert to itself.
    SelfDependency(ExpertId),
    /// The edge would create a cycle.
    Cycle(ExpertId, ExpertId),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::UnknownExpert(e) => write!(f, "unknown expert {e}"),
            GraphError::SelfDependency(e) => write!(f, "expert {e} cannot depend on itself"),
            GraphError::Cycle(a, b) => {
                write!(f, "dependency {a} -> {b} would create a cycle")
            }
        }
    }
}

impl std::error::Error for GraphError {}

/// A DAG of expert dependencies (edges preliminary → subsequent).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DependencyGraph {
    /// `subsequents[p]` = experts that depend on `p`.
    subsequents: Vec<BTreeSet<ExpertId>>,
    /// `preliminaries[s]` = experts that `s` depends on.
    preliminaries: Vec<BTreeSet<ExpertId>>,
}

impl DependencyGraph {
    /// Creates a graph over `num_experts` experts with no edges.
    #[must_use]
    pub fn new(num_experts: usize) -> Self {
        DependencyGraph {
            subsequents: vec![BTreeSet::new(); num_experts],
            preliminaries: vec![BTreeSet::new(); num_experts],
        }
    }

    /// Number of experts the graph covers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.subsequents.len()
    }

    /// Whether the graph covers no experts.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.subsequents.is_empty()
    }

    /// Number of edges.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.subsequents.iter().map(BTreeSet::len).sum()
    }

    fn check(&self, e: ExpertId) -> Result<(), GraphError> {
        if e.index() >= self.len() {
            Err(GraphError::UnknownExpert(e))
        } else {
            Ok(())
        }
    }

    /// Adds the edge `preliminary → subsequent`. Adding an existing edge
    /// is a no-op.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError`] for unknown endpoints, self-dependencies,
    /// or edges that would create a cycle.
    pub fn add_dependency(
        &mut self,
        preliminary: ExpertId,
        subsequent: ExpertId,
    ) -> Result<(), GraphError> {
        self.check(preliminary)?;
        self.check(subsequent)?;
        if preliminary == subsequent {
            return Err(GraphError::SelfDependency(preliminary));
        }
        if self.reaches(subsequent, preliminary) {
            return Err(GraphError::Cycle(preliminary, subsequent));
        }
        self.subsequents[preliminary.index()].insert(subsequent);
        self.preliminaries[subsequent.index()].insert(preliminary);
        Ok(())
    }

    /// Whether `from` can reach `to` along dependency edges.
    fn reaches(&self, from: ExpertId, to: ExpertId) -> bool {
        if from == to {
            return true;
        }
        let mut stack = vec![from];
        let mut seen = BTreeSet::new();
        while let Some(n) = stack.pop() {
            if !seen.insert(n) {
                continue;
            }
            for &next in &self.subsequents[n.index()] {
                if next == to {
                    return true;
                }
                stack.push(next);
            }
        }
        false
    }

    /// The experts that depend on `e` (its subsequents).
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    #[must_use]
    pub fn subsequents_of(&self, e: ExpertId) -> &BTreeSet<ExpertId> {
        &self.subsequents[e.index()]
    }

    /// The experts `e` depends on (its preliminaries).
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    #[must_use]
    pub fn preliminaries_of(&self, e: ExpertId) -> &BTreeSet<ExpertId> {
        &self.preliminaries[e.index()]
    }

    /// Whether `e` is a subsequent expert (has at least one preliminary).
    #[must_use]
    pub fn is_subsequent(&self, e: ExpertId) -> bool {
        !self.preliminaries[e.index()].is_empty()
    }

    /// Whether `e` is a preliminary expert (depends on nothing).
    #[must_use]
    pub fn is_preliminary(&self, e: ExpertId) -> bool {
        !self.is_subsequent(e)
    }

    /// Stage-1 eviction predicate (§4.3): `e` is a subsequent expert and
    /// *none* of its preliminaries satisfies `loaded`. Such an expert
    /// cannot run until a preliminary is re-loaded, so keeping it
    /// resident wastes memory.
    pub fn is_orphaned_subsequent(
        &self,
        e: ExpertId,
        mut loaded: impl FnMut(ExpertId) -> bool,
    ) -> bool {
        let prelims = &self.preliminaries[e.index()];
        !prelims.is_empty() && !prelims.iter().any(|&p| loaded(p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(i: u32) -> ExpertId {
        ExpertId(i)
    }

    #[test]
    fn empty_graph() {
        let g = DependencyGraph::new(0);
        assert!(g.is_empty());
        assert_eq!(g.len(), 0);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn roles_follow_edges() {
        let mut g = DependencyGraph::new(3);
        g.add_dependency(e(0), e(2)).unwrap();
        g.add_dependency(e(1), e(2)).unwrap();
        assert!(g.is_preliminary(e(0)));
        assert!(g.is_preliminary(e(1)));
        assert!(g.is_subsequent(e(2)));
        assert_eq!(g.preliminaries_of(e(2)).len(), 2);
        assert_eq!(g.subsequents_of(e(0)).len(), 1);
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn duplicate_edges_are_idempotent() {
        let mut g = DependencyGraph::new(2);
        g.add_dependency(e(0), e(1)).unwrap();
        g.add_dependency(e(0), e(1)).unwrap();
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn rejects_unknown_and_self_edges() {
        let mut g = DependencyGraph::new(2);
        assert_eq!(
            g.add_dependency(e(0), e(5)),
            Err(GraphError::UnknownExpert(e(5)))
        );
        assert_eq!(
            g.add_dependency(e(1), e(1)),
            Err(GraphError::SelfDependency(e(1)))
        );
        assert!(GraphError::SelfDependency(e(1))
            .to_string()
            .contains("itself"));
    }

    #[test]
    fn rejects_cycles() {
        let mut g = DependencyGraph::new(3);
        g.add_dependency(e(0), e(1)).unwrap();
        g.add_dependency(e(1), e(2)).unwrap();
        assert_eq!(
            g.add_dependency(e(2), e(0)),
            Err(GraphError::Cycle(e(2), e(0)))
        );
        // The failed insert left the graph intact.
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn orphaned_subsequent_detection() {
        // 0 -> 2 <- 1 ; 3 standalone.
        let mut g = DependencyGraph::new(4);
        g.add_dependency(e(0), e(2)).unwrap();
        g.add_dependency(e(1), e(2)).unwrap();

        // No preliminary loaded: orphaned.
        assert!(g.is_orphaned_subsequent(e(2), |_| false));
        // One preliminary loaded: not orphaned.
        assert!(!g.is_orphaned_subsequent(e(2), |p| p == e(0)));
        // Preliminary experts are never "orphaned subsequents".
        assert!(!g.is_orphaned_subsequent(e(0), |_| false));
        assert!(!g.is_orphaned_subsequent(e(3), |_| false));
    }

    #[test]
    fn shared_subsequent_expert_pattern() {
        // The paper's pattern: many classification experts share one
        // detection expert.
        let mut g = DependencyGraph::new(11);
        for i in 0..10 {
            g.add_dependency(e(i), e(10)).unwrap();
        }
        assert!(g.is_subsequent(e(10)));
        assert_eq!(g.preliminaries_of(e(10)).len(), 10);
        assert!(!g.is_orphaned_subsequent(e(10), |p| p == e(7)));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Inserting arbitrary edges (ignoring rejections) always leaves
        /// a DAG: no expert can reach itself.
        #[test]
        fn graph_stays_acyclic(
            n in 2usize..24,
            edges in proptest::collection::vec((0u32..24, 0u32..24), 0..80),
        ) {
            let mut g = DependencyGraph::new(n);
            for (a, b) in edges {
                let (a, b) = (ExpertId(a % n as u32), ExpertId(b % n as u32));
                let _ = g.add_dependency(a, b);
            }
            for i in 0..n {
                let start = ExpertId(i as u32);
                // A cycle through `start` would let one of its
                // subsequents reach it.
                for &s in g.subsequents_of(start) {
                    prop_assert!(!g.reaches_public(s, start));
                }
            }
        }
    }

    impl DependencyGraph {
        fn reaches_public(&self, from: ExpertId, to: ExpertId) -> bool {
            self.reaches(from, to)
        }
    }
}
