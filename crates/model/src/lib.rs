//! # coserve-model
//!
//! Collaboration-of-Experts (CoE) model abstractions for the CoServe
//! reproduction: expert architectures, the expert table with
//! pre-assessed usage probabilities, the independent routing module, the
//! preliminary→subsequent dependency graph, and calibrated device
//! profiles for the paper's two evaluation machines.
//!
//! A CoE model differs from an MoE in exactly the ways CoServe exploits
//! (paper §2.1): experts are independent models, the router is an
//! independent module, and therefore usage probabilities and expert
//! dependencies are knowable *before* serving starts.
//!
//! ```
//! use coserve_model::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = CoeModel::builder("pcb-demo");
//! b.arch(ArchSpec::resnet101());
//! b.arch(ArchSpec::yolov5m());
//! let cls = b.expert("cls-capacitor", RESNET101, 0.6);
//! let det = b.expert("det-solder", YOLOV5M, 0.55);
//! b.rule(ClassId(0), RouteRule::with_follow_up(cls, det, 0.92));
//! let model = b.build()?;
//! assert!(model.graph().is_subsequent(det));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod arch;
pub mod coe;
pub mod devices;
pub mod expert;
pub mod graph;
pub mod routing;

/// Convenient re-exports of the most commonly used items.
pub mod prelude {
    pub use crate::arch::{ArchSpec, RESNET101, YOLOV5L, YOLOV5M};
    pub use crate::coe::{CoeModel, CoeModelBuilder, ModelError};
    pub use crate::devices;
    pub use crate::expert::{Expert, ExpertId};
    pub use crate::graph::{DependencyGraph, GraphError};
    pub use crate::routing::{ClassId, RouteRule, RouteStage, RoutingTable};
}

pub use prelude::*;
