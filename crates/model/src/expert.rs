//! Individual expert models.
//!
//! A CoE system is a pool of independently trained expert models. Each
//! expert has an architecture (shared cost model), a checkpoint of its
//! own unique weights, and a *pre-assessed usage probability* — the
//! statistic the paper's expert manager prefers over LRU history (§3.2,
//! §4.3). Usage probabilities come from the routing rules plus the
//! deployment's class distribution and are attached during model
//! construction or by the offline profiler.

use std::fmt;

use coserve_sim::device::ArchId;

/// Identifies one expert. Expert ids are dense indices into the owning
/// [`crate::coe::CoeModel`]'s expert table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ExpertId(pub u32);

impl ExpertId {
    /// The id as a usize index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ExpertId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "expert#{}", self.0)
    }
}

/// One expert model.
#[derive(Debug, Clone, PartialEq)]
pub struct Expert {
    id: ExpertId,
    name: String,
    arch: ArchId,
    usage_prob: f64,
}

impl Expert {
    /// Creates an expert.
    ///
    /// # Panics
    ///
    /// Panics if `usage_prob` is negative or NaN. (Values above 1 are
    /// permitted: shared subsequent experts can be "used" by several
    /// chains and the manager only ever *compares* probabilities.)
    #[must_use]
    pub fn new(id: ExpertId, name: impl Into<String>, arch: ArchId, usage_prob: f64) -> Self {
        assert!(
            usage_prob >= 0.0 && !usage_prob.is_nan(),
            "usage probability must be a non-negative number"
        );
        Expert {
            id,
            name: name.into(),
            arch,
            usage_prob,
        }
    }

    /// The expert's id.
    #[must_use]
    pub fn id(&self) -> ExpertId {
        self.id
    }

    /// Human-readable name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The expert's architecture (keys its cost model).
    #[must_use]
    pub fn arch(&self) -> ArchId {
        self.arch
    }

    /// The pre-assessed probability that an incoming request uses this
    /// expert (§4.5).
    #[must_use]
    pub fn usage_prob(&self) -> f64 {
        self.usage_prob
    }

    /// Replaces the usage probability; used when the offline profiler
    /// re-estimates probabilities empirically.
    ///
    /// # Panics
    ///
    /// Panics on negative or NaN input.
    pub fn set_usage_prob(&mut self, p: f64) {
        assert!(
            p >= 0.0 && !p.is_nan(),
            "usage probability must be a non-negative number"
        );
        self.usage_prob = p;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::RESNET101;

    #[test]
    fn construction_and_accessors() {
        let e = Expert::new(ExpertId(3), "cls-r47", RESNET101, 0.02);
        assert_eq!(e.id(), ExpertId(3));
        assert_eq!(e.id().index(), 3);
        assert_eq!(e.name(), "cls-r47");
        assert_eq!(e.arch(), RESNET101);
        assert!((e.usage_prob() - 0.02).abs() < 1e-12);
        assert_eq!(e.id().to_string(), "expert#3");
    }

    #[test]
    fn usage_prob_can_be_updated() {
        let mut e = Expert::new(ExpertId(0), "x", RESNET101, 0.5);
        e.set_usage_prob(0.25);
        assert!((e.usage_prob() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn shared_experts_may_exceed_unity() {
        // A detection expert shared by many chains can accumulate > 1.
        let e = Expert::new(ExpertId(1), "det", RESNET101, 1.4);
        assert!(e.usage_prob() > 1.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_prob_panics() {
        let _ = Expert::new(ExpertId(0), "x", RESNET101, -0.1);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn nan_prob_panics() {
        let mut e = Expert::new(ExpertId(0), "x", RESNET101, 0.1);
        e.set_usage_prob(f64::NAN);
    }
}
