//! The Collaboration-of-Experts model.
//!
//! A [`CoeModel`] bundles everything the serving system needs to know
//! about the deployed model family: the architecture specs, the expert
//! table, the routing module and the dependency graph. Construction goes
//! through [`CoeModelBuilder`], which validates the cross-references —
//! dangling expert ids, unknown architectures and cyclic dependencies
//! are construction-time errors rather than serving-time surprises.

use std::collections::BTreeMap;
use std::fmt;

use coserve_sim::device::ArchId;
use coserve_sim::memory::Bytes;

use crate::arch::ArchSpec;
use crate::expert::{Expert, ExpertId};
use crate::graph::{DependencyGraph, GraphError};
use crate::routing::{ClassId, RouteRule, RoutingTable};

/// Error produced when assembling a [`CoeModel`].
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// The model has no experts.
    NoExperts,
    /// Two architectures share an id.
    DuplicateArch(ArchId),
    /// An expert references an architecture that was never declared.
    UnknownArch(ExpertId, ArchId),
    /// A routing rule references an expert that does not exist.
    UnknownExpert(ClassId, ExpertId),
    /// A dependency edge is invalid.
    Graph(GraphError),
    /// The routing table has no rules.
    NoRoutes,
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::NoExperts => write!(f, "model declares no experts"),
            ModelError::DuplicateArch(a) => write!(f, "duplicate architecture {a}"),
            ModelError::UnknownArch(e, a) => {
                write!(f, "expert {e} references unknown architecture {a}")
            }
            ModelError::UnknownExpert(c, e) => {
                write!(f, "routing rule for {c} references unknown expert {e}")
            }
            ModelError::Graph(g) => write!(f, "invalid dependency graph: {g}"),
            ModelError::NoRoutes => write!(f, "routing table is empty"),
        }
    }
}

impl std::error::Error for ModelError {}

impl From<GraphError> for ModelError {
    fn from(value: GraphError) -> Self {
        ModelError::Graph(value)
    }
}

/// A complete CoE model: experts, architectures, routing and
/// dependencies.
///
/// ```
/// use coserve_model::prelude::*;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = CoeModel::builder("demo");
/// b.arch(ArchSpec::resnet101());
/// b.arch(ArchSpec::yolov5m());
/// let cls = b.expert("cls-0", RESNET101, 0.7);
/// let det = b.expert("det-0", YOLOV5M, 0.6);
/// b.rule(ClassId(0), RouteRule::with_follow_up(cls, det, 0.9));
/// let model = b.build()?;
/// assert_eq!(model.num_experts(), 2);
/// assert!(model.graph().is_subsequent(det));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CoeModel {
    name: String,
    archs: BTreeMap<ArchId, ArchSpec>,
    experts: Vec<Expert>,
    routing: RoutingTable,
    graph: DependencyGraph,
}

impl CoeModel {
    /// Starts building a model.
    #[must_use]
    pub fn builder(name: impl Into<String>) -> CoeModelBuilder {
        CoeModelBuilder {
            name: name.into(),
            archs: BTreeMap::new(),
            experts: Vec::new(),
            routing: RoutingTable::new(),
            extra_edges: Vec::new(),
        }
    }

    /// The model's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of experts.
    #[must_use]
    pub fn num_experts(&self) -> usize {
        self.experts.len()
    }

    /// All experts, indexable by [`ExpertId::index`].
    #[must_use]
    pub fn experts(&self) -> &[Expert] {
        &self.experts
    }

    /// The expert with id `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range; ids handed out by the builder are
    /// always valid.
    #[must_use]
    pub fn expert(&self, e: ExpertId) -> &Expert {
        &self.experts[e.index()]
    }

    /// The architecture spec backing expert `e`.
    #[must_use]
    pub fn arch_of(&self, e: ExpertId) -> &ArchSpec {
        &self.archs[&self.expert(e).arch()]
    }

    /// Declared architectures, in id order.
    pub fn archs(&self) -> impl Iterator<Item = &ArchSpec> {
        self.archs.values()
    }

    /// The architecture spec for `id`, if declared.
    #[must_use]
    pub fn arch(&self, id: ArchId) -> Option<&ArchSpec> {
        self.archs.get(&id)
    }

    /// Checkpoint size of expert `e` — the bytes that move on a switch.
    #[must_use]
    pub fn weight_bytes(&self, e: ExpertId) -> Bytes {
        self.arch_of(e).weights()
    }

    /// Sum of all experts' checkpoint sizes — the memory a device would
    /// need to avoid switching entirely.
    #[must_use]
    pub fn total_weight_bytes(&self) -> Bytes {
        (0..self.experts.len() as u32)
            .map(|i| self.weight_bytes(ExpertId(i)))
            .sum()
    }

    /// The expert's *memory score*: its footprint normalized by the
    /// smallest expert footprint in the model (paper Figure 10 uses
    /// scores 1–3). Used by the two-stage eviction to order stage-1
    /// victims.
    #[must_use]
    pub fn memory_score(&self, e: ExpertId) -> f64 {
        let min = self
            .archs
            .values()
            .map(|a| a.weights().get())
            .min()
            .expect("validated models have architectures");
        self.weight_bytes(e).get() as f64 / min as f64
    }

    /// The routing module.
    #[must_use]
    pub fn routing(&self) -> &RoutingTable {
        &self.routing
    }

    /// The dependency graph.
    #[must_use]
    pub fn graph(&self) -> &DependencyGraph {
        &self.graph
    }

    /// Overwrites every expert's usage probability (e.g. with the
    /// offline profiler's estimates).
    ///
    /// # Panics
    ///
    /// Panics if `probs.len()` differs from the number of experts, or if
    /// any probability is negative/NaN.
    pub fn set_usage_probs(&mut self, probs: &[f64]) {
        assert_eq!(
            probs.len(),
            self.experts.len(),
            "probability table must cover every expert"
        );
        for (expert, &p) in self.experts.iter_mut().zip(probs) {
            expert.set_usage_prob(p);
        }
    }

    /// Expert ids sorted by descending usage probability (ties broken by
    /// id for determinism) — the initializer's loading order (§4.1).
    #[must_use]
    pub fn experts_by_usage(&self) -> Vec<ExpertId> {
        let mut ids: Vec<ExpertId> = self.experts.iter().map(Expert::id).collect();
        ids.sort_by(|&a, &b| {
            self.expert(b)
                .usage_prob()
                .partial_cmp(&self.expert(a).usage_prob())
                .expect("probabilities are finite")
                .then(a.cmp(&b))
        });
        ids
    }
}

/// Builder for [`CoeModel`]; see [`CoeModel::builder`].
#[derive(Debug)]
pub struct CoeModelBuilder {
    name: String,
    archs: BTreeMap<ArchId, ArchSpec>,
    experts: Vec<Expert>,
    routing: RoutingTable,
    extra_edges: Vec<(ExpertId, ExpertId)>,
}

impl CoeModelBuilder {
    /// Declares an architecture. Redeclaring the same id is an error at
    /// [`CoeModelBuilder::build`] time only if the specs differ.
    pub fn arch(&mut self, spec: ArchSpec) -> &mut Self {
        self.archs.insert(spec.id(), spec);
        self
    }

    /// Declares an expert and returns its id.
    pub fn expert(&mut self, name: impl Into<String>, arch: ArchId, usage_prob: f64) -> ExpertId {
        let id = ExpertId(self.experts.len() as u32);
        self.experts.push(Expert::new(id, name, arch, usage_prob));
        id
    }

    /// Installs the routing rule for `class`. Consecutive stages of the
    /// rule implicitly add dependency edges at build time.
    pub fn rule(&mut self, class: ClassId, rule: RouteRule) -> &mut Self {
        self.routing.set_rule(class, rule);
        self
    }

    /// Adds an explicit dependency edge beyond those implied by routing
    /// rules.
    pub fn dependency(&mut self, preliminary: ExpertId, subsequent: ExpertId) -> &mut Self {
        self.extra_edges.push((preliminary, subsequent));
        self
    }

    /// Validates the model and builds it.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] when experts/routes are missing, a
    /// reference dangles, or a dependency edge is invalid.
    pub fn build(&self) -> Result<CoeModel, ModelError> {
        if self.experts.is_empty() {
            return Err(ModelError::NoExperts);
        }
        if self.routing.is_empty() {
            return Err(ModelError::NoRoutes);
        }
        for expert in &self.experts {
            if !self.archs.contains_key(&expert.arch()) {
                return Err(ModelError::UnknownArch(expert.id(), expert.arch()));
            }
        }
        let mut graph = DependencyGraph::new(self.experts.len());
        for (class, rule) in self.routing.iter() {
            for stage in rule.stages() {
                if stage.expert.index() >= self.experts.len() {
                    return Err(ModelError::UnknownExpert(class, stage.expert));
                }
            }
            for pair in rule.stages().windows(2) {
                graph.add_dependency(pair[0].expert, pair[1].expert)?;
            }
        }
        for &(p, s) in &self.extra_edges {
            graph.add_dependency(p, s)?;
        }
        Ok(CoeModel {
            name: self.name.clone(),
            archs: self.archs.clone(),
            experts: self.experts.clone(),
            routing: self.routing.clone(),
            graph,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::{RESNET101, YOLOV5L, YOLOV5M};

    fn small_model() -> CoeModel {
        let mut b = CoeModel::builder("test");
        b.arch(ArchSpec::resnet101());
        b.arch(ArchSpec::yolov5m());
        let c0 = b.expert("cls-0", RESNET101, 0.5);
        let c1 = b.expert("cls-1", RESNET101, 0.3);
        let det = b.expert("det", YOLOV5M, 0.7);
        b.rule(ClassId(0), RouteRule::with_follow_up(c0, det, 0.9));
        b.rule(ClassId(1), RouteRule::with_follow_up(c1, det, 0.8));
        b.build().unwrap()
    }

    #[test]
    fn builder_produces_consistent_model() {
        let m = small_model();
        assert_eq!(m.name(), "test");
        assert_eq!(m.num_experts(), 3);
        assert_eq!(m.experts().len(), 3);
        assert_eq!(m.expert(ExpertId(2)).name(), "det");
        assert_eq!(m.arch_of(ExpertId(0)).name(), "ResNet101");
        assert_eq!(m.archs().count(), 2);
        assert!(m.arch(RESNET101).is_some());
        assert!(m.arch(YOLOV5L).is_none());
    }

    #[test]
    fn routing_rules_imply_dependencies() {
        let m = small_model();
        let det = ExpertId(2);
        assert!(m.graph().is_subsequent(det));
        assert_eq!(m.graph().preliminaries_of(det).len(), 2);
        assert!(m.graph().is_preliminary(ExpertId(0)));
    }

    #[test]
    fn weight_accounting() {
        let m = small_model();
        assert_eq!(m.weight_bytes(ExpertId(0)), Bytes::new(178_000_000));
        assert_eq!(
            m.total_weight_bytes(),
            Bytes::new(178_000_000 * 2 + 85_000_000)
        );
    }

    #[test]
    fn memory_scores_are_normalized() {
        let m = small_model();
        // Smallest arch is YOLOv5m (85 MB) → score 1.0.
        assert!((m.memory_score(ExpertId(2)) - 1.0).abs() < 1e-12);
        let resnet_score = m.memory_score(ExpertId(0));
        assert!((resnet_score - 178.0 / 85.0).abs() < 1e-9);
    }

    #[test]
    fn usage_order_is_descending_and_stable() {
        let m = small_model();
        let order = m.experts_by_usage();
        assert_eq!(order, vec![ExpertId(2), ExpertId(0), ExpertId(1)]);
    }

    #[test]
    fn set_usage_probs_overwrites() {
        let mut m = small_model();
        m.set_usage_probs(&[0.1, 0.9, 0.2]);
        assert_eq!(m.experts_by_usage()[0], ExpertId(1));
    }

    #[test]
    #[should_panic(expected = "cover every expert")]
    fn set_usage_probs_wrong_len_panics() {
        let mut m = small_model();
        m.set_usage_probs(&[0.1]);
    }

    #[test]
    fn build_rejects_empty_model() {
        let b = CoeModel::builder("empty");
        assert_eq!(b.build().unwrap_err(), ModelError::NoExperts);
    }

    #[test]
    fn build_rejects_missing_routes() {
        let mut b = CoeModel::builder("no-routes");
        b.arch(ArchSpec::resnet101());
        b.expert("cls", RESNET101, 0.1);
        assert_eq!(b.build().unwrap_err(), ModelError::NoRoutes);
    }

    #[test]
    fn build_rejects_unknown_arch() {
        let mut b = CoeModel::builder("bad-arch");
        let e = b.expert("cls", RESNET101, 0.1);
        b.rule(ClassId(0), RouteRule::single(e));
        match b.build().unwrap_err() {
            ModelError::UnknownArch(id, arch) => {
                assert_eq!(id, e);
                assert_eq!(arch, RESNET101);
            }
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn build_rejects_dangling_expert_in_rule() {
        let mut b = CoeModel::builder("dangling");
        b.arch(ArchSpec::resnet101());
        let e = b.expert("cls", RESNET101, 0.1);
        b.rule(ClassId(0), RouteRule::with_follow_up(e, ExpertId(99), 0.5));
        match b.build().unwrap_err() {
            ModelError::UnknownExpert(c, id) => {
                assert_eq!(c, ClassId(0));
                assert_eq!(id, ExpertId(99));
            }
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn build_rejects_cyclic_extra_edges() {
        let mut b = CoeModel::builder("cycle");
        b.arch(ArchSpec::resnet101());
        let a = b.expert("a", RESNET101, 0.1);
        let c = b.expert("c", RESNET101, 0.1);
        b.rule(ClassId(0), RouteRule::single(a));
        b.dependency(a, c);
        b.dependency(c, a);
        assert!(matches!(b.build().unwrap_err(), ModelError::Graph(_)));
    }

    #[test]
    fn error_display_is_informative() {
        let err = ModelError::UnknownExpert(ClassId(4), ExpertId(9));
        assert!(err.to_string().contains("class#4"));
        assert!(err.to_string().contains("expert#9"));
    }
}
