//! The routing module.
//!
//! CoE routing selects which expert chain handles a request (paper
//! Figure 2). Unlike MoE gating — decided inside the model at runtime —
//! CoE routing is an *independent* module: user-defined rules or a
//! separately trained router. That independence is what lets CoServe
//! compute usage probabilities and dependencies ahead of time (§2.1,
//! §4.5).
//!
//! [`RoutingTable`] implements the rule-based case: every input class
//! maps to a chain of stages, each stage naming an expert and the
//! probability that the pipeline proceeds to the next stage (e.g. a
//! classification expert finds no defect with probability `p`, in which
//! case a detection expert verifies alignment).

use std::collections::BTreeMap;
use std::fmt;

use crate::expert::ExpertId;

/// Identifies an input class (e.g. a circuit-board component type, or a
/// request domain in an LLM deployment). The routing module maps classes
/// to expert chains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClassId(pub u32);

impl ClassId {
    /// The id as a usize index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ClassId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "class#{}", self.0)
    }
}

/// One stage of an expert chain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RouteStage {
    /// The expert that executes this stage.
    pub expert: ExpertId,
    /// Probability that the pipeline continues to the *next* stage after
    /// this one completes (ignored for the final stage).
    pub proceed_prob: f64,
}

impl RouteStage {
    /// A terminal stage: the chain ends here.
    #[must_use]
    pub fn terminal(expert: ExpertId) -> Self {
        RouteStage {
            expert,
            proceed_prob: 0.0,
        }
    }

    /// A stage that proceeds to the next one with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    #[must_use]
    pub fn then_with_prob(expert: ExpertId, p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "proceed probability must be in [0,1]"
        );
        RouteStage {
            expert,
            proceed_prob: p,
        }
    }
}

/// The expert chain handling one input class.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RouteRule {
    stages: Vec<RouteStage>,
}

impl RouteRule {
    /// A single-stage rule.
    #[must_use]
    pub fn single(expert: ExpertId) -> Self {
        RouteRule {
            stages: vec![RouteStage::terminal(expert)],
        }
    }

    /// A two-stage rule: `primary` always runs; `follow_up` runs with
    /// probability `proceed_prob` — the paper's classification →
    /// detection pattern.
    ///
    /// # Panics
    ///
    /// Panics if `proceed_prob` is not in `[0, 1]`.
    #[must_use]
    pub fn with_follow_up(primary: ExpertId, follow_up: ExpertId, proceed_prob: f64) -> Self {
        RouteRule {
            stages: vec![
                RouteStage::then_with_prob(primary, proceed_prob),
                RouteStage::terminal(follow_up),
            ],
        }
    }

    /// A rule from explicit stages.
    ///
    /// # Panics
    ///
    /// Panics if `stages` is empty.
    #[must_use]
    pub fn from_stages(stages: Vec<RouteStage>) -> Self {
        assert!(!stages.is_empty(), "a route rule needs at least one stage");
        RouteRule { stages }
    }

    /// The stages, first to last.
    #[must_use]
    pub fn stages(&self) -> &[RouteStage] {
        &self.stages
    }

    /// Number of stages.
    #[must_use]
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// Whether the rule has no stages (never true for constructed rules).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// Probability that stage `i` executes, given the request enters the
    /// chain: the product of the preceding stages' proceed probabilities.
    #[must_use]
    pub fn stage_reach_prob(&self, i: usize) -> f64 {
        self.stages[..i].iter().map(|s| s.proceed_prob).product()
    }
}

/// A user-defined routing table: class → expert chain.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RoutingTable {
    rules: BTreeMap<ClassId, RouteRule>,
}

impl RoutingTable {
    /// Creates an empty table.
    #[must_use]
    pub fn new() -> Self {
        RoutingTable::default()
    }

    /// Installs (or replaces) the rule for `class`, returning the
    /// previous rule if any.
    pub fn set_rule(&mut self, class: ClassId, rule: RouteRule) -> Option<RouteRule> {
        self.rules.insert(class, rule)
    }

    /// The rule for `class`, if any.
    #[must_use]
    pub fn rule(&self, class: ClassId) -> Option<&RouteRule> {
        self.rules.get(&class)
    }

    /// Iterates rules in class order.
    pub fn iter(&self) -> impl Iterator<Item = (ClassId, &RouteRule)> {
        self.rules.iter().map(|(&c, r)| (c, r))
    }

    /// Number of classes with rules.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Whether the table has no rules.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Computes each expert's usage probability from the class
    /// distribution: `usage[e] = Σ_class P(class) · P(stage using e
    /// executes)` (§4.5 — "if the routing rules are predefined, expert
    /// usage probabilities can be calculated directly").
    ///
    /// `class_probs` entries for classes without rules contribute
    /// nothing; `num_experts` sizes the output table.
    #[must_use]
    pub fn usage_probabilities(
        &self,
        class_probs: &[(ClassId, f64)],
        num_experts: usize,
    ) -> Vec<f64> {
        let mut usage = vec![0.0; num_experts];
        for &(class, p) in class_probs {
            let Some(rule) = self.rules.get(&class) else {
                continue;
            };
            for (i, stage) in rule.stages().iter().enumerate() {
                if stage.expert.index() < num_experts {
                    usage[stage.expert.index()] += p * rule.stage_reach_prob(i);
                }
            }
        }
        usage
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(i: u32) -> ExpertId {
        ExpertId(i)
    }
    fn c(i: u32) -> ClassId {
        ClassId(i)
    }

    #[test]
    fn single_stage_rule() {
        let r = RouteRule::single(e(4));
        assert_eq!(r.len(), 1);
        assert!(!r.is_empty());
        assert_eq!(r.stages()[0].expert, e(4));
        assert_eq!(r.stage_reach_prob(0), 1.0);
    }

    #[test]
    fn follow_up_rule_reach_probabilities() {
        let r = RouteRule::with_follow_up(e(0), e(1), 0.9);
        assert_eq!(r.len(), 2);
        assert_eq!(r.stage_reach_prob(0), 1.0);
        assert!((r.stage_reach_prob(1) - 0.9).abs() < 1e-12);
    }

    #[test]
    fn three_stage_chain_multiplies() {
        let r = RouteRule::from_stages(vec![
            RouteStage::then_with_prob(e(0), 0.5),
            RouteStage::then_with_prob(e(1), 0.5),
            RouteStage::terminal(e(2)),
        ]);
        assert!((r.stage_reach_prob(2) - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one stage")]
    fn empty_rule_panics() {
        let _ = RouteRule::from_stages(vec![]);
    }

    #[test]
    #[should_panic(expected = "must be in [0,1]")]
    fn bad_probability_panics() {
        let _ = RouteStage::then_with_prob(e(0), 1.5);
    }

    #[test]
    fn table_set_and_lookup() {
        let mut t = RoutingTable::new();
        assert!(t.is_empty());
        t.set_rule(c(0), RouteRule::single(e(0)));
        let replaced = t.set_rule(c(0), RouteRule::single(e(1)));
        assert!(replaced.is_some());
        assert_eq!(t.len(), 1);
        assert_eq!(t.rule(c(0)).unwrap().stages()[0].expert, e(1));
        assert!(t.rule(c(9)).is_none());
        assert_eq!(t.iter().count(), 1);
        assert_eq!(c(0).to_string(), "class#0");
        assert_eq!(c(3).index(), 3);
    }

    #[test]
    fn usage_probabilities_direct_computation() {
        // Two classes: class 0 (60%) uses expert 0 then expert 2 with
        // p=0.9; class 1 (40%) uses expert 1 then expert 2 with p=0.5.
        let mut t = RoutingTable::new();
        t.set_rule(c(0), RouteRule::with_follow_up(e(0), e(2), 0.9));
        t.set_rule(c(1), RouteRule::with_follow_up(e(1), e(2), 0.5));
        let usage = t.usage_probabilities(&[(c(0), 0.6), (c(1), 0.4)], 3);
        assert!((usage[0] - 0.6).abs() < 1e-12);
        assert!((usage[1] - 0.4).abs() < 1e-12);
        // Shared detection expert: 0.6*0.9 + 0.4*0.5 = 0.74.
        assert!((usage[2] - 0.74).abs() < 1e-12);
    }

    #[test]
    fn usage_ignores_unrouted_classes_and_foreign_experts() {
        let mut t = RoutingTable::new();
        t.set_rule(c(0), RouteRule::single(e(7)));
        let usage = t.usage_probabilities(&[(c(0), 1.0), (c(1), 1.0)], 3);
        // Expert 7 is out of range for a 3-expert table; nothing counted.
        assert!(usage.iter().all(|&u| u == 0.0));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// For single-stage rules over a proper distribution, usage
        /// probabilities sum to the total routed mass.
        #[test]
        fn usage_mass_is_conserved(
            probs in proptest::collection::vec(0.0f64..1.0, 1..20),
        ) {
            let total: f64 = probs.iter().sum();
            prop_assume!(total > 0.0);
            let mut table = RoutingTable::new();
            let class_probs: Vec<(ClassId, f64)> = probs
                .iter()
                .enumerate()
                .map(|(i, &p)| {
                    table.set_rule(ClassId(i as u32), RouteRule::single(ExpertId(i as u32)));
                    (ClassId(i as u32), p / total)
                })
                .collect();
            let usage = table.usage_probabilities(&class_probs, probs.len());
            let mass: f64 = usage.iter().sum();
            prop_assert!((mass - 1.0).abs() < 1e-9, "mass {}", mass);
        }
    }
}
