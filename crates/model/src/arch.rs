//! Expert model architectures.
//!
//! The paper's evaluation uses three architectures: ResNet101 for the
//! per-component classification experts and YOLOv5m / YOLOv5l for the
//! shared object-detection experts (§5.1). All experts of one
//! architecture share compute cost and memory footprint — the offline
//! profiler exploits exactly that ("experts of the same model
//! architecture are profiled only once", §4.5) — so cost models are
//! keyed by [`ArchId`], not by expert.

use coserve_sim::device::ArchId;
use coserve_sim::memory::Bytes;

/// The [`ArchId`] of the ResNet101 classification architecture.
pub const RESNET101: ArchId = ArchId(0);
/// The [`ArchId`] of the YOLOv5m object-detection architecture.
pub const YOLOV5M: ArchId = ArchId(1);
/// The [`ArchId`] of the YOLOv5l object-detection architecture.
pub const YOLOV5L: ArchId = ArchId(2);

/// A named expert architecture with its parameter count and checkpoint
/// size.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArchSpec {
    id: ArchId,
    name: String,
    parameters: u64,
    weights: Bytes,
}

impl ArchSpec {
    /// Creates an architecture description.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is zero — a weightless expert cannot be
    /// loaded or evicted, and every algorithm in the paper is about
    /// moving weights.
    #[must_use]
    pub fn new(id: ArchId, name: impl Into<String>, parameters: u64, weights: Bytes) -> Self {
        assert!(!weights.is_zero(), "architecture weights must be non-zero");
        ArchSpec {
            id,
            name: name.into(),
            parameters,
            weights,
        }
    }

    /// ResNet101: 44.5 M parameters, ~178 MB fp32 checkpoint.
    #[must_use]
    pub fn resnet101() -> Self {
        ArchSpec::new(RESNET101, "ResNet101", 44_549_160, Bytes::new(178_000_000))
    }

    /// YOLOv5m: 21.2 M parameters, ~85 MB fp32 checkpoint.
    #[must_use]
    pub fn yolov5m() -> Self {
        ArchSpec::new(YOLOV5M, "YOLOv5m", 21_172_173, Bytes::new(85_000_000))
    }

    /// YOLOv5l: 46.5 M parameters, ~186 MB fp32 checkpoint.
    #[must_use]
    pub fn yolov5l() -> Self {
        ArchSpec::new(YOLOV5L, "YOLOv5l", 46_533_693, Bytes::new(186_000_000))
    }

    /// The three architectures used throughout the paper's evaluation.
    #[must_use]
    pub fn paper_set() -> Vec<ArchSpec> {
        vec![
            ArchSpec::resnet101(),
            ArchSpec::yolov5m(),
            ArchSpec::yolov5l(),
        ]
    }

    /// The architecture's identifier.
    #[must_use]
    pub fn id(&self) -> ArchId {
        self.id
    }

    /// Human-readable name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Parameter count.
    #[must_use]
    pub fn parameters(&self) -> u64 {
        self.parameters
    }

    /// Checkpoint size — the bytes that move when the expert switches.
    #[must_use]
    pub fn weights(&self) -> Bytes {
        self.weights
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_archs_have_distinct_ids() {
        let set = ArchSpec::paper_set();
        assert_eq!(set.len(), 3);
        let mut ids: Vec<ArchId> = set.iter().map(ArchSpec::id).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), 3);
    }

    #[test]
    fn resnet_checkpoint_is_fp32_sized() {
        let r = ArchSpec::resnet101();
        // fp32 = 4 bytes per parameter, within slack for buffers/headers.
        let fp32 = r.parameters() * 4;
        let ratio = r.weights().get() as f64 / fp32 as f64;
        assert!((0.9..1.1).contains(&ratio), "ratio {ratio}");
        assert_eq!(r.name(), "ResNet101");
    }

    #[test]
    fn paper_memory_scale_matches_motivation() {
        // "over 300 experts (13B parameters, 60GB memory)" — 352
        // ResNet101 classification experts alone reach that scale.
        let r = ArchSpec::resnet101();
        let total = r.weights() * 352;
        assert!(total > Bytes::gib(55), "total {total}");
        let params = r.parameters() * 352;
        assert!(params > 13_000_000_000);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_weights_panics() {
        let _ = ArchSpec::new(ArchId(9), "ghost", 1, Bytes::ZERO);
    }

    #[test]
    fn custom_arch() {
        let a = ArchSpec::new(ArchId(7), "TinyNet", 1_000_000, Bytes::mib(4));
        assert_eq!(a.id(), ArchId(7));
        assert_eq!(a.parameters(), 1_000_000);
        assert_eq!(a.weights(), Bytes::mib(4));
    }
}
