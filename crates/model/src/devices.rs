//! Calibrated device profiles for the paper's evaluation hardware.
//!
//! These functions take the hardware-only presets from `coserve-sim` and
//! install kernel cost models for the three paper architectures on both
//! processors. The constants are calibrated so the simulator reproduces
//! the *shapes* of the paper's measurement figures:
//!
//! * Figure 1 — switch latency share: ≥ 90 % for SSD→GPU on both
//!   devices, 63–86 % for CPU→GPU;
//! * Figures 5/12 — execution latency linear in batch size; average
//!   latency plateaus near batch 16 (NUMA GPU), 6 (UMA GPU), 5–8 (CPU);
//! * Figure 6 — GPU memory footprint grows ≈ 1.5 ResNet101 experts per
//!   extra batch item on the NUMA device.
//!
//! The band assertions in `tests/figures_smoke.rs` pin these shapes;
//! `PAPER.md` at the workspace root summarizes the source paper.

use coserve_sim::compute::{LatencyModel, MemoryModel};
use coserve_sim::device::{DeviceProfile, KernelProfile, ProcessorKind};
use coserve_sim::memory::Bytes;

use crate::arch::{ArchSpec, RESNET101, YOLOV5L, YOLOV5M};

fn kernel(
    base_ms: f64,
    per_item_ms: f64,
    saturation: u32,
    penalty: f64,
    workspace_mib: u64,
    weights: Bytes,
    per_item_mib: u64,
) -> KernelProfile {
    KernelProfile {
        latency: LatencyModel::linear(base_ms, per_item_ms).with_saturation(saturation, penalty),
        memory: MemoryModel::new(Bytes::mib(workspace_mib), weights, Bytes::mib(per_item_mib)),
    }
}

/// Installs calibrated kernels for the three paper architectures on a
/// NUMA device profile (RTX 3080 Ti GPU + Xeon Silver 4214R CPU).
pub fn install_numa_kernels(device: &mut DeviceProfile) {
    let resnet = ArchSpec::resnet101().weights();
    let yolom = ArchSpec::yolov5m().weights();
    let yolol = ArchSpec::yolov5l().weights();
    use ProcessorKind::{Cpu, Gpu};
    device.set_kernel(RESNET101, Gpu, kernel(8.0, 1.1, 16, 0.5, 200, resnet, 260));
    device.set_kernel(
        RESNET101,
        Cpu,
        kernel(170.0, 36.0, 8, 4.0, 100, resnet, 150),
    );
    device.set_kernel(YOLOV5M, Gpu, kernel(4.0, 2.0, 12, 0.8, 150, yolom, 190));
    device.set_kernel(YOLOV5M, Cpu, kernel(300.0, 75.0, 6, 8.0, 100, yolom, 110));
    device.set_kernel(YOLOV5L, Gpu, kernel(5.0, 3.2, 12, 1.0, 200, yolol, 260));
    device.set_kernel(YOLOV5L, Cpu, kernel(450.0, 120.0, 5, 12.0, 120, yolol, 160));
}

/// Installs calibrated kernels for the three paper architectures on a
/// UMA device profile (Apple M2).
pub fn install_uma_kernels(device: &mut DeviceProfile) {
    let resnet = ArchSpec::resnet101().weights();
    let yolom = ArchSpec::yolov5m().weights();
    let yolol = ArchSpec::yolov5l().weights();
    use ProcessorKind::{Cpu, Gpu};
    device.set_kernel(RESNET101, Gpu, kernel(9.0, 2.2, 6, 1.2, 150, resnet, 180));
    device.set_kernel(RESNET101, Cpu, kernel(80.0, 30.0, 5, 5.0, 80, resnet, 120));
    device.set_kernel(YOLOV5M, Gpu, kernel(14.0, 5.5, 6, 1.5, 120, yolom, 140));
    device.set_kernel(YOLOV5M, Cpu, kernel(180.0, 60.0, 5, 8.0, 80, yolom, 100));
    device.set_kernel(YOLOV5L, Gpu, kernel(30.0, 12.0, 6, 2.5, 150, yolol, 200));
    device.set_kernel(YOLOV5L, Cpu, kernel(260.0, 100.0, 4, 14.0, 100, yolol, 140));
}

/// The paper's NUMA evaluation device with calibrated kernels installed.
#[must_use]
pub fn numa_rtx3080ti() -> DeviceProfile {
    let mut d = DeviceProfile::numa_rtx3080ti();
    install_numa_kernels(&mut d);
    d
}

/// The paper's UMA evaluation device with calibrated kernels installed.
#[must_use]
pub fn uma_apple_m2() -> DeviceProfile {
    let mut d = DeviceProfile::uma_apple_m2();
    install_uma_kernels(&mut d);
    d
}

/// Both evaluation devices, NUMA first — the iteration order used by
/// every figure harness.
#[must_use]
pub fn paper_devices() -> Vec<DeviceProfile> {
    vec![numa_rtx3080ti(), uma_apple_m2()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use coserve_sim::transfer::TransferRoute;

    /// Switch share for batch-1 inference on the GPU, as in Figure 1.
    fn switch_share(
        device: &DeviceProfile,
        arch: coserve_sim::device::ArchId,
        route: TransferRoute,
    ) -> f64 {
        let k = device.kernel(arch, ProcessorKind::Gpu).unwrap();
        let weights = k.memory.weights;
        let exec = k.latency.latency(1).as_secs_f64();
        let switch = device.transfer_duration(weights, route).as_secs_f64();
        switch / (switch + exec)
    }

    #[test]
    fn both_devices_have_all_kernels() {
        for d in paper_devices() {
            for arch in [RESNET101, YOLOV5M, YOLOV5L] {
                for proc in ProcessorKind::ALL {
                    assert!(
                        d.kernel(arch, proc).is_some(),
                        "{} missing kernel for {arch}/{proc}",
                        d.name()
                    );
                }
            }
            assert_eq!(d.arch_ids().len(), 3);
        }
    }

    #[test]
    fn figure1_ssd_to_gpu_share_exceeds_90_percent() {
        for d in paper_devices() {
            for arch in [RESNET101, YOLOV5M, YOLOV5L] {
                let share = switch_share(&d, arch, TransferRoute::SsdToGpu);
                assert!(
                    share > 0.88,
                    "{}/{arch}: SSD→GPU share {share:.3} below Figure 1 band",
                    d.name()
                );
            }
        }
    }

    #[test]
    fn figure1_cpu_to_gpu_share_in_band() {
        for d in paper_devices() {
            for arch in [RESNET101, YOLOV5M, YOLOV5L] {
                let share = switch_share(&d, arch, TransferRoute::CpuToGpu);
                assert!(
                    (0.55..0.95).contains(&share),
                    "{}/{arch}: CPU→GPU share {share:.3} outside Figure 1 band",
                    d.name()
                );
            }
        }
    }

    #[test]
    fn figure5_gpu_avg_latency_plateaus_where_paper_says() {
        let numa = numa_rtx3080ti();
        let numa_opt = numa
            .kernel(RESNET101, ProcessorKind::Gpu)
            .unwrap()
            .latency
            .optimal_batch(32);
        assert!((12..=20).contains(&numa_opt), "NUMA GPU optimum {numa_opt}");

        let uma = uma_apple_m2();
        let uma_opt = uma
            .kernel(RESNET101, ProcessorKind::Gpu)
            .unwrap()
            .latency
            .optimal_batch(32);
        assert!((5..=8).contains(&uma_opt), "UMA GPU optimum {uma_opt}");
        let uma_cpu_opt = uma
            .kernel(RESNET101, ProcessorKind::Cpu)
            .unwrap()
            .latency
            .optimal_batch(32);
        assert!(
            (4..=7).contains(&uma_cpu_opt),
            "UMA CPU optimum {uma_cpu_opt}"
        );
    }

    #[test]
    fn figure6_batch_item_costs_about_1_5_experts_on_numa() {
        let d = numa_rtx3080ti();
        let k = d.kernel(RESNET101, ProcessorKind::Gpu).unwrap();
        let ratio = k.memory.per_item.get() as f64 / k.memory.weights.get() as f64;
        assert!(
            (1.2..1.9).contains(&ratio),
            "per-item/weights ratio {ratio:.2} outside Figure 6 band"
        );
    }

    #[test]
    fn cpu_is_much_slower_than_gpu() {
        for d in paper_devices() {
            for arch in [RESNET101, YOLOV5M, YOLOV5L] {
                let gpu = d
                    .kernel(arch, ProcessorKind::Gpu)
                    .unwrap()
                    .latency
                    .latency_ms(4);
                let cpu = d
                    .kernel(arch, ProcessorKind::Cpu)
                    .unwrap()
                    .latency
                    .latency_ms(4);
                assert!(cpu > 4.0 * gpu, "{}: CPU {cpu} vs GPU {gpu}", d.name());
            }
        }
    }
}
