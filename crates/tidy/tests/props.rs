//! Property tests for the tidy scanner: forbidden tokens that live
//! inside string literals or comments must never produce findings —
//! the whole point of scanning token-aware instead of grepping.

use coserve_tidy::check::{Check, Diagnostic};
use coserve_tidy::checks::determinism::Determinism;
use coserve_tidy::checks::hygiene::NoDebugMacros;
use coserve_tidy::checks::panic::PanicPath;
use coserve_tidy::scan::{FileKind, ScannedFile};
use proptest::prelude::*;

/// Tokens every check in the battery would flag in code position.
const FORBIDDEN: &[&str] = &[
    "HashMap",
    "HashSet",
    "RandomState",
    "Instant",
    "SystemTime",
    "std::env::var",
    "thread_rng",
    ".unwrap()",
    ".expect(\\\"x\\\")",
    "panic!",
    "unreachable!",
    "dbg!",
    "todo!",
    "buf[0]",
];

/// Renders one source line that mentions `token` only inside a
/// comment or a string literal, per `shape`.
fn camouflaged_line(shape: u8, token: &str) -> String {
    match shape % 6 {
        0 => format!("// note: {token} is forbidden here"),
        1 => format!("let s = \"{token}\"; // literal"),
        2 => format!("/* {token} */ let x = 1;"),
        3 => format!("let r = r#\"{token}\"#;"),
        4 => format!("/// docs may cite {token} freely"),
        _ => format!("let b = b\"{token}\";"),
    }
}

/// Every check that matches tokens (determinism, panic-path,
/// no-debug-macros) run over `file`, findings collected.
fn token_findings(file: ScannedFile) -> Vec<Diagnostic> {
    let files = [file];
    let mut out = Vec::new();
    Determinism.run(&files, &mut out);
    PanicPath.run(&files, &mut out);
    NoDebugMacros.run(&files, &mut out);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Any mix of forbidden tokens, each hidden inside a comment or
    /// string literal, scans clean — in a deterministic crate AND on
    /// the server request path, where every one of them would
    /// otherwise fire.
    #[test]
    fn findings_never_originate_inside_literals_or_comments(
        lines in proptest::collection::vec((0u8..6, 0usize..FORBIDDEN.len()), 1..40),
    ) {
        let body: String = lines
            .iter()
            .map(|&(shape, which)| camouflaged_line(shape, FORBIDDEN[which]) + "\n")
            .collect();
        for path in ["crates/core/src/generated.rs", "crates/server/src/protocol.rs"] {
            let crate_name = if path.contains("core") { "core" } else { "server" };
            let file = ScannedFile::parse(path, crate_name, FileKind::Src, &body);
            let found = token_findings(file);
            prop_assert!(found.is_empty(), "false positives on {path}: {found:?}");
        }
    }

    /// The same tokens in code position on the same lines DO fire:
    /// camouflage is load-bearing, not the checks being inert. Scanned
    /// as both a deterministic-crate file and a request-path file so
    /// every token class (determinism, panic, debug-macro) has a check
    /// that covers it.
    #[test]
    fn code_position_tokens_still_fire(
        which in 0usize..FORBIDDEN.len(),
        shape in 0u8..6,
    ) {
        let token = FORBIDDEN[which];
        let body = format!("{}\nlet v = {token};\n", camouflaged_line(shape, token));
        let mut found = Vec::new();
        for (path, crate_name) in [
            ("crates/core/src/generated.rs", "core"),
            ("crates/server/src/protocol.rs", "server"),
        ] {
            found.extend(token_findings(ScannedFile::parse(
                path, crate_name, FileKind::Src, &body,
            )));
        }
        prop_assert!(!found.is_empty(), "no finding for `{token}` in code position");
        // And every finding points at the code line, never the
        // camouflaged one.
        for d in &found {
            prop_assert_eq!(d.line, 2, "{:?}", d);
        }
    }
}
