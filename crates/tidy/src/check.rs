//! The check framework: [`Diagnostic`], the [`Check`] trait, and the
//! identifier-aware matching helpers every check builds on.

use std::fmt;

use crate::scan::{Line, ScannedFile};

/// One finding, printed as `file:line: [check] message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The reporting check's name (the `tidy:allow(...)` key).
    pub check: &'static str,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line number (0 for file-level findings).
    pub line: usize,
    /// What is wrong and what to do instead.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "{}: [{}] {}", self.file, self.check, self.message)
        } else {
            write!(
                f,
                "{}:{}: [{}] {}",
                self.file, self.line, self.check, self.message
            )
        }
    }
}

/// A named rule run over the whole scanned workspace.
pub trait Check {
    /// The check's name — also its `tidy:allow(...)` suppression key.
    fn name(&self) -> &'static str;
    /// Scans `files` and appends findings to `out`. Implementations
    /// must honor per-line suppressions via [`allowed`].
    fn run(&self, files: &[ScannedFile], out: &mut Vec<Diagnostic>);
}

/// Whether `line` suppresses `check` via `tidy:allow(...)`.
#[must_use]
pub fn allowed(line: &Line, check: &str) -> bool {
    line.allows.iter().any(|a| a == check)
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Finds `pattern` in `code` as a token, not a substring: the match
/// must not butt up against identifier characters on either side, so
/// `Instant` does not match `Instantiate` and `panic!` does not match
/// `should_panic`. Patterns may contain `::` path segments. Returns
/// the byte offset of the first such match.
#[must_use]
pub fn find_token(code: &str, pattern: &str) -> Option<usize> {
    let mut from = 0;
    while let Some(rel) = code[from..].find(pattern) {
        let at = from + rel;
        let before_ok = code[..at]
            .chars()
            .next_back()
            .is_none_or(|c| !is_ident_char(c));
        let after_ok = code[at + pattern.len()..]
            .chars()
            .next()
            .is_none_or(|c| !is_ident_char(c));
        // A pattern ending in a non-ident char (e.g. `.expect(`,
        // `env::`) imposes no boundary on its right side; one starting
        // with `.` imposes none on its left.
        let tail_is_ident = pattern.chars().next_back().is_some_and(is_ident_char);
        let head_is_ident = pattern.chars().next().is_some_and(is_ident_char);
        if (before_ok || !head_is_ident) && (after_ok || !tail_is_ident) {
            return Some(at);
        }
        from = at + pattern.len().max(1);
    }
    None
}

/// Counts slice/array index expressions on a code line: a `[` whose
/// previous meaningful token is a value (identifier, `)`, `]`, `?` or
/// a string literal), which is the panicking `Index` operator — as
/// opposed to array types `&[u8]`, attributes `#[...]`, macros
/// `vec![...]` or slice patterns `let [a, b] = ...`.
#[must_use]
pub fn index_sites(code: &str) -> usize {
    let chars: Vec<char> = code.chars().collect();
    let mut count = 0;
    for (i, &c) in chars.iter().enumerate() {
        if c != '[' {
            continue;
        }
        // Walk back over whitespace to the previous token.
        let mut j = i;
        while j > 0 && chars[j - 1] == ' ' {
            j -= 1;
        }
        if j == 0 {
            continue;
        }
        let prev = chars[j - 1];
        if prev == ')' || prev == ']' || prev == '?' || prev == '"' {
            count += 1;
            continue;
        }
        if !is_ident_char(prev) {
            continue;
        }
        // Read the full identifier; keywords (`let [a, b] = ...`,
        // `for [x, y] in ...`) introduce patterns, not indexing —
        // unless preceded by `.`, which makes them field-position
        // (`foo.await[0]` is an index).
        let end = j;
        while j > 0 && is_ident_char(chars[j - 1]) {
            j -= 1;
        }
        let ident: String = chars[j..end].iter().collect();
        // A lifetime (`&'a [u8]`) is a type position, not a value.
        if j > 0 && chars[j - 1] == '\'' {
            continue;
        }
        let keyword = matches!(
            ident.as_str(),
            "let"
                | "in"
                | "return"
                | "break"
                | "else"
                | "match"
                | "mut"
                | "ref"
                | "move"
                | "if"
                | "while"
                | "for"
                | "loop"
                | "box"
                | "yield"
                | "static"
                | "const"
        );
        if keyword && (j == 0 || chars[j - 1] != '.') {
            continue;
        }
        count += 1;
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_boundaries_are_respected() {
        assert!(find_token("use std::collections::HashMap;", "HashMap").is_some());
        assert!(find_token("let m: MyHashMap = x;", "HashMap").is_none());
        assert!(find_token("HashMapLike", "HashMap").is_none());
        assert!(find_token("panic!(\"\")", "panic!").is_some());
        assert!(find_token("#[should_panic]", "panic!").is_none());
        assert!(find_token("x.unwrap_or(0)", ".unwrap()").is_none());
        assert!(find_token("x.unwrap()", ".unwrap()").is_some());
        assert!(find_token("x.expect_err(\"\")", ".expect(").is_none());
        assert!(find_token("x.expect(\"\")", ".expect(").is_some());
        assert!(find_token("std::env::var_os(\"X\")", "env::").is_some());
        assert!(find_token("my_env::thing()", "env::").is_none());
        assert!(find_token("Instant::now()", "Instant").is_some());
        assert!(find_token("Instantiate::now()", "Instant").is_none());
    }

    #[test]
    fn index_sites_count_value_indexing_only() {
        assert_eq!(index_sites("let x = buf[0];"), 1);
        assert_eq!(index_sites("let x = self.owner[job as usize];"), 1);
        assert_eq!(index_sites("foo()[1] + bar[2]"), 2);
        assert_eq!(index_sites("m[k][0]"), 2);
        assert_eq!(index_sites("x?[0]"), 1);
        assert_eq!(index_sites("fn f(b: &[u8]) -> [u8; 4] {"), 0);
        assert_eq!(index_sites("#[derive(Debug)]"), 0);
        assert_eq!(index_sites("#![forbid(unsafe_code)]"), 0);
        assert_eq!(index_sites("vec![0u8; 16]"), 0);
        assert_eq!(index_sites("let [a, b] = pair;"), 0);
        assert_eq!(index_sites("for [x, y] in pairs {"), 0);
        assert_eq!(index_sites("let a = [0u8; 4];"), 0);
        assert_eq!(index_sites("Vec<[u8; 4]>"), 0);
        assert_eq!(
            index_sites("fn take(&mut self) -> Result<&'a [u8], E> {"),
            0
        );
        assert_eq!(index_sites("buf: &'a [u8],"), 0);
    }
}
