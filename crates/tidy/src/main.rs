//! The `coserve-tidy` binary: scan the workspace, run every check,
//! compare the panic ratchet against `tidy_baseline.json`, and report.
//!
//! ```text
//! cargo run -p coserve-tidy            # check; nonzero exit on findings
//! cargo run -p coserve-tidy -- --bless # rewrite tidy_baseline.json
//! ```

use std::fs;
use std::process::ExitCode;

use coserve_tidy::baseline::Baseline;
use coserve_tidy::runner;
use coserve_tidy::workspace;

fn main() -> ExitCode {
    let mut bless = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--bless" => bless = true,
            "--help" | "-h" => {
                eprintln!("usage: coserve-tidy [--bless]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown flag {other} (try --help)");
                return ExitCode::FAILURE;
            }
        }
    }

    let root = workspace::workspace_root();
    let files = match workspace::scan_workspace(&root) {
        Ok(files) => files,
        Err(e) => {
            eprintln!("tidy: cannot scan workspace: {e}");
            return ExitCode::FAILURE;
        }
    };

    let baseline_path = root.join("tidy_baseline.json");
    let baseline = match fs::read_to_string(&baseline_path) {
        Ok(text) => match Baseline::from_json(&text) {
            Ok(baseline) => Some(baseline),
            Err(e) => {
                eprintln!("tidy: {e}");
                return ExitCode::FAILURE;
            }
        },
        Err(_) => None,
    };

    let outcome = runner::run(&files, baseline.as_ref());

    if bless {
        // Hard findings (everything except ratchet drift) still fail a
        // bless: the baseline records justified debt, it does not
        // launder request-path panics or determinism breaks.
        let hard: Vec<_> = outcome
            .diagnostics
            .iter()
            .filter(|d| d.check != "panic-ratchet")
            .collect();
        for d in &hard {
            eprintln!("{d}");
        }
        if !hard.is_empty() {
            eprintln!(
                "tidy: {} finding(s) must be fixed before blessing",
                hard.len()
            );
            return ExitCode::FAILURE;
        }
        let json = outcome.fresh_baseline.to_json();
        if let Err(e) = fs::write(&baseline_path, json) {
            eprintln!("tidy: cannot write {}: {e}", baseline_path.display());
            return ExitCode::FAILURE;
        }
        println!("tidy: blessed {}", baseline_path.display());
        return ExitCode::SUCCESS;
    }

    for d in &outcome.diagnostics {
        eprintln!("{d}");
    }
    if outcome.is_clean() {
        println!(
            "tidy: OK ({} files scanned, {} crates ratcheted)",
            files.len(),
            outcome.fresh_baseline.crates.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("tidy: {} finding(s)", outcome.diagnostics.len());
        ExitCode::FAILURE
    }
}
