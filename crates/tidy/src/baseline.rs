//! The panic-site ratchet baseline: `tidy_baseline.json` at the
//! workspace root.
//!
//! The file pins, per crate and per class, how many panic-capable
//! sites the tree is allowed to contain. CI compares fresh counts
//! against it and fails in both directions: a count above baseline is
//! a new panic site (fix it, justify it with
//! `// tidy:allow(panic-ratchet)`, or consciously re-bless); a count
//! below baseline is progress the file doesn't record yet (re-bless so
//! the ratchet tightens). `cargo run -p coserve-tidy -- --bless`
//! rewrites the file from the current tree.
//!
//! The JSON reader/writer below is deliberately tiny: tidy has no
//! dependencies, and the schema is one object of objects of integers.

use std::collections::BTreeMap;

use crate::checks::panic::{ClassCounts, CLASSES};

/// Parsed `tidy_baseline.json`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Baseline {
    /// Per-crate, per-class pinned counts.
    pub crates: BTreeMap<String, ClassCounts>,
    /// Pinned count for the server request-path files. Must be 0 —
    /// recorded explicitly so the guarantee is visible in the diff.
    pub server_request_path: usize,
}

impl Baseline {
    /// Renders the canonical JSON document.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(
            "  \"_doc\": \"Panic-site ratchet: counts may only go down. Regenerate with \
             `cargo run -p coserve-tidy -- --bless` after removing sites; justify \
             unavoidable ones with a `// tidy:allow(panic-ratchet)` comment instead.\",\n",
        );
        out.push_str(&format!(
            "  \"server_request_path\": {},\n",
            self.server_request_path
        ));
        out.push_str("  \"crates\": {\n");
        let mut first = true;
        for (name, counts) in &self.crates {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            let fields: Vec<String> = CLASSES
                .iter()
                .map(|class| format!("\"{class}\": {}", counts.get(*class).copied().unwrap_or(0)))
                .collect();
            out.push_str(&format!("    \"{name}\": {{ {} }}", fields.join(", ")));
        }
        out.push_str("\n  }\n}\n");
        out
    }

    /// Parses the JSON document.
    ///
    /// # Errors
    ///
    /// Returns a description of the first syntax or schema problem.
    pub fn from_json(text: &str) -> Result<Baseline, String> {
        let value = Json::parse(text)?;
        let Json::Object(top) = value else {
            return Err("baseline: top level must be an object".to_string());
        };
        let mut baseline = Baseline::default();
        for (key, value) in top {
            match (key.as_str(), value) {
                ("_doc", Json::String(doc)) => drop(doc),
                ("server_request_path", Json::Number(n)) => {
                    baseline.server_request_path = n;
                }
                ("crates", Json::Object(crates)) => {
                    for (name, counts) in crates {
                        let Json::Object(fields) = counts else {
                            return Err(format!("baseline: crate `{name}` must be an object"));
                        };
                        let mut parsed = ClassCounts::new();
                        for (class, count) in fields {
                            let Json::Number(n) = count else {
                                return Err(format!(
                                    "baseline: `{name}.{class}` must be an integer"
                                ));
                            };
                            if !CLASSES.contains(&class.as_str()) {
                                return Err(format!(
                                    "baseline: unknown class `{class}` for crate `{name}`"
                                ));
                            }
                            parsed.insert(class, n);
                        }
                        baseline.crates.insert(name, parsed);
                    }
                }
                (other, _) => return Err(format!("baseline: unknown key `{other}`")),
            }
        }
        Ok(baseline)
    }
}

/// The subset of JSON the baseline uses: objects, strings and
/// non-negative integers.
#[derive(Debug)]
enum Json {
    Object(Vec<(String, Json)>),
    String(String),
    Number(usize),
}

impl Json {
    fn parse(text: &str) -> Result<Json, String> {
        let chars: Vec<char> = text.chars().collect();
        let mut at = 0;
        let value = parse_value(&chars, &mut at)?;
        skip_ws(&chars, &mut at);
        if at != chars.len() {
            return Err(format!("baseline: trailing content at offset {at}"));
        }
        Ok(value)
    }
}

fn skip_ws(chars: &[char], at: &mut usize) {
    while chars.get(*at).is_some_and(|c| c.is_whitespace()) {
        *at += 1;
    }
}

fn expect_char(chars: &[char], at: &mut usize, want: char) -> Result<(), String> {
    skip_ws(chars, at);
    if chars.get(*at) == Some(&want) {
        *at += 1;
        Ok(())
    } else {
        Err(format!(
            "baseline: expected `{want}` at offset {at}, found {:?}",
            chars.get(*at)
        ))
    }
}

fn parse_value(chars: &[char], at: &mut usize) -> Result<Json, String> {
    skip_ws(chars, at);
    match chars.get(*at) {
        Some('{') => parse_object(chars, at),
        Some('"') => Ok(Json::String(parse_string(chars, at)?)),
        Some(c) if c.is_ascii_digit() => {
            let mut n: usize = 0;
            while let Some(d) = chars.get(*at).and_then(|c| c.to_digit(10)) {
                n = n
                    .checked_mul(10)
                    .and_then(|n| n.checked_add(d as usize))
                    .ok_or_else(|| "baseline: integer overflow".to_string())?;
                *at += 1;
            }
            Ok(Json::Number(n))
        }
        other => Err(format!("baseline: unexpected {other:?} at offset {at}")),
    }
}

fn parse_object(chars: &[char], at: &mut usize) -> Result<Json, String> {
    expect_char(chars, at, '{')?;
    let mut fields = Vec::new();
    skip_ws(chars, at);
    if chars.get(*at) == Some(&'}') {
        *at += 1;
        return Ok(Json::Object(fields));
    }
    loop {
        skip_ws(chars, at);
        let key = parse_string(chars, at)?;
        expect_char(chars, at, ':')?;
        let value = parse_value(chars, at)?;
        fields.push((key, value));
        skip_ws(chars, at);
        match chars.get(*at) {
            Some(',') => *at += 1,
            Some('}') => {
                *at += 1;
                return Ok(Json::Object(fields));
            }
            other => return Err(format!("baseline: expected `,` or `}}`, found {other:?}")),
        }
    }
}

fn parse_string(chars: &[char], at: &mut usize) -> Result<String, String> {
    expect_char(chars, at, '"')?;
    let mut out = String::new();
    loop {
        match chars.get(*at) {
            Some('"') => {
                *at += 1;
                return Ok(out);
            }
            Some('\\') => {
                // The baseline never needs exotic escapes; keep the
                // escaped character verbatim.
                if let Some(&next) = chars.get(*at + 1) {
                    out.push(next);
                    *at += 2;
                } else {
                    return Err("baseline: dangling escape".to_string());
                }
            }
            Some(&c) => {
                out.push(c);
                *at += 1;
            }
            None => return Err("baseline: unterminated string".to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Baseline {
        let mut baseline = Baseline::default();
        let mut counts = ClassCounts::new();
        for class in CLASSES {
            counts.insert((*class).to_string(), 0);
        }
        counts.insert("unwrap".to_string(), 3);
        counts.insert("index".to_string(), 17);
        baseline.crates.insert("core".to_string(), counts.clone());
        counts.insert("unwrap".to_string(), 1);
        baseline.crates.insert("model".to_string(), counts);
        baseline
    }

    #[test]
    fn round_trips_through_json() {
        let baseline = sample();
        let json = baseline.to_json();
        assert_eq!(Baseline::from_json(&json).unwrap(), baseline);
    }

    #[test]
    fn rendered_json_is_stable_and_readable() {
        let json = sample().to_json();
        assert!(json.contains("\"server_request_path\": 0"));
        assert!(json.contains("\"core\": { \"unwrap\": 3, \"expect\": 0, \"panic\": 0, \"unreachable\": 0, \"index\": 17 }"));
    }

    #[test]
    fn schema_violations_are_rejected() {
        assert!(Baseline::from_json("[]").is_err());
        assert!(Baseline::from_json("{\"nope\": 1}").is_err());
        assert!(Baseline::from_json("{\"crates\": {\"x\": {\"bogus\": 1}}}").is_err());
        assert!(Baseline::from_json("{\"crates\": {\"x\": {\"unwrap\": \"one\"}}}").is_err());
        assert!(Baseline::from_json("{} trailing").is_err());
    }
}
