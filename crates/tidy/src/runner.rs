//! The tidy run: execute every check, compare the panic ratchet
//! against the committed baseline, and collect diagnostics.

use crate::baseline::Baseline;
use crate::check::{Check, Diagnostic};
use crate::checks::calendar::CalendarHygiene;
use crate::checks::determinism::Determinism;
use crate::checks::hygiene::{ForbidUnsafe, NoDebugMacros, OutDir, TraceHygiene};
use crate::checks::panic::{ratchet_counts, PanicPath, CLASSES};
use crate::scan::ScannedFile;

/// Every registered check, in reporting order.
#[must_use]
pub fn all_checks() -> Vec<Box<dyn Check>> {
    vec![
        Box::new(Determinism),
        Box::new(CalendarHygiene),
        Box::new(PanicPath),
        Box::new(ForbidUnsafe),
        Box::new(NoDebugMacros),
        Box::new(TraceHygiene),
        Box::new(OutDir),
    ]
}

/// The names every `tidy:allow(...)` directive may reference —
/// check names plus the ratchet's suppression key.
#[must_use]
pub fn known_allow_keys() -> Vec<&'static str> {
    let mut keys: Vec<&'static str> = all_checks().iter().map(|c| c.name()).collect();
    keys.push("panic-ratchet");
    keys
}

/// Outcome of a full tidy run.
#[derive(Debug)]
pub struct RunOutcome {
    /// Every finding, in file order.
    pub diagnostics: Vec<Diagnostic>,
    /// The fresh panic-ratchet baseline computed from the tree (what
    /// `--bless` writes).
    pub fresh_baseline: Baseline,
}

impl RunOutcome {
    /// Whether the tree is clean.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

/// Runs every check over `files` against `baseline`.
///
/// `baseline` is `None` when `tidy_baseline.json` is missing — every
/// nonzero count then demands a bless, which is the right first-run
/// behavior.
#[must_use]
pub fn run(files: &[ScannedFile], baseline: Option<&Baseline>) -> RunOutcome {
    let mut diagnostics = Vec::new();
    for check in all_checks() {
        check.run(files, &mut diagnostics);
    }
    validate_allow_keys(files, &mut diagnostics);

    let counts = ratchet_counts(files);
    let fresh_baseline = Baseline {
        crates: counts.clone(),
        // The request-path files are hard-forbidden above; the pinned
        // count is definitionally zero once PanicPath passes.
        server_request_path: 0,
    };
    compare_ratchet(&counts, baseline, &mut diagnostics);

    // Stable output: file order, then line, then check name.
    diagnostics.sort_by(|a, b| (&a.file, a.line, a.check).cmp(&(&b.file, b.line, b.check)));
    RunOutcome {
        diagnostics,
        fresh_baseline,
    }
}

/// Flags `tidy:allow(...)` directives naming a check that does not
/// exist — a typo there would silently disable nothing.
fn validate_allow_keys(files: &[ScannedFile], out: &mut Vec<Diagnostic>) {
    let known = known_allow_keys();
    for file in files {
        for (lineno, line) in file.numbered() {
            for key in &line.allows {
                if !known.contains(&key.as_str()) {
                    out.push(Diagnostic {
                        check: "tidy",
                        file: file.path.clone(),
                        line: lineno,
                        message: format!(
                            "unknown check `{key}` in tidy:allow(...); known: {}",
                            known.join(", ")
                        ),
                    });
                }
            }
        }
    }
}

fn compare_ratchet(
    counts: &std::collections::BTreeMap<String, crate::checks::panic::ClassCounts>,
    baseline: Option<&Baseline>,
    out: &mut Vec<Diagnostic>,
) {
    let Some(baseline) = baseline else {
        out.push(Diagnostic {
            check: "panic-ratchet",
            file: "tidy_baseline.json".to_string(),
            line: 0,
            message: "baseline file missing — run `cargo run -p coserve-tidy -- --bless` \
                      and commit the result"
                .to_string(),
        });
        return;
    };
    if baseline.server_request_path != 0 {
        out.push(Diagnostic {
            check: "panic-ratchet",
            file: "tidy_baseline.json".to_string(),
            line: 0,
            message: format!(
                "server_request_path pinned at {} — it must be 0",
                baseline.server_request_path
            ),
        });
    }
    let empty = crate::checks::panic::ClassCounts::new();
    let crate_names: std::collections::BTreeSet<&String> =
        counts.keys().chain(baseline.crates.keys()).collect();
    for name in crate_names {
        let fresh = counts.get(name).unwrap_or(&empty);
        let pinned = baseline.crates.get(name).unwrap_or(&empty);
        for class in CLASSES {
            let fresh_n = fresh.get(*class).copied().unwrap_or(0);
            let pinned_n = pinned.get(*class).copied().unwrap_or(0);
            if fresh_n > pinned_n {
                out.push(Diagnostic {
                    check: "panic-ratchet",
                    file: "tidy_baseline.json".to_string(),
                    line: 0,
                    message: format!(
                        "crate `{name}` has {fresh_n} `{class}` site(s), baseline pins \
                         {pinned_n}: remove the new site, justify it with a \
                         `// tidy:allow(panic-ratchet)` comment, or consciously re-bless \
                         with `cargo run -p coserve-tidy -- --bless`"
                    ),
                });
            } else if fresh_n < pinned_n {
                out.push(Diagnostic {
                    check: "panic-ratchet",
                    file: "tidy_baseline.json".to_string(),
                    line: 0,
                    message: format!(
                        "crate `{name}` is down to {fresh_n} `{class}` site(s) but the \
                         baseline still pins {pinned_n} — tighten the ratchet with \
                         `cargo run -p coserve-tidy -- --bless`"
                    ),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::FileKind;

    fn clean_file() -> ScannedFile {
        ScannedFile::parse(
            "crates/model/src/lib.rs",
            "model",
            FileKind::Src,
            "#![forbid(unsafe_code)]\npub fn f() -> u32 { 1 }\n",
        )
    }

    #[test]
    fn clean_tree_with_matching_baseline_passes() {
        let files = [clean_file()];
        let first = run(&files, None);
        assert!(!first.is_clean(), "missing baseline must fail");
        let second = run(&files, Some(&first.fresh_baseline));
        assert!(second.is_clean(), "{:?}", second.diagnostics);
    }

    #[test]
    fn new_panic_site_fails_against_stale_baseline() {
        let files = [clean_file()];
        let blessed = run(&files, None).fresh_baseline;
        let grown = [ScannedFile::parse(
            "crates/model/src/lib.rs",
            "model",
            FileKind::Src,
            "#![forbid(unsafe_code)]\npub fn f() -> u32 { x.unwrap() }\n",
        )];
        let outcome = run(&grown, Some(&blessed));
        assert!(outcome
            .diagnostics
            .iter()
            .any(|d| d.check == "panic-ratchet" && d.message.contains("1 `unwrap`")));
    }

    #[test]
    fn removed_panic_site_demands_a_tighter_baseline() {
        let files = [ScannedFile::parse(
            "crates/model/src/lib.rs",
            "model",
            FileKind::Src,
            "#![forbid(unsafe_code)]\npub fn f() -> u32 { x.unwrap() }\n",
        )];
        let blessed = run(&files, None).fresh_baseline;
        let shrunk = [clean_file()];
        let outcome = run(&shrunk, Some(&blessed));
        assert!(outcome
            .diagnostics
            .iter()
            .any(|d| d.check == "panic-ratchet" && d.message.contains("tighten the ratchet")));
    }

    #[test]
    fn unknown_allow_keys_are_reported() {
        let files = [ScannedFile::parse(
            "crates/model/src/lib.rs",
            "model",
            FileKind::Src,
            "#![forbid(unsafe_code)]\nlet x = 1; // tidy:allow(not-a-check)\n",
        )];
        let outcome = run(&files, None);
        assert!(outcome
            .diagnostics
            .iter()
            .any(|d| d.check == "tidy" && d.message.contains("not-a-check")));
    }
}
