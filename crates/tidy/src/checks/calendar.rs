//! The calendar-hygiene check.
//!
//! The engine core is a discrete-event simulator: simulated time
//! advances **only** by popping the next scheduled event off the
//! calendar (`coserve_sim::events::Calendar`). A stray
//! `now = now + step` loop anywhere else reintroduces tick scanning —
//! the exact pathology the calendar refactor removed — and silently
//! forks the clock. This check forbids direct `SimTime` arithmetic in
//! the clock-driving crates outside the calendar allowlist: the time
//! type's own operator impls, the calendar itself, and the two event
//! loops built on `Calendar::pop`. Computing *timestamps* for events
//! being scheduled is exactly what the allowlisted files do; everything
//! else receives times from the calendar and must not advance them.

use crate::check::{allowed, find_token, Check, Diagnostic};
use crate::scan::{FileKind, ScannedFile};

/// Crates that drive the simulated clock.
pub const CLOCK_CRATES: &[&str] = &["sim", "core", "cluster"];

/// Files allowed to do `SimTime`/`SimSpan` arithmetic: the time type's
/// operator impls, the event calendar, and the engine/cluster event
/// loops that schedule onto it.
pub const CALENDAR_ALLOWLIST: &[&str] = &[
    "crates/sim/src/time.rs",
    "crates/sim/src/events.rs",
    "crates/core/src/engine.rs",
    "crates/cluster/src/runtime.rs",
];

/// Forbids clock-advancing `SimTime` arithmetic outside the calendar.
#[derive(Debug)]
pub struct CalendarHygiene;

impl Check for CalendarHygiene {
    fn name(&self) -> &'static str {
        "calendar-hygiene"
    }

    fn run(&self, files: &[ScannedFile], out: &mut Vec<Diagnostic>) {
        for file in files {
            if file.kind != FileKind::Src
                || !CLOCK_CRATES.contains(&file.crate_name.as_str())
                || CALENDAR_ALLOWLIST.contains(&file.path.as_str())
            {
                continue;
            }
            for (lineno, line) in file.numbered() {
                if line.in_test || allowed(line, self.name()) {
                    continue;
                }
                // Two tripwires: a `SimTime` mention combined with an
                // additive operator on the same line (`SimTime::ZERO +
                // ...`, `now += ...` next to a SimTime binding), and a
                // span being added to anything (`x + SimSpan::...`).
                let time_arith = find_token(&line.code, "SimTime").is_some()
                    && (line.code.contains(" + ") || line.code.contains("+="));
                let span_add = find_token(&line.code, "+ SimSpan").is_some();
                if time_arith || span_add {
                    out.push(Diagnostic {
                        check: self.name(),
                        file: file.path.clone(),
                        line: lineno,
                        message: format!(
                            "SimTime arithmetic in clock crate `{}`: simulated time \
                             advances only through the event calendar (push a \
                             Scheduled event instead, or move the logic into an \
                             allowlisted event loop)",
                            file.crate_name
                        ),
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_on(path: &str, crate_name: &str, content: &str) -> Vec<Diagnostic> {
        let file = ScannedFile::parse(path, crate_name, FileKind::Src, content);
        let mut out = Vec::new();
        CalendarHygiene.run(&[file], &mut out);
        out
    }

    #[test]
    fn tick_scan_in_dispatch_is_flagged_with_location() {
        let out = run_on(
            "crates/cluster/src/dispatch.rs",
            "cluster",
            "let t: SimTime = start;\nlet next = SimTime::ZERO + step;\n",
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].line, 2);
        assert!(out[0]
            .to_string()
            .starts_with("crates/cluster/src/dispatch.rs:2:"));
    }

    #[test]
    fn span_addition_is_flagged_even_without_the_time_type() {
        let out = run_on(
            "crates/core/src/queue.rs",
            "core",
            "let deadline = now + SimSpan::from_millis(4);\n",
        );
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn the_calendar_and_event_loops_are_allowlisted() {
        for (path, name) in [
            ("crates/sim/src/time.rs", "sim"),
            ("crates/sim/src/events.rs", "sim"),
            ("crates/core/src/engine.rs", "core"),
            ("crates/cluster/src/runtime.rs", "cluster"),
        ] {
            let out = run_on(path, name, "let at = now + SimSpan::from_millis(1);\n");
            assert!(out.is_empty(), "{path} should be allowlisted: {out:?}");
        }
    }

    #[test]
    fn non_clock_crates_are_exempt() {
        for (path, name) in [
            ("crates/workload/src/arrivals.rs", "workload"),
            ("crates/bench/src/figures.rs", "bench"),
        ] {
            let out = run_on(path, name, "let at = SimTime::ZERO + interval;\n");
            assert!(out.is_empty(), "{name} should be exempt: {out:?}");
        }
    }

    #[test]
    fn mentions_in_comments_and_tests_are_fine() {
        let out = run_on(
            "crates/core/src/pool.rs",
            "core",
            concat!(
                "// computing SimTime::ZERO + span here would fork the clock\n",
                "#[cfg(test)]\n",
                "mod tests { fn at(ms: u64) -> SimTime { SimTime::ZERO + ms_span(ms) } }\n",
            ),
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn suppression_silences_a_justified_site() {
        let out = run_on(
            "crates/core/src/autotune.rs",
            "core",
            "let end = start + SimSpan::from_secs(1); // tidy:allow(calendar-hygiene) offline search horizon\n",
        );
        assert!(out.is_empty(), "{out:?}");
    }
}
