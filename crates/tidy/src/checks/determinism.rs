//! The determinism check.
//!
//! Every figure this reproduction ships is pinned by a bit-identical
//! output guarantee, so the crates the simulation results flow through
//! must not observe anything outside the simulation: no randomly
//! seeded hash containers (iteration order varies per process), no
//! wall-clock reads, no environment or thread-identity reads. The
//! `bench` harness (real timing) and the `server`/`coserve`/`tidy`
//! runtimes are exempt; everything else is deterministic by contract.

use crate::check::{allowed, find_token, Check, Diagnostic};
use crate::scan::{FileKind, ScannedFile};

/// Crates whose non-test code must stay free of nondeterminism.
pub const DETERMINISTIC_CRATES: &[&str] = &[
    "model",
    "core",
    "sim",
    "workload",
    "cluster",
    "metrics",
    "baselines",
    "trace",
    "faults",
];

/// `(pattern, what to do instead)` pairs; patterns are token-matched
/// against scanned code, so comments and string literals never trip
/// them.
const FORBIDDEN: &[(&str, &str)] = &[
    (
        "HashMap",
        "iteration order is randomly seeded per process; use BTreeMap",
    ),
    (
        "HashSet",
        "iteration order is randomly seeded per process; use BTreeSet",
    ),
    (
        "RandomState",
        "randomly seeded hasher; use an ordered container instead",
    ),
    (
        "DefaultHasher",
        "randomly seeded hasher; use an ordered container instead",
    ),
    (
        "Instant",
        "wall-clock read; simulated time must come from coserve_sim::time",
    ),
    (
        "SystemTime",
        "wall-clock read; simulated time must come from coserve_sim::time",
    ),
    (
        "env::",
        "environment read; results must not depend on the process environment",
    ),
    (
        "thread::current",
        "thread identity is nondeterministic across runs",
    ),
    (
        "thread_rng",
        "OS-seeded RNG; use the seeded coserve_sim::rng generator",
    ),
];

/// Forbids nondeterministic constructs in the deterministic crates.
#[derive(Debug)]
pub struct Determinism;

impl Check for Determinism {
    fn name(&self) -> &'static str {
        "determinism"
    }

    fn run(&self, files: &[ScannedFile], out: &mut Vec<Diagnostic>) {
        for file in files {
            if file.kind != FileKind::Src
                || !DETERMINISTIC_CRATES.contains(&file.crate_name.as_str())
            {
                continue;
            }
            for (lineno, line) in file.numbered() {
                if line.in_test || allowed(line, self.name()) {
                    continue;
                }
                for &(pattern, why) in FORBIDDEN {
                    if find_token(&line.code, pattern).is_some() {
                        out.push(Diagnostic {
                            check: self.name(),
                            file: file.path.clone(),
                            line: lineno,
                            message: format!(
                                "`{pattern}` in deterministic crate `{}`: {why}",
                                file.crate_name
                            ),
                        });
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_on(path: &str, crate_name: &str, content: &str) -> Vec<Diagnostic> {
        let file = ScannedFile::parse(path, crate_name, FileKind::Src, content);
        let mut out = Vec::new();
        Determinism.run(&[file], &mut out);
        out
    }

    #[test]
    fn hashmap_in_core_is_flagged_with_location() {
        let out = run_on(
            "crates/core/src/engine.rs",
            "core",
            "use std::collections::BTreeMap;\nuse std::collections::HashMap;\n",
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].line, 2);
        assert!(out[0]
            .to_string()
            .starts_with("crates/core/src/engine.rs:2:"));
    }

    #[test]
    fn wall_clock_and_env_reads_are_flagged() {
        let out = run_on(
            "crates/sim/src/time.rs",
            "sim",
            "let t = std::time::Instant::now();\nlet v = std::env::var(\"X\");\n",
        );
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn bench_and_server_are_exempt() {
        for (path, name) in [
            ("crates/bench/src/perf_report.rs", "bench"),
            ("crates/server/src/server.rs", "server"),
        ] {
            let out = run_on(path, name, "let t = Instant::now();\n");
            assert!(out.is_empty(), "{name} should be exempt: {out:?}");
        }
    }

    #[test]
    fn mentions_in_comments_strings_and_tests_are_fine() {
        let out = run_on(
            "crates/core/src/pool.rs",
            "core",
            concat!(
                "// a HashMap here would break determinism\n",
                "let msg = \"HashMap\";\n",
                "#[cfg(test)]\n",
                "mod tests { use std::collections::HashMap; }\n",
            ),
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn suppression_silences_a_justified_site() {
        let out = run_on(
            "crates/metrics/src/output.rs",
            "metrics",
            "let d = std::env::var_os(\"COSERVE_OUT_DIR\"); // tidy:allow(determinism) path only\n",
        );
        assert!(out.is_empty(), "{out:?}");
    }
}
