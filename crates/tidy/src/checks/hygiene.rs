//! Hygiene checks: `#![forbid(unsafe_code)]` presence, leftover debug
//! macros, stdout/stderr discipline in libraries, and artifact-path
//! discipline.

use std::collections::BTreeSet;

use crate::check::{allowed, find_token, Check, Diagnostic};
use crate::scan::{FileKind, ScannedFile};

/// Every crate root must carry `#![forbid(unsafe_code)]` — the
/// workspace has zero `unsafe` and intends to keep it that way (the
/// `[workspace.lints]` table enforces it at build time; this check
/// keeps the attribute visible at the top of every crate).
#[derive(Debug)]
pub struct ForbidUnsafe;

/// Crate-root files: `src/lib.rs`, or `src/main.rs` for binary-only
/// crates.
fn is_crate_root(path: &str) -> bool {
    path.ends_with("src/lib.rs") || path.ends_with("src/main.rs")
}

impl Check for ForbidUnsafe {
    fn name(&self) -> &'static str {
        "forbid-unsafe"
    }

    fn run(&self, files: &[ScannedFile], out: &mut Vec<Diagnostic>) {
        // A crate with both lib.rs and main.rs only needs the
        // attribute in lib.rs (main.rs links against the lib).
        let has_lib: BTreeSet<&str> = files
            .iter()
            .filter(|f| f.path.ends_with("src/lib.rs"))
            .map(|f| f.crate_name.as_str())
            .collect();
        for file in files {
            if !is_crate_root(&file.path) {
                continue;
            }
            if file.path.ends_with("src/main.rs") && has_lib.contains(file.crate_name.as_str()) {
                continue;
            }
            let present = file
                .lines
                .iter()
                .any(|l| l.code.replace(' ', "").contains("#![forbid(unsafe_code)]"));
            if !present {
                out.push(Diagnostic {
                    check: self.name(),
                    file: file.path.clone(),
                    line: 0,
                    message: "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
                });
            }
        }
    }
}

/// No `dbg!`/`todo!`/`unimplemented!` anywhere — including tests:
/// they are leftovers, not API.
#[derive(Debug)]
pub struct NoDebugMacros;

impl Check for NoDebugMacros {
    fn name(&self) -> &'static str {
        "no-debug-macros"
    }

    fn run(&self, files: &[ScannedFile], out: &mut Vec<Diagnostic>) {
        for file in files {
            if file.kind == FileKind::Vendor {
                continue;
            }
            for (lineno, line) in file.numbered() {
                if allowed(line, self.name()) {
                    continue;
                }
                for pattern in ["dbg!", "todo!", "unimplemented!"] {
                    if find_token(&line.code, pattern).is_some() {
                        out.push(Diagnostic {
                            check: self.name(),
                            file: file.path.clone(),
                            line: lineno,
                            message: format!("leftover `{pattern}` — remove before committing"),
                        });
                    }
                }
            }
        }
    }
}

/// Library code must not print: now that the stack carries a real
/// tracing channel (`coserve-trace`) and the metrics crate renders
/// tables on demand, ad-hoc `println!`/`eprintln!` in a library is
/// either debug residue or output that belongs to a caller. Binaries
/// (`src/main.rs`, `src/bin/*`) own their stdout and are exempt, as is
/// test code.
#[derive(Debug)]
pub struct TraceHygiene;

/// Binary targets own their stdout/stderr.
fn is_binary(path: &str) -> bool {
    path.ends_with("src/main.rs") || path.contains("/src/bin/")
}

impl Check for TraceHygiene {
    fn name(&self) -> &'static str {
        "trace-hygiene"
    }

    fn run(&self, files: &[ScannedFile], out: &mut Vec<Diagnostic>) {
        for file in files {
            if file.kind != FileKind::Src || is_binary(&file.path) {
                continue;
            }
            for (lineno, line) in file.numbered() {
                if line.in_test || allowed(line, self.name()) {
                    continue;
                }
                for pattern in ["println!", "eprintln!"] {
                    if find_token(&line.code, pattern).is_some() {
                        out.push(Diagnostic {
                            check: self.name(),
                            file: file.path.clone(),
                            line: lineno,
                            message: format!(
                                "`{pattern}` in library code — emit a trace event or \
                                 return the text to the caller; printing is for binaries"
                            ),
                        });
                    }
                }
            }
        }
    }
}

/// Artifact-path discipline: the `target/figures` fallback is decided
/// exactly once, in `coserve_metrics::output`; figure binaries write
/// through the shared `write_csv`/`write_json` helpers rather than
/// rolling their own `fs` calls.
#[derive(Debug)]
pub struct OutDir;

/// The single file allowed to name the default artifact directory.
const OUT_DIR_OWNER: &str = "crates/metrics/src/output.rs";

impl Check for OutDir {
    fn name(&self) -> &'static str {
        "out-dir"
    }

    fn run(&self, files: &[ScannedFile], out: &mut Vec<Diagnostic>) {
        for file in files {
            if file.kind == FileKind::Vendor {
                continue;
            }
            let is_fig_bin = file.path.starts_with("crates/bench/src/bin/")
                && file
                    .path
                    .rsplit('/')
                    .next()
                    .is_some_and(|name| name.starts_with("fig") || name.starts_with("table"));
            for (lineno, line) in file.numbered() {
                if line.in_test || allowed(line, self.name()) {
                    continue;
                }
                // The probe itself must name the forbidden path.
                // tidy:allow(out-dir)
                if file.path != OUT_DIR_OWNER && line.literals.contains("target/figures") {
                    out.push(Diagnostic {
                        check: self.name(),
                        file: file.path.clone(),
                        line: lineno,
                        // The diagnostic must name the path it forbids.
                        // tidy:allow(out-dir)
                        message: "hardcoded `target/figures` path — resolve it through \
                                  coserve_metrics::output::out_dir instead"
                            .to_string(),
                    });
                }
                if is_fig_bin {
                    for pattern in ["fs::write", "File::create", "create_dir", "OpenOptions"] {
                        if find_token(&line.code, pattern).is_some() {
                            out.push(Diagnostic {
                                check: self.name(),
                                file: file.path.clone(),
                                line: lineno,
                                message: format!(
                                    "figure binary writes files directly (`{pattern}`) — \
                                     go through coserve_bench::write_csv/write_json so \
                                     COSERVE_OUT_DIR and the workspace anchor apply"
                                ),
                            });
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn missing_forbid_unsafe_is_flagged_at_file_level() {
        let file = ScannedFile::parse(
            "crates/core/src/lib.rs",
            "core",
            FileKind::Src,
            "//! docs\npub mod engine;\n",
        );
        let mut out = Vec::new();
        ForbidUnsafe.run(&[file], &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].line, 0);
    }

    #[test]
    fn present_forbid_unsafe_passes_and_main_defers_to_lib() {
        let lib = ScannedFile::parse(
            "crates/server/src/lib.rs",
            "server",
            FileKind::Src,
            "#![forbid(unsafe_code)]\npub mod server;\n",
        );
        let main = ScannedFile::parse(
            "crates/server/src/main.rs",
            "server",
            FileKind::Src,
            "fn main() {}\n",
        );
        let mut out = Vec::new();
        ForbidUnsafe.run(&[lib, main], &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn debug_macros_are_flagged_even_in_tests() {
        let file = ScannedFile::parse(
            "crates/core/src/engine.rs",
            "core",
            FileKind::Src,
            "#[cfg(test)]\nmod tests { fn t() { dbg!(1); } }\n",
        );
        let mut out = Vec::new();
        NoDebugMacros.run(&[file], &mut out);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn library_prints_are_flagged_but_binaries_and_tests_pass() {
        let lib = ScannedFile::parse(
            "crates/core/src/engine.rs",
            "core",
            FileKind::Src,
            "println!(\"debug\");\neprintln!(\"oops\");\n",
        );
        let mut out = Vec::new();
        TraceHygiene.run(&[lib], &mut out);
        assert_eq!(out.len(), 2);

        let exempt = [
            ScannedFile::parse(
                "crates/server/src/main.rs",
                "server",
                FileKind::Src,
                "println!(\"listening\");\n",
            ),
            ScannedFile::parse(
                "crates/bench/src/bin/fig01.rs",
                "bench",
                FileKind::Src,
                "println!(\"row\");\n",
            ),
            ScannedFile::parse(
                "crates/core/src/pool.rs",
                "core",
                FileKind::Src,
                "#[cfg(test)]\nmod tests { fn t() { println!(\"ok\"); } }\n",
            ),
            ScannedFile::parse(
                "crates/core/tests/e2e.rs",
                "core",
                FileKind::TestDir,
                "println!(\"ok\");\n",
            ),
        ];
        let mut out = Vec::new();
        TraceHygiene.run(&exempt, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn trace_hygiene_suppression_works() {
        let file = ScannedFile::parse(
            "crates/bench/src/lib.rs",
            "bench",
            FileKind::Src,
            "println!(\"[csv] {}\", p); // tidy:allow(trace-hygiene) harness output\n",
        );
        let mut out = Vec::new();
        TraceHygiene.run(&[file], &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn hardcoded_figures_path_is_flagged_outside_the_owner() {
        let rogue = ScannedFile::parse(
            "crates/bench/src/lib.rs",
            "bench",
            FileKind::Src,
            "let p = \"target/figures\";\n",
        );
        let owner = ScannedFile::parse(
            OUT_DIR_OWNER,
            "metrics",
            FileKind::Src,
            ".join(\"target/figures\")\n",
        );
        let mut out = Vec::new();
        OutDir.run(&[rogue, owner], &mut out);
        assert_eq!(out.len(), 1);
        assert!(out[0].file.contains("bench"));
    }

    #[test]
    fn figure_binaries_must_not_write_directly() {
        let file = ScannedFile::parse(
            "crates/bench/src/bin/fig99_new.rs",
            "bench",
            FileKind::Src,
            "std::fs::write(path, data).ok();\n",
        );
        let mut out = Vec::new();
        OutDir.run(&[file], &mut out);
        assert_eq!(out.len(), 1);
    }
}
