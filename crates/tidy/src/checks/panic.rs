//! Panic-safety: site classification, the request-path hard-forbid,
//! and the per-crate ratchet counts.
//!
//! A panic in `coserve-server`'s network path is a remote crash: one
//! malformed frame takes a worker thread (and the poisoned core mutex
//! takes the node). Those files are held to zero panic sites. The
//! rest of the workspace is ratcheted: every crate's count of
//! `unwrap`/`expect`/`panic!`/`unreachable!`/slice-index sites is
//! pinned in `tidy_baseline.json` and may only go down.

use std::collections::BTreeMap;

use crate::check::{allowed, find_token, index_sites, Check, Diagnostic};
use crate::scan::{FileKind, ScannedFile};

/// Files on the server's network request path: untrusted bytes in,
/// zero panic sites allowed (check `panic-path`).
pub const REQUEST_PATH_FILES: &[&str] = &[
    "crates/server/src/protocol.rs",
    "crates/server/src/server.rs",
    "crates/server/src/service.rs",
    "crates/server/src/admin.rs",
];

/// The panic-site classes the ratchet tracks, in baseline-JSON order.
pub const CLASSES: &[&str] = &["unwrap", "expect", "panic", "unreachable", "index"];

/// Panic-site counts for one crate, keyed by class name.
pub type ClassCounts = BTreeMap<String, usize>;

/// Classifies one scanned code line. Returns `(class, count)` pairs
/// for every class present.
fn classify_line(code: &str) -> Vec<(&'static str, usize)> {
    let mut found = Vec::new();
    for (class, pattern) in [
        ("unwrap", ".unwrap()"),
        ("expect", ".expect("),
        ("panic", "panic!"),
        ("unreachable", "unreachable!"),
    ] {
        let mut n = 0;
        let mut rest = code;
        while let Some(at) = find_token(rest, pattern) {
            n += 1;
            rest = &rest[at + pattern.len()..];
        }
        if n > 0 {
            found.push((class, n));
        }
    }
    let idx = index_sites(code);
    if idx > 0 {
        found.push(("index", idx));
    }
    found
}

/// Whether `path` is on the server request path.
#[must_use]
pub fn on_request_path(path: &str) -> bool {
    REQUEST_PATH_FILES.contains(&path)
}

/// Hard-forbids panic sites in the server's network request path.
#[derive(Debug)]
pub struct PanicPath;

impl Check for PanicPath {
    fn name(&self) -> &'static str {
        "panic-path"
    }

    fn run(&self, files: &[ScannedFile], out: &mut Vec<Diagnostic>) {
        for file in files {
            if !on_request_path(&file.path) {
                continue;
            }
            for (lineno, line) in file.numbered() {
                if line.in_test || allowed(line, self.name()) {
                    continue;
                }
                for (class, n) in classify_line(&line.code) {
                    out.push(Diagnostic {
                        check: self.name(),
                        file: file.path.clone(),
                        line: lineno,
                        message: format!(
                            "{n} `{class}` site(s) on the network request path: malformed \
                             input must surface as a typed ProtocolError, never a panic"
                        ),
                    });
                }
            }
        }
    }
}

/// Counts ratchet-tracked panic sites per crate, over non-test `src/`
/// code of first-party crates, excluding the request-path files
/// (those are hard-forbidden by [`PanicPath`], not ratcheted).
/// Sites suppressed with `tidy:allow(panic-ratchet)` are not counted.
#[must_use]
pub fn ratchet_counts(files: &[ScannedFile]) -> BTreeMap<String, ClassCounts> {
    let mut per_crate: BTreeMap<String, ClassCounts> = BTreeMap::new();
    for file in files {
        if file.kind != FileKind::Src {
            continue;
        }
        let counts = per_crate.entry(file.crate_name.clone()).or_insert_with(|| {
            CLASSES
                .iter()
                .map(|c| ((*c).to_string(), 0))
                .collect::<ClassCounts>()
        });
        if on_request_path(&file.path) {
            continue;
        }
        for (_lineno, line) in file.numbered() {
            if line.in_test || allowed(line, "panic-ratchet") {
                continue;
            }
            for (class, n) in classify_line(&line.code) {
                *counts.entry(class.to_string()).or_default() += n;
            }
        }
    }
    per_crate
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_covers_every_class() {
        let found = classify_line("a.unwrap(); b.expect(\"x\"); panic!(); unreachable!(); c[0]");
        let map: BTreeMap<_, _> = found.into_iter().collect();
        assert_eq!(map.len(), 5);
        assert!(CLASSES.iter().all(|c| map[c] == 1), "{map:?}");
    }

    #[test]
    fn request_path_sites_are_hard_errors() {
        let file = ScannedFile::parse(
            "crates/server/src/protocol.rs",
            "server",
            FileKind::Src,
            "let x = payload[0];\nlet y = n.unwrap();\n",
        );
        let mut out = Vec::new();
        PanicPath.run(&[file], &mut out);
        assert_eq!(out.len(), 2);
        assert!(out[0].to_string().contains("protocol.rs:1"));
    }

    #[test]
    fn request_path_tests_and_suppressions_are_exempt() {
        let file = ScannedFile::parse(
            "crates/server/src/server.rs",
            "server",
            FileKind::Src,
            concat!(
                "let a = x.max(1); // fine\n",
                "let b = y[0]; // tidy:allow(panic-path) length pinned by bind above\n",
                "#[cfg(test)]\n",
                "mod tests { fn t() { z.unwrap(); } }\n",
            ),
        );
        let mut out = Vec::new();
        PanicPath.run(&[file], &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn ratchet_counts_split_per_crate_and_class() {
        let a = ScannedFile::parse(
            "crates/core/src/engine.rs",
            "core",
            FileKind::Src,
            "x.unwrap();\ny.unwrap();\nbuf[0];\n#[cfg(test)]\nmod t { z.unwrap(); }\n",
        );
        let b = ScannedFile::parse(
            "crates/model/src/coe.rs",
            "model",
            FileKind::Src,
            "panic!(\"bad\");\n",
        );
        let counts = ratchet_counts(&[a, b]);
        assert_eq!(counts["core"]["unwrap"], 2);
        assert_eq!(counts["core"]["index"], 1);
        assert_eq!(counts["core"]["panic"], 0);
        assert_eq!(counts["model"]["panic"], 1);
    }

    #[test]
    fn request_path_files_are_excluded_from_the_ratchet() {
        let file = ScannedFile::parse(
            "crates/server/src/protocol.rs",
            "server",
            FileKind::Src,
            "x.unwrap();\n",
        );
        let counts = ratchet_counts(&[file]);
        assert_eq!(counts["server"]["unwrap"], 0);
    }
}
