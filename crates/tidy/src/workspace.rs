//! Workspace discovery: find the root, walk the crates, scan every
//! Rust source file.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::scan::{FileKind, ScannedFile};

/// Locates the workspace root from this crate's manifest directory
/// (`<root>/crates/tidy` at build time).
#[must_use]
pub fn workspace_root() -> PathBuf {
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
    manifest
        .ancestors()
        .nth(2)
        .unwrap_or(manifest)
        .to_path_buf()
}

/// Scans every first-party crate under `crates/` (src, tests and
/// benches trees) plus the vendored stand-ins under `vendor/`
/// (crate roots only — see [`FileKind::Vendor`]). Also scans the
/// repository-level `tests/` and `examples/` trees, which belong to
/// the `coserve` facade crate.
///
/// # Errors
///
/// Propagates I/O failures with the offending path in the message.
pub fn scan_workspace(root: &Path) -> io::Result<Vec<ScannedFile>> {
    let mut files = Vec::new();
    for dir in ["crates", "vendor"] {
        let base = root.join(dir);
        for entry in read_dir_sorted(&base)? {
            if !entry.is_dir() {
                continue;
            }
            let crate_name = file_name(&entry);
            let kind_of = |sub: &str| match (dir, sub) {
                ("vendor", _) => FileKind::Vendor,
                (_, "src") => FileKind::Src,
                _ => FileKind::TestDir,
            };
            for sub in ["src", "tests", "benches"] {
                let tree = entry.join(sub);
                if tree.is_dir() {
                    scan_tree(root, &tree, &crate_name, kind_of(sub), &mut files)?;
                }
            }
        }
    }
    // Root-level integration tests and examples are attached to the
    // `coserve` facade crate in its manifest.
    for dir in ["tests", "examples"] {
        let tree = root.join(dir);
        if tree.is_dir() {
            scan_tree(root, &tree, "coserve", FileKind::TestDir, &mut files)?;
        }
    }
    Ok(files)
}

fn scan_tree(
    root: &Path,
    tree: &Path,
    crate_name: &str,
    kind: FileKind,
    out: &mut Vec<ScannedFile>,
) -> io::Result<()> {
    for entry in read_dir_sorted(tree)? {
        if entry.is_dir() {
            scan_tree(root, &entry, crate_name, kind, out)?;
        } else if entry.extension().is_some_and(|e| e == "rs") {
            let content = fs::read_to_string(&entry)
                .map_err(|e| io::Error::new(e.kind(), format!("{}: {e}", entry.display())))?;
            let rel = entry
                .strip_prefix(root)
                .unwrap_or(&entry)
                .to_string_lossy()
                .replace('\\', "/");
            out.push(ScannedFile::parse(&rel, crate_name, kind, &content));
        }
    }
    Ok(())
}

/// Reads a directory in sorted order so diagnostics are stable across
/// filesystems (tidy holds itself to its own determinism bar).
fn read_dir_sorted(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)
        .map_err(|e| io::Error::new(e.kind(), format!("{}: {e}", dir.display())))?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    Ok(entries)
}

fn file_name(path: &Path) -> String {
    path.file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_default()
}
