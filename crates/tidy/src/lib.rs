//! # coserve-tidy
//!
//! Workspace static analysis in the style of rust-lang/rust's `tidy`:
//! an offline, zero-dependency tool that enforces the invariants the
//! reproduction's correctness story rests on, run as
//! `cargo run -p coserve-tidy` locally and as a CI gate.
//!
//! Four families of checks:
//!
//! * **Determinism** — the bit-identical-figure guarantee (the
//!   mechanism PR 4's hot-path overhaul and PR 6's wire protocol were
//!   proven with) requires the crates results flow through to never
//!   observe hash-seed, wall-clock, environment, or thread identity.
//!   [`checks::determinism`] forbids those constructs in the
//!   deterministic crates.
//! * **Calendar hygiene** — simulated time advances only by popping
//!   the event calendar; [`checks::calendar`] forbids direct `SimTime`
//!   arithmetic in the clock-driving crates outside the calendar and
//!   the two event loops built on it, so tick scanning cannot creep
//!   back in.
//! * **Panic safety** — the server parses untrusted network bytes;
//!   [`checks::panic`] hard-forbids panic-capable sites on the request
//!   path and ratchets every other crate's count against the committed
//!   `tidy_baseline.json` (see [`baseline`]).
//! * **Hygiene** — `#![forbid(unsafe_code)]` in every crate root, no
//!   leftover debug macros, artifact paths resolved through
//!   `coserve_metrics::output` ([`checks::hygiene`]).
//!
//! What makes this better than grep is the [`scan`] module: a
//! token-level scanner that strips comments and blanks string/char
//! literal bodies before checks look at a line, so prose about
//! `HashMap` or a test fixture containing `panic!` never false-
//! positives. Findings print as `file:line: [check] message`; a
//! justified site is silenced in place with `// tidy:allow(<check>)`
//! plus a comment explaining why it is safe.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod baseline;
pub mod check;
pub mod checks {
    //! The check implementations.
    pub mod calendar;
    pub mod determinism;
    pub mod hygiene;
    pub mod panic;
}
pub mod runner;
pub mod scan;
pub mod workspace;
