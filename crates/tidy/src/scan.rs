//! The token-level Rust scanner.
//!
//! Checks must see *code*, not text: a doc comment mentioning
//! `HashMap`, a diagnostic string containing `.unwrap()`, or a test
//! fixture embedding `panic!` are all fine. The scanner walks a file
//! once and produces, per line, the source with comments removed and
//! string/char literal bodies blanked out (quotes are kept so token
//! shapes survive), plus the literal bodies separately for the few
//! checks that need them (e.g. the `target/figures` path-literal rule).
//!
//! It is not a full lexer — no token tree, no spans — but it handles
//! the lexical constructs that defeat grep: line comments, nested
//! block comments, cooked strings with escapes, raw strings with any
//! number of `#`s, byte/C-string prefixes, char literals, and the
//! char-literal-vs-lifetime ambiguity (`'a'` vs `<'a>`).
//!
//! Suppressions ride on line comments: `// tidy:allow(check-a,check-b)`
//! silences those checks on the same line, or — when the comment is
//! alone on its line — on the next line that carries code.

/// Where a scanned file sits in the workspace, which decides the set
/// of checks that apply to it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// A `src/` file of a first-party crate: every check applies.
    Src,
    /// A `tests/` or `benches/` file: treated as all-test code.
    TestDir,
    /// A vendored stand-in crate: only the `forbid-unsafe` hygiene
    /// check applies.
    Vendor,
}

/// One scanned source line.
#[derive(Debug, Clone)]
pub struct Line {
    /// The line's code: comments stripped, literal bodies blanked.
    /// Quotes are preserved, so `"x"` scans as `""`-shaped code.
    pub code: String,
    /// Bodies of string/char literals that (partly) sit on this line.
    pub literals: String,
    /// Check names suppressed on this line via `tidy:allow(...)`.
    pub allows: Vec<String>,
    /// Whether the line is inside the file's `#[cfg(test)]` tail or a
    /// test-directory file.
    pub in_test: bool,
}

/// A scanned file, ready for checks.
#[derive(Debug, Clone)]
pub struct ScannedFile {
    /// Workspace-relative path, e.g. `crates/core/src/engine.rs`.
    pub path: String,
    /// The owning crate's short name, e.g. `core`.
    pub crate_name: String,
    /// Which rule set applies.
    pub kind: FileKind,
    /// Scanned lines, index 0 = line 1.
    pub lines: Vec<Line>,
}

impl ScannedFile {
    /// Scans `content` into per-line code/literal/suppression records.
    #[must_use]
    pub fn parse(path: &str, crate_name: &str, kind: FileKind, content: &str) -> ScannedFile {
        let mut lines = scan_lines(content);
        mark_test_tail(&mut lines, kind);
        float_comment_only_allows(&mut lines);
        ScannedFile {
            path: path.to_string(),
            crate_name: crate_name.to_string(),
            kind,
            lines,
        }
    }

    /// Iterates `(1-based line number, line)` pairs.
    pub fn numbered(&self) -> impl Iterator<Item = (usize, &Line)> {
        self.lines.iter().enumerate().map(|(i, l)| (i + 1, l))
    }
}

/// Scanner state across newlines.
enum State {
    /// Plain code.
    Normal,
    /// Inside `/* ... */`, tracking nesting depth.
    BlockComment(u32),
    /// Inside a cooked string (`"`, `b"`, `c"`): escapes apply.
    Cooked,
    /// Inside a raw string with `n` `#`s (`r"`, `r#"`, `br##"`, ...).
    Raw(u32),
}

fn scan_lines(content: &str) -> Vec<Line> {
    let chars: Vec<char> = content.chars().collect();
    let mut lines: Vec<Line> = Vec::new();
    let mut cur = blank_line();
    let mut state = State::Normal;
    let mut i = 0usize;

    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            lines.push(std::mem::replace(&mut cur, blank_line()));
            i += 1;
            continue;
        }
        match state {
            State::Normal => {
                if c == '/' && chars.get(i + 1) == Some(&'/') {
                    // Line comment: consume to EOL. Plain `//`
                    // comments are mined for a tidy:allow directive;
                    // doc comments (`///`, `//!`) are prose — they
                    // describe the syntax, they don't invoke it.
                    let is_doc = chars.get(i + 2) == Some(&'/') || chars.get(i + 2) == Some(&'!');
                    let start = i;
                    while i < chars.len() && chars[i] != '\n' {
                        i += 1;
                    }
                    if !is_doc {
                        let text: String = chars[start..i].iter().collect();
                        cur.allows.extend(parse_allows(&text));
                    }
                } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                    state = State::BlockComment(1);
                    i += 2;
                } else if c == '"' {
                    cur.code.push('"');
                    state = State::Cooked;
                    i += 1;
                } else if c == '\'' {
                    i = scan_quote(&chars, i, &mut cur);
                } else if c.is_alphabetic() || c == '_' {
                    // Read a full identifier so raw/byte string
                    // prefixes are recognized as literal openers.
                    let start = i;
                    while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                        i += 1;
                    }
                    let ident: String = chars[start..i].iter().collect();
                    if matches!(ident.as_str(), "r" | "br" | "cr") {
                        let mut hashes = 0u32;
                        let mut j = i;
                        while chars.get(j) == Some(&'#') {
                            hashes += 1;
                            j += 1;
                        }
                        if chars.get(j) == Some(&'"') {
                            cur.code.push('"');
                            state = State::Raw(hashes);
                            i = j + 1;
                            continue;
                        }
                    } else if matches!(ident.as_str(), "b" | "c") && chars.get(i) == Some(&'"') {
                        cur.code.push('"');
                        state = State::Cooked;
                        i += 1;
                        continue;
                    }
                    cur.code.push_str(&ident);
                } else {
                    cur.code.push(c);
                    i += 1;
                }
            }
            State::BlockComment(depth) => {
                if c == '/' && chars.get(i + 1) == Some(&'*') {
                    state = State::BlockComment(depth + 1);
                    i += 2;
                } else if c == '*' && chars.get(i + 1) == Some(&'/') {
                    state = if depth == 1 {
                        State::Normal
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    i += 2;
                } else {
                    i += 1;
                }
            }
            State::Cooked => {
                if c == '\\' {
                    // Keep the escape body out of `code` but in
                    // `literals`; `\"` must not close the string.
                    cur.literals.push(c);
                    if let Some(&next) = chars.get(i + 1) {
                        if next != '\n' {
                            cur.literals.push(next);
                        }
                        i += 2;
                    } else {
                        i += 1;
                    }
                } else if c == '"' {
                    cur.code.push('"');
                    state = State::Normal;
                    i += 1;
                } else {
                    cur.literals.push(c);
                    i += 1;
                }
            }
            State::Raw(hashes) => {
                if c == '"' {
                    let n = hashes as usize;
                    let closes = (0..n).all(|k| chars.get(i + 1 + k) == Some(&'#'));
                    if closes {
                        cur.code.push('"');
                        state = State::Normal;
                        i += 1 + n;
                        continue;
                    }
                }
                cur.literals.push(c);
                i += 1;
            }
        }
    }
    lines.push(cur);
    lines
}

/// Scans a `'` at `chars[i]` in code position: either a char literal
/// (blanked like strings) or a lifetime/label (kept as code). Returns
/// the index to resume at.
fn scan_quote(chars: &[char], i: usize, line: &mut Line) -> usize {
    // Char literal if the quote closes within a couple of tokens:
    //   '\n'  'x'  '\u{1F600}'
    // Lifetime/label otherwise: 'a , 'static , 'outer:
    match chars.get(i + 1) {
        Some('\\') => {
            // Escaped char literal: consume to the closing quote.
            line.code.push('\'');
            let mut j = i + 2;
            while j < chars.len() && chars[j] != '\'' && chars[j] != '\n' {
                line.literals.push(chars[j]);
                j += 1;
            }
            line.code.push('\'');
            j + 1
        }
        Some(&c2) if chars.get(i + 2) == Some(&'\'') => {
            // 'x' — a plain one-char literal.
            line.code.push('\'');
            line.literals.push(c2);
            line.code.push('\'');
            i + 3
        }
        _ => {
            // A lifetime or loop label: plain code.
            line.code.push('\'');
            i + 1
        }
    }
}

fn blank_line() -> Line {
    Line {
        code: String::new(),
        literals: String::new(),
        allows: Vec::new(),
        in_test: false,
    }
}

/// Extracts check names from a `tidy:allow(a, b)` directive inside a
/// comment's text, if present.
fn parse_allows(comment: &str) -> Vec<String> {
    let Some(at) = comment.find("tidy:allow(") else {
        return Vec::new();
    };
    let rest = &comment[at + "tidy:allow(".len()..];
    let Some(end) = rest.find(')') else {
        return Vec::new();
    };
    rest[..end]
        .split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect()
}

/// Marks the `#[cfg(test)]` tail of a file as test code. The workspace
/// idiom keeps the test module last in the file, so everything from
/// the attribute onward is treated as tests. Files under `tests/` or
/// `benches/` are test code in full.
fn mark_test_tail(lines: &mut [Line], kind: FileKind) {
    if kind == FileKind::TestDir {
        for line in lines.iter_mut() {
            line.in_test = true;
        }
        return;
    }
    let mut in_test = false;
    for line in lines.iter_mut() {
        if !in_test && line.code.replace(' ', "").contains("#[cfg(test)]") {
            in_test = true;
        }
        line.in_test = in_test;
    }
}

/// Moves `tidy:allow` directives on comment-only lines down to the
/// next line that has code, so suppressions can sit above the site
/// they justify (the readable form, since each wants a why-comment).
fn float_comment_only_allows(lines: &mut [Line]) {
    let mut pending: Vec<String> = Vec::new();
    for line in lines.iter_mut() {
        if line.code.trim().is_empty() {
            pending.append(&mut line.allows);
        } else {
            line.allows.append(&mut pending);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(content: &str) -> ScannedFile {
        ScannedFile::parse("crates/x/src/lib.rs", "x", FileKind::Src, content)
    }

    #[test]
    fn line_comments_are_stripped() {
        let f = parse("let a = 1; // HashMap::new()\nlet b = 2;");
        assert_eq!(f.lines[0].code.trim(), "let a = 1;");
        assert!(!f.lines[0].code.contains("HashMap"));
        assert_eq!(f.lines[1].code.trim(), "let b = 2;");
    }

    #[test]
    fn nested_block_comments_are_stripped() {
        let f = parse("a /* x /* y */ HashMap */ b\nc");
        assert_eq!(f.lines[0].code.replace(' ', ""), "ab");
        assert_eq!(f.lines[1].code, "c");
    }

    #[test]
    fn string_bodies_move_to_literals() {
        let f = parse(r#"let s = "uses .unwrap() freely";"#);
        assert!(!f.lines[0].code.contains("unwrap"));
        assert_eq!(f.lines[0].code.trim(), r#"let s = "";"#);
        assert!(f.lines[0].literals.contains(".unwrap()"));
    }

    #[test]
    fn escaped_quotes_do_not_close_strings() {
        let f = parse(r#"let s = "she said \"panic!\" loudly"; x();"#);
        assert!(!f.lines[0].code.contains("panic"));
        assert!(f.lines[0].code.contains("x()"));
        assert!(f.lines[0].literals.contains("panic!"));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let f = parse(r###"let s = r#"embedded "quote" and HashMap"#; y();"###);
        assert!(!f.lines[0].code.contains("HashMap"));
        assert!(f.lines[0].code.contains("y()"));
        assert!(f.lines[0].literals.contains("HashMap"));
    }

    #[test]
    fn byte_and_c_strings_are_literals() {
        let f = parse(r##"let a = b"panic!"; let b = br#"dbg!"# ; z();"##);
        assert!(!f.lines[0].code.contains("panic"));
        assert!(!f.lines[0].code.contains("dbg"));
        assert!(f.lines[0].code.contains("z()"));
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let f = parse("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        let code = &f.lines[0].code;
        assert!(code.contains("<'a>"), "lifetime survives: {code}");
        assert!(code.contains("&'a str"), "lifetime survives: {code}");
        assert!(!code.contains("'x'"), "char body blanked: {code}");
        assert!(f.lines[0].literals.contains('x'));
    }

    #[test]
    fn multiline_strings_blank_every_line() {
        let f = parse("let s = \"line one\nline .unwrap() two\";\nafter();");
        assert!(!f.lines[1].code.contains("unwrap"));
        assert!(f.lines[1].literals.contains(".unwrap()"));
        assert_eq!(f.lines[2].code, "after();");
    }

    #[test]
    fn allow_on_same_line() {
        let f = parse("let m = foo(); // tidy:allow(determinism) sanctioned\nbar();");
        assert_eq!(f.lines[0].allows, vec!["determinism"]);
        assert!(f.lines[1].allows.is_empty());
    }

    #[test]
    fn doc_comments_do_not_carry_directives() {
        let f = parse("/// like `// tidy:allow(determinism)` above the site\nlet m = foo();");
        assert!(f.lines[0].allows.is_empty());
        assert!(f.lines[1].allows.is_empty());
    }

    #[test]
    fn allow_on_comment_only_line_floats_to_next_code_line() {
        let f = parse(
            "// why: sanctioned site\n// tidy:allow(panic-ratchet, determinism)\n\nlet m = foo();",
        );
        assert!(f.lines[0].allows.is_empty());
        assert_eq!(f.lines[3].allows, vec!["panic-ratchet", "determinism"]);
    }

    #[test]
    fn cfg_test_tail_is_marked() {
        let f = parse("fn real() {}\n#[cfg(test)]\nmod tests {\n fn t() {}\n}");
        assert!(!f.lines[0].in_test);
        assert!(f.lines[1].in_test);
        assert!(f.lines[3].in_test);
    }

    #[test]
    fn test_dir_files_are_all_test() {
        let f = ScannedFile::parse("crates/x/tests/t.rs", "x", FileKind::TestDir, "a\nb");
        assert!(f.lines.iter().all(|l| l.in_test));
    }
}
