//! High-level open-loop online serving.
//!
//! [`serve_open_loop`] is the one-call entry point for the online
//! scenario the closed paper evaluation cannot express: requests arrive
//! on their own open-loop schedule (Poisson or bursty MMPP, not a
//! conveyor), executor queues are bounded, overload is shed through
//! admission control, and the report carries tail-latency percentiles
//! (p50/p90/p95/p99 per stage and end-to-end) plus drop accounting.
//!
//! Runs are fully deterministic: the same system, board, options and
//! seed produce a bit-identical [`RunReport`], so latency-vs-load
//! sweeps across systems compare byte-identical arrival schedules.

use coserve_cluster::runtime::RuntimeOptions;
use coserve_cluster::ClusterSystem;
use coserve_core::config::AdmissionControl;
use coserve_core::presets::ONLINE_MAX_OVERTAKE;
use coserve_core::system::ServingSystem;
use coserve_metrics::cluster::ClusterReport;
use coserve_metrics::report::RunReport;
use coserve_workload::arrivals::ArrivalProcess;
use coserve_workload::board::BoardSpec;
use coserve_workload::stream::{RequestStream, StreamOrder};

/// Options for one open-loop serving run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpenLoopOptions {
    /// The arrival process (offered load and burstiness).
    pub process: ArrivalProcess,
    /// Number of requests to generate.
    pub requests: usize,
    /// In what order input classes arrive.
    pub order: StreamOrder,
    /// Seed for the arrival schedule and stage pre-rolls.
    pub seed: u64,
    /// Bounded-queue admission control applied for the run.
    pub admission: AdmissionControl,
    /// Grouping starvation bound applied for the run (maximum times a
    /// queued request may be overtaken, see
    /// `ExecutorQueue::insert_grouped_bounded`).
    pub max_overtake: u32,
}

impl OpenLoopOptions {
    /// Defaults for a given arrival process: 1,000 requests, IID class
    /// order, seed 7, a 64-deep queue bound and the online overtake
    /// bound.
    #[must_use]
    pub fn new(process: ArrivalProcess) -> Self {
        OpenLoopOptions {
            process,
            requests: 1_000,
            order: StreamOrder::Iid,
            seed: 7,
            admission: AdmissionControl::default(),
            max_overtake: ONLINE_MAX_OVERTAKE,
        }
    }

    /// Replaces the request count.
    #[must_use]
    pub fn requests(mut self, n: usize) -> Self {
        self.requests = n;
        self
    }

    /// Replaces the seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the admission bound.
    #[must_use]
    pub fn admission(mut self, control: AdmissionControl) -> Self {
        self.admission = control;
        self
    }
}

/// Generates an open-loop request stream for `system`'s model and
/// serves it under bounded queues and admission control.
///
/// The system's configured policies (assignment, arranging, eviction,
/// memory plan, executor counts) are kept; only the online knobs —
/// `admission` and `max_overtake` — are overridden from `options`, so
/// any closed-loop configuration (including the baselines) can be
/// pushed through the same open-loop harness.
///
/// # Panics
///
/// Panics if `options.requests` is zero, or if the overridden
/// configuration fails engine validation — impossible when `system`
/// was constructed normally, since the online knobs do not affect
/// validation.
#[must_use]
pub fn serve_open_loop(
    system: &ServingSystem,
    board: &BoardSpec,
    options: &OpenLoopOptions,
) -> RunReport {
    let stream = open_loop_stream(system, board, options);
    let mut config = system.config().clone();
    config.admission = Some(options.admission);
    config.max_overtake = Some(options.max_overtake);
    system
        .serve_configured(&stream, &config)
        .expect("online knobs do not affect engine validation")
}

/// Generates an open-loop request stream for the cluster's model and
/// serves it across the fleet: the dispatcher routes every request by
/// expert residency and queue depth, charges fabric transfer time for
/// cross-node expert chains, and every node applies the same bounded
/// queues and admission control [`serve_open_loop`] applies on one
/// device. Deterministic: the same cluster, board, options and seed
/// produce a bit-identical [`ClusterReport`].
///
/// # Panics
///
/// Panics if `options.requests` is zero (streams cannot be empty).
#[must_use]
pub fn serve_cluster(
    cluster: &ClusterSystem,
    board: &BoardSpec,
    options: &OpenLoopOptions,
) -> ClusterReport {
    let stream = RequestStream::generate_open_loop(
        format!("open-loop {}", options.process),
        board,
        cluster.model(),
        options.requests,
        options.process,
        options.order,
        options.seed,
    );
    cluster.serve_with_online(&stream, options.admission, options.max_overtake)
}

/// Like [`serve_cluster`], but through the *dynamic* cluster runtime:
/// tick-driven dispatch with telemetry feedback, mid-run node failures
/// with re-routing and shard re-replication, and drift-triggered
/// re-placement — everything `runtime` configures. The open-loop knobs
/// in `options` (admission bound, overtake bound) override whatever
/// `runtime.online` carries, keeping the two option structs composable.
/// Deterministic: the same cluster, board, options, runtime options and
/// seed produce a bit-identical [`ClusterReport`].
///
/// # Panics
///
/// Panics if `options.requests` is zero or the failure schedule names a
/// node outside the fleet.
#[must_use]
pub fn serve_cluster_runtime(
    cluster: &ClusterSystem,
    board: &BoardSpec,
    options: &OpenLoopOptions,
    runtime: &RuntimeOptions,
) -> ClusterReport {
    let stream = RequestStream::generate_open_loop(
        format!("open-loop {}", options.process),
        board,
        cluster.model(),
        options.requests,
        options.process,
        options.order,
        options.seed,
    );
    let runtime = runtime
        .clone()
        .online(options.admission, options.max_overtake);
    cluster.serve_runtime(&stream, &runtime)
}

/// The request stream [`serve_open_loop`] would serve — exposed so
/// callers can inspect offered load or replay the identical schedule
/// through a custom engine configuration.
#[must_use]
pub fn open_loop_stream(
    system: &ServingSystem,
    board: &BoardSpec,
    options: &OpenLoopOptions,
) -> RequestStream {
    RequestStream::generate_open_loop(
        format!("open-loop {}", options.process),
        board,
        system.model(),
        options.requests,
        options.process,
        options.order,
        options.seed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use coserve_core::presets;
    use coserve_model::devices;

    fn small_setup() -> (ServingSystem, BoardSpec) {
        let board = BoardSpec::synthetic("open-loop", 24, 3, 1.2, 40.0, 0.5);
        let model = board.build_model().unwrap();
        let device = devices::numa_rtx3080ti();
        let config = presets::coserve(&device);
        (ServingSystem::new(device, model, config).unwrap(), board)
    }

    #[test]
    fn underload_completes_without_drops() {
        let (system, board) = small_setup();
        let options = OpenLoopOptions::new(ArrivalProcess::poisson(40.0)).requests(150);
        let report = serve_open_loop(&system, &board, &options);
        assert_eq!(report.submitted, 150);
        assert_eq!(report.dropped, 0);
        assert_eq!(report.admitted, 150);
        let lat = report.latency_summary().unwrap();
        assert!(lat.is_finite());
        assert!(lat.p50 <= lat.p95 && lat.p95 <= lat.p99);
    }

    #[test]
    fn overload_sheds_load_deterministically() {
        let (system, board) = small_setup();
        let options = OpenLoopOptions::new(ArrivalProcess::poisson(5_000.0))
            .requests(400)
            .admission(AdmissionControl::with_queue_capacity(8));
        let a = serve_open_loop(&system, &board, &options);
        assert!(a.dropped > 0, "5000 rps must overload the system");
        assert!(a.admitted > 0);
        assert_eq!(a.completed + a.failed + a.dropped, a.submitted);
        let b = serve_open_loop(&system, &board, &options);
        assert_eq!(a, b, "open-loop runs must be bit-identical");
    }

    #[test]
    fn cluster_facade_round_trip() {
        let board = BoardSpec::synthetic("cluster-open-loop", 24, 3, 1.2, 40.0, 0.5);
        let model = board.build_model().unwrap();
        let device = devices::numa_rtx3080ti();
        let cluster = ClusterSystem::homogeneous(
            2,
            &device,
            &presets::coserve(&device),
            &model,
            coserve_sim::network::LinkProfile::ethernet_10g(),
            coserve_cluster::ClusterOptions::default(),
        )
        .unwrap();
        let options = OpenLoopOptions::new(ArrivalProcess::poisson(100.0)).requests(120);
        let a = serve_cluster(&cluster, &board, &options);
        assert_eq!(a.submitted, 120);
        assert_eq!(a.completed + a.failed + a.dropped, a.submitted);
        assert_eq!(a.num_nodes(), 2);
        let b = serve_cluster(&cluster, &board, &options);
        assert_eq!(a, b, "cluster open-loop runs must be bit-identical");
    }

    #[test]
    fn cluster_runtime_facade_injects_failures() {
        use coserve_cluster::runtime::FailureSchedule;
        use coserve_sim::time::{SimSpan, SimTime};

        let board = BoardSpec::synthetic("cluster-runtime", 24, 3, 1.2, 40.0, 0.5);
        let model = board.build_model().unwrap();
        let device = devices::numa_rtx3080ti();
        let cluster = ClusterSystem::homogeneous(
            3,
            &device,
            &presets::coserve(&device),
            &model,
            coserve_sim::network::LinkProfile::ethernet_10g(),
            coserve_cluster::ClusterOptions::default(),
        )
        .unwrap();
        let options = OpenLoopOptions::new(ArrivalProcess::poisson(200.0)).requests(150);
        let runtime = RuntimeOptions::default()
            .tick(SimSpan::from_millis(100))
            .failures(FailureSchedule::new().kill(1, SimTime::ZERO + SimSpan::from_millis(300)));
        let a = serve_cluster_runtime(&cluster, &board, &options, &runtime);
        assert_eq!(a.submitted, 150);
        assert_eq!(a.completed + a.failed + a.dropped, a.submitted);
        assert_eq!(a.dynamics.failures.len(), 1);
        assert!(a.recovery_time().is_some());
        assert!(a.dynamics.migrations > 0);
        let b = serve_cluster_runtime(&cluster, &board, &options, &runtime);
        assert_eq!(a, b, "runtime runs must be bit-identical");
        // The open-loop knobs flow into the runtime's online override:
        // admission accounting is live on every node.
        assert!(a.admitted > 0 && a.admitted <= a.submitted);
    }

    #[test]
    fn stream_is_shared_across_systems() {
        let (system, board) = small_setup();
        let options = OpenLoopOptions::new(ArrivalProcess::bursty(50.0, 2_000.0, 100.0, 20.0))
            .requests(200)
            .seed(13);
        let stream = open_loop_stream(&system, &board, &options);
        assert_eq!(stream.len(), 200);
        assert!(stream.name().contains("mmpp"));
        // The stream depends only on (board, model, options), not on the
        // serving configuration — the fairness property of sweeps.
        let baseline = ServingSystem::new(
            system.device().clone(),
            system.model().clone(),
            coserve_baselines::samba::samba_coe(system.device()),
        )
        .unwrap();
        assert_eq!(stream, open_loop_stream(&baseline, &board, &options));
    }
}
