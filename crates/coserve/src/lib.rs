//! # coserve
//!
//! A reproduction of **CoServe: Efficient Collaboration-of-Experts
//! (CoE) Model Inference with Limited Memory** (ASPLOS '25) as a Rust
//! library, built on a deterministic discrete-event simulation of the
//! paper's evaluation hardware.
//!
//! This facade re-exports the workspace crates:
//!
//! * [`sim`] — the simulation substrate (clock, channels, memory tiers,
//!   transfer/compute cost models, device profiles);
//! * [`model`] — CoE model abstractions (experts, routing, dependency
//!   graph);
//! * [`workload`] — circuit-board inspection and LLM workloads;
//! * [`core`] — the CoServe system (profiler, dependency-aware
//!   scheduling and expert management, memory autotuning, engine);
//! * [`baselines`] — the Samba-CoE baselines and evaluation suite;
//! * [`cluster`] — cluster-scale serving: expert placement planning,
//!   network-fabric costs and multi-node dispatch;
//! * [`metrics`] — run reports, statistics and table rendering;
//! * [`trace`] — structured sim-time tracing and Perfetto export.
//!
//! [`serve`] adds what the paper's closed evaluation cannot express:
//! open-loop online serving with Poisson/bursty arrivals, bounded
//! queues, admission control and tail-latency (p50/p90/p95/p99)
//! reporting — see [`serve::serve_open_loop`] for one device and
//! [`serve::serve_cluster`] for a fleet.
//!
//! ## Quickstart
//!
//! ```
//! use coserve::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A small circuit board: 24 component types, 3 shared detectors.
//! let board = BoardSpec::synthetic("demo-board", 24, 3, 1.2, 40.0, 0.5);
//! let model = board.build_model()?;
//! let device = devices::numa_rtx3080ti();
//!
//! // Offline: profile and configure; Online: serve a request stream.
//! let config = presets::coserve(&device);
//! let system = ServingSystem::new(device, model, config)?;
//! let task = TaskSpec::new(
//!     "demo", board, 200, PAPER_ARRIVAL_INTERVAL, StreamOrder::Iid, 7,
//! );
//! let report = system.serve(&task.stream(system.model()));
//! assert_eq!(report.completed, 200);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use coserve_baselines as baselines;
pub use coserve_cluster as cluster;
pub use coserve_core as core;
pub use coserve_metrics as metrics;
pub use coserve_model as model;
pub use coserve_sim as sim;
pub use coserve_trace as trace;
pub use coserve_workload as workload;

pub mod serve;

/// One-stop imports for the common workflow.
pub mod prelude {
    pub use crate::serve::{
        open_loop_stream, serve_cluster, serve_cluster_runtime, serve_open_loop, OpenLoopOptions,
    };
    pub use coserve_baselines::prelude::*;
    pub use coserve_cluster::prelude::*;
    pub use coserve_core::prelude::*;
    pub use coserve_metrics::prelude::*;
    pub use coserve_model::prelude::*;
    pub use coserve_sim::prelude::*;
    pub use coserve_workload::prelude::*;
}
