//! Typed trace events.
//!
//! One [`TraceEvent`] is one observation: a timestamp on the simulated
//! clock, the node it happened on (`0` for single-node runs), and a
//! [`TraceKind`] payload carrying the causal ids — request, stage,
//! expert, executor, plan version — that let a consumer stitch events
//! back into per-request timelines and per-expert residency histories.
//!
//! Span-shaped kinds carry their duration and are stamped with their
//! *start* time, so an exporter can render them as complete spans
//! without pairing begin/end records.

use coserve_model::expert::ExpertId;
use coserve_sim::memory::MemoryTier;
use coserve_sim::time::{SimSpan, SimTime};

/// One trace observation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// When it happened (span kinds: when the span started).
    pub at: SimTime,
    /// The node it happened on (`0` outside cluster runs).
    pub node: u32,
    /// What happened.
    pub kind: TraceKind,
}

/// What a [`TraceEvent`] records.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceKind {
    // ── request lifecycle ────────────────────────────────────────────
    /// A job entered the system (`at` = effective arrival).
    Arrived {
        /// Engine job id.
        job: u32,
        /// Chain length.
        stages: u8,
    },
    /// The scheduler processed one stage (`at` = processing start).
    Scheduled {
        /// Engine job id.
        job: u32,
        /// Stage index within the chain.
        stage: u8,
        /// Scheduler processing span.
        span: SimSpan,
    },
    /// A stage was assigned to an executor queue.
    Assigned {
        /// Engine job id.
        job: u32,
        /// Stage index within the chain.
        stage: u8,
        /// The stage's expert.
        expert: ExpertId,
        /// Target executor.
        exec: u32,
    },
    /// Admission control shed the job at a full executor queue.
    Dropped {
        /// Engine job id.
        job: u32,
        /// The stage that hit the full queue.
        stage: u8,
        /// Arrival-to-drop sojourn.
        latency: SimSpan,
    },
    /// One stage of a job finished, with its latency attribution
    /// (`at` = finish). The four components sum to the stage sojourn:
    /// queue wait, expert switch, compute-channel stall, execution.
    StageDone {
        /// Engine job id.
        job: u32,
        /// Stage index within the chain.
        stage: u8,
        /// The executor that ran it.
        exec: u32,
        /// The stage's expert.
        expert: ExpertId,
        /// Ready-to-batch-start wait in the executor queue.
        queue: SimSpan,
        /// Expert switch time charged to the batch (zero when the
        /// expert was resident).
        switch: SimSpan,
        /// Wait for the compute channel after the switch completed.
        stall: SimSpan,
        /// Execution time on the compute channel.
        exec_span: SimSpan,
    },
    /// A job completed its last stage (`at` = completion).
    Completed {
        /// Engine job id.
        job: u32,
        /// Arrival-to-completion sojourn.
        latency: SimSpan,
    },
    /// A job failed (its expert could not be served anywhere).
    Failed {
        /// Engine job id.
        job: u32,
        /// Arrival-to-failure sojourn.
        latency: SimSpan,
    },
    /// An expert switch completed on an executor (`at` = switch start).
    Switch {
        /// The switching executor.
        exec: u32,
        /// The expert switched in.
        expert: ExpertId,
        /// Where the weights came from.
        source: MemoryTier,
        /// Start-to-compute-ready duration.
        span: SimSpan,
    },
    /// A batch executed on an executor's compute channel (`at` =
    /// compute start).
    Exec {
        /// The executor.
        exec: u32,
        /// The batch's expert.
        expert: ExpertId,
        /// Requests in the batch.
        items: u32,
        /// Compute span.
        span: SimSpan,
    },

    // ── expert residency ─────────────────────────────────────────────
    /// An expert was preloaded into an executor pool before serving.
    Preloaded {
        /// The executor pool.
        exec: u32,
        /// The preloaded expert.
        expert: ExpertId,
    },
    /// An expert was switched into an executor pool mid-run.
    Loaded {
        /// The executor pool.
        exec: u32,
        /// The loaded expert.
        expert: ExpertId,
        /// Where the weights came from.
        source: MemoryTier,
    },
    /// An expert was evicted from an executor pool.
    Evicted {
        /// The executor pool.
        exec: u32,
        /// The victim.
        expert: ExpertId,
        /// Whether the weights were demoted into the staging cache
        /// (as opposed to simply discarded).
        demoted: bool,
    },
    /// An expert entered the shared staging cache.
    CacheInserted {
        /// The cached expert.
        expert: ExpertId,
    },
    /// The staging cache's LRU sweep evicted an expert.
    CacheEvicted {
        /// The victim.
        expert: ExpertId,
    },

    // ── cluster runtime ──────────────────────────────────────────────
    /// A node died; its buffered work was pulled back for re-route.
    NodeKilled {
        /// Requests pulled back and re-routed.
        rerouted: u32,
    },
    /// A node came back (empty).
    NodeRevived,
    /// One expert copy started migrating to this event's node
    /// (`at` = migration start).
    MigrationStarted {
        /// The migrating expert.
        expert: ExpertId,
        /// The donor node (`None` = local SSD checkpoint reload).
        donor: Option<u32>,
        /// Transfer duration; the copy lands at `at + span`.
        span: SimSpan,
    },
    /// A migrated expert copy became usable on this event's node.
    MigrationLanded {
        /// The landed expert.
        expert: ExpertId,
    },
    /// The placement plan was replaced.
    Replanned {
        /// The successor plan's version.
        version: u64,
        /// Expert copies the migration ships.
        moves: u32,
    },
    /// The front-end rejected a request before any node saw it.
    Shed {
        /// Workload job id (front-end numbering, not an engine id).
        job: u32,
        /// `true` for a pacing shed, `false` for an unhosted chain.
        paced: bool,
    },

    // ── faults & recovery ────────────────────────────────────────────
    /// An injected expert-load fault: the pool miss's tier read failed
    /// `failures` consecutive times.
    LoadFault {
        /// The executor whose switch hit the fault.
        exec: u32,
        /// The expert being loaded.
        expert: ExpertId,
        /// Consecutive failed read attempts.
        failures: u32,
        /// Whether the retry policy recovered the load (`false` = the
        /// budget ran out and the batch failed).
        recovered: bool,
    },
    /// An injected slow expert load: the read succeeded but ran
    /// dilated.
    SlowLoad {
        /// The executor whose switch was dilated.
        exec: u32,
        /// The expert being loaded.
        expert: ExpertId,
        /// Time added over the healthy transfer.
        extra: SimSpan,
    },
    /// A fabric transfer hit a faulted link.
    LinkFault {
        /// Transfer source node.
        from: u32,
        /// Transfer destination node.
        to: u32,
        /// `true` when the pair was partitioned (the transfer was
        /// degraded or abandoned), `false` for a dilated link.
        partitioned: bool,
        /// Time added over the healthy transfer (zero for partitions).
        extra: SimSpan,
    },
    /// One control tick of this event's node served under slow-node
    /// dilation.
    SlowNode {
        /// Drain time added by the dilation this tick.
        extra: SimSpan,
    },
    /// A job was re-routed to a replica because its first-choice node
    /// could not reach some chain stage's holders.
    HedgedReroute {
        /// Workload job id (front-end numbering).
        job: u32,
        /// The unreachable first choice.
        from: u32,
        /// The replica actually routed to.
        to: u32,
    },
    /// The server shed a request with a typed busy/retry-after
    /// response instead of queueing it (graceful degradation).
    BusyShed {
        /// The connection whose submit was shed.
        conn: u32,
    },
}

impl TraceKind {
    /// A short stable name for the kind (exporter event names, flat
    /// counter keys).
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            TraceKind::Arrived { .. } => "arrived",
            TraceKind::Scheduled { .. } => "sched",
            TraceKind::Assigned { .. } => "assigned",
            TraceKind::Dropped { .. } => "dropped",
            TraceKind::StageDone { .. } => "stage-done",
            TraceKind::Completed { .. } => "completed",
            TraceKind::Failed { .. } => "failed",
            TraceKind::Switch { .. } => "switch",
            TraceKind::Exec { .. } => "exec",
            TraceKind::Preloaded { .. } => "preloaded",
            TraceKind::Loaded { .. } => "loaded",
            TraceKind::Evicted { .. } => "evicted",
            TraceKind::CacheInserted { .. } => "cache-insert",
            TraceKind::CacheEvicted { .. } => "cache-evict",
            TraceKind::NodeKilled { .. } => "node-killed",
            TraceKind::NodeRevived => "node-revived",
            TraceKind::MigrationStarted { .. } => "migration-start",
            TraceKind::MigrationLanded { .. } => "migration-land",
            TraceKind::Replanned { .. } => "replanned",
            TraceKind::Shed { .. } => "shed",
            TraceKind::LoadFault { .. } => "load-fault",
            TraceKind::SlowLoad { .. } => "slow-load",
            TraceKind::LinkFault { .. } => "link-fault",
            TraceKind::SlowNode { .. } => "slow-node",
            TraceKind::HedgedReroute { .. } => "hedge-reroute",
            TraceKind::BusyShed { .. } => "busy-shed",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_are_distinct() {
        let kinds = [
            TraceKind::Arrived { job: 0, stages: 1 },
            TraceKind::Scheduled {
                job: 0,
                stage: 0,
                span: SimSpan::ZERO,
            },
            TraceKind::Assigned {
                job: 0,
                stage: 0,
                expert: ExpertId(0),
                exec: 0,
            },
            TraceKind::Dropped {
                job: 0,
                stage: 0,
                latency: SimSpan::ZERO,
            },
            TraceKind::StageDone {
                job: 0,
                stage: 0,
                exec: 0,
                expert: ExpertId(0),
                queue: SimSpan::ZERO,
                switch: SimSpan::ZERO,
                stall: SimSpan::ZERO,
                exec_span: SimSpan::ZERO,
            },
            TraceKind::Completed {
                job: 0,
                latency: SimSpan::ZERO,
            },
            TraceKind::Failed {
                job: 0,
                latency: SimSpan::ZERO,
            },
            TraceKind::Switch {
                exec: 0,
                expert: ExpertId(0),
                source: MemoryTier::Ssd,
                span: SimSpan::ZERO,
            },
            TraceKind::Exec {
                exec: 0,
                expert: ExpertId(0),
                items: 1,
                span: SimSpan::ZERO,
            },
            TraceKind::Preloaded {
                exec: 0,
                expert: ExpertId(0),
            },
            TraceKind::Loaded {
                exec: 0,
                expert: ExpertId(0),
                source: MemoryTier::Cpu,
            },
            TraceKind::Evicted {
                exec: 0,
                expert: ExpertId(0),
                demoted: true,
            },
            TraceKind::CacheInserted {
                expert: ExpertId(0),
            },
            TraceKind::CacheEvicted {
                expert: ExpertId(0),
            },
            TraceKind::NodeKilled { rerouted: 0 },
            TraceKind::NodeRevived,
            TraceKind::MigrationStarted {
                expert: ExpertId(0),
                donor: None,
                span: SimSpan::ZERO,
            },
            TraceKind::MigrationLanded {
                expert: ExpertId(0),
            },
            TraceKind::Replanned {
                version: 1,
                moves: 0,
            },
            TraceKind::Shed {
                job: 0,
                paced: true,
            },
            TraceKind::LoadFault {
                exec: 0,
                expert: ExpertId(0),
                failures: 1,
                recovered: true,
            },
            TraceKind::SlowLoad {
                exec: 0,
                expert: ExpertId(0),
                extra: SimSpan::ZERO,
            },
            TraceKind::LinkFault {
                from: 0,
                to: 1,
                partitioned: false,
                extra: SimSpan::ZERO,
            },
            TraceKind::SlowNode {
                extra: SimSpan::ZERO,
            },
            TraceKind::HedgedReroute {
                job: 0,
                from: 0,
                to: 1,
            },
            TraceKind::BusyShed { conn: 0 },
        ];
        let names: std::collections::BTreeSet<&str> = kinds.iter().map(TraceKind::name).collect();
        assert_eq!(names.len(), kinds.len(), "duplicate kind name");
    }
}
