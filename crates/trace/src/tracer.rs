//! Trace collectors.
//!
//! Instrumented code holds a `&mut dyn Tracer` (or a boxed one) and
//! guards every emission with [`Tracer::enabled`] so the disabled path
//! never even constructs a [`TraceEvent`]. [`NoopTracer`] is that
//! disabled path; [`RingTracer`] is the real collector — a bounded
//! ring that overwrites its oldest events once full, counting what it
//! dropped so consumers know the window is partial.

use std::collections::VecDeque;
use std::fmt;

use crate::event::TraceEvent;

/// A sink for trace events.
///
/// Implementations must be deterministic: recording the same event
/// sequence twice must leave the tracer in the same state. (Both
/// built-in tracers are plain in-memory state machines, so this holds
/// trivially.)
pub trait Tracer: Send + fmt::Debug {
    /// Whether recording is on. Instrumented code checks this before
    /// constructing an event, so a disabled tracer costs one virtual
    /// call and a branch per site.
    fn enabled(&self) -> bool;

    /// Records one event. Called only when [`Tracer::enabled`] is
    /// `true`, but implementations must tolerate being called anyway.
    fn record(&mut self, event: TraceEvent);

    /// Removes and returns every buffered event in record order.
    fn drain(&mut self) -> Vec<TraceEvent>;

    /// Events currently buffered.
    fn len(&self) -> usize;

    /// Whether the buffer is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total events ever offered to [`Tracer::record`].
    fn recorded(&self) -> u64;

    /// Events lost to capacity (overwritten before being drained).
    fn dropped(&self) -> u64;
}

/// The disabled tracer: records nothing, reports `enabled() == false`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopTracer;

impl Tracer for NoopTracer {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&mut self, _event: TraceEvent) {}

    fn drain(&mut self) -> Vec<TraceEvent> {
        Vec::new()
    }

    fn len(&self) -> usize {
        0
    }

    fn recorded(&self) -> u64 {
        0
    }

    fn dropped(&self) -> u64 {
        0
    }
}

/// A bounded in-memory collector.
///
/// Holds at most `capacity` events; recording into a full ring evicts
/// the oldest buffered event and bumps [`RingTracer::dropped`]. A long
/// run therefore keeps tracing its recent past at a fixed memory cost
/// instead of growing without bound or going silent.
#[derive(Debug, Clone)]
pub struct RingTracer {
    buf: VecDeque<TraceEvent>,
    capacity: usize,
    recorded: u64,
    dropped: u64,
}

impl RingTracer {
    /// Default ring capacity: enough for every event of the bundled
    /// figures while bounding a runaway run to a few MiB.
    pub const DEFAULT_CAPACITY: usize = 1 << 20;

    /// Creates a tracer with the default capacity.
    #[must_use]
    pub fn new() -> Self {
        Self::with_capacity(Self::DEFAULT_CAPACITY)
    }

    /// Creates a tracer holding at most `capacity` events (min 1).
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        RingTracer {
            buf: VecDeque::new(),
            capacity: capacity.max(1),
            recorded: 0,
            dropped: 0,
        }
    }

    /// The ring's capacity in events.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The buffered events in record order, without consuming them.
    /// Use this for live summaries that must not disturb a later
    /// drainable dump.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.buf.iter()
    }
}

impl Default for RingTracer {
    fn default() -> Self {
        Self::new()
    }
}

impl Tracer for RingTracer {
    fn enabled(&self) -> bool {
        true
    }

    fn record(&mut self, event: TraceEvent) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(event);
        self.recorded += 1;
    }

    fn drain(&mut self) -> Vec<TraceEvent> {
        self.buf.drain(..).collect()
    }

    fn len(&self) -> usize {
        self.buf.len()
    }

    fn recorded(&self) -> u64 {
        self.recorded
    }

    fn dropped(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceKind;
    use coserve_sim::time::SimTime;

    fn ev(n: u64) -> TraceEvent {
        TraceEvent {
            at: SimTime::from_nanos(n),
            node: 0,
            kind: TraceKind::Arrived {
                job: n as u32,
                stages: 1,
            },
        }
    }

    #[test]
    fn noop_records_nothing() {
        let mut t = NoopTracer;
        assert!(!t.enabled());
        t.record(ev(1));
        assert!(t.is_empty());
        assert_eq!(t.drain(), Vec::new());
        assert_eq!((t.recorded(), t.dropped()), (0, 0));
    }

    #[test]
    fn ring_keeps_order() {
        let mut t = RingTracer::with_capacity(8);
        assert!(t.enabled());
        for n in 0..5 {
            t.record(ev(n));
        }
        assert_eq!(t.len(), 5);
        assert_eq!(t.recorded(), 5);
        assert_eq!(t.dropped(), 0);
        let drained = t.drain();
        assert_eq!(drained.len(), 5);
        assert!(drained.windows(2).all(|w| w[0].at < w[1].at));
        assert!(t.is_empty());
        assert_eq!(t.recorded(), 5, "drain keeps the lifetime counter");
    }

    #[test]
    fn ring_overwrites_oldest_when_full() {
        let mut t = RingTracer::with_capacity(3);
        for n in 0..5 {
            t.record(ev(n));
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.recorded(), 5);
        assert_eq!(t.dropped(), 2);
        let kept: Vec<u64> = t.drain().into_iter().map(|e| e.at.nanos()).collect();
        assert_eq!(kept, vec![2, 3, 4], "oldest events were evicted");
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let mut t = RingTracer::with_capacity(0);
        assert_eq!(t.capacity(), 1);
        t.record(ev(1));
        t.record(ev(2));
        assert_eq!(t.len(), 1);
        assert_eq!(t.dropped(), 1);
    }

    #[test]
    fn events_does_not_consume() {
        let mut t = RingTracer::with_capacity(4);
        t.record(ev(7));
        assert_eq!(t.events().count(), 1);
        assert_eq!(t.events().count(), 1);
        assert_eq!(t.len(), 1);
        assert_eq!(t.drain().len(), 1);
    }

    #[test]
    fn identical_sequences_leave_identical_state() {
        let mut a = RingTracer::with_capacity(4);
        let mut b = RingTracer::with_capacity(4);
        for n in 0..9 {
            a.record(ev(n));
            b.record(ev(n));
        }
        assert_eq!(a.drain(), b.drain());
        assert_eq!((a.recorded(), a.dropped()), (b.recorded(), b.dropped()));
    }
}
