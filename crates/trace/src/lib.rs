//! # coserve-trace
//!
//! Deterministic, sim-time-only structured tracing for the CoServe
//! stack. The engine, the cluster runtime and the network server emit
//! typed [`TraceEvent`]s — request lifecycle spans, expert-pool
//! residency transitions, fleet control actions — into a [`Tracer`].
//! Two implementations exist:
//!
//! * [`NoopTracer`] — the default everywhere; `enabled()` is `false`,
//!   so instrumented code never constructs an event. The disabled path
//!   is bit-identical to an un-instrumented build.
//! * [`RingTracer`] — a bounded ring buffer; once full, the oldest
//!   events are overwritten and counted as dropped, so a long run can
//!   keep tracing its recent past at fixed memory cost.
//!
//! Everything is stamped with [`SimTime`](coserve_sim::time::SimTime)
//! — never the wall clock — and carries causal ids (request, expert,
//! node, executor, plan version). Two identical runs therefore produce
//! byte-identical traces, and a trace diff *is* a behaviour diff.
//!
//! [`export::chrome_trace_json`] renders a drained event list in the
//! Chrome trace-event format (one pid per node, one tid per executor,
//! timestamps in sim-time microseconds), loadable in Perfetto or
//! `chrome://tracing`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod event;
pub mod export;
pub mod tracer;

/// Convenient re-exports of the most commonly used items.
pub mod prelude {
    pub use crate::event::{TraceEvent, TraceKind};
    pub use crate::export::{chrome_trace_json, parse_chrome_stage_done};
    pub use crate::tracer::{NoopTracer, RingTracer, Tracer};
}

pub use prelude::*;
