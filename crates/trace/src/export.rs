//! Chrome trace-event export.
//!
//! [`chrome_trace_json`] renders a drained event list as a JSON object
//! in the [Chrome trace-event format] understood by Perfetto and
//! `chrome://tracing`:
//!
//! * one **pid** per node,
//! * one **tid** per track: `0` requests, `1` scheduler, `2` staging
//!   cache, `3` cluster runtime, `10 + e` for executor `e`,
//! * complete spans (`ph: "X"`) for scheduler work, expert switches,
//!   batch execution and migrations; thread-scoped instants
//!   (`ph: "i"`) for everything else,
//! * timestamps and durations in sim-time **microseconds**, rendered
//!   from integer nanoseconds as exact `µs.³` decimals — never through
//!   a float — so two identical runs export byte-identical traces.
//!
//! Metadata records (`ph: "M"`) name every process and thread that
//! appears, so tracks come up labelled in the viewer.
//!
//! [Chrome trace-event format]:
//!     https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use std::collections::BTreeSet;
use std::fmt::Write as _;

use coserve_model::expert::ExpertId;
use coserve_sim::time::{SimSpan, SimTime};

use crate::event::{TraceEvent, TraceKind};

/// Track (tid) for request lifecycle instants.
pub const TID_REQUESTS: u32 = 0;
/// Track (tid) for scheduler processing spans.
pub const TID_SCHEDULER: u32 = 1;
/// Track (tid) for staging-cache residency instants.
pub const TID_CACHE: u32 = 2;
/// Track (tid) for cluster runtime control events.
pub const TID_RUNTIME: u32 = 3;
/// Executor `e` gets track `TID_EXEC_BASE + e`.
pub const TID_EXEC_BASE: u32 = 10;

/// Renders `events` as a Chrome trace-event JSON object
/// (`{"displayTimeUnit": "ms", "traceEvents": [...]}`).
///
/// Events are emitted in input order after the metadata records; the
/// format does not require timestamp ordering.
#[must_use]
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 96 + 256);
    out.push_str("{\"displayTimeUnit\": \"ms\", \"traceEvents\": [");

    let mut first = true;
    let mut emit = |line: String, out: &mut String| {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str("\n  ");
        out.push_str(&line);
    };

    // Name every process and thread up front so tracks come up
    // labelled even when their first real event is far into the trace.
    let mut pids: BTreeSet<u32> = BTreeSet::new();
    let mut tracks: BTreeSet<(u32, u32)> = BTreeSet::new();
    for ev in events {
        pids.insert(ev.node);
        tracks.insert((ev.node, tid_for(&ev.kind)));
    }
    for &pid in &pids {
        emit(
            format!(
                "{{\"ph\": \"M\", \"pid\": {pid}, \"tid\": 0, \"name\": \"process_name\", \
                 \"args\": {{\"name\": \"node {pid}\"}}}}"
            ),
            &mut out,
        );
    }
    for &(pid, tid) in &tracks {
        emit(
            format!(
                "{{\"ph\": \"M\", \"pid\": {pid}, \"tid\": {tid}, \"name\": \"thread_name\", \
                 \"args\": {{\"name\": \"{}\"}}}}",
                track_name(tid)
            ),
            &mut out,
        );
    }

    for ev in events {
        emit(render_event(ev), &mut out);
    }

    out.push_str("\n]}\n");
    out
}

/// The track an event is drawn on.
fn tid_for(kind: &TraceKind) -> u32 {
    match kind {
        TraceKind::Arrived { .. }
        | TraceKind::Assigned { .. }
        | TraceKind::Dropped { .. }
        | TraceKind::StageDone { .. }
        | TraceKind::Completed { .. }
        | TraceKind::Failed { .. }
        | TraceKind::Shed { .. }
        | TraceKind::HedgedReroute { .. }
        | TraceKind::BusyShed { .. } => TID_REQUESTS,
        TraceKind::Scheduled { .. } => TID_SCHEDULER,
        TraceKind::CacheInserted { .. } | TraceKind::CacheEvicted { .. } => TID_CACHE,
        TraceKind::NodeKilled { .. }
        | TraceKind::NodeRevived
        | TraceKind::MigrationStarted { .. }
        | TraceKind::MigrationLanded { .. }
        | TraceKind::Replanned { .. }
        | TraceKind::LinkFault { .. }
        | TraceKind::SlowNode { .. } => TID_RUNTIME,
        TraceKind::Switch { exec, .. }
        | TraceKind::Exec { exec, .. }
        | TraceKind::Preloaded { exec, .. }
        | TraceKind::Loaded { exec, .. }
        | TraceKind::Evicted { exec, .. }
        | TraceKind::LoadFault { exec, .. }
        | TraceKind::SlowLoad { exec, .. } => TID_EXEC_BASE + exec,
    }
}

/// Human-readable name for a track id.
fn track_name(tid: u32) -> String {
    match tid {
        TID_REQUESTS => "requests".to_string(),
        TID_SCHEDULER => "scheduler".to_string(),
        TID_CACHE => "cache".to_string(),
        TID_RUNTIME => "runtime".to_string(),
        exec => format!("exec {}", exec - TID_EXEC_BASE),
    }
}

/// Integer nanoseconds as exact microseconds with three decimals
/// (`1500` → `"1.500"`), avoiding float formatting entirely.
fn micros(nanos: u64) -> String {
    format!("{}.{:03}", nanos / 1_000, nanos % 1_000)
}

/// One trace-event record as a JSON object literal.
fn render_event(ev: &TraceEvent) -> String {
    let mut rec = String::with_capacity(96);
    let tid = tid_for(&ev.kind);
    let _ = write!(
        rec,
        "{{\"name\": \"{}\", \"pid\": {}, \"tid\": {}, \"ts\": {}",
        ev.kind.name(),
        ev.node,
        tid,
        micros(ev.at.nanos())
    );

    // ph + dur.
    match &ev.kind {
        TraceKind::Scheduled { span, .. }
        | TraceKind::Switch { span, .. }
        | TraceKind::Exec { span, .. }
        | TraceKind::MigrationStarted { span, .. } => {
            let _ = write!(rec, ", \"ph\": \"X\", \"dur\": {}", micros(span.nanos()));
        }
        _ => {
            rec.push_str(", \"ph\": \"i\", \"s\": \"t\"");
        }
    }

    rec.push_str(", \"args\": {");
    match &ev.kind {
        TraceKind::Arrived { job, stages } => {
            let _ = write!(rec, "\"job\": {job}, \"stages\": {stages}");
        }
        TraceKind::Scheduled { job, stage, .. } => {
            let _ = write!(rec, "\"job\": {job}, \"stage\": {stage}");
        }
        TraceKind::Assigned {
            job,
            stage,
            expert,
            exec,
        } => {
            let _ = write!(
                rec,
                "\"job\": {job}, \"stage\": {stage}, \"expert\": {}, \"exec\": {exec}",
                expert.index()
            );
        }
        TraceKind::Dropped {
            job,
            stage,
            latency,
        } => {
            let _ = write!(
                rec,
                "\"job\": {job}, \"stage\": {stage}, \"latency_us\": {}",
                micros(latency.nanos())
            );
        }
        TraceKind::StageDone {
            job,
            stage,
            exec,
            expert,
            queue,
            switch,
            stall,
            exec_span,
        } => {
            let _ = write!(
                rec,
                "\"job\": {job}, \"stage\": {stage}, \"exec\": {exec}, \"expert\": {}, \
                 \"queue_us\": {}, \"switch_us\": {}, \"stall_us\": {}, \"exec_us\": {}",
                expert.index(),
                micros(queue.nanos()),
                micros(switch.nanos()),
                micros(stall.nanos()),
                micros(exec_span.nanos())
            );
        }
        TraceKind::Completed { job, latency } | TraceKind::Failed { job, latency } => {
            let _ = write!(
                rec,
                "\"job\": {job}, \"latency_us\": {}",
                micros(latency.nanos())
            );
        }
        TraceKind::Switch { expert, source, .. } => {
            let _ = write!(
                rec,
                "\"expert\": {}, \"source\": \"{source}\"",
                expert.index()
            );
        }
        TraceKind::Exec { expert, items, .. } => {
            let _ = write!(rec, "\"expert\": {}, \"items\": {items}", expert.index());
        }
        TraceKind::Preloaded { expert, .. } => {
            let _ = write!(rec, "\"expert\": {}", expert.index());
        }
        TraceKind::Loaded { expert, source, .. } => {
            let _ = write!(
                rec,
                "\"expert\": {}, \"source\": \"{source}\"",
                expert.index()
            );
        }
        TraceKind::Evicted {
            expert, demoted, ..
        } => {
            let _ = write!(
                rec,
                "\"expert\": {}, \"demoted\": {demoted}",
                expert.index()
            );
        }
        TraceKind::CacheInserted { expert } | TraceKind::CacheEvicted { expert } => {
            let _ = write!(rec, "\"expert\": {}", expert.index());
        }
        TraceKind::NodeKilled { rerouted } => {
            let _ = write!(rec, "\"rerouted\": {rerouted}");
        }
        TraceKind::NodeRevived => {}
        TraceKind::MigrationStarted { expert, donor, .. } => {
            let _ = write!(rec, "\"expert\": {}", expert.index());
            match donor {
                Some(d) => {
                    let _ = write!(rec, ", \"donor\": {d}");
                }
                None => rec.push_str(", \"donor\": \"ssd\""),
            }
        }
        TraceKind::MigrationLanded { expert } => {
            let _ = write!(rec, "\"expert\": {}", expert.index());
        }
        TraceKind::Replanned { version, moves } => {
            let _ = write!(rec, "\"version\": {version}, \"moves\": {moves}");
        }
        TraceKind::Shed { job, paced } => {
            let _ = write!(rec, "\"job\": {job}, \"paced\": {paced}");
        }
        TraceKind::LoadFault {
            exec,
            expert,
            failures,
            recovered,
        } => {
            let _ = write!(
                rec,
                "\"exec\": {exec}, \"expert\": {}, \"failures\": {failures}, \
                 \"recovered\": {recovered}",
                expert.index()
            );
        }
        TraceKind::SlowLoad { expert, extra, .. } => {
            let _ = write!(
                rec,
                "\"expert\": {}, \"extra_us\": {}",
                expert.index(),
                micros(extra.nanos())
            );
        }
        TraceKind::LinkFault {
            from,
            to,
            partitioned,
            extra,
        } => {
            let _ = write!(
                rec,
                "\"from\": {from}, \"to\": {to}, \"partitioned\": {partitioned}, \
                 \"extra_us\": {}",
                micros(extra.nanos())
            );
        }
        TraceKind::SlowNode { extra } => {
            let _ = write!(rec, "\"extra_us\": {}", micros(extra.nanos()));
        }
        TraceKind::HedgedReroute { job, from, to } => {
            let _ = write!(rec, "\"job\": {job}, \"from\": {from}, \"to\": {to}");
        }
        TraceKind::BusyShed { conn } => {
            let _ = write!(rec, "\"conn\": {conn}");
        }
    }
    rec.push_str("}}");
    rec
}

/// Reads the `stage-done` records back out of a document produced by
/// [`chrome_trace_json`] — the consumer side of the admin `/trace`
/// dump, used by `coserve-loadgen --trace-summary` to rebuild a
/// latency-attribution table without a JSON parser dependency.
///
/// This is a scanner for *this exporter's own* one-record-per-line
/// formatting, not a general JSON reader; records of any other kind
/// (and unparseable lines) are skipped.
#[must_use]
pub fn parse_chrome_stage_done(json: &str) -> Vec<TraceEvent> {
    let mut events = Vec::new();
    for line in json.lines() {
        if !line.contains("\"name\": \"stage-done\"") {
            continue;
        }
        let parsed = (|| {
            Some(TraceEvent {
                at: SimTime::from_nanos(micros_field(line, "ts")?),
                node: field(line, "pid")?.parse().ok()?,
                kind: TraceKind::StageDone {
                    job: field(line, "job")?.parse().ok()?,
                    stage: field(line, "stage")?.parse().ok()?,
                    exec: field(line, "exec")?.parse().ok()?,
                    expert: ExpertId(field(line, "expert")?.parse().ok()?),
                    queue: SimSpan::from_nanos(micros_field(line, "queue_us")?),
                    switch: SimSpan::from_nanos(micros_field(line, "switch_us")?),
                    stall: SimSpan::from_nanos(micros_field(line, "stall_us")?),
                    exec_span: SimSpan::from_nanos(micros_field(line, "exec_us")?),
                },
            })
        })();
        if let Some(ev) = parsed {
            events.push(ev);
        }
    }
    events
}

/// The raw text of `"key": value` in an exported record line, up to
/// the next `,` or `}`.
fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let rest = line.get(start..)?;
    let end = rest.find([',', '}'])?;
    rest.get(..end)
}

/// A `µs.³` decimal field (the inverse of [`micros`]) as integer
/// nanoseconds.
fn micros_field(line: &str, key: &str) -> Option<u64> {
    let text = field(line, key)?;
    let (whole, frac) = text.split_once('.')?;
    if frac.len() != 3 {
        return None;
    }
    let whole: u64 = whole.parse().ok()?;
    let frac: u64 = frac.parse().ok()?;
    Some(whole * 1_000 + frac)
}

#[cfg(test)]
mod tests {
    use super::*;
    use coserve_model::expert::ExpertId;
    use coserve_sim::memory::MemoryTier;
    use coserve_sim::time::{SimSpan, SimTime};

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent {
                at: SimTime::from_nanos(1_500),
                node: 0,
                kind: TraceKind::Arrived { job: 1, stages: 2 },
            },
            TraceEvent {
                at: SimTime::from_nanos(2_000),
                node: 0,
                kind: TraceKind::Scheduled {
                    job: 1,
                    stage: 0,
                    span: SimSpan::from_nanos(500),
                },
            },
            TraceEvent {
                at: SimTime::from_nanos(3_000),
                node: 0,
                kind: TraceKind::Switch {
                    exec: 2,
                    expert: ExpertId(7),
                    source: MemoryTier::Cpu,
                    span: SimSpan::from_micros(4),
                },
            },
            TraceEvent {
                at: SimTime::from_nanos(9_000),
                node: 1,
                kind: TraceKind::MigrationStarted {
                    expert: ExpertId(3),
                    donor: None,
                    span: SimSpan::from_micros(100),
                },
            },
        ]
    }

    #[test]
    fn stage_done_round_trips_through_the_exporter() {
        let events = vec![
            TraceEvent {
                at: SimTime::from_nanos(12_345),
                node: 3,
                kind: TraceKind::StageDone {
                    job: 9,
                    stage: 1,
                    exec: 2,
                    expert: ExpertId(7),
                    queue: SimSpan::from_nanos(1_001),
                    switch: SimSpan::from_nanos(0),
                    stall: SimSpan::from_nanos(42),
                    exec_span: SimSpan::from_micros(5),
                },
            },
            // Noise the scanner must skip.
            TraceEvent {
                at: SimTime::from_nanos(1),
                node: 0,
                kind: TraceKind::Completed {
                    job: 9,
                    latency: SimSpan::from_micros(20),
                },
            },
        ];
        let parsed = parse_chrome_stage_done(&chrome_trace_json(&events));
        assert_eq!(parsed, vec![events[0].clone()]);
        assert!(parse_chrome_stage_done(&chrome_trace_json(&[])).is_empty());
    }

    #[test]
    fn micros_formats_exactly() {
        assert_eq!(micros(0), "0.000");
        assert_eq!(micros(1), "0.001");
        assert_eq!(micros(1_500), "1.500");
        assert_eq!(micros(1_000_000_007), "1000000.007");
    }

    #[test]
    fn export_is_balanced_json() {
        let json = chrome_trace_json(&sample_events());
        let (mut depth, mut max_depth) = (0i64, 0i64);
        let mut in_str = false;
        let mut prev = ' ';
        for c in json.chars() {
            if in_str {
                if c == '"' && prev != '\\' {
                    in_str = false;
                }
            } else {
                match c {
                    '"' => in_str = true,
                    '{' | '[' => {
                        depth += 1;
                        max_depth = max_depth.max(depth);
                    }
                    '}' | ']' => depth -= 1,
                    _ => {}
                }
            }
            prev = c;
        }
        assert_eq!(depth, 0, "unbalanced braces/brackets");
        assert!(max_depth >= 3, "expected nested records");
        assert!(!in_str, "unterminated string");
    }

    #[test]
    fn export_names_processes_and_tracks() {
        let json = chrome_trace_json(&sample_events());
        assert!(json.contains("\"name\": \"node 0\""));
        assert!(json.contains("\"name\": \"node 1\""));
        assert!(json.contains("\"name\": \"requests\""));
        assert!(json.contains("\"name\": \"scheduler\""));
        assert!(json.contains("\"name\": \"exec 2\""));
        assert!(json.contains("\"name\": \"runtime\""));
    }

    #[test]
    fn spans_get_durations_and_instants_get_scope() {
        let json = chrome_trace_json(&sample_events());
        assert!(json.contains("\"name\": \"switch\", \"pid\": 0, \"tid\": 12, \"ts\": 3.000, \"ph\": \"X\", \"dur\": 4.000"));
        assert!(json.contains("\"name\": \"arrived\", \"pid\": 0, \"tid\": 0, \"ts\": 1.500, \"ph\": \"i\", \"s\": \"t\""));
        assert!(json.contains("\"donor\": \"ssd\""));
    }

    #[test]
    fn export_is_deterministic() {
        let events = sample_events();
        assert_eq!(chrome_trace_json(&events), chrome_trace_json(&events));
    }

    #[test]
    fn empty_export_is_valid() {
        let json = chrome_trace_json(&[]);
        assert!(json.contains("\"traceEvents\": ["));
        assert!(json.trim_end().ends_with("]}"));
    }
}
