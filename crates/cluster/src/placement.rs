//! Expert placement across a fleet of nodes.
//!
//! On one device CoServe decides which experts stay *resident*; across
//! a fleet the equivalent decision is which node each expert *lives*
//! on. The planner reuses the offline artifacts the paper already
//! produces: the [`PerfMatrix`] usage CDF (Figure 11) says which
//! experts are hot, and the [`coserve_model::graph::DependencyGraph`]
//! says which experts feed each other.
//!
//! [`PlacementStrategy::UsageAware`] — the default — replicates the hot
//! head of the CDF on every node (those experts dominate traffic, so
//! every node must serve them locally) and shards the cold tail,
//! placing each cold expert on the node already holding the most of its
//! dependency-graph neighbours so preliminary → subsequent chains stay
//! on one node. [`PlacementStrategy::Replicated`],
//! [`PlacementStrategy::Sharded`] and [`PlacementStrategy::Random`]
//! are the ablation corners: full replication (no cross-node hops,
//! minimal effective pool capacity), pure sharding (maximal capacity,
//! maximal hops) and seeded random assignment.

use std::collections::BTreeSet;
use std::fmt;

use coserve_core::autotune::UsageCdf;
use coserve_core::perf::PerfMatrix;
use coserve_model::coe::CoeModel;
use coserve_model::expert::ExpertId;
use coserve_sim::memory::Bytes;
use coserve_sim::rng::SimRng;

/// Fraction of traffic the replicated hot set must cover under
/// [`PlacementStrategy::UsageAware`] (the usage-CDF knee the paper's
/// window search also targets).
pub const HOT_COVERAGE: f64 = 0.5;

/// How experts are distributed across nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementStrategy {
    /// Replicate the hot head of the usage CDF everywhere; shard the
    /// cold tail, co-locating dependency-graph neighbours.
    UsageAware,
    /// Every expert on every node (no hops, smallest effective pool).
    Replicated,
    /// Every expert on exactly one node, round-robin by descending
    /// usage (largest effective pool, most hops).
    Sharded,
    /// Every expert on one seeded-uniformly-random node.
    Random,
}

impl PlacementStrategy {
    /// The four strategies in ablation order.
    pub const ALL: [PlacementStrategy; 4] = [
        PlacementStrategy::UsageAware,
        PlacementStrategy::Replicated,
        PlacementStrategy::Sharded,
        PlacementStrategy::Random,
    ];
}

impl fmt::Display for PlacementStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlacementStrategy::UsageAware => write!(f, "usage-aware"),
            PlacementStrategy::Replicated => write!(f, "replicated"),
            PlacementStrategy::Sharded => write!(f, "sharded"),
            PlacementStrategy::Random => write!(f, "random"),
        }
    }
}

/// The planner's output: which experts live on which node.
///
/// Each node also gets a *preload order*: its placed experts first (by
/// descending usage), then every remaining expert (same order) so spare
/// pool capacity is never wasted — placement decides priority, not an
/// artificial capacity cap.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlacementPlan {
    strategy: PlacementStrategy,
    placed: Vec<BTreeSet<ExpertId>>,
    preload: Vec<Vec<ExpertId>>,
    placed_bytes: Vec<Bytes>,
}

impl PlacementPlan {
    /// Number of nodes the plan covers.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.placed.len()
    }

    /// Whether `expert` lives on `node`.
    ///
    /// # Panics
    ///
    /// Panics when `node` is out of range.
    #[must_use]
    pub fn is_placed(&self, node: usize, expert: ExpertId) -> bool {
        self.placed[node].contains(&expert)
    }

    /// The experts placed on `node` (sorted by id).
    ///
    /// # Panics
    ///
    /// Panics when `node` is out of range.
    #[must_use]
    pub fn placed_on(&self, node: usize) -> &BTreeSet<ExpertId> {
        &self.placed[node]
    }

    /// The nodes holding `expert`, ascending.
    #[must_use]
    pub fn holders(&self, expert: ExpertId) -> Vec<usize> {
        (0..self.placed.len())
            .filter(|&n| self.placed[n].contains(&expert))
            .collect()
    }

    /// The node's preload priority order (placed experts first, then
    /// the rest, both by descending usage).
    ///
    /// # Panics
    ///
    /// Panics when `node` is out of range.
    #[must_use]
    pub fn preload_order(&self, node: usize) -> &[ExpertId] {
        &self.preload[node]
    }

    /// Total checkpoint bytes placed on `node`.
    ///
    /// # Panics
    ///
    /// Panics when `node` is out of range.
    #[must_use]
    pub fn placed_bytes(&self, node: usize) -> Bytes {
        self.placed_bytes[node]
    }

    /// Mean number of copies per expert (1 = pure sharding, `n` = full
    /// replication). Zero for an expert-less model.
    #[must_use]
    pub fn replication_factor(&self) -> f64 {
        let experts: BTreeSet<ExpertId> = self.placed.iter().flatten().copied().collect();
        if experts.is_empty() {
            return 0.0;
        }
        let copies: usize = self.placed.iter().map(BTreeSet::len).sum();
        copies as f64 / experts.len() as f64
    }

    /// The strategy that produced the plan (its `Display` is the label
    /// the reports and figure tables print).
    #[must_use]
    pub fn strategy(&self) -> PlacementStrategy {
        self.strategy
    }
}

/// Plans expert placement for `nodes` nodes.
///
/// Deterministic: the same model, matrix, node count, strategy and seed
/// produce the same plan ([`PlacementStrategy::Random`] is the only
/// consumer of `seed`).
///
/// # Panics
///
/// Panics when `nodes` is zero or the matrix does not cover the model.
#[must_use]
pub fn plan_placement(
    model: &CoeModel,
    perf: &PerfMatrix,
    nodes: usize,
    strategy: PlacementStrategy,
    seed: u64,
) -> PlacementPlan {
    assert!(nodes > 0, "placement needs at least one node");
    assert_eq!(
        perf.num_experts(),
        model.num_experts(),
        "perf matrix must cover the model"
    );
    let by_usage = perf.experts_by_usage();
    let mut placed: Vec<BTreeSet<ExpertId>> = vec![BTreeSet::new(); nodes];

    match strategy {
        PlacementStrategy::Replicated => {
            for node in &mut placed {
                node.extend(by_usage.iter().copied());
            }
        }
        PlacementStrategy::Sharded => {
            for (i, &e) in by_usage.iter().enumerate() {
                placed[i % nodes].insert(e);
            }
        }
        PlacementStrategy::Random => {
            let mut rng = SimRng::seed_from(seed);
            for &e in by_usage {
                placed[rng.next_below(nodes as u64) as usize].insert(e);
            }
        }
        PlacementStrategy::UsageAware => {
            // Hot head: the smallest usage-CDF prefix covering
            // HOT_COVERAGE of the traffic, replicated everywhere.
            let cdf = UsageCdf::from_perf(perf);
            let hot_count = (1..=by_usage.len())
                .find(|&k| cdf.coverage(k) >= HOT_COVERAGE)
                .unwrap_or(by_usage.len());
            let (hot, cold) = by_usage.split_at(hot_count);
            for node in &mut placed {
                node.extend(hot.iter().copied());
            }
            // Cold tail: walk in descending usage; prefer the node
            // already holding the most dependency-graph neighbours
            // (preliminaries and subsequents), so expert chains stay
            // local; tie-break by fewest placed bytes, then index.
            let graph = model.graph();
            let mut cold_bytes = vec![Bytes::ZERO; nodes];
            for &e in cold {
                let neighbours: BTreeSet<ExpertId> = graph
                    .preliminaries_of(e)
                    .iter()
                    .chain(graph.subsequents_of(e))
                    .copied()
                    .collect();
                let best = (0..nodes)
                    .map(|n| {
                        let local = neighbours.iter().filter(|x| placed[n].contains(x)).count();
                        // Max locality, then min bytes, then min index.
                        (std::cmp::Reverse(local), cold_bytes[n], n)
                    })
                    .min()
                    .expect("at least one node")
                    .2;
                placed[best].insert(e);
                cold_bytes[best] += model.weight_bytes(e);
            }
        }
    }

    let preload: Vec<Vec<ExpertId>> = placed
        .iter()
        .map(|mine| {
            let mut order: Vec<ExpertId> = by_usage
                .iter()
                .copied()
                .filter(|e| mine.contains(e))
                .collect();
            order.extend(by_usage.iter().copied().filter(|e| !mine.contains(e)));
            order
        })
        .collect();
    let placed_bytes = placed
        .iter()
        .map(|mine| mine.iter().map(|&e| model.weight_bytes(e)).sum())
        .collect();

    PlacementPlan {
        strategy,
        placed,
        preload,
        placed_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coserve_core::profiler::{Profiler, UsageSource};
    use coserve_model::devices;
    use coserve_workload::board::BoardSpec;

    fn setup() -> (CoeModel, PerfMatrix) {
        let board = BoardSpec::synthetic("place", 40, 4, 1.2, 40.0, 0.5);
        let model = board.build_model().unwrap();
        let device = devices::numa_rtx3080ti();
        let perf = Profiler::with_defaults().profile(&device, &model, UsageSource::Declared);
        (model, perf)
    }

    #[test]
    fn every_strategy_covers_every_expert() {
        let (model, perf) = setup();
        for strategy in PlacementStrategy::ALL {
            let plan = plan_placement(&model, &perf, 4, strategy, 7);
            assert_eq!(plan.num_nodes(), 4);
            for i in 0..model.num_experts() as u32 {
                assert!(
                    !plan.holders(ExpertId(i)).is_empty(),
                    "{strategy}: expert {i} placed nowhere"
                );
            }
            // Preload orders are full permutations of the model.
            for n in 0..4 {
                let mut order = plan.preload_order(n).to_vec();
                assert_eq!(order.len(), model.num_experts());
                order.sort();
                order.dedup();
                assert_eq!(order.len(), model.num_experts());
            }
        }
    }

    #[test]
    fn replication_factors_order_as_expected() {
        let (model, perf) = setup();
        let nodes = 4;
        let factor = |s| plan_placement(&model, &perf, nodes, s, 7).replication_factor();
        assert!((factor(PlacementStrategy::Replicated) - nodes as f64).abs() < 1e-12);
        assert!((factor(PlacementStrategy::Sharded) - 1.0).abs() < 1e-12);
        assert!((factor(PlacementStrategy::Random) - 1.0).abs() < 1e-12);
        let ua = factor(PlacementStrategy::UsageAware);
        assert!(
            ua > 1.0 && ua < nodes as f64,
            "usage-aware replication factor {ua} not between sharded and replicated"
        );
    }

    #[test]
    fn usage_aware_replicates_the_hot_head() {
        let (model, perf) = setup();
        let plan = plan_placement(&model, &perf, 3, PlacementStrategy::UsageAware, 7);
        let by_usage = perf.experts_by_usage();
        // The hottest expert is on every node; the coldest on one.
        assert_eq!(plan.holders(by_usage[0]).len(), 3);
        assert_eq!(plan.holders(*by_usage.last().unwrap()).len(), 1);
        // Each node's preload order starts with its placed experts.
        for n in 0..3 {
            let placed = plan.placed_on(n).len();
            for &e in &plan.preload_order(n)[..placed] {
                assert!(plan.is_placed(n, e));
            }
        }
    }

    #[test]
    fn usage_aware_colocates_dependency_neighbours() {
        let (model, perf) = setup();
        let plan = plan_placement(&model, &perf, 4, PlacementStrategy::UsageAware, 7);
        let graph = model.graph();
        // Count cold subsequents whose every holder also holds a
        // preliminary: co-location must dominate.
        let mut colocated = 0usize;
        let mut total = 0usize;
        for i in 0..model.num_experts() as u32 {
            let e = ExpertId(i);
            if graph.preliminaries_of(e).is_empty() {
                continue;
            }
            total += 1;
            let ok = plan.holders(e).iter().all(|&n| {
                graph
                    .preliminaries_of(e)
                    .iter()
                    .any(|&p| plan.is_placed(n, p))
            });
            if ok {
                colocated += 1;
            }
        }
        assert!(total > 0, "board has shared detectors");
        assert!(
            colocated * 2 >= total,
            "only {colocated}/{total} subsequents co-located with a preliminary"
        );
    }

    #[test]
    fn plans_are_deterministic_and_seed_sensitive() {
        let (model, perf) = setup();
        let a = plan_placement(&model, &perf, 4, PlacementStrategy::Random, 7);
        let b = plan_placement(&model, &perf, 4, PlacementStrategy::Random, 7);
        assert_eq!(a, b);
        let c = plan_placement(&model, &perf, 4, PlacementStrategy::Random, 8);
        assert_ne!(a, c, "different seeds must shuffle the random plan");
        // Non-random strategies ignore the seed entirely.
        let d = plan_placement(&model, &perf, 4, PlacementStrategy::UsageAware, 7);
        let e = plan_placement(&model, &perf, 4, PlacementStrategy::UsageAware, 99);
        assert_eq!(d, e);
    }

    #[test]
    fn single_node_degenerates_to_everything_local() {
        let (model, perf) = setup();
        for strategy in PlacementStrategy::ALL {
            let plan = plan_placement(&model, &perf, 1, strategy, 7);
            assert_eq!(plan.placed_on(0).len(), model.num_experts());
            assert!((plan.replication_factor() - 1.0).abs() < 1e-12);
            assert!(plan.placed_bytes(0) > Bytes::ZERO);
        }
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_panics() {
        let (model, perf) = setup();
        let _ = plan_placement(&model, &perf, 0, PlacementStrategy::Sharded, 7);
    }

    #[test]
    fn strategy_displays() {
        assert_eq!(PlacementStrategy::UsageAware.to_string(), "usage-aware");
        assert_eq!(PlacementStrategy::Replicated.to_string(), "replicated");
        assert_eq!(PlacementStrategy::Sharded.to_string(), "sharded");
        assert_eq!(PlacementStrategy::Random.to_string(), "random");
    }
}
