//! Expert placement across a fleet of nodes.
//!
//! On one device CoServe decides which experts stay *resident*; across
//! a fleet the equivalent decision is which node each expert *lives*
//! on. The planner reuses the offline artifacts the paper already
//! produces: the [`PerfMatrix`] usage CDF (Figure 11) says which
//! experts are hot, and the [`coserve_model::graph::DependencyGraph`]
//! says which experts feed each other.
//!
//! [`PlacementStrategy::UsageAware`] — the default — replicates the hot
//! head of the CDF on every node (those experts dominate traffic, so
//! every node must serve them locally) and shards the cold tail,
//! placing each cold expert on the node already holding the most of its
//! dependency-graph neighbours so preliminary → subsequent chains stay
//! on one node. [`PlacementStrategy::Replicated`],
//! [`PlacementStrategy::Sharded`] and [`PlacementStrategy::Random`]
//! are the ablation corners: full replication (no cross-node hops,
//! minimal effective pool capacity), pure sharding (maximal capacity,
//! maximal hops) and seeded random assignment.
//!
//! Plans are **versioned**: the cluster runtime reacts to node failures
//! and usage drift by deriving a successor plan ([`PlacementPlan::rehosted`]
//! re-replicates a dead node's orphaned shard, [`PlacementPlan::replanned`]
//! rebuilds the layout over the surviving fleet, optionally from the
//! *observed* usage mix instead of the declared one) and shipping the
//! [`migration_plan`] delta over the fabric.

use std::collections::BTreeSet;
use std::fmt;

use coserve_core::perf::PerfMatrix;
use coserve_model::coe::CoeModel;
use coserve_model::expert::ExpertId;
use coserve_sim::memory::Bytes;
use coserve_sim::rng::SimRng;

/// Fraction of traffic the replicated hot set must cover under
/// [`PlacementStrategy::UsageAware`] (the usage-CDF knee the paper's
/// window search also targets).
pub const HOT_COVERAGE: f64 = 0.5;

/// How experts are distributed across nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementStrategy {
    /// Replicate the hot head of the usage CDF everywhere; shard the
    /// cold tail, co-locating dependency-graph neighbours.
    UsageAware,
    /// Every expert on every node (no hops, smallest effective pool).
    Replicated,
    /// Every expert on exactly one node, round-robin by descending
    /// usage (largest effective pool, most hops).
    Sharded,
    /// Every expert on one seeded-uniformly-random node.
    Random,
}

impl PlacementStrategy {
    /// The four strategies in ablation order.
    pub const ALL: [PlacementStrategy; 4] = [
        PlacementStrategy::UsageAware,
        PlacementStrategy::Replicated,
        PlacementStrategy::Sharded,
        PlacementStrategy::Random,
    ];
}

impl fmt::Display for PlacementStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlacementStrategy::UsageAware => write!(f, "usage-aware"),
            PlacementStrategy::Replicated => write!(f, "replicated"),
            PlacementStrategy::Sharded => write!(f, "sharded"),
            PlacementStrategy::Random => write!(f, "random"),
        }
    }
}

/// The planner's output: which experts live on which node.
///
/// Each node also gets a *preload order*: its placed experts first (by
/// descending usage), then every remaining expert (same order) so spare
/// pool capacity is never wasted — placement decides priority, not an
/// artificial capacity cap.
///
/// A plan carries a monotonically increasing [`PlacementPlan::version`]:
/// derived plans ([`PlacementPlan::rehosted`], [`PlacementPlan::replanned`])
/// bump it, and [`migration_plan`] diffs two versions into the expert
/// moves the fabric must carry.
#[derive(Debug, Clone, PartialEq)]
pub struct PlacementPlan {
    strategy: PlacementStrategy,
    seed: u64,
    version: u64,
    placed: Vec<BTreeSet<ExpertId>>,
    /// Precomputed holders index (expert index → nodes, ascending):
    /// `holders()` sits on the dispatcher's re-route hot path, so the
    /// plan answers from this index instead of rescanning every node's
    /// placement set per call.
    holders: Vec<Vec<usize>>,
    preload: Vec<Vec<ExpertId>>,
    placed_bytes: Vec<Bytes>,
    /// The usage basis the plan was computed from: expert ids by
    /// descending usage, and the per-expert probabilities. The runtime
    /// compares *observed* usage against this basis to detect drift.
    by_usage: Vec<ExpertId>,
    usage: Vec<f64>,
}

impl PlacementPlan {
    /// Number of nodes the plan covers.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.placed.len()
    }

    /// The plan's version: 0 for a freshly planned layout, bumped by
    /// every derived re-placement.
    #[must_use]
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Whether `expert` lives on `node`.
    ///
    /// # Panics
    ///
    /// Panics when `node` is out of range.
    #[must_use]
    pub fn is_placed(&self, node: usize, expert: ExpertId) -> bool {
        self.placed[node].contains(&expert)
    }

    /// The experts placed on `node` (sorted by id).
    ///
    /// # Panics
    ///
    /// Panics when `node` is out of range.
    #[must_use]
    pub fn placed_on(&self, node: usize) -> &BTreeSet<ExpertId> {
        &self.placed[node]
    }

    /// The nodes holding `expert`, ascending — answered from the index
    /// precomputed at plan construction, never a fresh scan.
    ///
    /// # Panics
    ///
    /// Panics when `expert` is outside the planned model.
    #[must_use]
    pub fn holders(&self, expert: ExpertId) -> &[usize] {
        &self.holders[expert.index()]
    }

    /// Whether `expert` is placed on at least one node for which
    /// `alive` is true — the front-end's servability check after
    /// failures.
    ///
    /// # Panics
    ///
    /// Panics when `expert` is outside the planned model or `alive` is
    /// shorter than a holder index.
    #[must_use]
    pub fn is_hosted(&self, expert: ExpertId, alive: &[bool]) -> bool {
        self.holders(expert).iter().any(|&n| alive[n])
    }

    /// The node's preload priority order (placed experts first, then
    /// the rest, both by descending usage).
    ///
    /// # Panics
    ///
    /// Panics when `node` is out of range.
    #[must_use]
    pub fn preload_order(&self, node: usize) -> &[ExpertId] {
        &self.preload[node]
    }

    /// Total checkpoint bytes placed on `node`.
    ///
    /// # Panics
    ///
    /// Panics when `node` is out of range.
    #[must_use]
    pub fn placed_bytes(&self, node: usize) -> Bytes {
        self.placed_bytes[node]
    }

    /// Mean number of copies per expert (1 = pure sharding, `n` = full
    /// replication). Zero for an expert-less model.
    #[must_use]
    pub fn replication_factor(&self) -> f64 {
        let experts: BTreeSet<ExpertId> = self.placed.iter().flatten().copied().collect();
        if experts.is_empty() {
            return 0.0;
        }
        let copies: usize = self.placed.iter().map(BTreeSet::len).sum();
        copies as f64 / experts.len() as f64
    }

    /// The strategy that produced the plan (its `Display` is the label
    /// the reports and figure tables print).
    #[must_use]
    pub fn strategy(&self) -> PlacementStrategy {
        self.strategy
    }

    /// The per-expert usage probabilities the plan was computed from
    /// (declared usage for the initial plan, observed usage after a
    /// drift-triggered re-placement).
    #[must_use]
    pub fn usage_basis(&self) -> &[f64] {
        &self.usage
    }

    /// A successor plan that survives the loss of the nodes marked dead
    /// in `alive`: dead nodes lose their placements, and every expert
    /// left with no live holder (the dead shard's *orphans*) is
    /// re-replicated onto the live node holding the most of its
    /// dependency-graph neighbours (ties: fewest placed bytes, lowest
    /// index) — the same heuristic the cold-tail planner uses. Live
    /// nodes keep their placements untouched; the version is bumped.
    ///
    /// # Panics
    ///
    /// Panics when `alive` disagrees with the node count or marks no
    /// node alive.
    #[must_use]
    pub fn rehosted(&self, model: &CoeModel, alive: &[bool]) -> PlacementPlan {
        assert_eq!(alive.len(), self.num_nodes(), "alive mask/node mismatch");
        assert!(alive.iter().any(|&a| a), "rehosting needs a live node");
        let mut placed: Vec<BTreeSet<ExpertId>> = self
            .placed
            .iter()
            .enumerate()
            .map(|(n, set)| {
                if alive[n] {
                    set.clone()
                } else {
                    BTreeSet::new()
                }
            })
            .collect();
        let live: Vec<usize> = (0..placed.len()).filter(|&n| alive[n]).collect();
        let mut bytes: Vec<Bytes> = placed
            .iter()
            .map(|mine| mine.iter().map(|&e| model.weight_bytes(e)).sum())
            .collect();
        for &e in &self.by_usage {
            if placed.iter().any(|set| set.contains(&e)) {
                continue;
            }
            let best = best_host(model, &placed, &bytes, &live, e);
            placed[best].insert(e);
            bytes[best] += model.weight_bytes(e);
        }
        self.successor(model, placed)
    }

    /// A successor plan rebuilt from scratch over the nodes marked
    /// alive, with the plan's own strategy and seed. `usage` replaces
    /// the usage basis (pass the observed per-expert mix for a
    /// drift-triggered re-placement; `None` keeps the current basis) —
    /// the version is bumped.
    ///
    /// # Panics
    ///
    /// Panics when `alive` disagrees with the node count, marks no node
    /// alive, or `usage` has the wrong length.
    #[must_use]
    pub fn replanned(
        &self,
        model: &CoeModel,
        alive: &[bool],
        usage: Option<Vec<f64>>,
    ) -> PlacementPlan {
        assert_eq!(alive.len(), self.num_nodes(), "alive mask/node mismatch");
        let (by_usage, usage) = match usage {
            Some(u) => {
                assert_eq!(u.len(), self.usage.len(), "usage basis length mismatch");
                (order_by_usage(&u), u)
            }
            None => (self.by_usage.clone(), self.usage.clone()),
        };
        let placed = place(
            model,
            self.strategy,
            self.seed,
            self.num_nodes(),
            alive,
            &by_usage,
            &usage,
        );
        assemble(
            self.strategy,
            self.seed,
            self.version + 1,
            placed,
            by_usage,
            usage,
            model,
        )
    }

    /// Assembles a successor (version + 1) around new placement sets,
    /// keeping the current usage basis.
    fn successor(&self, model: &CoeModel, placed: Vec<BTreeSet<ExpertId>>) -> PlacementPlan {
        assemble(
            self.strategy,
            self.seed,
            self.version + 1,
            placed,
            self.by_usage.clone(),
            self.usage.clone(),
            model,
        )
    }
}

/// One expert copy the fabric must ship to realize a new plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExpertMove {
    /// The expert being copied.
    pub expert: ExpertId,
    /// The node gaining the copy.
    pub to: usize,
    /// The live node donating the copy (lowest-indexed live holder
    /// under the old plan), or `None` when no live replica survives —
    /// the copy must be reloaded from the node's own checkpoint store.
    pub from: Option<usize>,
}

/// The delta between two plan versions: every expert copy some node
/// gains, with total checkpoint traffic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MigrationPlan {
    /// The copies to ship, in (node, expert) order.
    pub moves: Vec<ExpertMove>,
    /// Total checkpoint bytes across all moves.
    pub bytes: Bytes,
}

impl MigrationPlan {
    /// Number of expert copies to ship.
    #[must_use]
    pub fn len(&self) -> usize {
        self.moves.len()
    }

    /// Whether the two plans agree on every live node.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.moves.is_empty()
    }
}

/// Diffs two plan versions into the expert copies each live node gains
/// under `new` (placements lost by dead nodes cost nothing — the data
/// is gone, not moved). Each move's source is the lowest-indexed live
/// holder under `old`, or `None` when the old replicas all died.
///
/// # Panics
///
/// Panics when the plans or the alive mask disagree on the node count.
#[must_use]
pub fn migration_plan(
    old: &PlacementPlan,
    new: &PlacementPlan,
    model: &CoeModel,
    alive: &[bool],
) -> MigrationPlan {
    assert_eq!(old.num_nodes(), new.num_nodes(), "plan size mismatch");
    assert_eq!(alive.len(), new.num_nodes(), "alive mask/plan mismatch");
    let mut moves = Vec::new();
    let mut bytes = Bytes::ZERO;
    for node in 0..new.num_nodes() {
        if !alive[node] {
            continue;
        }
        for &expert in new.placed_on(node) {
            if old.is_placed(node, expert) {
                continue;
            }
            let from = old.holders(expert).iter().copied().find(|&h| alive[h]);
            moves.push(ExpertMove {
                expert,
                to: node,
                from,
            });
            bytes += model.weight_bytes(expert);
        }
    }
    MigrationPlan { moves, bytes }
}

/// Plans expert placement for `nodes` nodes.
///
/// Deterministic: the same model, matrix, node count, strategy and seed
/// produce the same plan ([`PlacementStrategy::Random`] is the only
/// consumer of `seed`).
///
/// # Panics
///
/// Panics when `nodes` is zero or the matrix does not cover the model.
#[must_use]
pub fn plan_placement(
    model: &CoeModel,
    perf: &PerfMatrix,
    nodes: usize,
    strategy: PlacementStrategy,
    seed: u64,
) -> PlacementPlan {
    assert!(nodes > 0, "placement needs at least one node");
    assert_eq!(
        perf.num_experts(),
        model.num_experts(),
        "perf matrix must cover the model"
    );
    let by_usage = perf.experts_by_usage().to_vec();
    let usage: Vec<f64> = (0..model.num_experts() as u32)
        .map(|i| perf.usage_prob(ExpertId(i)))
        .collect();
    // Only Random consumes the seed; normalize it away otherwise so
    // plans that cannot depend on it also compare equal across seeds.
    let seed = if strategy == PlacementStrategy::Random {
        seed
    } else {
        0
    };
    let alive = vec![true; nodes];
    let placed = place(model, strategy, seed, nodes, &alive, &by_usage, &usage);
    assemble(strategy, seed, 0, placed, by_usage, usage, model)
}

/// Expert ids by descending usage probability, ties broken by ascending
/// id — the same order [`PerfMatrix::experts_by_usage`] memoizes.
fn order_by_usage(usage: &[f64]) -> Vec<ExpertId> {
    let mut ids: Vec<ExpertId> = (0..usage.len() as u32).map(ExpertId).collect();
    ids.sort_by(|a, b| {
        usage[b.index()]
            .partial_cmp(&usage[a.index()])
            .expect("finite usage")
            .then(a.cmp(b))
    });
    ids
}

/// Runs one strategy over the live subset of a fleet.
fn place(
    model: &CoeModel,
    strategy: PlacementStrategy,
    seed: u64,
    nodes: usize,
    alive: &[bool],
    by_usage: &[ExpertId],
    usage: &[f64],
) -> Vec<BTreeSet<ExpertId>> {
    let live: Vec<usize> = (0..nodes).filter(|&n| alive[n]).collect();
    assert!(!live.is_empty(), "placement needs at least one live node");
    let mut placed: Vec<BTreeSet<ExpertId>> = vec![BTreeSet::new(); nodes];

    match strategy {
        PlacementStrategy::Replicated => {
            for &node in &live {
                placed[node].extend(by_usage.iter().copied());
            }
        }
        PlacementStrategy::Sharded => {
            for (i, &e) in by_usage.iter().enumerate() {
                placed[live[i % live.len()]].insert(e);
            }
        }
        PlacementStrategy::Random => {
            let mut rng = SimRng::seed_from(seed);
            for &e in by_usage {
                placed[live[rng.next_below(live.len() as u64) as usize]].insert(e);
            }
        }
        PlacementStrategy::UsageAware => {
            // Hot head: the smallest usage prefix covering HOT_COVERAGE
            // of the traffic, replicated on every live node. Coverage is
            // accumulated along the descending-usage order, normalized
            // by the total mass (exactly the usage-CDF curve).
            let total: f64 = by_usage.iter().map(|e| usage[e.index()]).sum();
            let mut acc = 0.0;
            let mut hot_count = by_usage.len();
            for (k, &e) in by_usage.iter().enumerate() {
                acc += usage[e.index()];
                let coverage = if total > 0.0 { acc / total } else { 0.0 };
                if coverage >= HOT_COVERAGE {
                    hot_count = k + 1;
                    break;
                }
            }
            let (hot, cold) = by_usage.split_at(hot_count);
            for &node in &live {
                placed[node].extend(hot.iter().copied());
            }
            // Cold tail: walk in descending usage, placing each expert
            // on the best live host under the shared locality
            // heuristic.
            let mut cold_bytes = vec![Bytes::ZERO; nodes];
            for &e in cold {
                let best = best_host(model, &placed, &cold_bytes, &live, e);
                placed[best].insert(e);
                cold_bytes[best] += model.weight_bytes(e);
            }
        }
    }
    placed
}

/// The live node best suited to host `expert` next: the one already
/// holding the most of its dependency-graph neighbours (preliminaries
/// and subsequents), so expert chains stay local; ties broken by
/// fewest accumulated `bytes`, then lowest index. Shared by the
/// cold-tail planner and failure rehosting — the two must stay
/// byte-for-byte equivalent.
fn best_host(
    model: &CoeModel,
    placed: &[BTreeSet<ExpertId>],
    bytes: &[Bytes],
    live: &[usize],
    expert: ExpertId,
) -> usize {
    let graph = model.graph();
    let neighbours: BTreeSet<ExpertId> = graph
        .preliminaries_of(expert)
        .iter()
        .chain(graph.subsequents_of(expert))
        .copied()
        .collect();
    live.iter()
        .map(|&n| {
            let local = neighbours.iter().filter(|x| placed[n].contains(x)).count();
            (std::cmp::Reverse(local), bytes[n], n)
        })
        .min()
        .expect("at least one live node")
        .2
}

/// Derives the preload orders, byte totals and holders index from
/// placement sets and packages the plan.
fn assemble(
    strategy: PlacementStrategy,
    seed: u64,
    version: u64,
    placed: Vec<BTreeSet<ExpertId>>,
    by_usage: Vec<ExpertId>,
    usage: Vec<f64>,
    model: &CoeModel,
) -> PlacementPlan {
    let preload: Vec<Vec<ExpertId>> = placed
        .iter()
        .map(|mine| {
            let mut order: Vec<ExpertId> = by_usage
                .iter()
                .copied()
                .filter(|e| mine.contains(e))
                .collect();
            order.extend(by_usage.iter().copied().filter(|e| !mine.contains(e)));
            order
        })
        .collect();
    let placed_bytes = placed
        .iter()
        .map(|mine| mine.iter().map(|&e| model.weight_bytes(e)).sum())
        .collect();
    let mut holders: Vec<Vec<usize>> = vec![Vec::new(); usage.len()];
    for (node, mine) in placed.iter().enumerate() {
        for e in mine {
            holders[e.index()].push(node);
        }
    }
    PlacementPlan {
        strategy,
        seed,
        version,
        placed,
        holders,
        preload,
        placed_bytes,
        by_usage,
        usage,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coserve_core::profiler::{Profiler, UsageSource};
    use coserve_model::devices;
    use coserve_workload::board::BoardSpec;

    fn setup() -> (CoeModel, PerfMatrix) {
        let board = BoardSpec::synthetic("place", 40, 4, 1.2, 40.0, 0.5);
        let model = board.build_model().unwrap();
        let device = devices::numa_rtx3080ti();
        let perf = Profiler::with_defaults().profile(&device, &model, UsageSource::Declared);
        (model, perf)
    }

    #[test]
    fn every_strategy_covers_every_expert() {
        let (model, perf) = setup();
        for strategy in PlacementStrategy::ALL {
            let plan = plan_placement(&model, &perf, 4, strategy, 7);
            assert_eq!(plan.num_nodes(), 4);
            assert_eq!(plan.version(), 0);
            for i in 0..model.num_experts() as u32 {
                assert!(
                    !plan.holders(ExpertId(i)).is_empty(),
                    "{strategy}: expert {i} placed nowhere"
                );
            }
            // Preload orders are full permutations of the model.
            for n in 0..4 {
                let mut order = plan.preload_order(n).to_vec();
                assert_eq!(order.len(), model.num_experts());
                order.sort();
                order.dedup();
                assert_eq!(order.len(), model.num_experts());
            }
        }
    }

    #[test]
    fn holders_index_matches_placement_sets() {
        let (model, perf) = setup();
        let plan = plan_placement(&model, &perf, 4, PlacementStrategy::UsageAware, 7);
        for i in 0..model.num_experts() as u32 {
            let e = ExpertId(i);
            let scanned: Vec<usize> = (0..4).filter(|&n| plan.is_placed(n, e)).collect();
            assert_eq!(plan.holders(e), scanned.as_slice(), "expert {i}");
            assert!(plan.is_hosted(e, &[true; 4]));
        }
    }

    #[test]
    fn replication_factors_order_as_expected() {
        let (model, perf) = setup();
        let nodes = 4;
        let factor = |s| plan_placement(&model, &perf, nodes, s, 7).replication_factor();
        assert!((factor(PlacementStrategy::Replicated) - nodes as f64).abs() < 1e-12);
        assert!((factor(PlacementStrategy::Sharded) - 1.0).abs() < 1e-12);
        assert!((factor(PlacementStrategy::Random) - 1.0).abs() < 1e-12);
        let ua = factor(PlacementStrategy::UsageAware);
        assert!(
            ua > 1.0 && ua < nodes as f64,
            "usage-aware replication factor {ua} not between sharded and replicated"
        );
    }

    #[test]
    fn usage_aware_replicates_the_hot_head() {
        let (model, perf) = setup();
        let plan = plan_placement(&model, &perf, 3, PlacementStrategy::UsageAware, 7);
        let by_usage = perf.experts_by_usage();
        // The hottest expert is on every node; the coldest on one.
        assert_eq!(plan.holders(by_usage[0]).len(), 3);
        assert_eq!(plan.holders(*by_usage.last().unwrap()).len(), 1);
        // Each node's preload order starts with its placed experts.
        for n in 0..3 {
            let placed = plan.placed_on(n).len();
            for &e in &plan.preload_order(n)[..placed] {
                assert!(plan.is_placed(n, e));
            }
        }
    }

    #[test]
    fn usage_aware_colocates_dependency_neighbours() {
        let (model, perf) = setup();
        let plan = plan_placement(&model, &perf, 4, PlacementStrategy::UsageAware, 7);
        let graph = model.graph();
        // Count cold subsequents whose every holder also holds a
        // preliminary: co-location must dominate.
        let mut colocated = 0usize;
        let mut total = 0usize;
        for i in 0..model.num_experts() as u32 {
            let e = ExpertId(i);
            if graph.preliminaries_of(e).is_empty() {
                continue;
            }
            total += 1;
            let ok = plan.holders(e).iter().all(|&n| {
                graph
                    .preliminaries_of(e)
                    .iter()
                    .any(|&p| plan.is_placed(n, p))
            });
            if ok {
                colocated += 1;
            }
        }
        assert!(total > 0, "board has shared detectors");
        assert!(
            colocated * 2 >= total,
            "only {colocated}/{total} subsequents co-located with a preliminary"
        );
    }

    #[test]
    fn plans_are_deterministic_and_seed_sensitive() {
        let (model, perf) = setup();
        let a = plan_placement(&model, &perf, 4, PlacementStrategy::Random, 7);
        let b = plan_placement(&model, &perf, 4, PlacementStrategy::Random, 7);
        assert_eq!(a, b);
        let c = plan_placement(&model, &perf, 4, PlacementStrategy::Random, 8);
        assert_ne!(a, c, "different seeds must shuffle the random plan");
        // Non-random strategies ignore the seed entirely.
        let d = plan_placement(&model, &perf, 4, PlacementStrategy::UsageAware, 7);
        let e = plan_placement(&model, &perf, 4, PlacementStrategy::UsageAware, 99);
        assert_eq!(d, e);
    }

    #[test]
    fn single_node_degenerates_to_everything_local() {
        let (model, perf) = setup();
        for strategy in PlacementStrategy::ALL {
            let plan = plan_placement(&model, &perf, 1, strategy, 7);
            assert_eq!(plan.placed_on(0).len(), model.num_experts());
            assert!((plan.replication_factor() - 1.0).abs() < 1e-12);
            assert!(plan.placed_bytes(0) > Bytes::ZERO);
        }
    }

    #[test]
    fn rehosted_rereplicates_exactly_the_orphans() {
        let (model, perf) = setup();
        let plan = plan_placement(&model, &perf, 4, PlacementStrategy::UsageAware, 7);
        let mut alive = [true; 4];
        alive[2] = false;
        let next = plan.rehosted(&model, &alive);
        assert_eq!(next.version(), 1);
        assert!(next.placed_on(2).is_empty(), "dead node keeps nothing");
        for i in 0..model.num_experts() as u32 {
            let e = ExpertId(i);
            assert!(next.is_hosted(e, &alive), "expert {i} orphaned");
        }
        // Live nodes never lose a placement.
        for n in [0usize, 1, 3] {
            assert!(plan.placed_on(n).is_subset(next.placed_on(n)));
        }
        // The delta is exactly the experts that had no live holder.
        let mig = migration_plan(&plan, &next, &model, &alive);
        let orphans: Vec<ExpertId> = (0..model.num_experts() as u32)
            .map(ExpertId)
            .filter(|&e| !plan.is_hosted(e, &alive))
            .collect();
        assert_eq!(mig.len(), orphans.len());
        assert!(!mig.is_empty(), "node 2 held exclusive cold experts");
        assert!(mig.bytes > Bytes::ZERO);
        for mv in &mig.moves {
            assert!(orphans.contains(&mv.expert));
            assert!(alive[mv.to]);
            // Orphans by definition have no surviving donor.
            assert_eq!(mv.from, None);
        }
    }

    #[test]
    fn replanned_covers_survivors_and_migration_names_live_sources() {
        let (model, perf) = setup();
        let plan = plan_placement(&model, &perf, 4, PlacementStrategy::UsageAware, 7);
        let mut alive = [true; 4];
        alive[0] = false;
        let killed = plan.rehosted(&model, &alive);
        // Revive node 0 and rebalance back onto the full fleet.
        let alive = [true; 4];
        let revived = killed.replanned(&model, &alive, None);
        assert_eq!(revived.version(), 2);
        for i in 0..model.num_experts() as u32 {
            assert!(revived.is_hosted(ExpertId(i), &alive));
        }
        // The revived node starts empty under `killed`, so every expert
        // it gains must be migrated — from a live donor, since every
        // expert kept a live replica.
        let mig = migration_plan(&killed, &revived, &model, &alive);
        let gains = revived
            .placed_on(0)
            .iter()
            .filter(|e| !killed.is_placed(0, **e))
            .count();
        assert!(gains > 0);
        assert!(mig.len() >= gains);
        for mv in &mig.moves {
            assert!(mv.from.is_some(), "live replicas must donate");
            assert_ne!(mv.from, Some(mv.to));
        }
    }

    #[test]
    fn replanned_with_observed_usage_changes_the_hot_head() {
        let (model, perf) = setup();
        let plan = plan_placement(&model, &perf, 4, PlacementStrategy::UsageAware, 7);
        // Invert the usage basis: the declared-coldest expert becomes
        // the hottest observed one.
        let n = model.num_experts();
        let observed: Vec<f64> = (0..n).map(|i| (i + 1) as f64 / n as f64).collect();
        let drifted = plan.replanned(&model, &[true; 4], Some(observed.clone()));
        assert_eq!(drifted.usage_basis(), observed.as_slice());
        let hottest = ExpertId(n as u32 - 1);
        assert_eq!(
            drifted.holders(hottest).len(),
            4,
            "observed-hottest expert must be replicated everywhere"
        );
        assert_ne!(plan, drifted.clone());
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_panics() {
        let (model, perf) = setup();
        let _ = plan_placement(&model, &perf, 0, PlacementStrategy::Sharded, 7);
    }

    #[test]
    #[should_panic(expected = "live node")]
    fn rehosting_a_fully_dead_fleet_panics() {
        let (model, perf) = setup();
        let plan = plan_placement(&model, &perf, 2, PlacementStrategy::Sharded, 7);
        let _ = plan.rehosted(&model, &[false, false]);
    }

    #[test]
    fn strategy_displays() {
        assert_eq!(PlacementStrategy::UsageAware.to_string(), "usage-aware");
        assert_eq!(PlacementStrategy::Replicated.to_string(), "replicated");
        assert_eq!(PlacementStrategy::Sharded.to_string(), "sharded");
        assert_eq!(PlacementStrategy::Random.to_string(), "random");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use coserve_core::profiler::{Profiler, UsageSource};
    use coserve_model::devices;
    use coserve_workload::board::BoardSpec;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]
        /// Any kill/re-replicate/revive sequence conserves experts: as
        /// long as one node survives, every expert keeps a live holder.
        #[test]
        fn migration_conserves_experts(
            seed in 0u64..1_000,
            nodes in 2usize..6,
            steps in 1usize..8,
        ) {
            let board = BoardSpec::synthetic("conserve", 30, 3, 1.2, 30.0, 0.5);
            let model = board.build_model().unwrap();
            let device = devices::numa_rtx3080ti();
            let perf = Profiler::with_defaults()
                .profile(&device, &model, UsageSource::Declared);
            let strategy =
                PlacementStrategy::ALL[(seed % 4) as usize];
            let mut plan = plan_placement(&model, &perf, nodes, strategy, seed);
            let mut alive = vec![true; nodes];
            let mut rng = coserve_sim::rng::SimRng::seed_from(seed ^ 0xfee1);
            for step in 0..steps {
                let node = rng.next_below(nodes as u64) as usize;
                if alive[node] {
                    // Never kill the last live node.
                    if alive.iter().filter(|&&a| a).count() == 1 {
                        continue;
                    }
                    alive[node] = false;
                    let next = plan.rehosted(&model, &alive);
                    let mig = migration_plan(&plan, &next, &model, &alive);
                    // Moves land on live nodes only.
                    prop_assert!(mig.moves.iter().all(|m| alive[m.to]));
                    plan = next;
                } else {
                    alive[node] = true;
                    plan = plan.replanned(&model, &alive, None);
                }
                prop_assert_eq!(plan.version(), step as u64 + 1);
                for i in 0..model.num_experts() as u32 {
                    prop_assert!(
                        plan.is_hosted(ExpertId(i), &alive),
                        "expert {} unhosted after step {} (strategy {})",
                        i, step, strategy
                    );
                }
                // Dead nodes hold nothing.
                for (n, &a) in alive.iter().enumerate() {
                    if !a {
                        prop_assert!(plan.placed_on(n).is_empty());
                    }
                }
            }
        }
    }
}
